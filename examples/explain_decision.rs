//! Compare the chain's self-explanation against post-hoc explainers on one
//! decision — the workflow behind Table II and Figure 6.
//!
//! ```sh
//! cargo run --release --example explain_decision
//! ```

use std::time::Instant;

use explainers::{kernel_shap, lime, sobol_total_indices};
use lfm::instructions::{assess_prompt_from_images, label_tokens};
use self_refine_stress::prelude::*;
use videosynth::slic::slic;

fn main() {
    let seed = 11;
    println!("setting up a trained pipeline (smoke scale)…");
    let au = Dataset::generate(DatasetProfile::disfa(Scale::Default), seed);
    let stress = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), seed ^ 1);
    let mut base = Lfm::new(ModelConfig::small(), seed);
    lfm::pretrain::pretrain(&mut base, &CapabilityProfile::base().scaled(0.5), seed ^ 2);
    let (pipeline, _) = train_pipeline(
        base,
        PipelineConfig::smoke(),
        &au.samples,
        &stress.samples,
        Variant::Full,
    );

    let video = &stress.samples[0];
    let (fe, fl) = video.expressive_pair();
    let seg = slic(&fe, 64, 0.1, 5);
    println!(
        "explaining the decision on video #{} ({} SLIC segments)…",
        video.id,
        seg.num_segments()
    );

    // --- The model explains itself: one extra generation. ---
    let t = Instant::now();
    let out = pipeline.predict(video, 0);
    let ours_secs = t.elapsed().as_secs_f64();
    println!(
        "\n[Ours] {:.3}s — assessment: {}",
        ours_secs, out.assessment
    );
    println!("rationale:\n{}", render_description(out.rationale));

    // --- Post-hoc explainers probe the frozen decision function. ---
    let m = &pipeline.model;
    let [st, un] = label_tokens(&m.vocab);
    let score = |img: &videosynth::image::Image| -> f32 {
        let p = assess_prompt_from_images(m, img, &fl, out.description);
        let d = m.next_token_distribution(&p);
        let (ps, pu) = (d[st as usize], d[un as usize]);
        if ps + pu > 0.0 {
            ps / (ps + pu)
        } else {
            0.5
        }
    };

    for (name, evals) in [("LIME", 1000usize), ("KernelSHAP", 1000), ("SOBOL", 0)] {
        let t = Instant::now();
        let attr = match name {
            "LIME" => lime(&fe, &seg, score, evals, seed),
            "KernelSHAP" => kernel_shap(&fe, &seg, score, evals, seed),
            _ => sobol_total_indices(&fe, &seg, score, 15, seed),
        };
        let secs = t.elapsed().as_secs_f64();
        println!(
            "\n[{name}] {:.3}s ({:.0}x slower than the self-explanation)",
            secs,
            secs / ours_secs.max(1e-9)
        );
        println!("top-3 segments: {:?}", attr.top_k(3));
    }
    println!("\npaper Figure 6: the self-explanation is ~63x faster than the fastest explainer.");
}
