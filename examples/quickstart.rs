//! Quickstart: train the self-refine chain-reasoning pipeline on a small
//! synthetic corpus and inspect an interpretable prediction.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use self_refine_stress::prelude::*;

fn main() {
    // Seed 1 converges under the vendored generator's stream (seed 7 was
    // tuned for the upstream rand stream and lands in a bad init).
    let seed = 1;

    // 1. Corpora: an expert-annotated facial-expression set (DISFA+-like)
    //    for the Describe step, and a stress-labelled video set (UVSD-like).
    println!("generating corpora…");
    let au_corpus = Dataset::generate(DatasetProfile::disfa(Scale::Default), seed);
    let stress = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), seed ^ 1);
    let (train_idx, test_idx) = stress.train_test_split(0.8, seed);
    let train: Vec<VideoSample> = train_idx
        .iter()
        .map(|&i| stress.samples[i].clone())
        .collect();
    let test: Vec<VideoSample> = test_idx
        .iter()
        .map(|&i| stress.samples[i].clone())
        .collect();

    // 2. A generically pretrained foundation model (the Qwen-VL stand-in).
    println!("pretraining the base model…");
    let mut base = Lfm::new(ModelConfig::small(), seed);
    lfm::pretrain::pretrain(&mut base, &CapabilityProfile::base().scaled(0.5), seed ^ 2);

    // 3. Algorithm 1: describe tuning → self-refined descriptions with DPO
    //    → assess tuning → self-refined rationales with DPO.
    println!("training the pipeline (Algorithm 1)…");
    let (pipeline, report) = train_pipeline(
        base,
        PipelineConfig::smoke(),
        &au_corpus.samples,
        &train,
        Variant::Full,
    );
    println!(
        "  describe loss {:?}, assess loss {:?}, {} description pairs, {} rationale pairs",
        report.describe_loss, report.assess_loss, report.desc_pairs, report.rationale_pairs
    );

    // 4. Interpretable predictions: label + description + rationale.
    let mut correct = 0;
    for v in &test {
        if pipeline.predict_label(v) == v.label {
            correct += 1;
        }
    }
    println!(
        "test accuracy: {}/{} = {:.1}%",
        correct,
        test.len(),
        100.0 * correct as f64 / test.len() as f64
    );

    let sample = &test[0];
    let out = pipeline.predict(sample, 0);
    println!("\n=== one interpretable prediction ===");
    println!("video #{} (truth: {})", sample.id, sample.label);
    println!("assessment: {}", out.assessment);
    println!("description E:\n{}", render_description(out.description));
    println!(
        "rationale R (critical facial actions):\n{}",
        render_description(out.rationale)
    );
}
