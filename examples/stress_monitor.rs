//! A monitoring scenario from the paper's introduction: non-invasive stress
//! screening over a stream of video clips, with human-readable rationales
//! for every flag raised.
//!
//! ```sh
//! cargo run --release --example stress_monitor
//! ```

use self_refine_stress::prelude::*;
use videosynth::world::{sample_video, Subject, WorldConfig};

fn main() {
    let seed = 23;

    // Train a detector once (smoke scale for the demo).
    println!("training the monitoring pipeline…");
    let au = Dataset::generate(DatasetProfile::disfa(Scale::Default), seed);
    let stress = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), seed ^ 1);
    let mut base = Lfm::new(ModelConfig::small(), seed);
    lfm::pretrain::pretrain(&mut base, &CapabilityProfile::base().scaled(0.5), seed ^ 2);
    let (pipeline, _) = train_pipeline(
        base,
        PipelineConfig::smoke(),
        &au.samples,
        &stress.samples,
        Variant::Full,
    );

    // Simulate a day of clips from one monitored subject: relaxed in the
    // morning, a stressful stretch midday, recovery in the evening.
    println!("\nmonitoring subject #42 over 10 clips…\n");
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed ^ 3);
    let subject = Subject::generate(42, 0.35, &mut rng);
    let wc = WorldConfig::uvsd_like();
    let schedule = [
        StressLabel::Unstressed,
        StressLabel::Unstressed,
        StressLabel::Unstressed,
        StressLabel::Stressed,
        StressLabel::Stressed,
        StressLabel::Stressed,
        StressLabel::Stressed,
        StressLabel::Unstressed,
        StressLabel::Unstressed,
        StressLabel::Unstressed,
    ];

    let mut alerts = 0;
    let mut correct = 0;
    for (hour, &truth) in schedule.iter().enumerate() {
        let clip = sample_video(&wc, &subject, truth, 1000 + hour, seed ^ 4);
        let out = pipeline.predict(&clip, hour as u64);
        let mark = if out.assessment == truth {
            "✓"
        } else {
            "✗"
        };
        correct += usize::from(out.assessment == truth);
        println!(
            "{:02}:00  {:<10} (truth {:<10}) {}",
            9 + hour,
            out.assessment.to_string(),
            truth.to_string(),
            mark
        );
        if out.assessment == StressLabel::Stressed {
            alerts += 1;
            let cues: Vec<String> = out.rationale.iter().map(|au| au.to_string()).collect();
            println!(
                "        ⚠ alert — critical facial cues: {}",
                cues.join(", ")
            );
        }
    }
    println!(
        "\nsummary: {alerts} alert(s) raised, {correct}/{} clips classified correctly.",
        schedule.len()
    );
    println!(
        "every alert carries the facial actions that drove it — the paper's interpretability goal."
    );
}
