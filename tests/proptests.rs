//! Cross-crate property-based tests.

use facs::au::{AuSet, NUM_AUS};
use lfm::grammar::{generate_description_within, DescriptionDfa};
use lfm::{Lfm, ModelConfig, Vocab};
use proptest::prelude::*;
use videosynth::dataset::{Dataset, DatasetProfile, Scale};
use videosynth::perturb::{gaussian_disturb, mask_segments};
use videosynth::slic::slic;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Grammar-constrained generation with any allowed set stays inside it,
    /// for an untrained (worst-case) model at high temperature.
    #[test]
    fn constrained_generation_respects_allowed(bits in 0u16..(1 << NUM_AUS), seed in 0u64..50) {
        // A single static model would be nicer but proptest closures make a
        // tiny fresh model cheap enough.
        let m = Lfm::new(ModelConfig::tiny(), 3);
        let ds = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), 1);
        let allowed = AuSet::from_bits(bits);
        let p = lfm::instructions::describe_prompt(&m, &ds.samples[0]);
        let out = generate_description_within(&m, &p, allowed, 1.5, seed);
        prop_assert!(out.difference(allowed).is_empty());
    }

    /// The DFA accepts exactly the canonical renderings (sampled subsets).
    #[test]
    fn dfa_accepts_canonical(bits in 0u16..(1 << NUM_AUS)) {
        let vocab = Vocab::build();
        let dfa = DescriptionDfa::new(&vocab);
        let s = AuSet::from_bits(bits);
        let toks = vocab.encode(&facs::describe::render_description(s)).unwrap();
        let mut state = dfa.start();
        for t in toks {
            prop_assert!(dfa.allowed(&state).contains(&t));
            state = dfa.advance(state, t);
        }
        prop_assert_eq!(dfa.accepting(&state), Some(s));
    }

    /// Perturbations only touch the targeted segments.
    #[test]
    fn perturbations_are_local(target in 0usize..8, sigma in 0.05f32..0.5) {
        let ds = Dataset::generate(DatasetProfile::rsl(Scale::Smoke), 2);
        let img = ds.samples[0].render_frame(0);
        let seg = slic(&img, 8, 0.1, 3);
        let t = target % seg.num_segments();
        for out in [
            gaussian_disturb(&img, &seg, &[t], sigma, 3),
            mask_segments(&img, &seg, &[t], 0.5),
        ] {
            for y in 0..img.height() {
                for x in 0..img.width() {
                    if seg.segment_of(x, y) != t {
                        prop_assert_eq!(img.get(x, y), out.get(x, y));
                    }
                }
            }
        }
    }

    /// Metrics identities hold for arbitrary confusion counts.
    #[test]
    fn metrics_identities(tp in 0usize..50, tn in 0usize..50, fp in 0usize..50, fn_ in 0usize..50) {
        prop_assume!(tp + tn + fp + fn_ > 0);
        let c = evalkit::metrics::Confusion { tp, tn, fp, fn_ };
        let m = c.metrics();
        prop_assert!((0.0..=1.0).contains(&m.accuracy));
        prop_assert!((0.0..=1.0).contains(&m.precision));
        prop_assert!((0.0..=1.0).contains(&m.recall));
        prop_assert!((0.0..=1.0).contains(&m.f1));
        let acc = (tp + tn) as f64 / (tp + tn + fp + fn_) as f64;
        prop_assert!((m.accuracy - acc).abs() < 1e-12);
    }

    /// Attribution top-k prefixes are consistent: top-1 is the head of top-3.
    #[test]
    fn attribution_topk_prefix(scores in proptest::collection::vec(-1.0f32..1.0, 5..20)) {
        let a = explainers::Attribution::new(scores);
        let t1 = a.top_k(1);
        let t3 = a.top_k(3.min(a.len()));
        prop_assert_eq!(t1[0], t3[0]);
    }
}
