//! Smoke-scale integration tests of every experiment runner: each table
//! and figure of the paper can be regenerated end to end.

use bench_suite::context::{Context, Corpus};
use bench_suite::experiments::{ablation, detection, explainer, icl, testtime};
use chain_reason::Variant;
use videosynth::dataset::Scale;

fn ctx(corpus: Corpus, seed: u64) -> Context {
    Context::prepare(corpus, Scale::Smoke, seed)
}

#[test]
fn table1_runner_covers_all_methods() {
    let c = ctx(Corpus::Uvsd, 31);
    // Skip "Ours" here (covered by the ablation test) to keep runtime sane.
    let rows = detection::run_corpus(&c, false);
    assert_eq!(rows.len(), 11, "3 proxies + 8 supervised baselines");
    for r in &rows {
        assert!(
            r.metrics.accuracy > 0.3,
            "{} collapsed: {:?}",
            r.method,
            r.metrics
        );
        assert!(r.paper[0] > 0.0, "{} has no paper number", r.method);
    }
    // The table renders without panicking.
    let t = detection::render("Table I (smoke)", &[("UVSD", rows.as_slice())]);
    assert!(t.render().contains("MARLIN"));
}

#[test]
fn ablation_runner_produces_detection_and_faithfulness() {
    let c = ctx(Corpus::Uvsd, 32);
    let row = ablation::run_variant(&c, Variant::Full, 6);
    assert!(row.metrics.accuracy > 0.5, "{:?}", row.metrics);
    assert!(row.drops.clean >= 0.0 && row.drops.clean <= 1.0);
    for d in row.drops.drops {
        assert!(d.abs() <= 1.0);
    }
    let t = ablation::render_detection(
        "Table III (smoke)",
        Corpus::Uvsd,
        std::slice::from_ref(&row),
    );
    assert!(t.render().contains("Ours"));
    let t = ablation::render_faithfulness("Table IV (smoke)", Corpus::Uvsd, &[row]);
    assert!(t.render().contains("Top-1"));
}

#[test]
fn explainer_comparison_ranks_and_measures() {
    let c = ctx(Corpus::Uvsd, 33);
    let rows = explainer::run_table2(&c, 4);
    assert_eq!(rows.len(), 4);
    let t = explainer::render_table2("Table II (smoke)", Corpus::Uvsd, &rows);
    let s = t.render();
    for name in ["SHAP", "LIME", "SOBOL", "Ours"] {
        assert!(s.contains(name), "{s}");
    }
}

#[test]
fn fig6_latency_ours_is_fastest() {
    let c = ctx(Corpus::Uvsd, 34);
    let rows = explainer::run_fig6(&c, 1);
    let ours = rows
        .iter()
        .find(|r| r.0 == explainer::Explainer::Ours)
        .map(|r| explainer::fig6_mean(&r.1))
        .expect("ours timed");
    for (e, samples) in &rows {
        if *e != explainer::Explainer::Ours {
            let secs = explainer::fig6_mean(samples);
            assert!(
                secs > ours,
                "{} ({secs:.3}s) should be slower than Ours ({ours:.3}s)",
                e.label()
            );
        }
    }
}

#[test]
fn icl_runner_reports_all_strategies() {
    let c = ctx(Corpus::Rsl, 35);
    let (pl, rows) = icl::run_table7(&c);
    assert_eq!(rows.len(), 4);
    let t = icl::render_table7("Table VII (smoke)", Corpus::Rsl, &rows);
    assert!(t.render().contains("Retrieve-by-description"));

    // Figure 7 and 8 reuse the trained pipeline.
    let (vision, desc) = icl::run_fig7(&c, &pl, 3, 6);
    assert!(vision.helpful.n + vision.unhelpful.n > 0);
    assert!(desc.helpful.n + desc.unhelpful.n > 0);

    let rows8 = icl::run_fig8(&c, &pl, &[0.5, 1.0]);
    assert_eq!(rows8.len(), 6, "2 fractions × 3 strategies");
    for (_, _, acc) in rows8 {
        assert!((0.0..=1.0).contains(&acc));
    }
}

#[test]
fn testtime_runner_covers_all_proxies() {
    let c = ctx(Corpus::Rsl, 36);
    let rows = testtime::run_table8(&c);
    assert_eq!(rows.len(), 3);
    for r in &rows {
        assert!(r.original.accuracy > 0.2);
        assert!(r.refined.accuracy > 0.2);
    }
    let t = testtime::render_table8("Table VIII (smoke)", Corpus::Rsl, &rows);
    assert!(t.render().contains("GPT-4o"));
}
