//! End-to-end integration: Algorithm 1 at smoke scale, all ablation
//! variants, test-time refinement, and the interpretability invariants.

use self_refine_stress::prelude::*;

fn smoke_setup() -> (Vec<VideoSample>, Vec<VideoSample>, Vec<VideoSample>) {
    let au = Dataset::generate(DatasetProfile::disfa(Scale::Smoke), 1);
    let stress = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), 2);
    let (tr, te) = stress.train_test_split(0.8, 3);
    let train = tr.iter().map(|&i| stress.samples[i].clone()).collect();
    let test = te.iter().map(|&i| stress.samples[i].clone()).collect();
    (au.samples, train, test)
}

fn tiny_base(seed: u64) -> Lfm {
    let mut m = Lfm::new(ModelConfig::tiny(), seed);
    lfm::pretrain::pretrain(&mut m, &CapabilityProfile::base().scaled(0.25), seed ^ 9);
    m
}

#[test]
fn algorithm_one_trains_and_predicts_above_chance() {
    let (au, train, test) = smoke_setup();
    let (pl, report) = train_pipeline(
        tiny_base(5),
        PipelineConfig::smoke(),
        &au,
        &train,
        Variant::Full,
    );
    assert!(report.describe_loss.is_some());
    assert!(report.assess_loss.is_some());
    let correct = test
        .iter()
        .filter(|v| pl.predict_label(v) == v.label)
        .count();
    assert!(
        correct * 2 > test.len(),
        "test accuracy at or below chance: {correct}/{}",
        test.len()
    );
}

#[test]
fn rationale_is_always_a_subset_of_the_description() {
    let (au, train, test) = smoke_setup();
    let (pl, _) = train_pipeline(
        tiny_base(6),
        PipelineConfig::smoke(),
        &au,
        &train,
        Variant::Full,
    );
    for v in test.iter().take(6) {
        let out = pl.predict(v, v.id as u64);
        assert!(
            out.rationale.difference(out.description).is_empty(),
            "rationale {:?} escapes description {:?}",
            out.rationale,
            out.description
        );
    }
}

#[test]
fn every_variant_trains_and_is_deterministic() {
    let (au, train, test) = smoke_setup();
    for variant in [
        Variant::WithoutChain,
        Variant::WithoutLearnDescribe,
        Variant::WithoutRefine,
        Variant::WithoutReflection,
    ] {
        let (pl, _) = train_pipeline(tiny_base(7), PipelineConfig::smoke(), &au, &train, variant);
        let a: Vec<StressLabel> = test
            .iter()
            .take(4)
            .map(|v| chain_reason::trainer::predict_for_variant(&pl, variant, v))
            .collect();
        let b: Vec<StressLabel> = test
            .iter()
            .take(4)
            .map(|v| chain_reason::trainer::predict_for_variant(&pl, variant, v))
            .collect();
        assert_eq!(a, b, "{variant:?} predictions not deterministic");
    }
}

#[test]
fn same_seed_same_pipeline() {
    let (au, train, test) = smoke_setup();
    let (p1, _) = train_pipeline(
        tiny_base(8),
        PipelineConfig::smoke(),
        &au,
        &train,
        Variant::Full,
    );
    let (p2, _) = train_pipeline(
        tiny_base(8),
        PipelineConfig::smoke(),
        &au,
        &train,
        Variant::Full,
    );
    for v in test.iter().take(5) {
        assert_eq!(
            p1.predict(v, 0),
            p2.predict(v, 0),
            "training is not reproducible"
        );
    }
}

#[test]
fn test_time_refinement_leaves_weights_frozen_and_runs() {
    let (_, train, test) = smoke_setup();
    let mut m = Lfm::new(ModelConfig::tiny(), 9);
    lfm::pretrain::pretrain(&mut m, &CapabilityProfile::gpt4o().scaled(0.25), 10);
    let pl = chain_reason::StressPipeline::new(m, PipelineConfig::smoke());
    let before = pl.model.store.snapshot();
    for v in test.iter().take(3) {
        let out = chain_reason::test_time::predict_with_test_time_refinement(&pl, v, &train, 4);
        assert!(out.description.difference(facs::au::AuSet::FULL).is_empty());
    }
    for id in pl.model.store.ids() {
        assert_eq!(
            pl.model.store.value(id).data,
            before.value(id).data,
            "test-time refinement must not train"
        );
    }
}

#[test]
fn flip_count_protocol_is_consistent_with_rationale_length() {
    let (au, train, _) = smoke_setup();
    let (pl, _) = train_pipeline(
        tiny_base(11),
        PipelineConfig::smoke(),
        &au,
        &train,
        Variant::Full,
    );
    let v = &train[0];
    let out = pl.predict(v, 0);
    if out.rationale.is_empty() {
        return;
    }
    let score = chain_reason::refine::rationale_flip_count(
        &pl,
        v,
        out.description,
        out.assessment,
        out.rationale,
    );
    assert!(score >= 1 && score <= out.rationale.len() + 1);
}
