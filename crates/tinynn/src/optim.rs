//! First-order optimizers operating on a [`ParamStore`].

use crate::params::ParamStore;

/// A gradient-descent optimizer.  `step` consumes the store's accumulated
/// gradients; callers are responsible for `store.zero_grads()` afterwards.
pub trait Optimizer {
    /// Apply one update from the accumulated gradients.
    fn step(&mut self, store: &mut ParamStore);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Override the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum.
#[derive(Clone, Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// `momentum = 0` gives plain SGD.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        if self.velocity.len() != store.len() {
            self.velocity = store
                .ids()
                .map(|id| vec![0.0; store.value(id).len()])
                .collect();
        }
        for (i, id) in store.ids().collect::<Vec<_>>().into_iter().enumerate() {
            let grad = store.grad(id).to_vec();
            let vel = &mut self.velocity[i];
            let value = store.value_mut(id);
            for k in 0..value.len() {
                vel[k] = self.momentum * vel[k] + grad[k];
                value.data[k] -= self.lr * vel[k];
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba 2015) with bias correction and decoupled weight decay
/// (AdamW-style; pass `weight_decay = 0` for plain Adam).
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with the standard `(β₁, β₂, ε) = (0.9, 0.999, 1e-8)`.
    pub fn new(lr: f32) -> Self {
        Self::with_config(lr, 0.9, 0.999, 1e-8, 0.0)
    }

    /// Fully parameterised constructor.
    pub fn with_config(lr: f32, beta1: f32, beta2: f32, eps: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        if self.m.len() != store.len() {
            self.m = store
                .ids()
                .map(|id| vec![0.0; store.value(id).len()])
                .collect();
            self.v = self.m.clone();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, id) in store.ids().collect::<Vec<_>>().into_iter().enumerate() {
            let grad = store.grad(id).to_vec();
            let (m, v) = (&mut self.m[i], &mut self.v[i]);
            let value = store.value_mut(id);
            for k in 0..value.len() {
                m[k] = self.beta1 * m[k] + (1.0 - self.beta1) * grad[k];
                v[k] = self.beta2 * v[k] + (1.0 - self.beta2) * grad[k] * grad[k];
                let mhat = m[k] / bc1;
                let vhat = v[k] / bc2;
                value.data[k] -=
                    self.lr * (mhat / (vhat.sqrt() + self.eps) + self.weight_decay * value.data[k]);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::tensor::Tensor;

    /// Minimise (w - 3)² with the given optimizer; return final w.
    fn minimise<O: Optimizer>(opt: &mut O, steps: usize) -> f32 {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(-2.0));
        for _ in 0..steps {
            let mut g = Graph::new();
            let wv = g.param(&store, w);
            let t = g.leaf(Tensor::scalar(3.0));
            let d = g.sub(wv, t);
            let d2 = g.mul(d, d);
            let loss = g.sum(d2);
            g.backward(loss);
            g.accumulate_grads(&mut store);
            opt.step(&mut store);
            store.zero_grads();
        }
        store.value(w).item()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = minimise(&mut Sgd::new(0.1, 0.0), 100);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let w = minimise(&mut Sgd::new(0.05, 0.9), 200);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let w = minimise(&mut Adam::new(0.2), 200);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_weight_decay_shrinks_unused_params() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(1.0));
        let mut opt = Adam::with_config(0.01, 0.9, 0.999, 1e-8, 0.5);
        // No gradient signal at all: decay alone should shrink w.
        for _ in 0..100 {
            opt.step(&mut store);
        }
        assert!(store.value(w).item() < 0.8);
    }

    #[test]
    fn set_learning_rate_round_trips() {
        let mut s = Sgd::new(0.1, 0.0);
        s.set_learning_rate(0.01);
        assert_eq!(s.learning_rate(), 0.01);
        let mut a = Adam::new(0.1);
        a.set_learning_rate(0.02);
        assert_eq!(a.learning_rate(), 0.02);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn sgd_rejects_nonpositive_lr() {
        let _ = Sgd::new(0.0, 0.0);
    }
}
