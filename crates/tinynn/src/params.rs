//! Trainable-parameter storage shared across forward passes.

use rand::Rng;

use crate::rngutil::normal;
use crate::tensor::Tensor;

/// Handle to one parameter slot in a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Raw slot index.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Clone, Debug)]
struct Slot {
    name: String,
    value: Tensor,
    grad: Vec<f32>,
}

/// A flat store of named, trainable tensors with accumulated gradients.
///
/// Layers keep [`ParamId`]s; graphs bind them as leaves via
/// [`crate::Graph::param`]; `Graph::accumulate_grads` adds the pass's
/// gradients here; optimizers then update `value` from `grad`.
#[derive(Clone, Debug, Default)]
pub struct ParamStore {
    slots: Vec<Slot>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter with an initial value.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let grad = vec![0.0; value.len()];
        self.slots.push(Slot {
            name: name.into(),
            value,
            grad,
        });
        ParamId(self.slots.len() - 1)
    }

    /// Register a `[rows, cols]` matrix with Xavier/Glorot-normal init.
    pub fn add_xavier<R: Rng>(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        rng: &mut R,
    ) -> ParamId {
        let std = (2.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols).map(|_| normal(rng) * std).collect();
        self.add(name, Tensor::from_vec(data, vec![rows, cols]))
    }

    /// Register an all-zero tensor (typical for biases).
    pub fn add_zeros(&mut self, name: impl Into<String>, shape: Vec<usize>) -> ParamId {
        self.add(name, Tensor::zeros(shape))
    }

    /// Register an all-one tensor (typical for LayerNorm gains).
    pub fn add_ones(&mut self, name: impl Into<String>, shape: Vec<usize>) -> ParamId {
        let n: usize = shape.iter().product();
        self.add(name, Tensor::from_vec(vec![1.0; n], shape))
    }

    /// Number of parameters slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the store has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.slots.iter().map(|s| s.value.len()).sum()
    }

    /// The value tensor of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.slots[id.0].value
    }

    /// Mutable value tensor (used by optimizers and deserialization).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.slots[id.0].value
    }

    /// The accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &[f32] {
        &self.slots[id.0].grad
    }

    /// Mutable accumulated gradient.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut [f32] {
        &mut self.slots[id.0].grad
    }

    /// Name given at registration.
    pub fn name(&self, id: ParamId) -> &str {
        &self.slots[id.0].name
    }

    /// Iterate over all ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.slots.len()).map(ParamId)
    }

    /// Id of the parameter registered under `name`, if any.
    pub fn find(&self, name: &str) -> Option<ParamId> {
        self.slots.iter().position(|s| s.name == name).map(ParamId)
    }

    /// Reset every gradient to zero.  Call after each optimizer step.
    pub fn zero_grads(&mut self) {
        for s in &mut self.slots {
            s.grad.iter_mut().for_each(|g| *g = 0.0);
        }
    }

    /// Global L2 norm of all gradients.
    pub fn grad_norm(&self) -> f32 {
        self.slots
            .iter()
            .flat_map(|s| s.grad.iter())
            .map(|g| g * g)
            .sum::<f32>()
            .sqrt()
    }

    /// Scale all gradients so the global norm is at most `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for s in &mut self.slots {
                s.grad.iter_mut().for_each(|g| *g *= scale);
            }
        }
    }

    /// Deep copy of all parameter *values* (used to freeze a DPO reference
    /// model).  Gradients in the copy are zeroed.
    pub fn snapshot(&self) -> ParamStore {
        let slots = self
            .slots
            .iter()
            .map(|s| Slot {
                name: s.name.clone(),
                value: s.value.clone(),
                grad: vec![0.0; s.value.len()],
            })
            .collect();
        ParamStore { slots }
    }

    /// Copy values from `other` (must have identical structure).
    pub fn load_values_from(&mut self, other: &ParamStore) {
        assert_eq!(
            self.slots.len(),
            other.slots.len(),
            "store structure mismatch"
        );
        for (a, b) in self.slots.iter_mut().zip(&other.slots) {
            assert_eq!(a.value.shape, b.value.shape, "shape mismatch on {}", a.name);
            a.value.data.copy_from_slice(&b.value.data);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn add_and_lookup() {
        let mut s = ParamStore::new();
        let id = s.add("w", Tensor::from_vec(vec![1.0, 2.0], vec![2]));
        assert_eq!(s.name(id), "w");
        assert_eq!(s.value(id).data, vec![1.0, 2.0]);
        assert_eq!(s.grad(id), &[0.0, 0.0]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.num_scalars(), 2);
    }

    #[test]
    fn xavier_scale_is_reasonable() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = ParamStore::new();
        let id = s.add_xavier("w", 64, 64, &mut rng);
        let std_expect = (2.0 / 128.0f32).sqrt();
        let v = s.value(id);
        let mean: f32 = v.data.iter().sum::<f32>() / v.len() as f32;
        let var: f32 = v.data.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / v.len() as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - std_expect).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn zero_and_clip_grads() {
        let mut s = ParamStore::new();
        let id = s.add_zeros("b", vec![3]);
        s.grad_mut(id).copy_from_slice(&[3.0, 0.0, 4.0]);
        assert!((s.grad_norm() - 5.0).abs() < 1e-6);
        s.clip_grad_norm(1.0);
        assert!((s.grad_norm() - 1.0).abs() < 1e-5);
        s.zero_grads();
        assert_eq!(s.grad_norm(), 0.0);
    }

    #[test]
    fn snapshot_is_independent() {
        let mut s = ParamStore::new();
        let id = s.add("w", Tensor::scalar(1.0));
        let snap = s.snapshot();
        s.value_mut(id).data[0] = 9.0;
        assert_eq!(snap.value(id).data[0], 1.0);
        let mut s2 = s.clone();
        s2.load_values_from(&snap);
        assert_eq!(s2.value(id).data[0], 1.0);
    }

    #[test]
    fn ones_init() {
        let mut s = ParamStore::new();
        let id = s.add_ones("g", vec![4]);
        assert_eq!(s.value(id).data, vec![1.0; 4]);
    }
}
