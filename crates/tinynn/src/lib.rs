//! `tinynn` — a from-scratch reverse-mode automatic-differentiation engine
//! and neural-network toolkit.
//!
//! The paper fine-tunes a vision-language foundation model with instruction
//! tuning (cross-entropy) and Direct Preference Optimization; its baselines
//! span MLPs, linear SVMs, CNNs, attention modules and masked autoencoders.
//! All of that runs on this crate: a tape/arena [`Graph`] of tensor ops with
//! exact gradients, a [`ParamStore`] for trainable parameters, composable
//! [`layers`], [`optim`]izers and [`loss`] functions.
//!
//! Design: every forward pass builds a fresh [`Graph`]; trainable leaves are
//! bound to slots of a long-lived [`ParamStore`]; [`Graph::backward`]
//! accumulates gradients into the store; an optimizer consumes them.  This
//! keeps layers plain data (parameter ids + hyper-parameters) and makes
//! gradient checking trivial ([`gradcheck`]).
//!
//! ```
//! use tinynn::{Graph, ParamStore, Tensor};
//! use tinynn::optim::{Optimizer, Sgd};
//!
//! let mut store = ParamStore::new();
//! let w = store.add("w", Tensor::from_vec(vec![0.0], vec![1, 1]));
//! let mut opt = Sgd::new(0.1, 0.0);
//! for _ in 0..100 {
//!     let mut g = Graph::new();
//!     let wv = g.param(&store, w);
//!     let x = g.leaf(Tensor::from_vec(vec![2.0], vec![1, 1]));
//!     let y = g.matmul(x, wv);                 // y = 2w
//!     let t = g.leaf(Tensor::from_vec(vec![6.0], vec![1, 1]));
//!     let d = g.sub(y, t);
//!     let d2 = g.mul(d, d);
//!     let loss = g.mean(d2);                   // (2w - 6)^2
//!     g.backward(loss);
//!     g.accumulate_grads(&mut store);
//!     opt.step(&mut store);
//!     store.zero_grads();
//! }
//! assert!((store.value(w).data[0] - 3.0).abs() < 1e-3);
//! ```

pub mod gradcheck;
pub mod graph;
pub mod infer;
pub mod kernels;
pub mod layers;
pub mod loss;
pub mod optim;
pub mod params;
pub mod rngutil;
pub mod serialize;
pub mod tensor;

pub use graph::{Graph, Var};
pub use params::{ParamId, ParamStore};
pub use tensor::Tensor;
