//! Shared compute kernels for the autodiff tape and the grad-free infer
//! path, organised as two selectable tiers (see [`KernelTier`]).
//!
//! # The exact tier (default)
//!
//! Every exact-tier kernel preserves the *reference accumulation order* —
//! each output element accumulates its `k` products in increasing-`k`
//! order into a single scalar accumulator seeded with `+0.0`, skipping
//! terms whose left operand is exactly `0.0` (the sparse-friendly
//! reference loop; since this PR the skip is the uniform scalar contract,
//! [`dot`] included).  Row/column blocking and transpose-packing only
//! change *which* output element is computed when, never the order of adds
//! within one element, so results are bit-identical to the naive triple
//! loop.  Large products are additionally parallelised over output rows
//! via [`runtime::Pool`]; each row is a pure function of the inputs and
//! `par_map` is order-preserving, so the result is bit-identical at any
//! thread count (the workspace-wide determinism invariant).
//!
//! # Exactness of the zero skip
//!
//! Skipping zero left-operands is itself exact for finite inputs: an
//! accumulator that starts at `+0.0` can never become `-0.0` under
//! round-to-nearest (`+0.0 + -0.0 == +0.0`), and adding `±0.0` to any
//! value is the identity — so the skip changes nothing but speed.  For
//! *non-finite* inputs the skip is observable (`0.0 × NaN = NaN` would
//! otherwise propagate), which is why it is applied uniformly: every
//! scalar kernel drops a term whose left operand is exactly `0.0`, no
//! matter what the right operand holds, so a NaN payload can never make
//! two kernels disagree depending on which one a shape dispatched to
//! (proptested in `tests/proptests.rs`).
//!
//! # The fast tier (`KernelTier::Fast`, opt-in)
//!
//! The per-element `if ai != 0.0` branch of the exact loops defeats the
//! autovectorizer, so a second tier provides *branch-free,
//! register-blocked* f32 microkernels: fixed-size `MR × NR` panels whose
//! accumulators live in registers across the whole `k` loop, with the
//! vector lanes spread over output columns.  Each output element still
//! accumulates its products in increasing-`k` order into its own single
//! accumulator — the blocking changes only which elements are in flight
//! together — so for **finite inputs the fast tier is bit-identical to
//! the exact tier** (the zero skip is the identity, see above) at any
//! blocking, shape or thread count.  The documented tolerance contract of
//! the fast f32 tier is therefore *zero* on finite data; non-finite
//! inputs are outside its contract (debug builds assert finiteness at
//! fast-kernel entry).  That it actually lowers to SIMD is verified by a
//! throughput benchmark (`kernelbench`, `scripts/bench_kernels.sh`), not
//! by reading assembly.
//!
//! # The int8 path (`KernelTier::FastQ8`, opt-in)
//!
//! For the serve hot path an optional weight-quantized matmul stores a
//! weight matrix as per-column-scaled `i8` ([`Q8Weights`]) and
//! dequantizes inside the register-blocked inner loop.  This tier is
//! *lossy*: with per-column scale `s_j = max_k |w[k][j]| / 127`, each
//! quantized weight is within `s_j / 2` of the original, so
//! `|out[j] − exact[j]| ≤ (s_j / 2) · Σ_k |x[k]|` — the documented,
//! testable error bound ([`Q8Weights::row_error_bound`]).  Activations
//! stay f32; only weights are quantized.

use runtime::Pool;
use std::sync::atomic::{AtomicU8, Ordering};

/// Below this many multiply-adds the packed/blocked path is not worth the
/// `Bᵀ` packing traffic; use the streaming reference loop.
const PACK_MIN_FLOPS: usize = 1 << 14;

/// Below this many multiply-adds a `par_map` round-trip (scoped thread
/// spawn) costs more than the arithmetic.
const PAR_MIN_FLOPS: usize = 1 << 18;

/// Output-row block: `A` rows kept hot while a `Bᵀ` column block streams.
const ROW_BLOCK: usize = 16;

/// Output-column block: `Bᵀ` rows that fit comfortably in L1/L2 and get
/// reused across a whole row block.
const COL_BLOCK: usize = 64;

// ---------------------------------------------------------------------------
// Kernel tier selection
// ---------------------------------------------------------------------------

/// Which kernel implementation the dispatching entry points use.
///
/// The tier is process-global (like [`runtime::set_threads`]): serving
/// binaries set it once at boot from `--kernel-tier` or the
/// `SRCR_KERNEL_TIER` environment variable (flag wins).  Code that must
/// not depend on ambient state — tests, benchmarks, a pinned
/// `InferSession` — uses the `*_with` entry points and passes a tier
/// explicitly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KernelTier {
    /// Reference scalar kernels: bit-identical to the naive loops, the
    /// oracle every other tier is tested against.
    #[default]
    Exact,
    /// Branch-free register-blocked f32 microkernels.  Bit-identical to
    /// `Exact` on finite inputs (see module docs), substantially faster.
    Fast,
    /// `Fast`, plus int8 weight-quantized linear layers where the caller
    /// holds [`Q8Weights`] (lossy; see the documented error bound).
    FastQ8,
}

impl KernelTier {
    /// Parse a tier name as accepted by `--kernel-tier` /
    /// `SRCR_KERNEL_TIER`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim() {
            "exact" => Ok(KernelTier::Exact),
            "fast" => Ok(KernelTier::Fast),
            "fast-q8" => Ok(KernelTier::FastQ8),
            other => Err(format!(
                "unknown kernel tier {other:?} (exact|fast|fast-q8)"
            )),
        }
    }

    /// Canonical name (round-trips through [`KernelTier::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Exact => "exact",
            KernelTier::Fast => "fast",
            KernelTier::FastQ8 => "fast-q8",
        }
    }

    /// Whether the f32 fast microkernels are active in this tier.
    fn fast_f32(self) -> bool {
        !matches!(self, KernelTier::Exact)
    }
}

impl std::fmt::Display for KernelTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Global tier encoding: 0/1/2 = the variants, `TIER_UNSET` = consult the
/// environment on first read.
const TIER_UNSET: u8 = u8::MAX;
static TIER: AtomicU8 = AtomicU8::new(TIER_UNSET);

fn tier_to_u8(t: KernelTier) -> u8 {
    match t {
        KernelTier::Exact => 0,
        KernelTier::Fast => 1,
        KernelTier::FastQ8 => 2,
    }
}

fn tier_from_u8(v: u8) -> KernelTier {
    match v {
        1 => KernelTier::Fast,
        2 => KernelTier::FastQ8,
        _ => KernelTier::Exact,
    }
}

/// Set the process-global kernel tier (overrides `SRCR_KERNEL_TIER`).
pub fn set_kernel_tier(t: KernelTier) {
    TIER.store(tier_to_u8(t), Ordering::Relaxed);
}

/// The process-global kernel tier.  When never set explicitly, the
/// `SRCR_KERNEL_TIER` environment variable is consulted once (an invalid
/// value falls back to `Exact`, matching `SRCR_THREADS`'s lenience).
pub fn kernel_tier() -> KernelTier {
    let v = TIER.load(Ordering::Relaxed);
    if v != TIER_UNSET {
        return tier_from_u8(v);
    }
    let resolved = std::env::var("SRCR_KERNEL_TIER")
        .ok()
        .and_then(|s| KernelTier::parse(&s).ok())
        .unwrap_or(KernelTier::Exact);
    // Racing first reads resolve the same value; last store wins benignly.
    TIER.store(tier_to_u8(resolved), Ordering::Relaxed);
    resolved
}

/// Fast-tier inputs must be finite (the branch-free kernels do not skip
/// zero left operands, so `0.0 × NaN` would diverge from the exact tier).
#[inline]
fn debug_assert_finite(name: &str, xs: &[f32]) {
    debug_assert!(
        xs.iter().all(|v| v.is_finite()),
        "fast-tier kernel input {name:?} contains a non-finite value"
    );
    let _ = (name, xs);
}

// ---------------------------------------------------------------------------
// Exact scalar kernels (the oracle tier)
// ---------------------------------------------------------------------------

/// Dot product, increasing-index accumulation with the exact-zero skip —
/// the per-element form of every exact kernel (`A × Bᵀ` scores included).
///
/// The skip is the *uniform* scalar contract: a term whose `a` element is
/// exactly `0.0` contributes nothing even when `b[i]` is non-finite, so
/// all exact kernels agree bit-for-bit on NaN/Inf payloads instead of
/// diverging by dispatch shape (previously this kernel did not skip and
/// `0.0 × NaN` propagated here but not in the matmul loops).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for i in 0..a.len() {
        let ai = a[i];
        if ai != 0.0 {
            acc += ai * b[i];
        }
    }
    acc
}

/// Reference matmul loop: `out[i, :] += a[i, kk] * b[kk, :]` in increasing
/// `kk` order with the exact-zero skip.  Streams rows of `b`; good for
/// small shapes where packing does not pay.
fn matmul_ref_into(out: &mut [f32], a: &[f32], b: &[f32], r: usize, k: usize, c: usize) {
    for i in 0..r {
        let orow = &mut out[i * c..(i + 1) * c];
        for kk in 0..k {
            let aik = a[i * k + kk];
            if aik != 0.0 {
                let brow = &b[kk * c..(kk + 1) * c];
                for cc in 0..c {
                    orow[cc] += aik * brow[cc];
                }
            }
        }
    }
}

/// Blocked kernel over packed `Bᵀ`: computes rows `i0..i1` of the output.
/// Per element this is `dot(a_row, bt_row)` — the same adds in the same
/// order as [`matmul_ref_into`].
fn matmul_packed_rows(
    out: &mut [f32],
    a: &[f32],
    bt: &[f32],
    i0: usize,
    i1: usize,
    k: usize,
    c: usize,
) {
    for j0 in (0..c).step_by(COL_BLOCK) {
        let j1 = (j0 + COL_BLOCK).min(c);
        for i in i0..i1 {
            let ar = &a[i * k..(i + 1) * k];
            let orow = &mut out[(i - i0) * c..(i - i0 + 1) * c];
            for j in j0..j1 {
                orow[j] = dot(ar, &bt[j * k..(j + 1) * k]);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fast register-blocked microkernels
// ---------------------------------------------------------------------------

/// `MR × NR` register panel: `MR` rows of `A` against `NR` consecutive
/// output columns, all `MR·NR` accumulators held across the whole `k`
/// loop.  Each accumulator receives its products in increasing-`k` order,
/// so per output element this computes the very same float sum as the
/// exact kernels (minus the unobservable-on-finite-data zero skip) — the
/// panel shape changes *throughput*, never *bits*.  The inner loop is
/// branch-free with the vector lanes along `n`, which the autovectorizer
/// lowers to SIMD (verified by `kernelbench`).
/// `w` is the number of columns actually copied to `out` (`== NR` except
/// for a clipped tail panel over padded weights, where the lanes past `w`
/// compute sums of zero-padding that are simply discarded).
#[inline(always)]
#[allow(clippy::too_many_arguments)] // internal microkernel plumbing
fn fast_panel<const MR: usize, const NR: usize>(
    out: &mut [f32],
    orow0: usize,
    a: &[f32],
    arow0: usize,
    b: &[f32],
    j0: usize,
    k: usize,
    c: usize,
    bs: usize,
    w: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    // k unrolled by 4 to amortise index math and bounds checks; the four
    // updates to one accumulator stay *sequential* in ascending-k order,
    // so the per-element float sum (and hence the bits) is unchanged.
    let mut kk = 0;
    while kk + 4 <= k {
        let b0 = &b[kk * bs + j0..kk * bs + j0 + NR];
        let b1 = &b[(kk + 1) * bs + j0..(kk + 1) * bs + j0 + NR];
        let b2 = &b[(kk + 2) * bs + j0..(kk + 2) * bs + j0 + NR];
        let b3 = &b[(kk + 3) * bs + j0..(kk + 3) * bs + j0 + NR];
        for (m, accm) in acc.iter_mut().enumerate() {
            let arow = &a[(arow0 + m) * k + kk..(arow0 + m) * k + kk + 4];
            for n in 0..NR {
                let mut s = accm[n];
                s += arow[0] * b0[n];
                s += arow[1] * b1[n];
                s += arow[2] * b2[n];
                s += arow[3] * b3[n];
                accm[n] = s;
            }
        }
        kk += 4;
    }
    while kk < k {
        let brow = &b[kk * bs + j0..kk * bs + j0 + NR];
        for (m, accm) in acc.iter_mut().enumerate() {
            let av = a[(arow0 + m) * k + kk];
            for (s, &bv) in accm.iter_mut().zip(brow) {
                *s += av * bv;
            }
        }
        kk += 1;
    }
    for (m, accm) in acc.iter().enumerate() {
        let o = (orow0 + m) * c + j0;
        out[o..o + w].copy_from_slice(&accm[..w]);
    }
}

/// One strip of `MR` rows: a cascade of narrowing panels
/// (`NR → 16 → 8 → 4`), then a scalar column tail (still
/// single-accumulator increasing-`k` per element).  `bs` is the `B` row
/// stride (`== c` for plain row-major, `> c` for padded packed weights).
#[inline(always)]
#[allow(clippy::too_many_arguments)] // internal microkernel plumbing
fn fast_row_strip<const MR: usize, const NR: usize>(
    out: &mut [f32],
    orow0: usize,
    a: &[f32],
    arow0: usize,
    b: &[f32],
    k: usize,
    c: usize,
    bs: usize,
) {
    let mut j = 0;
    while j + NR <= c {
        fast_panel::<MR, NR>(out, orow0, a, arow0, b, j, k, c, bs, NR);
        j += NR;
    }
    if NR > 32 {
        while j + 32 <= c {
            fast_panel::<MR, 32>(out, orow0, a, arow0, b, j, k, c, bs, 32);
            j += 32;
        }
    }
    if NR > 16 {
        while j + 16 <= c {
            fast_panel::<MR, 16>(out, orow0, a, arow0, b, j, k, c, bs, 16);
            j += 16;
        }
    }
    // Padded stride (packed weights): finish the remaining (< 16) columns
    // with one clipped 16-wide panel.  The lanes past `c` read the
    // zero-filled padding — in-bounds because the stride is a multiple of
    // 16 — and their (discarded) sums of zeros cost nothing extra.
    if j < c && bs >= j + 16 {
        fast_panel::<MR, 16>(out, orow0, a, arow0, b, j, k, c, bs, c - j);
        return;
    }
    if NR > 8 {
        while j + 8 <= c {
            fast_panel::<MR, 8>(out, orow0, a, arow0, b, j, k, c, bs, 8);
            j += 8;
        }
    }
    if NR > 4 {
        while j + 4 <= c {
            fast_panel::<MR, 4>(out, orow0, a, arow0, b, j, k, c, bs, 4);
            j += 4;
        }
    }
    // Remaining (< 4) columns in ONE pass over the k loop, one register
    // accumulator per column — not one strided k-sweep per column.
    let rem = c - j;
    if rem > 0 {
        for m in 0..MR {
            let ar = &a[(arow0 + m) * k..(arow0 + m + 1) * k];
            let mut acc = [0.0f32; 3];
            for (kk, &av) in ar.iter().enumerate() {
                for (n, s) in acc[..rem].iter_mut().enumerate() {
                    *s += av * b[kk * bs + j + n];
                }
            }
            out[(orow0 + m) * c + j..(orow0 + m) * c + c].copy_from_slice(&acc[..rem]);
        }
    }
}

/// Branch-free blocked kernel for rows `i0..i1` of `A × B` (`B` row-major,
/// no packing: each `k` step reads one contiguous `B`-row segment).
/// `out` holds rows rebased to `i0`.
#[inline(always)]
#[allow(clippy::too_many_arguments)] // internal microkernel plumbing
fn matmul_fast_rows_impl(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    i0: usize,
    i1: usize,
    k: usize,
    c: usize,
    bs: usize,
) {
    let mut i = i0;
    // 4×8 panels: 8 vector accumulators stay resident in registers.
    while i + 4 <= i1 {
        fast_row_strip::<4, 8>(out, i - i0, a, i, b, k, c, bs);
        i += 4;
    }
    // Leftover rows one at a time with a wide column panel (a single row
    // offers no cross-row ILP, so the independent accumulator chains must
    // all come from columns) — this is also the whole kernel for the
    // single-row decode case.  The 64-wide panel only pays when `B` rows
    // stay cache-line aligned (stride a multiple of 16 floats); at odd
    // strides its wide loads all split cache lines and the 32-wide strip
    // is faster.  Packed weights always take the aligned branch.
    while i < i1 {
        if bs.is_multiple_of(16) {
            fast_row_strip::<1, 64>(out, i - i0, a, i, b, k, c, bs);
        } else {
            fast_row_strip::<1, 32>(out, i - i0, a, i, b, k, c, bs);
        }
        i += 1;
    }
}

/// AVX2 instantiation of the very same safe microkernel body.  The
/// attribute only widens instruction selection (256-bit lanes); the IEEE
/// operations performed per element — one multiply then one add, in
/// increasing-`k` order — are unchanged (crucially, `fma` is *not*
/// enabled, so no contraction can alter results), hence still
/// bit-identical to the exact tier on finite inputs.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)] // internal microkernel plumbing
unsafe fn matmul_fast_rows_avx2(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    i0: usize,
    i1: usize,
    k: usize,
    c: usize,
    bs: usize,
) {
    matmul_fast_rows_impl(out, a, b, i0, i1, k, c, bs)
}

/// AVX-512 instantiation (same codegen-only caveats as the AVX2 one).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)] // internal microkernel plumbing
unsafe fn matmul_fast_rows_avx512(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    i0: usize,
    i1: usize,
    k: usize,
    c: usize,
    bs: usize,
) {
    matmul_fast_rows_impl(out, a, b, i0, i1, k, c, bs)
}

/// Run the fast kernel with the widest instruction set the host offers
/// (detection is cached by the standard library).  `bs` is the `B` row
/// stride (`== c` unless the weights are packed with a padded stride).
#[allow(clippy::too_many_arguments)] // internal microkernel plumbing
fn matmul_fast_rows(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    i0: usize,
    i1: usize,
    k: usize,
    c: usize,
    bs: usize,
) {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY (both arms): the feature was just detected; the function
        // bodies are ordinary safe code compiled with wider codegen.
        //
        // The 512-bit build only pays when `B` rows keep cache-line
        // alignment (stride a multiple of 16 floats): at odd strides
        // nearly every 64-byte load splits a cache line and the 256-bit
        // build is measurably faster (half its loads split, each split
        // costing the same extra line fetch).
        if bs.is_multiple_of(16) && std::arch::is_x86_feature_detected!("avx512f") {
            unsafe { matmul_fast_rows_avx512(out, a, b, i0, i1, k, c, bs) };
            return;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            unsafe { matmul_fast_rows_avx2(out, a, b, i0, i1, k, c, bs) };
            return;
        }
    }
    matmul_fast_rows_impl(out, a, b, i0, i1, k, c, bs)
}

// ---------------------------------------------------------------------------
// Dispatching matmul entry points
// ---------------------------------------------------------------------------

/// `[r, k] × [k, c]` matrix product under the process-global tier.
/// Exact tier: bit-identical to the reference loop at any blocking or
/// thread count.  Fast tiers: bit-identical to the exact tier for finite
/// inputs (see module docs).
pub fn matmul(a: &[f32], b: &[f32], r: usize, k: usize, c: usize) -> Vec<f32> {
    matmul_with(kernel_tier(), a, b, r, k, c)
}

/// [`matmul`] with an explicit tier (for oracles, tests and benchmarks).
pub fn matmul_with(
    tier: KernelTier,
    a: &[f32],
    b: &[f32],
    r: usize,
    k: usize,
    c: usize,
) -> Vec<f32> {
    debug_assert_eq!(a.len(), r * k);
    debug_assert_eq!(b.len(), k * c);
    let mut out = vec![0.0f32; r * c];
    let flops = r * k * c;

    if tier.fast_f32() {
        debug_assert_finite("a", a);
        debug_assert_finite("b", b);
        let pool = Pool::global();
        if flops >= PAR_MIN_FLOPS && r >= 2 * ROW_BLOCK && pool.threads() > 1 {
            let blocks: Vec<(usize, usize)> = (0..r)
                .step_by(ROW_BLOCK)
                .map(|i0| (i0, (i0 + ROW_BLOCK).min(r)))
                .collect();
            let parts = pool.par_map(&blocks, |_, &(i0, i1)| {
                let mut part = vec![0.0f32; (i1 - i0) * c];
                matmul_fast_rows(&mut part, a, b, i0, i1, k, c, c);
                part
            });
            for (&(i0, _), part) in blocks.iter().zip(parts) {
                out[i0 * c..i0 * c + part.len()].copy_from_slice(&part);
            }
        } else {
            matmul_fast_rows(&mut out, a, b, 0, r, k, c, c);
        }
        return out;
    }

    if flops < PACK_MIN_FLOPS || r == 1 {
        // Streaming reference loop: for a single row the `Bᵀ` pack costs
        // as much as the whole product, so the exact tier never packs it
        // (the fast tier above covers `r == 1` with its register-blocked
        // kernel instead).
        matmul_ref_into(&mut out, a, b, r, k, c);
        return out;
    }
    // Transpose-pack B so each output element is a contiguous dot.
    let mut bt = vec![0.0f32; c * k];
    for kk in 0..k {
        let brow = &b[kk * c..(kk + 1) * c];
        for (j, &v) in brow.iter().enumerate() {
            bt[j * k + kk] = v;
        }
    }
    let pool = Pool::global();
    if flops >= PAR_MIN_FLOPS && r >= 2 * ROW_BLOCK && pool.threads() > 1 {
        let blocks: Vec<(usize, usize)> = (0..r)
            .step_by(ROW_BLOCK)
            .map(|i0| (i0, (i0 + ROW_BLOCK).min(r)))
            .collect();
        let parts = pool.par_map(&blocks, |_, &(i0, i1)| {
            let mut part = vec![0.0f32; (i1 - i0) * c];
            matmul_packed_rows(&mut part, a, &bt, i0, i1, k, c);
            part
        });
        for (&(i0, _), part) in blocks.iter().zip(parts) {
            out[i0 * c..i0 * c + part.len()].copy_from_slice(&part);
        }
    } else {
        for i0 in (0..r).step_by(ROW_BLOCK) {
            let i1 = (i0 + ROW_BLOCK).min(r);
            let (lo, hi) = (i0 * c, i1 * c);
            matmul_packed_rows(&mut out[lo..hi], a, &bt, i0, i1, k, c);
        }
    }
    out
}

/// `A × Bᵀ` for `A: [r, k]`, `B: [c, k]` under the process-global tier —
/// both operands already have the contraction axis contiguous.  Per
/// element this is [`dot`] (the reference kernel for attention scores).
pub fn matmul_tb(a: &[f32], b: &[f32], r: usize, k: usize, c: usize) -> Vec<f32> {
    matmul_tb_with(kernel_tier(), a, b, r, k, c)
}

/// [`matmul_tb`] with an explicit tier.
pub fn matmul_tb_with(
    tier: KernelTier,
    a: &[f32],
    b: &[f32],
    r: usize,
    k: usize,
    c: usize,
) -> Vec<f32> {
    debug_assert_eq!(a.len(), r * k);
    debug_assert_eq!(b.len(), c * k);
    let flops = r * k * c;
    if tier.fast_f32() && r >= 4 && flops >= PACK_MIN_FLOPS {
        // Un-transpose B into row-major [k, c] once, then reuse the
        // register-blocked kernel; the pack traffic (k·c) amortises over
        // r ≥ 4 rows.  Below that the scalar dot loop wins.
        debug_assert_finite("a", a);
        debug_assert_finite("b", b);
        let mut bt = vec![0.0f32; k * c];
        for j in 0..c {
            for kk in 0..k {
                bt[kk * c + j] = b[j * k + kk];
            }
        }
        return matmul_with(tier, a, &bt, r, k, c);
    }
    let mut out = vec![0.0f32; r * c];
    let row = |orow: &mut [f32], i: usize| {
        let ar = &a[i * k..(i + 1) * k];
        for j in 0..c {
            orow[j] = dot(ar, &b[j * k..(j + 1) * k]);
        }
    };
    let pool = Pool::global();
    if flops >= PAR_MIN_FLOPS && r >= 2 * ROW_BLOCK && pool.threads() > 1 {
        let blocks: Vec<(usize, usize)> = (0..r)
            .step_by(ROW_BLOCK)
            .map(|i0| (i0, (i0 + ROW_BLOCK).min(r)))
            .collect();
        let parts = pool.par_map(&blocks, |_, &(i0, i1)| {
            let mut part = vec![0.0f32; (i1 - i0) * c];
            for i in i0..i1 {
                row(&mut part[(i - i0) * c..(i - i0 + 1) * c], i);
            }
            part
        });
        for (&(i0, _), part) in blocks.iter().zip(parts) {
            out[i0 * c..i0 * c + part.len()].copy_from_slice(&part);
        }
    } else {
        for i in 0..r {
            row(&mut out[i * c..(i + 1) * c], i);
        }
    }
    out
}

/// Broadcast-add a `[c]` bias over the rows of a `[r, c]` buffer, in place.
pub fn add_bias_rows(x: &mut [f32], bias: &[f32]) {
    let c = bias.len();
    debug_assert_eq!(x.len() % c, 0);
    for row in x.chunks_exact_mut(c) {
        for (xi, bi) in row.iter_mut().zip(bias) {
            *xi += bi;
        }
    }
}

/// Fused single-row linear layer: `out = x × W + bias` for `W: [k, c]`,
/// under the process-global tier.  The bias is added *after* the full `k`
/// accumulation, matching the separate matmul → add-bias tape ops
/// bit-for-bit.
pub fn linear_row(out: &mut [f32], x: &[f32], w: &[f32], bias: &[f32]) {
    linear_row_with(kernel_tier(), out, x, w, bias);
}

/// [`linear_row`] with an explicit tier (how a pinned `InferSession`
/// calls it).
pub fn linear_row_with(tier: KernelTier, out: &mut [f32], x: &[f32], w: &[f32], bias: &[f32]) {
    let k = x.len();
    let c = out.len();
    debug_assert_eq!(w.len(), k * c);
    debug_assert_eq!(bias.len(), c);
    if tier.fast_f32() {
        debug_assert_finite("x", x);
        debug_assert_finite("w", w);
        matmul_fast_rows(out, x, w, 0, 1, k, c, c);
    } else {
        out.fill(0.0);
        for kk in 0..k {
            let xv = x[kk];
            if xv != 0.0 {
                let wrow = &w[kk * c..(kk + 1) * c];
                for j in 0..c {
                    out[j] += xv * wrow[j];
                }
            }
        }
    }
    for (o, b) in out.iter_mut().zip(bias) {
        *o += b;
    }
}

/// Fused single-row linear + GELU: bias after accumulation, then the
/// activation elementwise — identical to matmul → add-bias → gelu.
pub fn linear_row_gelu(out: &mut [f32], x: &[f32], w: &[f32], bias: &[f32]) {
    linear_row_gelu_with(kernel_tier(), out, x, w, bias);
}

/// [`linear_row_gelu`] with an explicit tier.
pub fn linear_row_gelu_with(tier: KernelTier, out: &mut [f32], x: &[f32], w: &[f32], bias: &[f32]) {
    linear_row_with(tier, out, x, w, bias);
    for o in out.iter_mut() {
        *o = gelu_fwd(*o);
    }
}

// ---------------------------------------------------------------------------
// Packed (aligned, padded-stride) weights for the fast single-row path
// ---------------------------------------------------------------------------

/// A `[k, c]` weight matrix repacked once so the fast single-row kernel
/// streams it with cache-line-aligned vector loads: rows are copied to a
/// stride rounded up to 16 floats (64 bytes) and the base is aligned to a
/// 64-byte boundary, with the padding columns zero-filled (they are never
/// read past `c`, the zeros just keep the buffer fully initialised).
///
/// Packing changes *layout only*: the kernel still accumulates each
/// output element's products in increasing-`k` order into one
/// accumulator, so [`linear_row_packed`] is **bit-identical** to
/// [`linear_row_with`] on finite inputs — same contract as the rest of
/// the fast tier.  The win is mechanical: at odd `c` (e.g. the vocab head
/// of 69 columns, a 276-byte row stride) nearly every wide load in the
/// unpacked kernel splits a cache line; the padded stride restores full
/// load throughput.  Decode reuses the same weights every step, so the
/// one-time copy amortises to nothing.
#[derive(Clone, Debug)]
pub struct PackedWeights {
    k: usize,
    c: usize,
    /// Row stride in floats: `c` rounded up to a multiple of 16.
    stride: usize,
    /// Backing buffer; the packed rows start at `off` (64-byte aligned
    /// when the allocator permits, which it does in practice).
    buf: Vec<f32>,
    off: usize,
}

impl PackedWeights {
    /// Repack a row-major `[k, c]` weight matrix.
    pub fn pack(w: &[f32], k: usize, c: usize) -> Self {
        assert_eq!(w.len(), k * c, "PackedWeights::pack: shape mismatch");
        let stride = c.div_ceil(16) * 16;
        let mut buf = vec![0.0f32; k * stride + 15];
        // `align_offset` is in elements; 64 bytes is 16 floats, and the
        // buffer carries 15 spare elements to absorb it.  A pathological
        // allocator may report `usize::MAX` (cannot align); fall back to
        // offset 0 — still padded-stride, merely unaligned.
        let off = match buf.as_ptr().align_offset(64) {
            o if o <= 15 => o,
            _ => 0,
        };
        for kk in 0..k {
            buf[off + kk * stride..off + kk * stride + c].copy_from_slice(&w[kk * c..(kk + 1) * c]);
        }
        PackedWeights {
            k,
            c,
            stride,
            buf,
            off,
        }
    }

    /// `(k, c)` of the source matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.k, self.c)
    }

    /// Heap footprint in bytes (padding included).
    pub fn bytes(&self) -> usize {
        self.buf.len() * std::mem::size_of::<f32>()
    }

    fn rows(&self) -> &[f32] {
        &self.buf[self.off..]
    }
}

/// Single packed row: panels tile the full *stride* (a multiple of 16),
/// so the whole row is covered in a minimum number of single-k-pass
/// panels — e.g. the 69-column head (stride 80) is ONE clipped 80-wide
/// panel (5 vector accumulators, one pass over `k`) instead of a 64-pass
/// plus a latency-bound 16-wide pass.  Lanes past `c` sum zero padding
/// and are discarded by the clip width.
#[inline(always)]
fn packed_row_impl(out: &mut [f32], a: &[f32], b: &[f32], k: usize, c: usize, bs: usize) {
    let mut j = 0;
    // Full-width 64-panels until one final panel of 16..=80 remains.
    // Every non-final panel copies its full width: the stride rounds `c`
    // up by less than 16, so `c > j + 64` whenever `bs - j > 80`.
    while bs - j > 80 {
        fast_panel::<1, 64>(out, 0, a, 0, b, j, k, c, bs, 64);
        j += 64;
    }
    match bs - j {
        80 => fast_panel::<1, 80>(out, 0, a, 0, b, j, k, c, bs, c - j),
        64 => fast_panel::<1, 64>(out, 0, a, 0, b, j, k, c, bs, c - j),
        48 => fast_panel::<1, 48>(out, 0, a, 0, b, j, k, c, bs, c - j),
        32 => fast_panel::<1, 32>(out, 0, a, 0, b, j, k, c, bs, c - j),
        16 => fast_panel::<1, 16>(out, 0, a, 0, b, j, k, c, bs, c - j),
        _ => {} // bs == 0, i.e. c == 0: nothing to compute
    }
}

/// AVX2 / AVX-512 instantiations of [`packed_row_impl`] — codegen-only,
/// exactly as for [`matmul_fast_rows_avx2`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn packed_row_avx2(out: &mut [f32], a: &[f32], b: &[f32], k: usize, c: usize, bs: usize) {
    packed_row_impl(out, a, b, k, c, bs)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn packed_row_avx512(out: &mut [f32], a: &[f32], b: &[f32], k: usize, c: usize, bs: usize) {
    packed_row_impl(out, a, b, k, c, bs)
}

fn packed_row(out: &mut [f32], a: &[f32], b: &[f32], k: usize, c: usize, bs: usize) {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY (both arms): feature just detected; safe bodies.
        // Packed strides are always cache-line multiples, so the 512-bit
        // build never hits the split-load cliff.
        if std::arch::is_x86_feature_detected!("avx512f") {
            unsafe { packed_row_avx512(out, a, b, k, c, bs) };
            return;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            unsafe { packed_row_avx2(out, a, b, k, c, bs) };
            return;
        }
    }
    packed_row_impl(out, a, b, k, c, bs)
}

/// Fused single-row linear layer over pre-packed weights:
/// `out = x × W + bias`, always on the fast tier (packing exists only to
/// feed it).  Bit-identical to `linear_row_with(Fast, ..)` — and hence to
/// the exact tier — on finite inputs; see [`PackedWeights`].
pub fn linear_row_packed(out: &mut [f32], x: &[f32], w: &PackedWeights, bias: &[f32]) {
    let k = x.len();
    let c = out.len();
    debug_assert_eq!((k, c), (w.k, w.c));
    debug_assert_eq!(bias.len(), c);
    debug_assert_finite("x", x);
    packed_row(out, x, w.rows(), k, c, w.stride);
    for (o, b) in out.iter_mut().zip(bias) {
        *o += b;
    }
}

// ---------------------------------------------------------------------------
// Int8 weight-quantized linear kernels
// ---------------------------------------------------------------------------

/// A `[k, c]` weight matrix quantized to `i8` with one scale per output
/// column: `w[kk][j] ≈ q[kk][j] · scale[j]`, `q ∈ [-127, 127]`.
///
/// Quantization is symmetric round-to-nearest with
/// `scale[j] = max_kk |w[kk][j]| / 127` (an all-zero column gets scale 0
/// and dequantizes to exact zeros), so every quantized weight is within
/// `scale[j] / 2` of the original.
#[derive(Clone, Debug)]
pub struct Q8Weights {
    k: usize,
    c: usize,
    /// Quantized weights, `[k, c]` row-major (same layout as the source).
    q: Vec<i8>,
    /// Per-column dequantization scale, `[c]`.
    scale: Vec<f32>,
}

impl Q8Weights {
    /// Quantize a `[k, c]` row-major f32 weight matrix.
    pub fn quantize(w: &[f32], k: usize, c: usize) -> Self {
        assert_eq!(w.len(), k * c, "weight length must be k*c");
        let mut scale = vec![0.0f32; c];
        for row in w.chunks_exact(c) {
            for (s, &v) in scale.iter_mut().zip(row) {
                *s = s.max(v.abs());
            }
        }
        for s in scale.iter_mut() {
            *s /= 127.0;
        }
        let mut q = vec![0i8; k * c];
        for (qrow, wrow) in q.chunks_exact_mut(c).zip(w.chunks_exact(c)) {
            for j in 0..c {
                qrow[j] = if scale[j] > 0.0 {
                    (wrow[j] / scale[j]).round().clamp(-127.0, 127.0) as i8
                } else {
                    0
                };
            }
        }
        Q8Weights { k, c, q, scale }
    }

    /// `(k, c)` of the source matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.k, self.c)
    }

    /// Bytes held by the quantized representation (weights + scales).
    pub fn bytes(&self) -> usize {
        self.q.len() + self.scale.len() * 4
    }

    /// The documented per-element error bound of [`linear_row_q8`] against
    /// the exact f32 kernel for activation row `x`:
    /// `|out[j] − exact[j]| ≤ (scale[j] / 2) · Σ_k |x[k]|` (plus f32
    /// rounding slop of the two accumulations themselves).
    pub fn row_error_bound(&self, x: &[f32], j: usize) -> f32 {
        let l1: f32 = x.iter().map(|v| v.abs()).sum();
        0.5 * self.scale[j] * l1
    }
}

/// Register-blocked `1 × NR` panel over int8 weights: accumulate
/// `x[kk] · q[kk][j]` (the quantized integers, exactly representable in
/// f32) with one accumulator per column in increasing-`k` order, then
/// apply the column scale once.
#[inline(always)]
fn q8_panel<const NR: usize>(out: &mut [f32], x: &[f32], w: &Q8Weights, j0: usize) {
    let c = w.c;
    let mut acc = [0.0f32; NR];
    for (kk, &xv) in x.iter().enumerate() {
        let qrow = &w.q[kk * c + j0..kk * c + j0 + NR];
        for (s, &qv) in acc.iter_mut().zip(qrow) {
            *s += xv * qv as f32;
        }
    }
    for (n, &s) in acc.iter().enumerate() {
        out[j0 + n] = s * w.scale[j0 + n];
    }
}

/// The q8 row kernel body, shared between instruction-set instantiations.
#[inline(always)]
fn linear_row_q8_impl(out: &mut [f32], x: &[f32], w: &Q8Weights) {
    let c = w.c;
    let mut j = 0;
    while j + 32 <= c {
        q8_panel::<32>(out, x, w, j);
        j += 32;
    }
    while j + 4 <= c {
        q8_panel::<4>(out, x, w, j);
        j += 4;
    }
    for (jj, o) in out.iter_mut().enumerate().take(c).skip(j) {
        let mut s = 0.0f32;
        for (kk, &xv) in x.iter().enumerate() {
            s += xv * w.q[kk * c + jj] as f32;
        }
        *o = s * w.scale[jj];
    }
}

/// AVX2 instantiation of the q8 row kernel (see
/// [`matmul_fast_rows_avx2`] for why this is codegen-only).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn linear_row_q8_avx2(out: &mut [f32], x: &[f32], w: &Q8Weights) {
    linear_row_q8_impl(out, x, w)
}

/// Fused single-row linear layer over int8-quantized weights:
/// `out = x × dequant(W) + bias`, bias after the full accumulation.
/// Error vs the exact f32 kernel is bounded by
/// [`Q8Weights::row_error_bound`].
pub fn linear_row_q8(out: &mut [f32], x: &[f32], w: &Q8Weights, bias: &[f32]) {
    debug_assert_eq!(x.len(), w.k);
    debug_assert_eq!(out.len(), w.c);
    debug_assert_eq!(bias.len(), w.c);
    debug_assert_finite("x", x);
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: feature detected; safe body, wider codegen only.
        unsafe { linear_row_q8_avx2(out, x, w) };
        for (o, b) in out.iter_mut().zip(bias) {
            *o += b;
        }
        return;
    }
    linear_row_q8_impl(out, x, w);
    for (o, b) in out.iter_mut().zip(bias) {
        *o += b;
    }
}

/// [`linear_row_q8`] followed by GELU, mirroring [`linear_row_gelu`].
pub fn linear_row_gelu_q8(out: &mut [f32], x: &[f32], w: &Q8Weights, bias: &[f32]) {
    linear_row_q8(out, x, w, bias);
    for o in out.iter_mut() {
        *o = gelu_fwd(*o);
    }
}

// ---------------------------------------------------------------------------
// Row-wise activation kernels (tier-independent)
// ---------------------------------------------------------------------------

/// One layer-norm row with affine parameters; returns `(mean, rstd)` for
/// backward caching.  This is *the* layer-norm forward — the tape and the
/// infer path both call it, so their outputs agree bit-for-bit.
#[inline]
pub fn layer_norm_row(out: &mut [f32], xs: &[f32], g: &[f32], b: &[f32], eps: f32) -> (f32, f32) {
    let c = xs.len();
    debug_assert_eq!(out.len(), c);
    debug_assert_eq!(g.len(), c);
    debug_assert_eq!(b.len(), c);
    let mean = xs.iter().sum::<f32>() / c as f32;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / c as f32;
    let rstd = 1.0 / (var + eps).sqrt();
    for i in 0..c {
        out[i] = g[i] * ((xs[i] - mean) * rstd) + b[i];
    }
    (mean, rstd)
}

/// In-place row softmax: max-subtract, exponentiate, normalise — the same
/// loop as the tape's (masked) softmax restricted to the unmasked prefix.
pub fn softmax_row(row: &mut [f32]) {
    let mut maxv = f32::NEG_INFINITY;
    for &x in row.iter() {
        maxv = maxv.max(x);
    }
    let mut sum = 0.0f32;
    for x in row.iter_mut() {
        let e = (*x - maxv).exp();
        *x = e;
        sum += e;
    }
    for x in row.iter_mut() {
        *x /= sum;
    }
}

/// GELU forward (tanh approximation).
#[inline]
pub fn gelu_fwd(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/π)
    0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
}

/// Derivative of [`gelu_fwd`].
#[inline]
pub fn gelu_bwd(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let u = C * (x + 0.044_715 * x * x * x);
    let t = u.tanh();
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * C * (1.0 + 3.0 * 0.044_715 * x * x)
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable `log σ(x)`.
#[inline]
pub fn log_sigmoid_fwd(x: f32) -> f32 {
    // log σ(x) = -softplus(-x), computed stably.
    if x >= 0.0 {
        -((-x).exp().ln_1p())
    } else {
        x - x.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The naive triple loop every kernel must reproduce bit-for-bit.
    fn matmul_naive(a: &[f32], b: &[f32], r: usize, k: usize, c: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; r * c];
        for i in 0..r {
            for kk in 0..k {
                let aik = a[i * k + kk];
                if aik != 0.0 {
                    for cc in 0..c {
                        out[i * c + cc] += aik * b[kk * c + cc];
                    }
                }
            }
        }
        out
    }

    fn filled(n: usize, seed: u32) -> Vec<f32> {
        // Deterministic, irregular values exercising negatives and zeros.
        (0..n)
            .map(|i| {
                let v = ((i as u32).wrapping_mul(2_654_435_761).wrapping_add(seed) >> 8) as f32;
                if i % 7 == 0 {
                    0.0
                } else {
                    (v / 1e6).sin()
                }
            })
            .collect()
    }

    #[test]
    fn packed_matmul_is_bit_identical_to_naive() {
        for &(r, k, c) in &[
            (1, 16, 16),
            (3, 5, 7),
            (17, 33, 9),
            (40, 32, 64),
            (64, 64, 64),
        ] {
            let a = filled(r * k, 1);
            let b = filled(k * c, 2);
            assert_eq!(
                matmul(&a, &b, r, k, c),
                matmul_naive(&a, &b, r, k, c),
                "shape ({r},{k},{c})"
            );
        }
    }

    #[test]
    fn fast_matmul_is_bit_identical_to_exact_on_finite_data() {
        for &(r, k, c) in &[
            (1, 16, 16),
            (1, 64, 70),
            (1, 3, 1),
            (2, 5, 3),
            (3, 5, 7),
            (5, 0, 4),
            (17, 33, 9),
            (40, 32, 64),
            (64, 64, 64),
        ] {
            let a = filled(r * k, 1);
            let b = filled(k * c, 2);
            assert_eq!(
                matmul_with(KernelTier::Fast, &a, &b, r, k, c),
                matmul_naive(&a, &b, r, k, c),
                "shape ({r},{k},{c})"
            );
        }
    }

    #[test]
    fn parallel_matmul_is_thread_count_invariant() {
        // Big enough to cross PAR_MIN_FLOPS with r ≥ 2·ROW_BLOCK.
        let (r, k, c) = (96, 64, 64);
        let a = filled(r * k, 3);
        let b = filled(k * c, 4);
        let expect = matmul_naive(&a, &b, r, k, c);
        for threads in [1, 2, 4] {
            runtime::set_threads(threads);
            assert_eq!(matmul(&a, &b, r, k, c), expect, "threads = {threads}");
            assert_eq!(
                matmul_with(KernelTier::Fast, &a, &b, r, k, c),
                expect,
                "fast, threads = {threads}"
            );
        }
        runtime::set_threads(0);
    }

    #[test]
    fn matmul_tb_matches_explicit_transpose() {
        let (r, k, c) = (9, 13, 11);
        let a = filled(r * k, 5);
        let b = filled(c * k, 6);
        let got = matmul_tb(&a, &b, r, k, c);
        let fast = matmul_tb_with(KernelTier::Fast, &a, &b, r, k, c);
        for i in 0..r {
            for j in 0..c {
                let expect = dot(&a[i * k..(i + 1) * k], &b[j * k..(j + 1) * k]);
                assert_eq!(got[i * c + j], expect);
                assert_eq!(fast[i * c + j], expect);
            }
        }
    }

    #[test]
    fn linear_row_matches_matmul_then_bias() {
        let (k, c) = (24, 40);
        let x = filled(k, 7);
        let w = filled(k * c, 8);
        let bias = filled(c, 9);
        let mut split = matmul_naive(&x, &w, 1, k, c);
        add_bias_rows(&mut split, &bias);
        for tier in [KernelTier::Exact, KernelTier::Fast] {
            let mut fused = vec![0.0f32; c];
            linear_row_with(tier, &mut fused, &x, &w, &bias);
            assert_eq!(fused, split, "tier {tier}");
        }
    }

    #[test]
    fn packed_linear_row_is_bit_identical_to_both_tiers() {
        // Odd c (like the 69-column vocab head) exercises the padded
        // stride; multiples of 16 exercise the stride == c degenerate
        // case; k == 0 exercises an empty accumulation.
        for (k, c) in [(16usize, 69usize), (32, 69), (32, 64), (7, 3), (0, 5)] {
            let x = filled(k, 21);
            let w = filled(k * c, 22);
            let bias = filled(c, 23);
            let packed = PackedWeights::pack(&w, k, c);
            assert_eq!(packed.shape(), (k, c));
            assert!(packed.bytes() >= k * c * 4);
            let mut exact = vec![0.0f32; c];
            linear_row_with(KernelTier::Exact, &mut exact, &x, &w, &bias);
            let mut fast = vec![0.0f32; c];
            linear_row_packed(&mut fast, &x, &packed, &bias);
            let eb: Vec<u32> = exact.iter().map(|v| v.to_bits()).collect();
            let fb: Vec<u32> = fast.iter().map(|v| v.to_bits()).collect();
            assert_eq!(eb, fb, "k={k} c={c}");
        }
    }

    #[test]
    fn zero_left_operands_drop_nan_payloads_in_every_exact_kernel() {
        // a holds exact zeros exactly where b holds NaN/Inf: the uniform
        // zero-skip contract says every exact kernel ignores those terms.
        let (k, c) = (6, 5);
        let a = vec![0.0f32, 1.5, 0.0, -2.0, 0.0, 0.5];
        let mut b = filled(k * c, 11);
        for j in 0..c {
            b[j] = f32::NAN; // row 0 (a[0] == 0)
            b[2 * c + j] = f32::INFINITY; // row 2 (a[2] == 0)
            b[4 * c + j] = f32::NEG_INFINITY; // row 4 (a[4] == 0)
        }
        let want = matmul_naive(&a, &b, 1, k, c);
        assert!(want.iter().all(|v| v.is_finite()), "skip must drop NaNs");
        assert_eq!(matmul(&a, &b, 1, k, c), want);
        let mut lin = vec![0.0f32; c];
        linear_row_with(KernelTier::Exact, &mut lin, &a, &b, &vec![0.0; c]);
        assert_eq!(lin, want);
        // dot over the transposed layout agrees too (matmul_tb's element).
        let mut bt = vec![0.0f32; c * k];
        for kk in 0..k {
            for j in 0..c {
                bt[j * k + kk] = b[kk * c + j];
            }
        }
        for j in 0..c {
            assert_eq!(dot(&a, &bt[j * k..(j + 1) * k]), want[j]);
        }
    }

    #[test]
    fn q8_linear_row_is_within_the_documented_bound() {
        let (k, c) = (48, 37);
        let x = filled(k, 21);
        let w = filled(k * c, 22);
        let bias = filled(c, 23);
        let qw = Q8Weights::quantize(&w, k, c);
        assert_eq!(qw.shape(), (k, c));
        assert!(qw.bytes() < 4 * k * c, "quantization must shrink weights");
        let mut exact = vec![0.0f32; c];
        linear_row_with(KernelTier::Exact, &mut exact, &x, &w, &bias);
        let mut q8 = vec![0.0f32; c];
        linear_row_q8(&mut q8, &x, &qw, &bias);
        for j in 0..c {
            let bound = qw.row_error_bound(&x, j) * 1.001 + 1e-6;
            assert!(
                (q8[j] - exact[j]).abs() <= bound,
                "col {j}: |{} - {}| > {bound}",
                q8[j],
                exact[j]
            );
        }
    }

    #[test]
    fn q8_quantization_handles_degenerate_columns() {
        // An all-zero column must dequantize to exact zeros, not NaN.
        let (k, c) = (4, 3);
        let mut w = filled(k * c, 31);
        for kk in 0..k {
            w[kk * c + 1] = 0.0;
        }
        let qw = Q8Weights::quantize(&w, k, c);
        let x = filled(k, 32);
        let mut out = vec![0.0f32; c];
        linear_row_q8(&mut out, &x, &qw, &vec![0.0; c]);
        assert_eq!(out[1], 0.0);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn tier_parse_round_trips() {
        for t in [KernelTier::Exact, KernelTier::Fast, KernelTier::FastQ8] {
            assert_eq!(KernelTier::parse(t.name()), Ok(t));
        }
        assert!(KernelTier::parse("turbo").is_err());
    }

    #[test]
    fn softmax_row_sums_to_one() {
        let mut row = vec![1.0f32, 2.0, 3.0, -1.0];
        softmax_row(&mut row);
        assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(row.iter().all(|&p| p > 0.0));
    }
}
