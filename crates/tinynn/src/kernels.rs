//! Shared compute kernels for the autodiff tape and the grad-free infer
//! path.
//!
//! Every kernel preserves the *reference accumulation order* — each output
//! element accumulates its `k` products in increasing-`k` order into a
//! single scalar accumulator seeded with `+0.0`, skipping terms whose left
//! operand is exactly `0.0` (matching the sparse-friendly reference loop).
//! Row/column blocking and transpose-packing only change *which* output
//! element is computed when, never the order of adds within one element, so
//! results are bit-identical to the naive triple loop.  Large products are
//! additionally parallelised over output rows via [`runtime::Pool`]; each
//! row is a pure function of the inputs and `par_map` is order-preserving,
//! so the result is bit-identical at any thread count (the workspace-wide
//! determinism invariant).
//!
//! Skipping zero left-operands is itself exact for finite inputs: an
//! accumulator that starts at `+0.0` can never become `-0.0` under
//! round-to-nearest (`+0.0 + -0.0 == +0.0`), and adding `±0.0` to any value
//! is the identity — so the skip changes nothing but speed.

use runtime::Pool;

/// Below this many multiply-adds the packed/blocked path is not worth the
/// `Bᵀ` packing traffic; use the streaming reference loop.
const PACK_MIN_FLOPS: usize = 1 << 14;

/// Below this many multiply-adds a `par_map` round-trip (scoped thread
/// spawn) costs more than the arithmetic.
const PAR_MIN_FLOPS: usize = 1 << 18;

/// Output-row block: `A` rows kept hot while a `Bᵀ` column block streams.
const ROW_BLOCK: usize = 16;

/// Output-column block: `Bᵀ` rows that fit comfortably in L1/L2 and get
/// reused across a whole row block.
const COL_BLOCK: usize = 64;

/// Plain dot product, increasing-index accumulation (no zero skip) — the
/// reference kernel for `A × Bᵀ` scores.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for i in 0..a.len() {
        acc += a[i] * b[i];
    }
    acc
}

/// Dot product that skips terms whose `a` element is exactly `0.0` —
/// bit-identical to [`dot`] for finite data (see module docs) and the
/// per-element form of the reference matmul loop.
#[inline]
fn dot_skip(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for i in 0..a.len() {
        let ai = a[i];
        if ai != 0.0 {
            acc += ai * b[i];
        }
    }
    acc
}

/// Reference matmul loop: `out[i, :] += a[i, kk] * b[kk, :]` in increasing
/// `kk` order with the exact-zero skip.  Streams rows of `b`; good for
/// small shapes where packing does not pay.
fn matmul_ref_into(out: &mut [f32], a: &[f32], b: &[f32], r: usize, k: usize, c: usize) {
    for i in 0..r {
        let orow = &mut out[i * c..(i + 1) * c];
        for kk in 0..k {
            let aik = a[i * k + kk];
            if aik != 0.0 {
                let brow = &b[kk * c..(kk + 1) * c];
                for cc in 0..c {
                    orow[cc] += aik * brow[cc];
                }
            }
        }
    }
}

/// Blocked kernel over packed `Bᵀ`: computes rows `i0..i1` of the output.
/// Per element this is `dot_skip(a_row, bt_row)` — the same adds in the
/// same order as [`matmul_ref_into`].
fn matmul_packed_rows(
    out: &mut [f32],
    a: &[f32],
    bt: &[f32],
    i0: usize,
    i1: usize,
    k: usize,
    c: usize,
) {
    for j0 in (0..c).step_by(COL_BLOCK) {
        let j1 = (j0 + COL_BLOCK).min(c);
        for i in i0..i1 {
            let ar = &a[i * k..(i + 1) * k];
            let orow = &mut out[(i - i0) * c..(i - i0 + 1) * c];
            for j in j0..j1 {
                orow[j] = dot_skip(ar, &bt[j * k..(j + 1) * k]);
            }
        }
    }
}

/// `[r, k] × [k, c]` matrix product, bit-identical to the reference loop at
/// any blocking or thread count.
pub fn matmul(a: &[f32], b: &[f32], r: usize, k: usize, c: usize) -> Vec<f32> {
    debug_assert_eq!(a.len(), r * k);
    debug_assert_eq!(b.len(), k * c);
    let mut out = vec![0.0f32; r * c];
    let flops = r * k * c;
    if flops < PACK_MIN_FLOPS || r == 1 {
        matmul_ref_into(&mut out, a, b, r, k, c);
        return out;
    }
    // Transpose-pack B so each output element is a contiguous dot.
    let mut bt = vec![0.0f32; c * k];
    for kk in 0..k {
        let brow = &b[kk * c..(kk + 1) * c];
        for (j, &v) in brow.iter().enumerate() {
            bt[j * k + kk] = v;
        }
    }
    let pool = Pool::global();
    if flops >= PAR_MIN_FLOPS && r >= 2 * ROW_BLOCK && pool.threads() > 1 {
        let blocks: Vec<(usize, usize)> = (0..r)
            .step_by(ROW_BLOCK)
            .map(|i0| (i0, (i0 + ROW_BLOCK).min(r)))
            .collect();
        let parts = pool.par_map(&blocks, |_, &(i0, i1)| {
            let mut part = vec![0.0f32; (i1 - i0) * c];
            matmul_packed_rows(&mut part, a, &bt, i0, i1, k, c);
            part
        });
        for (&(i0, _), part) in blocks.iter().zip(parts) {
            out[i0 * c..i0 * c + part.len()].copy_from_slice(&part);
        }
    } else {
        for i0 in (0..r).step_by(ROW_BLOCK) {
            let i1 = (i0 + ROW_BLOCK).min(r);
            let (lo, hi) = (i0 * c, i1 * c);
            matmul_packed_rows(&mut out[lo..hi], a, &bt, i0, i1, k, c);
        }
    }
    out
}

/// `A × Bᵀ` for `A: [r, k]`, `B: [c, k]` — both operands already have the
/// contraction axis contiguous, so no packing is needed.  Plain [`dot`] per
/// element (the reference kernel for attention scores).
pub fn matmul_tb(a: &[f32], b: &[f32], r: usize, k: usize, c: usize) -> Vec<f32> {
    debug_assert_eq!(a.len(), r * k);
    debug_assert_eq!(b.len(), c * k);
    let mut out = vec![0.0f32; r * c];
    let row = |orow: &mut [f32], i: usize| {
        let ar = &a[i * k..(i + 1) * k];
        for j in 0..c {
            orow[j] = dot(ar, &b[j * k..(j + 1) * k]);
        }
    };
    let flops = r * k * c;
    let pool = Pool::global();
    if flops >= PAR_MIN_FLOPS && r >= 2 * ROW_BLOCK && pool.threads() > 1 {
        let blocks: Vec<(usize, usize)> = (0..r)
            .step_by(ROW_BLOCK)
            .map(|i0| (i0, (i0 + ROW_BLOCK).min(r)))
            .collect();
        let parts = pool.par_map(&blocks, |_, &(i0, i1)| {
            let mut part = vec![0.0f32; (i1 - i0) * c];
            for i in i0..i1 {
                row(&mut part[(i - i0) * c..(i - i0 + 1) * c], i);
            }
            part
        });
        for (&(i0, _), part) in blocks.iter().zip(parts) {
            out[i0 * c..i0 * c + part.len()].copy_from_slice(&part);
        }
    } else {
        for i in 0..r {
            row(&mut out[i * c..(i + 1) * c], i);
        }
    }
    out
}

/// Broadcast-add a `[c]` bias over the rows of a `[r, c]` buffer, in place.
pub fn add_bias_rows(x: &mut [f32], bias: &[f32]) {
    let c = bias.len();
    debug_assert_eq!(x.len() % c, 0);
    for row in x.chunks_exact_mut(c) {
        for (xi, bi) in row.iter_mut().zip(bias) {
            *xi += bi;
        }
    }
}

/// Fused single-row linear layer: `out = x × W + bias` for `W: [k, c]`.
/// The bias is added *after* the full `k` accumulation, matching the
/// separate matmul → add-bias tape ops bit-for-bit.
pub fn linear_row(out: &mut [f32], x: &[f32], w: &[f32], bias: &[f32]) {
    let k = x.len();
    let c = out.len();
    debug_assert_eq!(w.len(), k * c);
    debug_assert_eq!(bias.len(), c);
    out.fill(0.0);
    for kk in 0..k {
        let xv = x[kk];
        if xv != 0.0 {
            let wrow = &w[kk * c..(kk + 1) * c];
            for j in 0..c {
                out[j] += xv * wrow[j];
            }
        }
    }
    for (o, b) in out.iter_mut().zip(bias) {
        *o += b;
    }
}

/// Fused single-row linear + GELU: bias after accumulation, then the
/// activation elementwise — identical to matmul → add-bias → gelu.
pub fn linear_row_gelu(out: &mut [f32], x: &[f32], w: &[f32], bias: &[f32]) {
    linear_row(out, x, w, bias);
    for o in out.iter_mut() {
        *o = gelu_fwd(*o);
    }
}

/// One layer-norm row with affine parameters; returns `(mean, rstd)` for
/// backward caching.  This is *the* layer-norm forward — the tape and the
/// infer path both call it, so their outputs agree bit-for-bit.
#[inline]
pub fn layer_norm_row(out: &mut [f32], xs: &[f32], g: &[f32], b: &[f32], eps: f32) -> (f32, f32) {
    let c = xs.len();
    debug_assert_eq!(out.len(), c);
    debug_assert_eq!(g.len(), c);
    debug_assert_eq!(b.len(), c);
    let mean = xs.iter().sum::<f32>() / c as f32;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / c as f32;
    let rstd = 1.0 / (var + eps).sqrt();
    for i in 0..c {
        out[i] = g[i] * ((xs[i] - mean) * rstd) + b[i];
    }
    (mean, rstd)
}

/// In-place row softmax: max-subtract, exponentiate, normalise — the same
/// loop as the tape's (masked) softmax restricted to the unmasked prefix.
pub fn softmax_row(row: &mut [f32]) {
    let mut maxv = f32::NEG_INFINITY;
    for &x in row.iter() {
        maxv = maxv.max(x);
    }
    let mut sum = 0.0f32;
    for x in row.iter_mut() {
        let e = (*x - maxv).exp();
        *x = e;
        sum += e;
    }
    for x in row.iter_mut() {
        *x /= sum;
    }
}

/// GELU forward (tanh approximation).
#[inline]
pub fn gelu_fwd(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/π)
    0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
}

/// Derivative of [`gelu_fwd`].
#[inline]
pub fn gelu_bwd(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let u = C * (x + 0.044_715 * x * x * x);
    let t = u.tanh();
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * C * (1.0 + 3.0 * 0.044_715 * x * x)
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable `log σ(x)`.
#[inline]
pub fn log_sigmoid_fwd(x: f32) -> f32 {
    // log σ(x) = -softplus(-x), computed stably.
    if x >= 0.0 {
        -((-x).exp().ln_1p())
    } else {
        x - x.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The naive triple loop every kernel must reproduce bit-for-bit.
    fn matmul_naive(a: &[f32], b: &[f32], r: usize, k: usize, c: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; r * c];
        for i in 0..r {
            for kk in 0..k {
                let aik = a[i * k + kk];
                if aik != 0.0 {
                    for cc in 0..c {
                        out[i * c + cc] += aik * b[kk * c + cc];
                    }
                }
            }
        }
        out
    }

    fn filled(n: usize, seed: u32) -> Vec<f32> {
        // Deterministic, irregular values exercising negatives and zeros.
        (0..n)
            .map(|i| {
                let v = ((i as u32).wrapping_mul(2_654_435_761).wrapping_add(seed) >> 8) as f32;
                if i % 7 == 0 {
                    0.0
                } else {
                    (v / 1e6).sin()
                }
            })
            .collect()
    }

    #[test]
    fn packed_matmul_is_bit_identical_to_naive() {
        for &(r, k, c) in &[
            (1, 16, 16),
            (3, 5, 7),
            (17, 33, 9),
            (40, 32, 64),
            (64, 64, 64),
        ] {
            let a = filled(r * k, 1);
            let b = filled(k * c, 2);
            assert_eq!(
                matmul(&a, &b, r, k, c),
                matmul_naive(&a, &b, r, k, c),
                "shape ({r},{k},{c})"
            );
        }
    }

    #[test]
    fn parallel_matmul_is_thread_count_invariant() {
        // Big enough to cross PAR_MIN_FLOPS with r ≥ 2·ROW_BLOCK.
        let (r, k, c) = (96, 64, 64);
        let a = filled(r * k, 3);
        let b = filled(k * c, 4);
        let expect = matmul_naive(&a, &b, r, k, c);
        for threads in [1, 2, 4] {
            runtime::set_threads(threads);
            assert_eq!(matmul(&a, &b, r, k, c), expect, "threads = {threads}");
        }
        runtime::set_threads(0);
    }

    #[test]
    fn matmul_tb_matches_explicit_transpose() {
        let (r, k, c) = (9, 13, 11);
        let a = filled(r * k, 5);
        let b = filled(c * k, 6);
        let got = matmul_tb(&a, &b, r, k, c);
        for i in 0..r {
            for j in 0..c {
                let expect = dot(&a[i * k..(i + 1) * k], &b[j * k..(j + 1) * k]);
                assert_eq!(got[i * c + j], expect);
            }
        }
    }

    #[test]
    fn linear_row_matches_matmul_then_bias() {
        let (k, c) = (24, 40);
        let x = filled(k, 7);
        let w = filled(k * c, 8);
        let bias = filled(c, 9);
        let mut fused = vec![0.0f32; c];
        linear_row(&mut fused, &x, &w, &bias);
        let mut split = matmul_naive(&x, &w, 1, k, c);
        add_bias_rows(&mut split, &bias);
        assert_eq!(fused, split);
    }

    #[test]
    fn softmax_row_sums_to_one() {
        let mut row = vec![1.0f32, 2.0, 3.0, -1.0];
        softmax_row(&mut row);
        assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(row.iter().all(|&p| p > 0.0));
    }
}
