//! Loss functions built from [`Graph`] ops.

use std::rc::Rc;

use crate::graph::{Graph, Var};
use crate::tensor::Tensor;

/// Mean cross-entropy of `logits: [L, V]` against one target class per row.
pub fn cross_entropy(g: &mut Graph, logits: Var, targets: &[usize]) -> Var {
    let lp = g.log_softmax_gather(logits, Rc::new(targets.to_vec()));
    let m = g.mean(lp);
    g.scale(m, -1.0)
}

/// Cross-entropy where each row carries a weight (e.g. 0 for prompt tokens,
/// 1 for answer tokens in instruction tuning).  Normalised by the total
/// weight; panics if all weights are zero.
pub fn weighted_cross_entropy(
    g: &mut Graph,
    logits: Var,
    targets: &[usize],
    weights: &[f32],
) -> Var {
    assert_eq!(targets.len(), weights.len(), "one weight per target");
    let total: f32 = weights.iter().sum();
    assert!(
        total > 0.0,
        "weighted_cross_entropy needs positive total weight"
    );
    let lp = g.log_softmax_gather(logits, Rc::new(targets.to_vec()));
    let w = g.leaf(Tensor::from_vec(weights.to_vec(), vec![weights.len(), 1]));
    let wl = g.mul(lp, w);
    let s = g.sum(wl);
    g.scale(s, -1.0 / total)
}

/// Binary cross-entropy with logits: `targets` in `{0, 1}` (soft labels
/// allowed), `logits` any shape.
pub fn bce_with_logits(g: &mut Graph, logits: Var, targets: &[f32]) -> Var {
    let n = g.value(logits).len();
    assert_eq!(targets.len(), n, "one target per logit");
    let shape = g.value(logits).shape.clone();
    // loss = -[y·logσ(z) + (1−y)·logσ(−z)]
    let y = g.leaf(Tensor::from_vec(targets.to_vec(), shape.clone()));
    let ones = g.leaf(Tensor::from_vec(vec![1.0; n], shape));
    let ls_pos = g.log_sigmoid(logits);
    let neg = g.scale(logits, -1.0);
    let ls_neg = g.log_sigmoid(neg);
    let one_minus_y = g.sub(ones, y);
    let a = g.mul(y, ls_pos);
    let b = g.mul(one_minus_y, ls_neg);
    let s = g.add(a, b);
    let m = g.mean(s);
    g.scale(m, -1.0)
}

/// Mean hinge loss `max(0, 1 − y·s)` for labels in `{−1, +1}` — the linear
/// SVM objective of the Gao et al. baseline.
pub fn hinge(g: &mut Graph, scores: Var, labels: &[f32]) -> Var {
    let n = g.value(scores).len();
    assert_eq!(labels.len(), n, "one label per score");
    assert!(
        labels.iter().all(|&y| y == 1.0 || y == -1.0),
        "hinge labels must be ±1"
    );
    let shape = g.value(scores).shape.clone();
    let y = g.leaf(Tensor::from_vec(labels.to_vec(), shape.clone()));
    let ys = g.mul(y, scores);
    let ones = g.leaf(Tensor::from_vec(vec![1.0; n], shape));
    let margin = g.sub(ones, ys);
    let r = g.relu(margin);
    g.mean(r)
}

/// Mean squared error between two same-shape tensors.
pub fn mse(g: &mut Graph, pred: Var, target: Var) -> Var {
    let d = g.sub(pred, target);
    let d2 = g.mul(d, d);
    g.mean(d2)
}

/// The Direct Preference Optimization loss (Rafailov et al. 2023), Eq. 3/5
/// of the paper:
///
/// `−log σ(β · [(logpθ(y_w|x) − logp_ref(y_w|x)) − (logpθ(y_l|x) − logp_ref(y_l|x))])`
///
/// `logp_w`/`logp_l` are scalar nodes from the *policy* graph; the frozen
/// reference log-probs enter as constants.
pub fn dpo_loss(
    g: &mut Graph,
    logp_w: Var,
    logp_l: Var,
    ref_logp_w: f32,
    ref_logp_l: f32,
    beta: f32,
) -> Var {
    assert!(beta > 0.0, "DPO beta must be positive");
    let refs = g.leaf(Tensor::scalar(ref_logp_w - ref_logp_l));
    let diff = g.sub(logp_w, logp_l);
    let centered = g.sub(diff, refs);
    let scaled = g.scale(centered, beta);
    let ls = g.log_sigmoid(scaled);
    g.scale(ls, -1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: Vec<f32>, shape: Vec<usize>) -> Tensor {
        Tensor::from_vec(data, shape)
    }

    #[test]
    fn cross_entropy_uniform_logits() {
        let mut g = Graph::new();
        let logits = g.leaf(t(vec![0.0; 6], vec![2, 3]));
        let loss = cross_entropy(&mut g, logits, &[0, 2]);
        assert!((g.value(loss).item() - 3.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_confident_correct_is_small() {
        let mut g = Graph::new();
        let logits = g.leaf(t(vec![10.0, 0.0, 0.0], vec![1, 3]));
        let loss = cross_entropy(&mut g, logits, &[0]);
        assert!(g.value(loss).item() < 1e-3);
    }

    #[test]
    fn weighted_cross_entropy_ignores_zero_weight_rows() {
        let mut g = Graph::new();
        // Row 0 is hopeless but weighted 0; row 1 is confident and correct.
        let logits = g.leaf(t(vec![-10.0, 10.0, 10.0, -10.0], vec![2, 2]));
        let loss = weighted_cross_entropy(&mut g, logits, &[0, 0], &[0.0, 1.0]);
        assert!(g.value(loss).item() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn weighted_cross_entropy_rejects_all_zero() {
        let mut g = Graph::new();
        let logits = g.leaf(t(vec![0.0, 0.0], vec![1, 2]));
        let _ = weighted_cross_entropy(&mut g, logits, &[0], &[0.0]);
    }

    #[test]
    fn bce_matches_manual_value() {
        let mut g = Graph::new();
        let z = g.leaf(t(vec![0.0], vec![1]));
        let loss = bce_with_logits(&mut g, z, &[1.0]);
        assert!((g.value(loss).item() - (2.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn bce_gradient_direction() {
        let mut g = Graph::new();
        let z = g.leaf(t(vec![0.0], vec![1]));
        let loss = bce_with_logits(&mut g, z, &[1.0]);
        g.backward(loss);
        // Should push the logit up for a positive target.
        assert!(g.grad(z)[0] < 0.0);
    }

    #[test]
    fn hinge_zero_beyond_margin() {
        let mut g = Graph::new();
        let s = g.leaf(t(vec![2.0, -3.0], vec![2]));
        let loss = hinge(&mut g, s, &[1.0, -1.0]);
        assert_eq!(g.value(loss).item(), 0.0);
    }

    #[test]
    fn hinge_penalises_violations() {
        let mut g = Graph::new();
        let s = g.leaf(t(vec![0.0], vec![1]));
        let loss = hinge(&mut g, s, &[1.0]);
        assert!((g.value(loss).item() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn mse_known_value() {
        let mut g = Graph::new();
        let p = g.leaf(t(vec![1.0, 2.0], vec![2]));
        let y = g.leaf(t(vec![0.0, 0.0], vec![2]));
        let loss = mse(&mut g, p, y);
        assert!((g.value(loss).item() - 2.5).abs() < 1e-6);
    }

    #[test]
    fn dpo_is_log2_at_equal_margins() {
        let mut g = Graph::new();
        let lw = g.leaf(Tensor::scalar(-1.0));
        let ll = g.leaf(Tensor::scalar(-1.0));
        let loss = dpo_loss(&mut g, lw, ll, -1.0, -1.0, 0.1);
        assert!((g.value(loss).item() - (2.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn dpo_decreases_as_winner_gains_probability() {
        let mut vals = Vec::new();
        for lw_val in [-2.0f32, -1.0, -0.5] {
            let mut g = Graph::new();
            let lw = g.leaf(Tensor::scalar(lw_val));
            let ll = g.leaf(Tensor::scalar(-1.0));
            let loss = dpo_loss(&mut g, lw, ll, -1.0, -1.0, 1.0);
            vals.push(g.value(loss).item());
        }
        assert!(vals[0] > vals[1] && vals[1] > vals[2], "{vals:?}");
    }

    #[test]
    fn dpo_gradient_pushes_winner_up_loser_down() {
        let mut g = Graph::new();
        let lw = g.leaf(Tensor::scalar(-1.0));
        let ll = g.leaf(Tensor::scalar(-1.0));
        let loss = dpo_loss(&mut g, lw, ll, -1.0, -1.0, 0.5);
        g.backward(loss);
        assert!(g.grad(lw)[0] < 0.0, "winner log-prob should increase");
        assert!(g.grad(ll)[0] > 0.0, "loser log-prob should decrease");
    }
}
