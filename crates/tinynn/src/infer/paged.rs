//! Paged KV storage: fixed-size pages from a shared slab allocator, with
//! per-sequence page tables, refcount sharing and copy-on-write.
//!
//! The flat [`super::KvCache`] owns its rows: capacity freed by `truncate`
//! stays stranded in that session's `Vec`s and identical prefixes across
//! concurrent requests are stored (and prefilled) once *per request*.  This
//! module replaces the storage layer:
//!
//! - [`PageSlab`] hands out fixed-size pages (`page_rows` K rows + V rows of
//!   width `d` in one buffer) from a free list, bounded by `max_pages`
//!   (0 = unbounded).  Freed pages go back on the list — nothing strands.
//! - [`PagedKv`] is a sequence's page table: `Vec<Arc<Page>>` plus a row
//!   count.  `Clone` is cheap and *shares* the pages by refcount; a write to
//!   a shared page copies it first (copy-on-write), so clones never observe
//!   each other's appends.
//! - [`attend_paged`] runs the exact attention loop from
//!   [`super::attend_rows`] over a page table.  Pages preserve row order and
//!   values bit-for-bit, and the loop visits rows `0..len` in the same
//!   order, so paged attention is bitwise-identical to the flat cache.
//!
//! Bit-exactness of sharing: K/V rows for position `p` are pure functions of
//! the item prefix `[0..=p]` given fixed model weights and kernel tier.
//! Adopting another sequence's pages for a common prefix therefore yields
//! exactly the rows recomputation would have produced.  Copy-on-write copies
//! whole page buffers; rows at or past a sequence's `len` are never read and
//! are overwritten before the length grows to cover them.
//!
//! Page buffers stay *owned by the slab's free list* between uses, so a
//! drained server holds zero in-use pages — the leak check in the scheduler
//! asserts exactly that.

use std::sync::{Arc, Mutex};

/// The shared slab has no free page left: every one of `max_pages` is held
/// by a live sequence (or pinned by the prefix tree).  Callers unwind to a
/// request boundary and retry or shed; sessions stay internally consistent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PagesExhausted;

impl std::fmt::Display for PagesExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "kv page slab exhausted")
    }
}

impl std::error::Error for PagesExhausted {}

struct SlabInner {
    /// Recycled page buffers, ready for reuse.
    free: Vec<Box<[f32]>>,
    /// Pages currently held by live `Page`s.
    in_use: usize,
    /// High-water mark of `in_use`.
    peak: usize,
    /// Total pages ever materialized (`in_use + free.len()`).
    allocated: usize,
}

/// Fixed-size page allocator shared by every sequence of one model.
///
/// A page stores `page_rows` K rows followed by `page_rows` V rows, each of
/// width `d`, in one `2 * page_rows * d` float buffer.  `max_pages` bounds
/// how many pages may be live at once (`0` = unbounded, the default for
/// standalone sessions); at the bound, [`PagedKv::append`] returns
/// [`PagesExhausted`] instead of allocating.
pub struct PageSlab {
    d: usize,
    page_rows: usize,
    max_pages: usize,
    inner: Mutex<SlabInner>,
}

impl std::fmt::Debug for PageSlab {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageSlab")
            .field("d", &self.d)
            .field("page_rows", &self.page_rows)
            .field("max_pages", &self.max_pages)
            .field("in_use", &self.pages_in_use())
            .finish()
    }
}

impl PageSlab {
    /// A slab for rows of width `d`, `page_rows` rows per page, at most
    /// `max_pages` live pages (`0` = unbounded).
    pub fn new(d: usize, page_rows: usize, max_pages: usize) -> Arc<Self> {
        assert!(d > 0, "page row width must be positive");
        assert!(page_rows > 0, "page_rows must be positive");
        Arc::new(PageSlab {
            d,
            page_rows,
            max_pages,
            inner: Mutex::new(SlabInner {
                free: Vec::new(),
                in_use: 0,
                peak: 0,
                allocated: 0,
            }),
        })
    }

    /// Row width.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Rows per page.
    pub fn page_rows(&self) -> usize {
        self.page_rows
    }

    /// Live-page bound (`0` = unbounded).
    pub fn max_pages(&self) -> usize {
        self.max_pages
    }

    /// Pages currently held by live sequences.
    pub fn pages_in_use(&self) -> usize {
        self.inner.lock().unwrap().in_use
    }

    /// Capacity in pages: the bound if one was set, else the number of
    /// pages materialized so far.
    pub fn pages_total(&self) -> usize {
        if self.max_pages > 0 {
            self.max_pages
        } else {
            self.inner.lock().unwrap().allocated
        }
    }

    /// High-water mark of concurrently live pages.
    pub fn peak_pages(&self) -> usize {
        self.inner.lock().unwrap().peak
    }

    fn alloc(self: &Arc<Self>) -> Result<Page, PagesExhausted> {
        let mut g = self.inner.lock().unwrap();
        let buf = match g.free.pop() {
            Some(buf) => buf,
            None => {
                if self.max_pages > 0 && g.in_use >= self.max_pages {
                    return Err(PagesExhausted);
                }
                g.allocated += 1;
                vec![0.0f32; 2 * self.page_rows * self.d].into_boxed_slice()
            }
        };
        g.in_use += 1;
        g.peak = g.peak.max(g.in_use);
        Ok(Page {
            buf,
            slab: Arc::clone(self),
        })
    }

    fn release(&self, buf: Box<[f32]>) {
        let mut g = self.inner.lock().unwrap();
        debug_assert!(g.in_use > 0, "page released twice");
        g.in_use -= 1;
        g.free.push(buf);
    }
}

/// One slab page: `page_rows` K rows then `page_rows` V rows, each `d` wide.
/// Dropping the page returns its buffer to the slab's free list — this is
/// what un-strands capacity freed by truncation or session teardown.
pub struct Page {
    buf: Box<[f32]>,
    slab: Arc<PageSlab>,
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("floats", &self.buf.len())
            .finish()
    }
}

impl Page {
    fn k_row(&self, r: usize) -> &[f32] {
        let d = self.slab.d;
        &self.buf[r * d..(r + 1) * d]
    }

    fn v_row(&self, r: usize) -> &[f32] {
        let d = self.slab.d;
        let base = self.slab.page_rows * d;
        &self.buf[base + r * d..base + (r + 1) * d]
    }

    fn k_row_mut(&mut self, r: usize) -> &mut [f32] {
        let d = self.slab.d;
        &mut self.buf[r * d..(r + 1) * d]
    }

    fn v_row_mut(&mut self, r: usize) -> &mut [f32] {
        let d = self.slab.d;
        let base = self.slab.page_rows * d;
        &mut self.buf[base + r * d..base + (r + 1) * d]
    }
}

impl Drop for Page {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        self.slab.release(buf);
    }
}

/// A sequence's view of paged KV storage: a page table (`Vec<Arc<Page>>`)
/// plus the row count.  Mirrors the [`super::KvCache`] API with fallible
/// appends.
///
/// `Clone` shares every page by refcount — O(pages), no row copies.  The
/// first append into a shared page copies that one page (copy-on-write), so
/// the clone and the original diverge safely from the shared prefix.
#[derive(Clone, Debug)]
pub struct PagedKv {
    slab: Arc<PageSlab>,
    pages: Vec<Arc<Page>>,
    len: usize,
}

impl PagedKv {
    /// Empty sequence drawing pages from `slab`.
    pub fn new(slab: Arc<PageSlab>) -> Self {
        PagedKv {
            slab,
            pages: Vec::new(),
            len: 0,
        }
    }

    /// Cached row count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no rows are cached.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Row width.
    pub fn dim(&self) -> usize {
        self.slab.d
    }

    /// The slab this sequence draws from.
    pub fn slab(&self) -> &Arc<PageSlab> {
        &self.slab
    }

    /// Drop all rows past the first `rows` (no-op if already shorter).
    /// Whole pages past the new end go back to the slab immediately (unless
    /// still shared by another sequence); rows past `len` inside the last
    /// kept page are dead and get overwritten before `len` covers them
    /// again.
    pub fn truncate(&mut self, rows: usize) {
        if rows >= self.len {
            return;
        }
        self.len = rows;
        let keep = rows.div_ceil(self.slab.page_rows);
        self.pages.truncate(keep);
    }

    /// Append one key row and one value row, drawing a fresh page from the
    /// slab at page boundaries and copying a shared page before the first
    /// write into it.
    pub fn append(&mut self, krow: &[f32], vrow: &[f32]) -> Result<(), PagesExhausted> {
        debug_assert_eq!(krow.len(), self.slab.d);
        debug_assert_eq!(vrow.len(), self.slab.d);
        let pr = self.slab.page_rows;
        let (pi, off) = (self.len / pr, self.len % pr);
        if pi == self.pages.len() {
            self.pages.push(Arc::new(self.slab.alloc()?));
        }
        let page = &mut self.pages[pi];
        if Arc::get_mut(page).is_none() {
            // Copy-on-write: the page is shared with another sequence (or
            // pinned by the prefix tree).  Copy the whole buffer — rows at
            // or past our `len` are never read, so this is bit-exact.
            let mut fresh = self.slab.alloc()?;
            fresh.buf.copy_from_slice(&page.buf);
            *page = Arc::new(fresh);
        }
        let p = Arc::get_mut(page).expect("page was just made exclusive");
        p.k_row_mut(off).copy_from_slice(krow);
        p.v_row_mut(off).copy_from_slice(vrow);
        self.len += 1;
        Ok(())
    }

    /// Key row `i`.
    pub fn k_row(&self, i: usize) -> &[f32] {
        debug_assert!(i < self.len);
        let pr = self.slab.page_rows;
        self.pages[i / pr].k_row(i % pr)
    }

    /// Value row `i`.
    pub fn v_row(&self, i: usize) -> &[f32] {
        debug_assert!(i < self.len);
        let pr = self.slab.page_rows;
        self.pages[i / pr].v_row(i % pr)
    }
}

impl super::KvRows for PagedKv {
    fn dim(&self) -> usize {
        PagedKv::dim(self)
    }
    fn len(&self) -> usize {
        PagedKv::len(self)
    }
    fn k_row(&self, i: usize) -> &[f32] {
        PagedKv::k_row(self, i)
    }
    fn v_row(&self, i: usize) -> &[f32] {
        PagedKv::v_row(self, i)
    }
}

/// [`super::attend_row`] over a page table — the same generic loop body, so
/// bitwise-identical to the flat cache for equal rows.
pub fn attend_paged(
    out: &mut [f32],
    q: &[f32],
    cache: &PagedKv,
    heads: usize,
    scale: f32,
    scores: &mut Vec<f32>,
) {
    super::attend_rows(out, q, cache, heads, scale, scores);
}

#[cfg(test)]
mod tests {
    use super::super::{attend_row, KvCache};
    use super::*;

    fn row(tag: usize, d: usize, phase: f32) -> Vec<f32> {
        (0..d)
            .map(|i| ((tag * d + i) as f32 * phase).sin())
            .collect()
    }

    #[test]
    fn slab_accounting_and_reuse() {
        let slab = PageSlab::new(4, 2, 0);
        let mut kv = PagedKv::new(Arc::clone(&slab));
        for p in 0..5 {
            kv.append(&row(p, 4, 0.3), &row(p, 4, 0.7)).unwrap();
        }
        // 5 rows at 2 rows/page = 3 pages.
        assert_eq!(slab.pages_in_use(), 3);
        assert_eq!(slab.pages_total(), 3);
        kv.truncate(2); // exactly one full page kept
        assert_eq!(slab.pages_in_use(), 1);
        kv.truncate(1); // partial page still pins its page
        assert_eq!(slab.pages_in_use(), 1);
        // Freed buffers are recycled, not re-allocated.
        for p in 0..5 {
            kv.append(&row(p + 9, 4, 0.3), &row(p + 9, 4, 0.7)).unwrap();
        }
        assert_eq!(slab.pages_in_use(), 3);
        assert_eq!(slab.pages_total(), 3, "free list must be reused");
        drop(kv);
        assert_eq!(slab.pages_in_use(), 0);
        assert_eq!(slab.peak_pages(), 3);
    }

    #[test]
    fn bounded_slab_rejects_then_recovers() {
        let slab = PageSlab::new(2, 1, 2);
        let mut a = PagedKv::new(Arc::clone(&slab));
        let mut b = PagedKv::new(Arc::clone(&slab));
        a.append(&[1.0, 2.0], &[3.0, 4.0]).unwrap();
        b.append(&[5.0, 6.0], &[7.0, 8.0]).unwrap();
        assert_eq!(a.append(&[0.0; 2], &[0.0; 2]), Err(PagesExhausted));
        // Failure leaves the sequence consistent.
        assert_eq!(a.len(), 1);
        assert_eq!(a.k_row(0), &[1.0, 2.0]);
        drop(b);
        a.append(&[9.0, 10.0], &[11.0, 12.0]).unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(slab.pages_in_use(), 2);
    }

    #[test]
    fn clone_shares_then_copy_on_write_diverges() {
        let d = 3;
        let slab = PageSlab::new(d, 2, 0);
        let mut a = PagedKv::new(Arc::clone(&slab));
        for p in 0..3 {
            a.append(&row(p, d, 0.3), &row(p, d, 0.7)).unwrap();
        }
        let mut b = a.clone();
        assert_eq!(slab.pages_in_use(), 2, "clone shares pages");
        // Diverge inside the shared half-full page.
        b.append(&row(77, d, 0.3), &row(77, d, 0.7)).unwrap();
        a.append(&row(88, d, 0.3), &row(88, d, 0.7)).unwrap();
        assert_eq!(slab.pages_in_use(), 3, "one page copied on write");
        // The shared prefix is untouched and the tails differ.
        for i in 0..3 {
            assert_eq!(a.k_row(i), b.k_row(i));
            assert_eq!(a.v_row(i), b.v_row(i));
        }
        assert_eq!(b.k_row(3), &row(77, d, 0.3)[..]);
        assert_eq!(a.k_row(3), &row(88, d, 0.3)[..]);
    }

    #[test]
    fn attend_paged_matches_flat_for_any_page_size() {
        let (d, heads) = (6, 2);
        let scale = 1.0 / ((d / heads) as f32).sqrt();
        let rows = 13;
        let mut flat = KvCache::new(d, rows);
        for p in 0..rows {
            flat.append(&row(p, d, 0.37), &row(p, d, 0.71));
        }
        let q = row(99, d, 0.13);
        let mut want = vec![0.0f32; d];
        let mut scratch = Vec::new();
        attend_row(&mut want, &q, &flat, heads, scale, &mut scratch);

        for page_rows in [1, 2, 3, 8, 64] {
            let slab = PageSlab::new(d, page_rows, 0);
            let mut kv = PagedKv::new(slab);
            for p in 0..rows {
                kv.append(&row(p, d, 0.37), &row(p, d, 0.71)).unwrap();
            }
            let mut got = vec![0.0f32; d];
            attend_paged(&mut got, &q, &kv, heads, scale, &mut scratch);
            assert_eq!(got, want, "page_rows={page_rows}");
        }
    }

    #[test]
    fn truncate_then_append_overwrites_dead_rows() {
        let d = 2;
        let slab = PageSlab::new(d, 4, 0);
        let mut kv = PagedKv::new(slab);
        for p in 0..6 {
            kv.append(&row(p, d, 0.3), &row(p, d, 0.7)).unwrap();
        }
        let snapshot = kv.clone(); // pins pages, forcing CoW on the original
        kv.truncate(3);
        kv.append(&row(42, d, 0.3), &row(42, d, 0.7)).unwrap();
        assert_eq!(kv.len(), 4);
        assert_eq!(kv.k_row(3), &row(42, d, 0.3)[..]);
        // The snapshot still sees the original rows.
        assert_eq!(snapshot.k_row(3), &row(3, d, 0.3)[..]);
        assert_eq!(snapshot.len(), 6);
    }
}
