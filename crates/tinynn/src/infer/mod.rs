//! Grad-free incremental inference primitives: per-layer KV caches and the
//! single-query attention step.
//!
//! The autodiff [`crate::Graph`] recomputes the full `[L, L]` causal
//! attention every forward pass.  Incremental decoding appends one position
//! at a time: the new row's K/V are pushed into a [`KvCache`] and attention
//! reads only the cached prefix.  [`attend_row`] reproduces the tape's
//! masked-softmax attention bit-for-bit (see the determinism argument in
//! DESIGN.md): masked entries of the tape's softmax exponentiate to exactly
//! `+0.0` and the tape's `attn × V` matmul skips exact zeros, so restricting
//! the computation to the unmasked prefix performs the very same float adds
//! in the very same order.
//!
//! Nothing here allocates per step once the caches are warm: callers own
//! reusable scratch buffers and the caches grow within pre-reserved
//! capacity.
//!
//! [`paged`] provides the second cache representation: fixed-size pages
//! drawn from a shared [`paged::PageSlab`] with per-sequence page tables,
//! refcount sharing and copy-on-write — the storage behind cross-request
//! prefix reuse in serving.  Both representations implement [`KvRows`], and
//! [`attend_row`] / [`paged::attend_paged`] share one generic body, so paged
//! attention is bit-identical to the flat cache by construction.

pub mod paged;

pub use paged::{attend_paged, PageSlab, PagedKv, PagesExhausted};

use crate::kernels;

/// Read access to `len` cached K/V rows of width `dim` — the interface
/// [`attend_rows`] needs.  Implemented by the flat [`KvCache`] (the oracle)
/// and the paged [`PagedKv`].
pub trait KvRows {
    /// Row width.
    fn dim(&self) -> usize;
    /// Cached row count.
    fn len(&self) -> usize;
    /// Whether no rows are cached.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Key row `i`.
    fn k_row(&self, i: usize) -> &[f32];
    /// Value row `i`.
    fn v_row(&self, i: usize) -> &[f32];
}

/// Per-layer key/value cache: `len` rows of width `d`, stored row-major in
/// two flat buffers.  Rows are append-only at the back and truncatable from
/// the back (for longest-common-prefix reuse across prompts).
#[derive(Clone, Debug)]
pub struct KvCache {
    d: usize,
    k: Vec<f32>,
    v: Vec<f32>,
}

impl KvCache {
    /// Empty cache for rows of width `d`, with room for `capacity_rows`
    /// appends before any reallocation.
    pub fn new(d: usize, capacity_rows: usize) -> Self {
        KvCache {
            d,
            k: Vec::with_capacity(d * capacity_rows),
            v: Vec::with_capacity(d * capacity_rows),
        }
    }

    /// Cached row count.
    pub fn len(&self) -> usize {
        self.k.len() / self.d
    }

    /// True when no rows are cached.
    pub fn is_empty(&self) -> bool {
        self.k.is_empty()
    }

    /// Row width.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Drop all rows past the first `rows` (no-op if already shorter).
    pub fn truncate(&mut self, rows: usize) {
        self.k.truncate(rows * self.d);
        self.v.truncate(rows * self.d);
    }

    /// Append one key row and one value row.
    pub fn append(&mut self, krow: &[f32], vrow: &[f32]) {
        debug_assert_eq!(krow.len(), self.d);
        debug_assert_eq!(vrow.len(), self.d);
        self.k.extend_from_slice(krow);
        self.v.extend_from_slice(vrow);
    }

    /// Key row `i`.
    pub fn k_row(&self, i: usize) -> &[f32] {
        &self.k[i * self.d..(i + 1) * self.d]
    }

    /// Value row `i`.
    pub fn v_row(&self, i: usize) -> &[f32] {
        &self.v[i * self.d..(i + 1) * self.d]
    }
}

impl KvRows for KvCache {
    fn dim(&self) -> usize {
        KvCache::dim(self)
    }
    fn len(&self) -> usize {
        KvCache::len(self)
    }
    fn k_row(&self, i: usize) -> &[f32] {
        KvCache::k_row(self, i)
    }
    fn v_row(&self, i: usize) -> &[f32] {
        KvCache::v_row(self, i)
    }
}

/// Multi-head causal attention for a single query row against a cache that
/// already contains the query's own position.
///
/// `q`, `out` are `[d]` with heads laid out as contiguous `d / heads`
/// column segments (the layout `slice_cols`/`concat_cols` produce on the
/// tape).  `scores` is caller-owned scratch.  Per head this computes, in
/// tape order: plain-dot scores over cached keys, `× scale`, prefix
/// softmax, then a zero-skipping weighted sum of cached value rows.
pub fn attend_row(
    out: &mut [f32],
    q: &[f32],
    cache: &KvCache,
    heads: usize,
    scale: f32,
    scores: &mut Vec<f32>,
) {
    attend_rows(out, q, cache, heads, scale, scores);
}

/// [`attend_row`] generalized over the cache representation.  The loop body
/// visits rows `0..len` in increasing order for both the score pass and the
/// value accumulation, so any two [`KvRows`] holding bitwise-equal rows
/// produce bitwise-equal outputs.
pub fn attend_rows<C: KvRows>(
    out: &mut [f32],
    q: &[f32],
    cache: &C,
    heads: usize,
    scale: f32,
    scores: &mut Vec<f32>,
) {
    let d = cache.dim();
    debug_assert_eq!(out.len(), d);
    debug_assert_eq!(q.len(), d);
    debug_assert_eq!(d % heads, 0);
    let dh = d / heads;
    let len = cache.len();
    debug_assert!(len > 0, "attend_row needs the query row appended first");
    scores.resize(len, 0.0);
    out.fill(0.0);
    for h in 0..heads {
        let off = h * dh;
        // Scores: the tape's matmul_tb row (plain dot) then a scale op.
        for (j, s) in scores.iter_mut().enumerate() {
            *s = kernels::dot(&q[off..off + dh], &cache.k_row(j)[off..off + dh]) * scale;
        }
        kernels::softmax_row(scores);
        // attn × V: increasing-j accumulation with the exact-zero skip,
        // matching the tape matmul over the masked attention row.
        let oh = &mut out[off..off + dh];
        for (j, &a) in scores.iter().enumerate() {
            if a != 0.0 {
                let vr = &cache.v_row(j)[off..off + dh];
                for (o, &vv) in oh.iter_mut().zip(vr) {
                    *o += a * vv;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_append_truncate_roundtrip() {
        let mut c = KvCache::new(4, 8);
        assert!(c.is_empty());
        c.append(&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0]);
        c.append(&[9.0; 4], &[10.0; 4]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.k_row(0), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.v_row(1), &[10.0; 4]);
        c.truncate(1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.v_row(0), &[5.0, 6.0, 7.0, 8.0]);
        c.truncate(5); // longer than len: no-op
        assert_eq!(c.len(), 1);
    }

    /// attend_row must equal the tape recipe (per-head scores → scale →
    /// softmax over the full prefix → weighted value sum) computed naively.
    #[test]
    fn attend_row_matches_naive_recipe() {
        let (d, heads) = (6, 2);
        let dh = d / heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut cache = KvCache::new(d, 4);
        let rows = 3usize;
        for p in 0..rows {
            let krow: Vec<f32> = (0..d).map(|i| ((p * d + i) as f32 * 0.37).sin()).collect();
            let vrow: Vec<f32> = (0..d).map(|i| ((p * d + i) as f32 * 0.71).cos()).collect();
            cache.append(&krow, &vrow);
        }
        let q: Vec<f32> = (0..d).map(|i| (i as f32 * 0.13).cos()).collect();

        let mut out = vec![0.0f32; d];
        let mut scratch = Vec::new();
        attend_row(&mut out, &q, &cache, heads, scale, &mut scratch);

        for h in 0..heads {
            let off = h * dh;
            let mut sc: Vec<f32> = (0..rows)
                .map(|j| kernels::dot(&q[off..off + dh], &cache.k_row(j)[off..off + dh]) * scale)
                .collect();
            kernels::softmax_row(&mut sc);
            for c in 0..dh {
                let mut acc = 0.0f32;
                for (j, &a) in sc.iter().enumerate() {
                    if a != 0.0 {
                        acc += a * cache.v_row(j)[off + c];
                    }
                }
                assert_eq!(out[off + c], acc);
            }
        }
    }
}
