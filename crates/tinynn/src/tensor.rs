//! Dense row-major `f32` tensor.

use std::fmt;

/// A dense, row-major tensor of `f32` values.
///
/// Most of the workspace uses 2-D tensors `[rows, cols]`; convolutional code
/// uses 3-D `[channels, height, width]`.  Scalars are `[1]`.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    /// Flat row-major data, `len == shape.iter().product()`.
    pub data: Vec<f32>,
    /// Dimension sizes.
    pub shape: Vec<usize>,
}

impl Tensor {
    /// Build from flat data and a shape.  Panics if the element count does
    /// not match the shape.
    pub fn from_vec(data: Vec<f32>, shape: Vec<usize>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            n,
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor { data, shape }
    }

    /// All-zero tensor of the given shape.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let n: usize = shape.iter().product();
        Tensor {
            data: vec![0.0; n],
            shape,
        }
    }

    /// Scalar tensor (shape `[1]`).
    pub fn scalar(v: f32) -> Self {
        Tensor {
            data: vec![v],
            shape: vec![1],
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of rows of a 2-D tensor.
    #[inline]
    pub fn rows(&self) -> usize {
        assert_eq!(
            self.shape.len(),
            2,
            "rows() requires a 2-D tensor, got {:?}",
            self.shape
        );
        self.shape[0]
    }

    /// Number of columns of a 2-D tensor.
    #[inline]
    pub fn cols(&self) -> usize {
        assert_eq!(
            self.shape.len(),
            2,
            "cols() requires a 2-D tensor, got {:?}",
            self.shape
        );
        self.shape[1]
    }

    /// Element `(r, c)` of a 2-D tensor.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Mutable element `(r, c)` of a 2-D tensor.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 2);
        &mut self.data[r * self.shape[1] + c]
    }

    /// Borrow row `r` of a 2-D tensor as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        let c = self.cols();
        &self.data[r * c..(r + 1) * c]
    }

    /// The single value of a scalar tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.len(),
            1,
            "item() requires a 1-element tensor, got {:?}",
            self.shape
        );
        self.data[0]
    }

    /// Reshape in place (element count must be preserved).
    pub fn reshape(mut self, shape: Vec<usize>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            self.len(),
            n,
            "cannot reshape {:?} to {:?}",
            self.shape,
            shape
        );
        self.shape = shape;
        self
    }

    /// Maximum absolute element (0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Frobenius / L2 norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Whether every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.len() <= 8 {
            write!(f, " {:?}", self.data)
        } else {
            write!(
                f,
                " [{:.4}, {:.4}, … ({} elems), {:.4}]",
                self.data[0],
                self.data[1],
                self.len(),
                self.data[self.len() - 1]
            )
        }
    }
}

/// Argmax index of a slice (first maximum wins).  Panics on empty input.
pub fn argmax(xs: &[f32]) -> usize {
    assert!(!xs.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

/// Cosine similarity of two equal-length vectors; 0 when either is zero.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine of mismatched lengths");
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_shape() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], vec![2, 2]);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.at(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_shape() {
        let _ = Tensor::from_vec(vec![1.0, 2.0, 3.0], vec![2, 2]);
    }

    #[test]
    fn scalar_and_item() {
        let s = Tensor::scalar(7.5);
        assert_eq!(s.item(), 7.5);
        assert_eq!(s.shape, vec![1]);
    }

    #[test]
    fn row_access() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![2, 3]);
        assert_eq!(t.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], vec![4]).reshape(vec![2, 2]);
        assert_eq!(t.at(0, 1), 2.0);
    }

    #[test]
    fn norms() {
        let t = Tensor::from_vec(vec![3.0, -4.0], vec![2]);
        assert_eq!(t.max_abs(), 4.0);
        assert!((t.norm() - 5.0).abs() < 1e-6);
        assert!(t.all_finite());
        let bad = Tensor::from_vec(vec![f32::NAN], vec![1]);
        assert!(!bad.all_finite());
    }

    #[test]
    fn argmax_first_max_wins() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[-5.0]), 0);
    }

    #[test]
    fn cosine_bounds_and_degenerate() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }
}
