//! Minimal binary (de)serialization of a [`ParamStore`], plus the `SRCR1`
//! sectioned container that model artifacts are packaged in.
//!
//! Parameter format (little-endian):
//! `magic "TNN1"` · `u32 slot count` · per slot: `u32 name len` · name bytes ·
//! `u32 ndim` · dims as `u32` · data as `f32`.
//!
//! Container format (little-endian):
//! `magic "SRCR"` · `u32 version = 1` · `u32 section count` · per section:
//! `u32 name len` · name bytes · `u64 payload len` ·
//! `u32 crc32(name ⧺ payload)` · payload bytes — and nothing after the last
//! section (trailing bytes are a hard error).  The checksum covers the
//! section *name* as well as the payload, so a bit flip anywhere in a
//! section is caught, not just in its data.  Every length is bounded before allocation and every payload
//! is checksummed, so a truncated or bit-flipped file is rejected with a
//! typed [`ContainerError`] instead of a panic or a silent misload.

use std::fmt;
use std::io::{self, Read, Write};

use crate::params::ParamStore;
use crate::tensor::Tensor;

const MAGIC: &[u8; 4] = b"TNN1";

/// Container magic (the format is versioned separately).
const CONTAINER_MAGIC: &[u8; 4] = b"SRCR";
/// The container version this build writes and accepts.
pub const CONTAINER_VERSION: u32 = 1;
/// Upper bound on sections per container (a corrupt count field must not
/// drive a huge loop).
const MAX_SECTIONS: usize = 64;
/// Upper bound on a section-name length in bytes.
const MAX_NAME_LEN: usize = 4096;

/// Why a container failed to load.  Every variant is a *rejection* — the
/// reader never panics and never returns partially-parsed data.
#[derive(Debug)]
pub enum ContainerError {
    /// Underlying I/O failure (includes plain truncation at any point).
    Io(io::Error),
    /// The first four bytes are not `SRCR`.
    BadMagic,
    /// A container version this build does not understand.
    BadVersion(u32),
    /// A structural field is out of bounds or malformed.
    Malformed(String),
    /// A section's payload does not match its stored CRC32.
    ChecksumMismatch {
        /// Name of the failing section.
        section: String,
    },
    /// Bytes remain after the declared last section.
    TrailingBytes,
}

impl fmt::Display for ContainerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainerError::Io(e) => write!(f, "container i/o: {e}"),
            ContainerError::BadMagic => write!(f, "not an SRCR container (bad magic)"),
            ContainerError::BadVersion(v) => write!(
                f,
                "unsupported container version {v} (this build reads {CONTAINER_VERSION})"
            ),
            ContainerError::Malformed(m) => write!(f, "malformed container: {m}"),
            ContainerError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section:?}")
            }
            ContainerError::TrailingBytes => write!(f, "trailing bytes after the last section"),
        }
    }
}

impl std::error::Error for ContainerError {}

impl From<io::Error> for ContainerError {
    fn from(e: io::Error) -> Self {
        ContainerError::Io(e)
    }
}

/// CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Table generated once, lazily; 256 u32s.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Checksum of one section: CRC32 over `name ⧺ payload`, so corruption of
/// either is rejected.
fn section_crc(name: &[u8], payload: &[u8]) -> u32 {
    let mut covered = Vec::with_capacity(name.len() + payload.len());
    covered.extend_from_slice(name);
    covered.extend_from_slice(payload);
    crc32(&covered)
}

/// Write a complete `SRCR1` container: named sections in the given order,
/// each with its payload length and CRC32.
pub fn write_container<W: Write>(w: &mut W, sections: &[(&str, &[u8])]) -> io::Result<()> {
    assert!(
        sections.len() <= MAX_SECTIONS,
        "too many sections: {}",
        sections.len()
    );
    w.write_all(CONTAINER_MAGIC)?;
    w.write_all(&CONTAINER_VERSION.to_le_bytes())?;
    w.write_all(&(sections.len() as u32).to_le_bytes())?;
    for (name, payload) in sections {
        let name = name.as_bytes();
        assert!(name.len() <= MAX_NAME_LEN, "section name too long");
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name)?;
        w.write_all(&(payload.len() as u64).to_le_bytes())?;
        w.write_all(&section_crc(name, payload).to_le_bytes())?;
        w.write_all(payload)?;
    }
    Ok(())
}

/// Read a complete container, verifying structure and every checksum.
/// The reader must end exactly at the last section.
pub fn read_container<R: Read>(r: &mut R) -> Result<Vec<(String, Vec<u8>)>, ContainerError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != CONTAINER_MAGIC {
        return Err(ContainerError::BadMagic);
    }
    let version = read_u32(r)?;
    if version != CONTAINER_VERSION {
        return Err(ContainerError::BadVersion(version));
    }
    let count = read_u32(r)? as usize;
    if count > MAX_SECTIONS {
        return Err(ContainerError::Malformed(format!(
            "section count {count} exceeds the cap of {MAX_SECTIONS}"
        )));
    }
    let mut sections = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = read_u32(r)? as usize;
        if name_len > MAX_NAME_LEN {
            return Err(ContainerError::Malformed(format!(
                "section name length {name_len} exceeds the cap of {MAX_NAME_LEN}"
            )));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| ContainerError::Malformed("section name is not UTF-8".into()))?;
        let payload_len = {
            let mut buf = [0u8; 8];
            r.read_exact(&mut buf)?;
            u64::from_le_bytes(buf)
        };
        let stored_crc = read_u32(r)?;
        // Read through `take` so a corrupt length never pre-allocates more
        // than the data that actually exists.
        let mut payload = Vec::new();
        r.take(payload_len).read_to_end(&mut payload)?;
        if payload.len() as u64 != payload_len {
            return Err(ContainerError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "section {name:?}: payload truncated ({} of {payload_len} bytes)",
                    payload.len()
                ),
            )));
        }
        if section_crc(name.as_bytes(), &payload) != stored_crc {
            return Err(ContainerError::ChecksumMismatch { section: name });
        }
        sections.push((name, payload));
    }
    // Strict end-of-stream: anything after the last section is corruption.
    let mut probe = [0u8; 1];
    match r.read(&mut probe) {
        Ok(0) => Ok(sections),
        Ok(_) => Err(ContainerError::TrailingBytes),
        Err(e) => Err(ContainerError::Io(e)),
    }
}

/// Write all parameter values (not gradients) to `w`.
pub fn save_params<W: Write>(store: &ParamStore, w: &mut W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(store.len() as u32).to_le_bytes())?;
    for id in store.ids() {
        let name = store.name(id).as_bytes();
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name)?;
        let value = store.value(id);
        w.write_all(&(value.shape.len() as u32).to_le_bytes())?;
        for &d in &value.shape {
            w.write_all(&(d as u32).to_le_bytes())?;
        }
        for &x in &value.data {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Read a parameter store previously written by [`save_params`].
pub fn load_params<R: Read>(r: &mut R) -> io::Result<ParamStore> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let count = read_u32(r)? as usize;
    let mut store = ParamStore::new();
    for _ in 0..count {
        let name_len = read_u32(r)? as usize;
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name =
            String::from_utf8(name).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let ndim = read_u32(r)? as usize;
        let mut shape = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            shape.push(read_u32(r)? as usize);
        }
        let n: usize = shape.iter().product();
        let mut data = Vec::with_capacity(n);
        let mut buf = [0u8; 4];
        for _ in 0..n {
            r.read_exact(&mut buf)?;
            data.push(f32::from_le_bytes(buf));
        }
        store.add(name, Tensor::from_vec(data, shape));
    }
    Ok(store)
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_everything() {
        let mut store = ParamStore::new();
        store.add("w1", Tensor::from_vec(vec![1.5, -2.25, 0.0], vec![3]));
        store.add("conv.w", Tensor::from_vec(vec![0.1; 8], vec![2, 1, 2, 2]));
        let mut buf = Vec::new();
        save_params(&store, &mut buf).unwrap();
        let loaded = load_params(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), 2);
        for (a, b) in store.ids().zip(loaded.ids()) {
            assert_eq!(store.name(a), loaded.name(b));
            assert_eq!(store.value(a), loaded.value(b));
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let buf = b"XXXX\0\0\0\0".to_vec();
        assert!(load_params(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_truncated_stream() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::from_vec(vec![1.0; 10], vec![10]));
        let mut buf = Vec::new();
        save_params(&store, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(load_params(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE 802.3 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn sample_container() -> Vec<u8> {
        let mut buf = Vec::new();
        write_container(
            &mut buf,
            &[
                ("meta", b"name=x\n".as_slice()),
                ("params", &[0u8, 1, 2, 3, 255]),
                ("empty", &[]),
            ],
        )
        .unwrap();
        buf
    }

    #[test]
    fn container_round_trips_sections_in_order() {
        let buf = sample_container();
        let sections = read_container(&mut buf.as_slice()).unwrap();
        assert_eq!(sections.len(), 3);
        assert_eq!(sections[0].0, "meta");
        assert_eq!(sections[0].1, b"name=x\n");
        assert_eq!(sections[1].0, "params");
        assert_eq!(sections[1].1, vec![0u8, 1, 2, 3, 255]);
        assert_eq!(sections[2].0, "empty");
        assert!(sections[2].1.is_empty());
    }

    #[test]
    fn container_rejects_every_single_truncation() {
        let buf = sample_container();
        for len in 0..buf.len() {
            let cut = &buf[..len];
            assert!(
                read_container(&mut &*cut).is_err(),
                "truncation to {len} bytes must be rejected"
            );
        }
    }

    #[test]
    fn container_rejects_every_single_bit_flip() {
        let buf = sample_container();
        for byte in 0..buf.len() {
            for bit in 0..8u8 {
                let mut corrupt = buf.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    read_container(&mut corrupt.as_slice()).is_err(),
                    "bit {bit} of byte {byte} flipped: must be rejected"
                );
            }
        }
    }

    #[test]
    fn container_rejects_trailing_bytes() {
        let mut buf = sample_container();
        buf.push(0);
        assert!(matches!(
            read_container(&mut buf.as_slice()),
            Err(ContainerError::TrailingBytes)
        ));
    }

    #[test]
    fn container_rejects_wrong_version_and_magic() {
        let buf = sample_container();
        let mut bad_magic = buf.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            read_container(&mut bad_magic.as_slice()),
            Err(ContainerError::BadMagic)
        ));
        let mut bad_version = buf;
        bad_version[4] = 9;
        assert!(matches!(
            read_container(&mut bad_version.as_slice()),
            Err(ContainerError::BadVersion(9))
        ));
    }
}
