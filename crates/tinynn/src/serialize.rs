//! Minimal binary (de)serialization of a [`ParamStore`].
//!
//! Format (little-endian):
//! `magic "TNN1"` · `u32 slot count` · per slot: `u32 name len` · name bytes ·
//! `u32 ndim` · dims as `u32` · data as `f32`.

use std::io::{self, Read, Write};

use crate::params::ParamStore;
use crate::tensor::Tensor;

const MAGIC: &[u8; 4] = b"TNN1";

/// Write all parameter values (not gradients) to `w`.
pub fn save_params<W: Write>(store: &ParamStore, w: &mut W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(store.len() as u32).to_le_bytes())?;
    for id in store.ids() {
        let name = store.name(id).as_bytes();
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name)?;
        let value = store.value(id);
        w.write_all(&(value.shape.len() as u32).to_le_bytes())?;
        for &d in &value.shape {
            w.write_all(&(d as u32).to_le_bytes())?;
        }
        for &x in &value.data {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Read a parameter store previously written by [`save_params`].
pub fn load_params<R: Read>(r: &mut R) -> io::Result<ParamStore> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let count = read_u32(r)? as usize;
    let mut store = ParamStore::new();
    for _ in 0..count {
        let name_len = read_u32(r)? as usize;
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name =
            String::from_utf8(name).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let ndim = read_u32(r)? as usize;
        let mut shape = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            shape.push(read_u32(r)? as usize);
        }
        let n: usize = shape.iter().product();
        let mut data = Vec::with_capacity(n);
        let mut buf = [0u8; 4];
        for _ in 0..n {
            r.read_exact(&mut buf)?;
            data.push(f32::from_le_bytes(buf));
        }
        store.add(name, Tensor::from_vec(data, shape));
    }
    Ok(store)
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_everything() {
        let mut store = ParamStore::new();
        store.add("w1", Tensor::from_vec(vec![1.5, -2.25, 0.0], vec![3]));
        store.add("conv.w", Tensor::from_vec(vec![0.1; 8], vec![2, 1, 2, 2]));
        let mut buf = Vec::new();
        save_params(&store, &mut buf).unwrap();
        let loaded = load_params(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), 2);
        for (a, b) in store.ids().zip(loaded.ids()) {
            assert_eq!(store.name(a), loaded.name(b));
            assert_eq!(store.value(a), loaded.value(b));
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let buf = b"XXXX\0\0\0\0".to_vec();
        assert!(load_params(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_truncated_stream() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::from_vec(vec![1.0; 10], vec![10]));
        let mut buf = Vec::new();
        save_params(&store, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(load_params(&mut buf.as_slice()).is_err());
    }
}
