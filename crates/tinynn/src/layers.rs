//! Composable neural-network layers.
//!
//! Layers are plain data: they register their parameters in a [`ParamStore`]
//! at construction and replay the forward computation into a fresh [`Graph`]
//! per pass.

use std::rc::Rc;

use rand::Rng;

use crate::graph::{Graph, Var};
use crate::params::{ParamId, ParamStore};

/// Fully connected layer `y = xW + b`.
#[derive(Clone, Debug)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    /// Input feature count.
    pub in_dim: usize,
    /// Output feature count.
    pub out_dim: usize,
}

impl Linear {
    /// Register a `in_dim × out_dim` layer with Xavier init.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut R,
    ) -> Self {
        let w = store.add_xavier(format!("{name}.w"), in_dim, out_dim, rng);
        let b = store.add_zeros(format!("{name}.b"), vec![out_dim]);
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Apply to `x: [n, in_dim]` → `[n, out_dim]`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let w = g.param(store, self.w);
        let b = g.param(store, self.b);
        let h = g.matmul(x, w);
        g.add_bias(h, b)
    }
}

/// Multi-layer perceptron with a fixed activation between hidden layers.
#[derive(Clone, Debug)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

/// Pointwise nonlinearity selector for [`Mlp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    Relu,
    Tanh,
    Gelu,
}

impl Mlp {
    /// `dims = [in, h1, …, out]`; at least one transition required.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        dims: &[usize],
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(dims.len() >= 2, "an MLP needs at least [in, out]");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, &format!("{name}.{i}"), w[0], w[1], rng))
            .collect();
        Mlp { layers, activation }
    }

    /// Apply; the activation is used between layers but not after the last.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, mut x: Var) -> Var {
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(g, store, x);
            if i != last {
                x = match self.activation {
                    Activation::Relu => g.relu(x),
                    Activation::Tanh => g.tanh(x),
                    Activation::Gelu => g.gelu(x),
                };
            }
        }
        x
    }

    /// Output dimension of the final layer.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim
    }
}

/// Token-embedding table.
#[derive(Clone, Debug)]
pub struct EmbeddingTable {
    weight: ParamId,
    /// Vocabulary size.
    pub vocab: usize,
    /// Embedding width.
    pub dim: usize,
}

impl EmbeddingTable {
    /// Register a `vocab × dim` table with small-normal init.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut R,
    ) -> Self {
        let w = store.add_xavier(name, vocab, dim, rng);
        EmbeddingTable {
            weight: w,
            vocab,
            dim,
        }
    }

    /// Gather `[indices.len(), dim]`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, indices: &[usize]) -> Var {
        let w = g.param(store, self.weight);
        g.embedding(w, Rc::new(indices.to_vec()))
    }

    /// The raw weight parameter (used for weight tying with the LM head).
    pub fn weight_id(&self) -> ParamId {
        self.weight
    }
}

/// Layer normalisation with learned affine parameters.
#[derive(Clone, Debug)]
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
    eps: f32,
}

impl LayerNorm {
    /// Register for feature width `dim`.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        let gamma = store.add_ones(format!("{name}.gamma"), vec![dim]);
        let beta = store.add_zeros(format!("{name}.beta"), vec![dim]);
        LayerNorm {
            gamma,
            beta,
            eps: 1e-5,
        }
    }

    /// Apply to `x: [n, dim]`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let gamma = g.param(store, self.gamma);
        let beta = g.param(store, self.beta);
        g.layer_norm(x, gamma, beta, self.eps)
    }
}

/// Multi-head self-attention over a `[L, d]` sequence.
#[derive(Clone, Debug)]
pub struct MultiHeadSelfAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    /// Number of attention heads (`d` must divide evenly).
    pub heads: usize,
    /// Model width.
    pub dim: usize,
}

impl MultiHeadSelfAttention {
    /// Register projections for width `dim` split over `heads` heads.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        rng: &mut R,
    ) -> Self {
        assert!(
            heads >= 1 && dim.is_multiple_of(heads),
            "dim {dim} must divide into {heads} heads"
        );
        MultiHeadSelfAttention {
            wq: Linear::new(store, &format!("{name}.wq"), dim, dim, rng),
            wk: Linear::new(store, &format!("{name}.wk"), dim, dim, rng),
            wv: Linear::new(store, &format!("{name}.wv"), dim, dim, rng),
            wo: Linear::new(store, &format!("{name}.wo"), dim, dim, rng),
            heads,
            dim,
        }
    }

    /// Apply; when `causal` is set each position only attends to itself and
    /// earlier positions.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var, causal: bool) -> Var {
        let l = g.value(x).rows();
        let dh = self.dim / self.heads;
        let q = self.wq.forward(g, store, x);
        let k = self.wk.forward(g, store, x);
        let v = self.wv.forward(g, store, x);
        let scale = 1.0 / (dh as f32).sqrt();

        let mask = causal.then(|| {
            let mut m = vec![0.0f32; l * l];
            for i in 0..l {
                for j in (i + 1)..l {
                    m[i * l + j] = -1e9;
                }
            }
            Rc::new(m)
        });

        let mut head_outs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let qh = g.slice_cols(q, h * dh, dh);
            let kh = g.slice_cols(k, h * dh, dh);
            let vh = g.slice_cols(v, h * dh, dh);
            let scores = g.matmul_tb(qh, kh);
            let scores = g.scale(scores, scale);
            let attn = match &mask {
                Some(m) => g.masked_softmax(scores, Rc::clone(m)),
                None => g.softmax(scores),
            };
            head_outs.push(g.matmul(attn, vh));
        }
        let cat = g.concat_cols(&head_outs);
        self.wo.forward(g, store, cat)
    }
}

/// Pre-norm transformer block: `x + Attn(LN(x))`, then `x + FF(LN(x))`.
#[derive(Clone, Debug)]
pub struct TransformerBlock {
    ln1: LayerNorm,
    attn: MultiHeadSelfAttention,
    ln2: LayerNorm,
    ff1: Linear,
    ff2: Linear,
}

impl TransformerBlock {
    /// Register a block of width `dim`, `heads` heads and feed-forward width
    /// `ff_dim`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        ff_dim: usize,
        rng: &mut R,
    ) -> Self {
        TransformerBlock {
            ln1: LayerNorm::new(store, &format!("{name}.ln1"), dim),
            attn: MultiHeadSelfAttention::new(store, &format!("{name}.attn"), dim, heads, rng),
            ln2: LayerNorm::new(store, &format!("{name}.ln2"), dim),
            ff1: Linear::new(store, &format!("{name}.ff1"), dim, ff_dim, rng),
            ff2: Linear::new(store, &format!("{name}.ff2"), ff_dim, dim, rng),
        }
    }

    /// Apply to `x: [L, dim]`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var, causal: bool) -> Var {
        let n1 = self.ln1.forward(g, store, x);
        let a = self.attn.forward(g, store, n1, causal);
        let x = g.add(x, a);
        let n2 = self.ln2.forward(g, store, x);
        let h = self.ff1.forward(g, store, n2);
        let h = g.gelu(h);
        let h = self.ff2.forward(g, store, h);
        g.add(x, h)
    }
}

/// 2-D convolution layer with bias (valid padding).
#[derive(Clone, Debug)]
pub struct Conv2dLayer {
    w: ParamId,
    b: ParamId,
    /// Stride in both directions.
    pub stride: usize,
}

impl Conv2dLayer {
    /// Register a `[out_ch, in_ch, k, k]` kernel.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        in_ch: usize,
        out_ch: usize,
        k: usize,
        stride: usize,
        rng: &mut R,
    ) -> Self {
        let fan_in = in_ch * k * k;
        let std = (2.0 / fan_in as f32).sqrt();
        let data = (0..out_ch * in_ch * k * k)
            .map(|_| crate::rngutil::normal(rng) * std)
            .collect();
        let w = store.add(
            format!("{name}.w"),
            crate::tensor::Tensor::from_vec(data, vec![out_ch, in_ch, k, k]),
        );
        let b = store.add_zeros(format!("{name}.b"), vec![out_ch]);
        Conv2dLayer { w, b, stride }
    }

    /// Apply to `x: [in_ch, H, W]`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let w = g.param(store, self.w);
        let b = g.param(store, self.b);
        g.conv2d(x, w, b, self.stride)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_param_gradients;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 3, 5, &mut rng);
        let mut g = Graph::new();
        let x = g.leaf(Tensor::zeros(vec![2, 3]));
        let y = lin.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape, vec![2, 5]);
    }

    #[test]
    fn mlp_gradcheck() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &[3, 6, 2], Activation::Tanh, &mut rng);
        check_param_gradients(
            &mut store,
            |g, s| {
                let x = g.leaf(Tensor::from_vec(vec![0.5, -0.2, 0.9], vec![1, 3]));
                let y = mlp.forward(g, s, x);
                let sq = g.mul(y, y);
                g.sum(sq)
            },
            1e-2,
            2e-2,
        )
        .unwrap();
    }

    #[test]
    fn attention_output_shape_and_grad() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let attn = MultiHeadSelfAttention::new(&mut store, "a", 8, 2, &mut rng);
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(
            (0..32).map(|i| (i as f32) * 0.05).collect(),
            vec![4, 8],
        ));
        let y = attn.forward(&mut g, &store, x, true);
        assert_eq!(g.value(y).shape, vec![4, 8]);
        let loss = g.mean(y);
        g.backward(loss);
        g.accumulate_grads(&mut store);
        assert!(
            store.grad_norm() > 0.0,
            "gradients must flow through attention"
        );
    }

    #[test]
    fn causal_attention_ignores_the_future() {
        // Changing a later token must not change an earlier position's output.
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let attn = MultiHeadSelfAttention::new(&mut store, "a", 4, 1, &mut rng);

        let run = |last: f32, store: &ParamStore| -> Vec<f32> {
            let mut g = Graph::new();
            let mut data = vec![0.1f32; 12];
            data.extend_from_slice(&[last; 4]);
            let x = g.leaf(Tensor::from_vec(data, vec![4, 4]));
            let y = attn.forward(&mut g, store, x, true);
            g.value(y).row(0).to_vec()
        };
        let a = run(0.0, &store);
        let b = run(9.0, &store);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6, "causal leak: {a:?} vs {b:?}");
        }
    }

    #[test]
    fn attention_gradcheck_small() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let attn = MultiHeadSelfAttention::new(&mut store, "a", 4, 2, &mut rng);
        check_param_gradients(
            &mut store,
            |g, s| {
                let x = g.leaf(Tensor::from_vec(
                    vec![0.3, -0.1, 0.5, 0.2, -0.4, 0.6, 0.0, 0.1],
                    vec![2, 4],
                ));
                let y = attn.forward(g, s, x, true);
                let sq = g.mul(y, y);
                g.sum(sq)
            },
            1e-2,
            3e-2,
        )
        .unwrap();
    }

    #[test]
    fn transformer_block_gradcheck() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let block = TransformerBlock::new(&mut store, "b", 4, 2, 8, &mut rng);
        check_param_gradients(
            &mut store,
            |g, s| {
                let x = g.leaf(Tensor::from_vec(
                    vec![0.3, -0.1, 0.5, 0.2, -0.4, 0.6, 0.0, 0.1],
                    vec![2, 4],
                ));
                let y = block.forward(g, s, x, true);
                let sq = g.mul(y, y);
                g.sum(sq)
            },
            1e-2,
            5e-2,
        )
        .unwrap();
    }

    #[test]
    fn conv_layer_gradcheck() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut store = ParamStore::new();
        let conv = Conv2dLayer::new(&mut store, "c", 1, 2, 2, 1, &mut rng);
        check_param_gradients(
            &mut store,
            |g, s| {
                let x = g.leaf(Tensor::from_vec(
                    vec![0.1, 0.4, -0.2, 0.8, 0.5, -0.6, 0.3, 0.0, 0.9],
                    vec![1, 3, 3],
                ));
                let y = conv.forward(g, s, x);
                let sq = g.mul(y, y);
                g.sum(sq)
            },
            1e-2,
            2e-2,
        )
        .unwrap();
    }

    #[test]
    fn embedding_table_gradcheck() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let emb = EmbeddingTable::new(&mut store, "e", 5, 3, &mut rng);
        check_param_gradients(
            &mut store,
            |g, s| {
                let e = emb.forward(g, s, &[1, 4, 1]);
                let sq = g.mul(e, e);
                g.sum(sq)
            },
            1e-2,
            2e-2,
        )
        .unwrap();
    }
}
