//! Finite-difference gradient checking.
//!
//! Used by this crate's own tests and available to downstream crates for
//! verifying composite models (the DPO loss, attention stacks, …).

use crate::graph::{Graph, Var};
use crate::params::ParamStore;

/// Check analytic gradients of every parameter against central finite
/// differences.
///
/// `build` must construct a *scalar* loss from the given store in a fresh
/// graph; it is called many times with perturbed parameter values and must be
/// deterministic.  Returns `Err` with a diagnostic on the first mismatch:
/// the relative error `|analytic − numeric| / max(1, |analytic| + |numeric|)`
/// must stay within `tol`.
pub fn check_param_gradients<F>(
    store: &mut ParamStore,
    build: F,
    eps: f32,
    tol: f32,
) -> Result<(), String>
where
    F: Fn(&mut Graph, &ParamStore) -> Var,
{
    // Analytic pass.
    store.zero_grads();
    let mut g = Graph::new();
    let loss = build(&mut g, store);
    assert_eq!(g.value(loss).len(), 1, "gradcheck needs a scalar loss");
    g.backward(loss);
    g.accumulate_grads(store);
    let analytic: Vec<Vec<f32>> = store.ids().map(|id| store.grad(id).to_vec()).collect();

    // Numeric passes.
    for (pi, id) in store.ids().collect::<Vec<_>>().into_iter().enumerate() {
        #[allow(clippy::needless_range_loop)] // k indexes two structures
        for k in 0..store.value(id).len() {
            let orig = store.value(id).data[k];

            store.value_mut(id).data[k] = orig + eps;
            let mut gp = Graph::new();
            let lp = build(&mut gp, store);
            let fp = gp.value(lp).item();

            store.value_mut(id).data[k] = orig - eps;
            let mut gm = Graph::new();
            let lm = build(&mut gm, store);
            let fm = gm.value(lm).item();

            store.value_mut(id).data[k] = orig;

            let numeric = (fp - fm) / (2.0 * eps);
            let a = analytic[pi][k];
            let rel = (a - numeric).abs() / 1.0f32.max(a.abs() + numeric.abs());
            if rel > tol {
                return Err(format!(
                    "param {:?} ({}) element {k}: analytic {a:.6} vs numeric {numeric:.6} (rel {rel:.2e})",
                    id,
                    store.name(id),
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use std::rc::Rc;

    #[test]
    fn quadratic_passes() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(vec![0.7, -1.3], vec![1, 2]));
        check_param_gradients(
            &mut store,
            |g, s| {
                let wv = g.param(s, w);
                let sq = g.mul(wv, wv);
                g.sum(sq)
            },
            1e-3,
            1e-2,
        )
        .unwrap();
    }

    #[test]
    fn detects_wrong_gradient() {
        // A loss that ignores the parameter but whose gradient we fake by
        // wiring the parameter through a zero-scale: analytic grad is 0, so
        // compare against a build that *does* use it — instead we simply
        // verify the checker flags a deliberate inconsistency: loss uses
        // w + constant offset depending on sign of perturbation is not
        // expressible, so test the plumbing by an always-passing trivial
        // case and an assertion on Err formatting via a mismatched closure.
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(vec![2.0], vec![1, 1]));
        // Build: loss = w^2 but we corrupt the analytic grad afterwards by
        // scaling; emulate by checking with an absurdly tight tolerance on a
        // noisy op — simplest honest check: claim tol=0 must fail due to
        // floating point.
        let r = check_param_gradients(
            &mut store,
            |g, s| {
                let wv = g.param(s, w);
                let t = g.tanh(wv);
                let sq = g.mul(t, t);
                g.sum(sq)
            },
            1e-2,
            0.0,
        );
        assert!(r.is_err(), "zero tolerance must fail on fp rounding");
    }

    #[test]
    fn mlp_with_all_core_ops_passes() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let w1 = store.add_xavier("w1", 3, 4, &mut rng);
        let b1 = store.add_zeros("b1", vec![4]);
        let w2 = store.add_xavier("w2", 4, 2, &mut rng);
        let gamma = store.add_ones("g", vec![4]);
        let beta = store.add_zeros("be", vec![4]);
        check_param_gradients(
            &mut store,
            |g, s| {
                let x = g.leaf(Tensor::from_vec(
                    vec![0.3, -0.8, 1.2, 0.1, 0.0, -0.4],
                    vec![2, 3],
                ));
                let w1v = g.param(s, w1);
                let b1v = g.param(s, b1);
                let h = g.matmul(x, w1v);
                let h = g.add_bias(h, b1v);
                let gv = g.param(s, gamma);
                let bv = g.param(s, beta);
                let h = g.layer_norm(h, gv, bv, 1e-5);
                let h = g.gelu(h);
                let w2v = g.param(s, w2);
                let logits = g.matmul(h, w2v);
                let lp = g.log_softmax_gather(logits, Rc::new(vec![1, 0]));
                let su = g.sum(lp);
                g.scale(su, -0.5)
            },
            1e-2,
            2e-2,
        )
        .unwrap();
    }
}
