//! Reverse-mode automatic differentiation on an append-only tape.
//!
//! A [`Graph`] owns a vector of nodes; every op appends a node whose parents
//! have strictly smaller indices, so [`Graph::backward`] is a single reverse
//! sweep.  Values are computed eagerly on construction; gradients are
//! allocated lazily during the backward pass.

use std::rc::Rc;

use crate::kernels::{
    self, dot, gelu_bwd, gelu_fwd, layer_norm_row, log_sigmoid_fwd, stable_sigmoid,
};
use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Handle to a node in a [`Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug)]
#[allow(dead_code)] // unused fields are kept for Debug output fidelity
enum Op {
    Leaf,
    Param(ParamId),
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    /// `[r, c] + [c]`, bias broadcast over rows.
    AddBias(Var, Var),
    /// `[r, k] × [k, c]`.
    Matmul(Var, Var),
    /// `A × Bᵀ` for `A: [r, k]`, `B: [c, k]`.
    MatmulTB(Var, Var),
    Scale(Var, f32),
    Relu(Var),
    Tanh(Var),
    Sigmoid(Var),
    Gelu(Var),
    LogSigmoid(Var),
    /// Row-wise softmax with an optional additive mask (same shape).
    Softmax(Var, Option<Rc<Vec<f32>>>),
    LayerNorm {
        x: Var,
        gamma: Var,
        beta: Var,
        eps: f32,
        /// Per-row `(mean, rstd)` cached at forward time.
        cache: Vec<(f32, f32)>,
    },
    /// Row-gather from an embedding matrix: `weight: [V, d]` → `[L, d]`.
    Embedding {
        weight: Var,
        indices: Rc<Vec<usize>>,
    },
    ConcatRows(Var, Var),
    ConcatCols(Vec<Var>),
    /// Shape reinterpretation (identity on data).
    Reshape(Var),
    SliceRows {
        x: Var,
        start: usize,
        len: usize,
    },
    SliceCols {
        x: Var,
        start: usize,
        len: usize,
    },
    Sum(Var),
    Mean(Var),
    /// Mean over rows: `[r, c]` → `[1, c]`.
    RowMean(Var),
    /// Per-row `log softmax(logits)[target]`: `[L, V]` → `[L, 1]`.
    LogSoftmaxGather {
        logits: Var,
        targets: Rc<Vec<usize>>,
        /// Row-wise softmax cached at forward time (`L × V`).
        cache: Vec<f32>,
    },
    /// Valid (no padding) 2-D convolution, `x: [Cin, H, W]`,
    /// `w: [Cout, Cin, kh, kw]`, `b: [Cout]`.
    Conv2d {
        x: Var,
        w: Var,
        b: Var,
        stride: usize,
    },
    /// Non-overlapping `k × k` max pooling with cached argmax indices.
    MaxPool2d {
        x: Var,
        k: usize,
        argmax: Vec<usize>,
    },
    /// Non-overlapping `k × k` average pooling.
    AvgPool2d {
        x: Var,
        k: usize,
    },
}

struct Node {
    op: Op,
    value: Tensor,
    grad: Option<Vec<f32>>,
}

/// An autodiff tape.  Build ops with the methods below, then call
/// [`Graph::backward`] on a scalar output.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, op: Op, value: Tensor) -> Var {
        debug_assert!(value.all_finite(), "non-finite value from {op:?}");
        self.nodes.push(Node {
            op,
            value,
            grad: None,
        });
        Var(self.nodes.len() - 1)
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The gradient of a node after [`Graph::backward`] (zeros if the node
    /// did not influence the loss).
    pub fn grad(&self, v: Var) -> Vec<f32> {
        match &self.nodes[v.0].grad {
            Some(g) => g.clone(),
            None => vec![0.0; self.nodes[v.0].value.len()],
        }
    }

    // ----- leaves ---------------------------------------------------------

    /// Insert a constant (non-trainable) leaf.
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.push(Op::Leaf, value)
    }

    /// Insert a trainable leaf bound to a [`ParamStore`] slot; its gradient
    /// is routed to the store by [`Graph::accumulate_grads`].
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        self.push(Op::Param(id), store.value(id).clone())
    }

    // ----- elementwise ----------------------------------------------------

    /// Elementwise sum (same shape).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(va.shape, vb.shape, "add shape mismatch");
        let data = va.data.iter().zip(&vb.data).map(|(x, y)| x + y).collect();
        let shape = va.shape.clone();
        self.push(Op::Add(a, b), Tensor::from_vec(data, shape))
    }

    /// Elementwise difference (same shape).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(va.shape, vb.shape, "sub shape mismatch");
        let data = va.data.iter().zip(&vb.data).map(|(x, y)| x - y).collect();
        let shape = va.shape.clone();
        self.push(Op::Sub(a, b), Tensor::from_vec(data, shape))
    }

    /// Elementwise (Hadamard) product (same shape).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(va.shape, vb.shape, "mul shape mismatch");
        let data = va.data.iter().zip(&vb.data).map(|(x, y)| x * y).collect();
        let shape = va.shape.clone();
        self.push(Op::Mul(a, b), Tensor::from_vec(data, shape))
    }

    /// `[r, c] + [c]` with the bias broadcast over rows.
    pub fn add_bias(&mut self, a: Var, bias: Var) -> Var {
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[bias.0].value);
        let (r, c) = (va.rows(), va.cols());
        assert_eq!(vb.len(), c, "bias length must equal column count");
        let mut data = va.data.clone();
        kernels::add_bias_rows(&mut data, &vb.data);
        self.push(Op::AddBias(a, bias), Tensor::from_vec(data, vec![r, c]))
    }

    /// Multiply every element by a constant.
    pub fn scale(&mut self, a: Var, k: f32) -> Var {
        let va = &self.nodes[a.0].value;
        let data = va.data.iter().map(|x| x * k).collect();
        let shape = va.shape.clone();
        self.push(Op::Scale(a, k), Tensor::from_vec(data, shape))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let va = &self.nodes[a.0].value;
        let data = va.data.iter().map(|x| x.max(0.0)).collect();
        let shape = va.shape.clone();
        self.push(Op::Relu(a), Tensor::from_vec(data, shape))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let va = &self.nodes[a.0].value;
        let data = va.data.iter().map(|x| x.tanh()).collect();
        let shape = va.shape.clone();
        self.push(Op::Tanh(a), Tensor::from_vec(data, shape))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let va = &self.nodes[a.0].value;
        let data = va.data.iter().map(|x| stable_sigmoid(*x)).collect();
        let shape = va.shape.clone();
        self.push(Op::Sigmoid(a), Tensor::from_vec(data, shape))
    }

    /// GELU (tanh approximation).
    pub fn gelu(&mut self, a: Var) -> Var {
        let va = &self.nodes[a.0].value;
        let data = va.data.iter().map(|&x| gelu_fwd(x)).collect();
        let shape = va.shape.clone();
        self.push(Op::Gelu(a), Tensor::from_vec(data, shape))
    }

    /// Numerically stable `log σ(x)`.
    pub fn log_sigmoid(&mut self, a: Var) -> Var {
        let va = &self.nodes[a.0].value;
        let data = va.data.iter().map(|&x| log_sigmoid_fwd(x)).collect();
        let shape = va.shape.clone();
        self.push(Op::LogSigmoid(a), Tensor::from_vec(data, shape))
    }

    // ----- linear algebra --------------------------------------------------

    /// Matrix product `[r, k] × [k, c]`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        let (r, k) = (va.rows(), va.cols());
        let (k2, c) = (vb.rows(), vb.cols());
        assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
        let value = kernels::matmul(&va.data, &vb.data, r, k, c);
        self.push(Op::Matmul(a, b), Tensor::from_vec(value, vec![r, c]))
    }

    /// Matrix product with transposed right operand: `A × Bᵀ` for
    /// `A: [r, k]`, `B: [c, k]`.
    pub fn matmul_tb(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        let (r, k) = (va.rows(), va.cols());
        let (c, k2) = (vb.rows(), vb.cols());
        assert_eq!(k, k2, "matmul_tb inner dims {k} vs {k2}");
        let out = kernels::matmul_tb(&va.data, &vb.data, r, k, c);
        self.push(Op::MatmulTB(a, b), Tensor::from_vec(out, vec![r, c]))
    }

    // ----- normalisation & softmax ------------------------------------------

    /// Row-wise softmax.
    pub fn softmax(&mut self, a: Var) -> Var {
        self.softmax_impl(a, None)
    }

    /// Row-wise softmax with an additive mask (use `-1e9` for disallowed
    /// positions, `0.0` elsewhere).  Mask shape must equal input shape.
    pub fn masked_softmax(&mut self, a: Var, mask: Rc<Vec<f32>>) -> Var {
        assert_eq!(
            mask.len(),
            self.nodes[a.0].value.len(),
            "mask length mismatch"
        );
        self.softmax_impl(a, Some(mask))
    }

    fn softmax_impl(&mut self, a: Var, mask: Option<Rc<Vec<f32>>>) -> Var {
        let va = &self.nodes[a.0].value;
        let (r, c) = (va.rows(), va.cols());
        let mut data = vec![0.0f32; r * c];
        for row in 0..r {
            let xs = &va.data[row * c..(row + 1) * c];
            let ms = mask.as_deref().map(|m| &m[row * c..(row + 1) * c]);
            let mut maxv = f32::NEG_INFINITY;
            for i in 0..c {
                let x = xs[i] + ms.map_or(0.0, |m| m[i]);
                maxv = maxv.max(x);
            }
            let mut sum = 0.0;
            for i in 0..c {
                let x = xs[i] + ms.map_or(0.0, |m| m[i]);
                let e = (x - maxv).exp();
                data[row * c + i] = e;
                sum += e;
            }
            for i in 0..c {
                data[row * c + i] /= sum;
            }
        }
        self.push(Op::Softmax(a, mask), Tensor::from_vec(data, vec![r, c]))
    }

    /// Layer normalisation over the last dimension with affine parameters
    /// `gamma, beta: [c]`.
    pub fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        let vx = &self.nodes[x.0].value;
        let (r, c) = (vx.rows(), vx.cols());
        assert_eq!(self.nodes[gamma.0].value.len(), c, "gamma length");
        assert_eq!(self.nodes[beta.0].value.len(), c, "beta length");
        // Borrow the affine parameters in place — no per-op clones.
        let g = &self.nodes[gamma.0].value.data;
        let b = &self.nodes[beta.0].value.data;
        let mut data = vec![0.0f32; r * c];
        let mut cache = Vec::with_capacity(r);
        for row in 0..r {
            let xs = &vx.data[row * c..(row + 1) * c];
            cache.push(layer_norm_row(
                &mut data[row * c..(row + 1) * c],
                xs,
                g,
                b,
                eps,
            ));
        }
        self.push(
            Op::LayerNorm {
                x,
                gamma,
                beta,
                eps,
                cache,
            },
            Tensor::from_vec(data, vec![r, c]),
        )
    }

    // ----- shape ops --------------------------------------------------------

    /// Gather rows of an embedding matrix: `weight: [V, d]`, `indices: [L]`
    /// → `[L, d]`.
    pub fn embedding(&mut self, weight: Var, indices: Rc<Vec<usize>>) -> Var {
        let vw = &self.nodes[weight.0].value;
        let (v, d) = (vw.rows(), vw.cols());
        let mut data = Vec::with_capacity(indices.len() * d);
        for &idx in indices.iter() {
            assert!(idx < v, "embedding index {idx} out of range {v}");
            data.extend_from_slice(&vw.data[idx * d..(idx + 1) * d]);
        }
        let l = indices.len();
        self.push(
            Op::Embedding { weight, indices },
            Tensor::from_vec(data, vec![l, d]),
        )
    }

    /// Stack `a` on top of `b` (same column count).
    pub fn concat_rows(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(va.cols(), vb.cols(), "concat_rows column mismatch");
        let mut data = Vec::with_capacity(va.len() + vb.len());
        data.extend_from_slice(&va.data);
        data.extend_from_slice(&vb.data);
        let shape = vec![va.rows() + vb.rows(), va.cols()];
        self.push(Op::ConcatRows(a, b), Tensor::from_vec(data, shape))
    }

    /// Concatenate column blocks (same row count).
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols of nothing");
        let r = self.nodes[parts[0].0].value.rows();
        let total_c: usize = parts.iter().map(|p| self.nodes[p.0].value.cols()).sum();
        let mut data = vec![0.0f32; r * total_c];
        let mut off = 0;
        for p in parts {
            let vp = &self.nodes[p.0].value;
            assert_eq!(vp.rows(), r, "concat_cols row mismatch");
            let c = vp.cols();
            for row in 0..r {
                data[row * total_c + off..row * total_c + off + c]
                    .copy_from_slice(&vp.data[row * c..(row + 1) * c]);
            }
            off += c;
        }
        self.push(
            Op::ConcatCols(parts.to_vec()),
            Tensor::from_vec(data, vec![r, total_c]),
        )
    }

    /// Reinterpret the shape (row-major data unchanged); element count must
    /// match.  Gradients pass through unchanged.
    pub fn reshape(&mut self, x: Var, shape: Vec<usize>) -> Var {
        let vx = &self.nodes[x.0].value;
        let n: usize = shape.iter().product();
        assert_eq!(vx.len(), n, "reshape {:?} to {shape:?}", vx.shape);
        let value = Tensor::from_vec(vx.data.clone(), shape);
        self.push(Op::Reshape(x), value)
    }

    /// Rows `start .. start + len`.
    pub fn slice_rows(&mut self, x: Var, start: usize, len: usize) -> Var {
        let vx = &self.nodes[x.0].value;
        let c = vx.cols();
        assert!(start + len <= vx.rows(), "slice_rows out of range");
        let data = vx.data[start * c..(start + len) * c].to_vec();
        self.push(
            Op::SliceRows { x, start, len },
            Tensor::from_vec(data, vec![len, c]),
        )
    }

    /// Columns `start .. start + len`.
    pub fn slice_cols(&mut self, x: Var, start: usize, len: usize) -> Var {
        let vx = &self.nodes[x.0].value;
        let (r, c) = (vx.rows(), vx.cols());
        assert!(start + len <= c, "slice_cols out of range");
        let mut data = Vec::with_capacity(r * len);
        for row in 0..r {
            data.extend_from_slice(&vx.data[row * c + start..row * c + start + len]);
        }
        self.push(
            Op::SliceCols { x, start, len },
            Tensor::from_vec(data, vec![r, len]),
        )
    }

    // ----- reductions -------------------------------------------------------

    /// Sum of all elements → scalar.
    pub fn sum(&mut self, a: Var) -> Var {
        let s = self.nodes[a.0].value.data.iter().sum();
        self.push(Op::Sum(a), Tensor::scalar(s))
    }

    /// Mean of all elements → scalar.
    pub fn mean(&mut self, a: Var) -> Var {
        let v = &self.nodes[a.0].value;
        let s = v.data.iter().sum::<f32>() / v.len() as f32;
        self.push(Op::Mean(a), Tensor::scalar(s))
    }

    /// Mean over rows: `[r, c]` → `[1, c]`.
    pub fn row_mean(&mut self, a: Var) -> Var {
        let v = &self.nodes[a.0].value;
        let (r, c) = (v.rows(), v.cols());
        let mut out = vec![0.0f32; c];
        for row in 0..r {
            for (col, o) in out.iter_mut().enumerate() {
                *o += v.data[row * c + col];
            }
        }
        out.iter_mut().for_each(|x| *x /= r as f32);
        self.push(Op::RowMean(a), Tensor::from_vec(out, vec![1, c]))
    }

    /// Per-row log-probability of a target class:
    /// `log softmax(logits)[row, targets[row]]` → `[L, 1]`.
    ///
    /// This is the sequence-log-prob primitive used for both cross-entropy
    /// training (negate and average) and the DPO log-ratio terms.
    pub fn log_softmax_gather(&mut self, logits: Var, targets: Rc<Vec<usize>>) -> Var {
        let vl = &self.nodes[logits.0].value;
        let (l, v) = (vl.rows(), vl.cols());
        assert_eq!(targets.len(), l, "one target per row required");
        let mut cache = vec![0.0f32; l * v];
        let mut out = Vec::with_capacity(l);
        for row in 0..l {
            let xs = &vl.data[row * v..(row + 1) * v];
            let maxv = xs.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
            let mut sum = 0.0;
            for i in 0..v {
                let e = (xs[i] - maxv).exp();
                cache[row * v + i] = e;
                sum += e;
            }
            for i in 0..v {
                cache[row * v + i] /= sum;
            }
            let t = targets[row];
            assert!(t < v, "target {t} out of vocab {v}");
            out.push(xs[t] - maxv - sum.ln());
        }
        self.push(
            Op::LogSoftmaxGather {
                logits,
                targets,
                cache,
            },
            Tensor::from_vec(out, vec![l, 1]),
        )
    }

    // ----- convolution -------------------------------------------------------

    /// Valid 2-D convolution: `x: [Cin, H, W]`, `w: [Cout, Cin, kh, kw]`,
    /// `b: [Cout]`, stride `s` → `[Cout, OH, OW]`.
    pub fn conv2d(&mut self, x: Var, w: Var, b: Var, stride: usize) -> Var {
        assert!(stride >= 1);
        let vx = &self.nodes[x.0].value;
        let vw = &self.nodes[w.0].value;
        let vb = &self.nodes[b.0].value;
        let (cin, h, wid) = dims3(&vx.shape);
        let (cout, cin2, kh, kw) = dims4(&vw.shape);
        assert_eq!(cin, cin2, "conv2d channel mismatch");
        assert_eq!(vb.len(), cout, "conv2d bias length");
        assert!(h >= kh && wid >= kw, "kernel larger than input");
        let oh = (h - kh) / stride + 1;
        let ow = (wid - kw) / stride + 1;
        let mut out = vec![0.0f32; cout * oh * ow];
        for co in 0..cout {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = vb.data[co];
                    for ci in 0..cin {
                        for ky in 0..kh {
                            let iy = oy * stride + ky;
                            let xrow = ci * h * wid + iy * wid + ox * stride;
                            let wrow = ((co * cin + ci) * kh + ky) * kw;
                            acc += dot(&vx.data[xrow..xrow + kw], &vw.data[wrow..wrow + kw]);
                        }
                    }
                    out[(co * oh + oy) * ow + ox] = acc;
                }
            }
        }
        self.push(
            Op::Conv2d { x, w, b, stride },
            Tensor::from_vec(out, vec![cout, oh, ow]),
        )
    }

    /// Non-overlapping `k × k` max pooling over each channel (trailing rows
    /// and columns that do not fill a window are dropped).
    pub fn max_pool2d(&mut self, x: Var, k: usize) -> Var {
        let vx = &self.nodes[x.0].value;
        let (c, h, w) = dims3(&vx.shape);
        let (oh, ow) = (h / k, w / k);
        assert!(oh > 0 && ow > 0, "pool window larger than input");
        let mut out = vec![f32::NEG_INFINITY; c * oh * ow];
        let mut argmax = vec![0usize; c * oh * ow];
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let oidx = (ch * oh + oy) * ow + ox;
                    for ky in 0..k {
                        for kx in 0..k {
                            let iy = oy * k + ky;
                            let ix = ox * k + kx;
                            let iidx = ch * h * w + iy * w + ix;
                            if vx.data[iidx] > out[oidx] {
                                out[oidx] = vx.data[iidx];
                                argmax[oidx] = iidx;
                            }
                        }
                    }
                }
            }
        }
        self.push(
            Op::MaxPool2d { x, k, argmax },
            Tensor::from_vec(out, vec![c, oh, ow]),
        )
    }

    /// Non-overlapping `k × k` average pooling over each channel.
    pub fn avg_pool2d(&mut self, x: Var, k: usize) -> Var {
        let vx = &self.nodes[x.0].value;
        let (c, h, w) = dims3(&vx.shape);
        let (oh, ow) = (h / k, w / k);
        assert!(oh > 0 && ow > 0, "pool window larger than input");
        let inv = 1.0 / (k * k) as f32;
        let mut out = vec![0.0f32; c * oh * ow];
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    for ky in 0..k {
                        for kx in 0..k {
                            acc += vx.data[ch * h * w + (oy * k + ky) * w + ox * k + kx];
                        }
                    }
                    out[(ch * oh + oy) * ow + ox] = acc * inv;
                }
            }
        }
        self.push(
            Op::AvgPool2d { x, k },
            Tensor::from_vec(out, vec![c, oh, ow]),
        )
    }

    // ----- backward ----------------------------------------------------------

    /// Run the reverse sweep from a scalar `loss` node.
    ///
    /// Panics if `loss` is not a single-element tensor.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.nodes[loss.0].value.len(),
            1,
            "backward needs a scalar loss"
        );
        // Seed.
        self.ensure_grad(loss);
        self.nodes[loss.0].grad.as_mut().unwrap()[0] = 1.0;

        for i in (0..self.nodes.len()).rev() {
            // Take the gradient and the op temporarily to appease the borrow
            // checker — no per-node clone of the upstream gradient buffer.
            let Some(gout) = self.nodes[i].grad.take() else {
                continue;
            };
            let op = std::mem::replace(&mut self.nodes[i].op, Op::Leaf);
            self.backprop_node(i, &op, &gout);
            self.nodes[i].op = op;
            self.nodes[i].grad = Some(gout);
        }
    }

    fn ensure_grad(&mut self, v: Var) -> &mut Vec<f32> {
        let n = self.nodes[v.0].value.len();
        self.nodes[v.0].grad.get_or_insert_with(|| vec![0.0; n])
    }

    fn add_grad(&mut self, v: Var, delta: &[f32]) {
        let g = self.ensure_grad(v);
        debug_assert_eq!(g.len(), delta.len());
        for (gi, di) in g.iter_mut().zip(delta) {
            *gi += di;
        }
    }

    #[allow(clippy::too_many_lines)]
    fn backprop_node(&mut self, i: usize, op: &Op, gout: &[f32]) {
        match op {
            Op::Leaf | Op::Param(_) => {}
            Op::Add(a, b) => {
                self.add_grad(*a, gout);
                self.add_grad(*b, gout);
            }
            Op::Sub(a, b) => {
                self.add_grad(*a, gout);
                let neg: Vec<f32> = gout.iter().map(|g| -g).collect();
                self.add_grad(*b, &neg);
            }
            Op::Mul(a, b) => {
                let da: Vec<f32> = gout
                    .iter()
                    .zip(&self.nodes[b.0].value.data)
                    .map(|(g, y)| g * y)
                    .collect();
                let db: Vec<f32> = gout
                    .iter()
                    .zip(&self.nodes[a.0].value.data)
                    .map(|(g, x)| g * x)
                    .collect();
                self.add_grad(*a, &da);
                self.add_grad(*b, &db);
            }
            Op::AddBias(a, bias) => {
                self.add_grad(*a, gout);
                let c = self.nodes[bias.0].value.len();
                let r = gout.len() / c;
                let mut db = vec![0.0f32; c];
                for row in 0..r {
                    for col in 0..c {
                        db[col] += gout[row * c + col];
                    }
                }
                self.add_grad(*bias, &db);
            }
            Op::Matmul(a, b) => {
                let (r, k) = (self.nodes[a.0].value.rows(), self.nodes[a.0].value.cols());
                let c = self.nodes[b.0].value.cols();
                // dA = dC × Bᵀ — same per-element dot order as the naive loop.
                let bd = &self.nodes[b.0].value.data;
                let da = kernels::matmul_tb(gout, bd, r, c, k);
                // dB = Aᵀ × dC
                let ad = &self.nodes[a.0].value.data;
                let mut db = vec![0.0f32; k * c];
                for row in 0..r {
                    for kk in 0..k {
                        let aik = ad[row * k + kk];
                        if aik != 0.0 {
                            for cc in 0..c {
                                db[kk * c + cc] += aik * gout[row * c + cc];
                            }
                        }
                    }
                }
                self.add_grad(*a, &da);
                self.add_grad(*b, &db);
            }
            Op::MatmulTB(a, b) => {
                // C = A Bᵀ, A: [r, k], B: [c, k], C: [r, c].
                let (r, k) = (self.nodes[a.0].value.rows(), self.nodes[a.0].value.cols());
                let c = self.nodes[b.0].value.rows();
                let bd = &self.nodes[b.0].value.data;
                let ad = &self.nodes[a.0].value.data;
                // dA = dC × B
                let da = kernels::matmul(gout, bd, r, c, k);
                // dB = dCᵀ × A
                let mut db = vec![0.0f32; c * k];
                for row in 0..r {
                    for cc in 0..c {
                        let g = gout[row * c + cc];
                        if g != 0.0 {
                            for kk in 0..k {
                                db[cc * k + kk] += g * ad[row * k + kk];
                            }
                        }
                    }
                }
                self.add_grad(*a, &da);
                self.add_grad(*b, &db);
            }
            Op::Scale(a, kf) => {
                let da: Vec<f32> = gout.iter().map(|g| g * kf).collect();
                self.add_grad(*a, &da);
            }
            Op::Relu(a) => {
                let da: Vec<f32> = gout
                    .iter()
                    .zip(&self.nodes[a.0].value.data)
                    .map(|(g, x)| if *x > 0.0 { *g } else { 0.0 })
                    .collect();
                self.add_grad(*a, &da);
            }
            Op::Tanh(a) => {
                let da: Vec<f32> = gout
                    .iter()
                    .zip(&self.nodes[i].value.data)
                    .map(|(g, y)| g * (1.0 - y * y))
                    .collect();
                self.add_grad(*a, &da);
            }
            Op::Sigmoid(a) => {
                let da: Vec<f32> = gout
                    .iter()
                    .zip(&self.nodes[i].value.data)
                    .map(|(g, y)| g * y * (1.0 - y))
                    .collect();
                self.add_grad(*a, &da);
            }
            Op::Gelu(a) => {
                let da: Vec<f32> = gout
                    .iter()
                    .zip(&self.nodes[a.0].value.data)
                    .map(|(g, x)| g * gelu_bwd(*x))
                    .collect();
                self.add_grad(*a, &da);
            }
            Op::LogSigmoid(a) => {
                // d/dx log σ(x) = σ(-x) = 1 - σ(x).
                let da: Vec<f32> = gout
                    .iter()
                    .zip(&self.nodes[a.0].value.data)
                    .map(|(g, x)| g * stable_sigmoid(-x))
                    .collect();
                self.add_grad(*a, &da);
            }
            Op::Softmax(a, _) => {
                let y = &self.nodes[i].value;
                let (r, c) = (y.rows(), y.cols());
                let mut da = vec![0.0f32; r * c];
                for row in 0..r {
                    let yr = &y.data[row * c..(row + 1) * c];
                    let gr = &gout[row * c..(row + 1) * c];
                    let dotp = dot(yr, gr);
                    for col in 0..c {
                        da[row * c + col] = yr[col] * (gr[col] - dotp);
                    }
                }
                self.add_grad(*a, &da);
            }
            Op::LayerNorm {
                x,
                gamma,
                beta,
                cache,
                ..
            } => {
                // Borrow x/gamma in place (`cache` lives in the taken-out op);
                // the scratch rows are sized once and reused across rows.
                let (dx, dgamma, dbeta) = {
                    let vx = &self.nodes[x.0].value;
                    let (r, c) = (vx.rows(), vx.cols());
                    let g = &self.nodes[gamma.0].value.data;
                    let mut dgamma = vec![0.0f32; c];
                    let mut dbeta = vec![0.0f32; c];
                    let mut dx = vec![0.0f32; r * c];
                    let mut xhat = vec![0.0f32; c];
                    let mut dxhat = vec![0.0f32; c];
                    for row in 0..r {
                        let (mean, rstd) = cache[row];
                        let xs = &vx.data[row * c..(row + 1) * c];
                        let gr = &gout[row * c..(row + 1) * c];
                        let mut sum_dxhat = 0.0f32;
                        let mut sum_dxhat_xhat = 0.0f32;
                        for col in 0..c {
                            xhat[col] = (xs[col] - mean) * rstd;
                            dxhat[col] = gr[col] * g[col];
                            dgamma[col] += gr[col] * xhat[col];
                            dbeta[col] += gr[col];
                            sum_dxhat += dxhat[col];
                            sum_dxhat_xhat += dxhat[col] * xhat[col];
                        }
                        let inv_c = 1.0 / c as f32;
                        for col in 0..c {
                            dx[row * c + col] = rstd
                                * (dxhat[col]
                                    - inv_c * sum_dxhat
                                    - xhat[col] * inv_c * sum_dxhat_xhat);
                        }
                    }
                    (dx, dgamma, dbeta)
                };
                self.add_grad(*x, &dx);
                self.add_grad(*gamma, &dgamma);
                self.add_grad(*beta, &dbeta);
            }
            Op::Embedding { weight, indices } => {
                let d = self.nodes[weight.0].value.cols();
                let v = self.nodes[weight.0].value.rows();
                let mut dw = vec![0.0f32; v * d];
                for (l, &idx) in indices.iter().enumerate() {
                    for col in 0..d {
                        dw[idx * d + col] += gout[l * d + col];
                    }
                }
                self.add_grad(*weight, &dw);
            }
            Op::ConcatRows(a, b) => {
                let na = self.nodes[a.0].value.len();
                self.add_grad(*a, &gout[..na]);
                self.add_grad(*b, &gout[na..]);
            }
            Op::Reshape(a) => {
                self.add_grad(*a, gout);
            }
            Op::ConcatCols(parts) => {
                let r = self.nodes[i].value.rows();
                let total_c = self.nodes[i].value.cols();
                let mut off = 0;
                for p in parts {
                    let c = self.nodes[p.0].value.cols();
                    let mut dp = vec![0.0f32; r * c];
                    for row in 0..r {
                        dp[row * c..(row + 1) * c]
                            .copy_from_slice(&gout[row * total_c + off..row * total_c + off + c]);
                    }
                    self.add_grad(*p, &dp);
                    off += c;
                }
            }
            Op::SliceRows { x, start, len } => {
                let c = self.nodes[x.0].value.cols();
                let n = self.nodes[x.0].value.len();
                let mut dx = vec![0.0f32; n];
                dx[start * c..(start + len) * c].copy_from_slice(gout);
                self.add_grad(*x, &dx);
            }
            Op::SliceCols { x, start, len } => {
                let (r, c) = (self.nodes[x.0].value.rows(), self.nodes[x.0].value.cols());
                let mut dx = vec![0.0f32; r * c];
                for row in 0..r {
                    dx[row * c + start..row * c + start + len]
                        .copy_from_slice(&gout[row * len..(row + 1) * len]);
                }
                self.add_grad(*x, &dx);
            }
            Op::Sum(a) => {
                let n = self.nodes[a.0].value.len();
                let da = vec![gout[0]; n];
                self.add_grad(*a, &da);
            }
            Op::Mean(a) => {
                let n = self.nodes[a.0].value.len();
                let da = vec![gout[0] / n as f32; n];
                self.add_grad(*a, &da);
            }
            Op::RowMean(a) => {
                let (r, c) = (self.nodes[a.0].value.rows(), self.nodes[a.0].value.cols());
                let inv = 1.0 / r as f32;
                let mut da = vec![0.0f32; r * c];
                for row in 0..r {
                    for col in 0..c {
                        da[row * c + col] = gout[col] * inv;
                    }
                }
                self.add_grad(*a, &da);
            }
            Op::LogSoftmaxGather {
                logits,
                targets,
                cache,
            } => {
                let v = self.nodes[logits.0].value.cols();
                let l = targets.len();
                let mut dl = vec![0.0f32; l * v];
                for row in 0..l {
                    let g = gout[row];
                    if g != 0.0 {
                        for col in 0..v {
                            dl[row * v + col] = -g * cache[row * v + col];
                        }
                        dl[row * v + targets[row]] += g;
                    }
                }
                self.add_grad(*logits, &dl);
            }
            Op::Conv2d { x, w, b, stride } => {
                let (cin, h, wid) = dims3(&self.nodes[x.0].value.shape);
                let (cout, _, kh, kw) = dims4(&self.nodes[w.0].value.shape);
                let (_, oh, ow) = dims3(&self.nodes[i].value.shape);
                // Borrow activations/weights in place instead of cloning them.
                let (dx, dw, db) = {
                    let xd = &self.nodes[x.0].value.data;
                    let wd = &self.nodes[w.0].value.data;
                    let mut dx = vec![0.0f32; xd.len()];
                    let mut dw = vec![0.0f32; wd.len()];
                    let mut db = vec![0.0f32; cout];
                    for co in 0..cout {
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let g = gout[(co * oh + oy) * ow + ox];
                                if g == 0.0 {
                                    continue;
                                }
                                db[co] += g;
                                for ci in 0..cin {
                                    for ky in 0..kh {
                                        let iy = oy * stride + ky;
                                        for kx in 0..kw {
                                            let ix = ox * stride + kx;
                                            let xi = ci * h * wid + iy * wid + ix;
                                            let wi = ((co * cin + ci) * kh + ky) * kw + kx;
                                            dx[xi] += g * wd[wi];
                                            dw[wi] += g * xd[xi];
                                        }
                                    }
                                }
                            }
                        }
                    }
                    (dx, dw, db)
                };
                self.add_grad(*x, &dx);
                self.add_grad(*w, &dw);
                self.add_grad(*b, &db);
            }
            Op::MaxPool2d { x, argmax, .. } => {
                let n = self.nodes[x.0].value.len();
                let mut dx = vec![0.0f32; n];
                for (o, &src) in argmax.iter().enumerate() {
                    dx[src] += gout[o];
                }
                self.add_grad(*x, &dx);
            }
            Op::AvgPool2d { x, k } => {
                let (c, h, w) = dims3(&self.nodes[x.0].value.shape);
                let (oh, ow) = (h / k, w / k);
                let inv = 1.0 / (k * k) as f32;
                let mut dx = vec![0.0f32; c * h * w];
                for ch in 0..c {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let g = gout[(ch * oh + oy) * ow + ox] * inv;
                            for ky in 0..*k {
                                for kx in 0..*k {
                                    dx[ch * h * w + (oy * k + ky) * w + ox * k + kx] += g;
                                }
                            }
                        }
                    }
                }
                self.add_grad(*x, &dx);
            }
        }
    }

    /// Route the gradients of every `param` leaf into the store's
    /// accumulated gradients.
    pub fn accumulate_grads(&self, store: &mut ParamStore) {
        for node in &self.nodes {
            if let (Op::Param(id), Some(g)) = (&node.op, &node.grad) {
                let dst = store.grad_mut(*id);
                for (d, s) in dst.iter_mut().zip(g) {
                    *d += s;
                }
            }
        }
    }
}

// ----- free helpers -----------------------------------------------------
//
// The scalar math (dot, gelu, sigmoid, …) and the matmul kernels live in
// `crate::kernels` so the tape and the grad-free infer path share one
// bit-exact implementation.

fn dims3(shape: &[usize]) -> (usize, usize, usize) {
    assert_eq!(shape.len(), 3, "expected 3-D tensor, got {shape:?}");
    (shape[0], shape[1], shape[2])
}

fn dims4(shape: &[usize]) -> (usize, usize, usize, usize) {
    assert_eq!(shape.len(), 4, "expected 4-D tensor, got {shape:?}");
    (shape[0], shape[1], shape[2], shape[3])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2(data: Vec<f32>, r: usize, c: usize) -> Tensor {
        Tensor::from_vec(data, vec![r, c])
    }

    #[test]
    fn matmul_known_values() {
        let mut g = Graph::new();
        let a = g.leaf(t2(vec![1.0, 2.0, 3.0, 4.0], 2, 2));
        let b = g.leaf(t2(vec![5.0, 6.0, 7.0, 8.0], 2, 2));
        let c = g.matmul(a, b);
        assert_eq!(g.value(c).data, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_tb_matches_matmul_with_manual_transpose() {
        let mut g = Graph::new();
        let a = g.leaf(t2(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3));
        let b = g.leaf(t2(vec![1.0, 0.0, 2.0, 0.0, 1.0, 1.0], 2, 3)); // B: [2,3]
        let c = g.matmul_tb(a, b); // A Bᵀ: [2,2]
        assert_eq!(g.value(c).data, vec![7.0, 5.0, 16.0, 11.0]);
    }

    #[test]
    fn backward_through_matmul_chain() {
        // loss = sum(A·B); dA = 1·Bᵀ broadcast, check against manual result.
        let mut g = Graph::new();
        let a = g.leaf(t2(vec![1.0, 2.0], 1, 2));
        let b = g.leaf(t2(vec![3.0, 4.0], 2, 1));
        let c = g.matmul(a, b);
        let loss = g.sum(c);
        g.backward(loss);
        assert_eq!(g.grad(a), vec![3.0, 4.0]);
        assert_eq!(g.grad(b), vec![1.0, 2.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut g = Graph::new();
        let x = g.leaf(t2(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], 2, 3));
        let s = g.softmax(x);
        for row in 0..2 {
            let sum: f32 = g.value(s).row(row).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn masked_softmax_zeroes_masked_positions() {
        let mut g = Graph::new();
        let x = g.leaf(t2(vec![1.0, 2.0, 3.0], 1, 3));
        let mask = Rc::new(vec![0.0, -1e9, 0.0]);
        let s = g.masked_softmax(x, mask);
        let v = g.value(s);
        assert!(v.data[1] < 1e-6);
        assert!((v.data[0] + v.data[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_gather_matches_manual() {
        let mut g = Graph::new();
        let logits = g.leaf(t2(vec![1.0, 2.0, 0.5, 0.0], 2, 2));
        let lp = g.log_softmax_gather(logits, Rc::new(vec![1, 0]));
        let v = g.value(lp);
        let expect0 = 2.0 - ((1.0f32).exp() + (2.0f32).exp()).ln();
        let expect1 = 0.5 - ((0.5f32).exp() + (0.0f32).exp()).ln();
        assert!((v.data[0] - expect0).abs() < 1e-5);
        assert!((v.data[1] - expect1).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_is_softmax_minus_onehot() {
        let mut g = Graph::new();
        let logits = g.leaf(t2(vec![0.0, 0.0, 0.0], 1, 3));
        let lp = g.log_softmax_gather(logits, Rc::new(vec![2]));
        let s = g.sum(lp);
        let loss = g.scale(s, -1.0);
        g.backward(loss);
        let dl = g.grad(logits);
        assert!((dl[0] - 1.0 / 3.0).abs() < 1e-5);
        assert!((dl[1] - 1.0 / 3.0).abs() < 1e-5);
        assert!((dl[2] - (1.0 / 3.0 - 1.0)).abs() < 1e-5);
    }

    #[test]
    fn embedding_gathers_and_scatters() {
        let mut g = Graph::new();
        let w = g.leaf(t2(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3, 2));
        let e = g.embedding(w, Rc::new(vec![2, 0, 2]));
        assert_eq!(g.value(e).data, vec![5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        let s = g.sum(e);
        g.backward(s);
        // Row 2 gathered twice → grad 2, row 0 once → 1, row 1 never → 0.
        assert_eq!(g.grad(w), vec![1.0, 1.0, 0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn concat_and_slice_round_trip() {
        let mut g = Graph::new();
        let a = g.leaf(t2(vec![1.0, 2.0], 1, 2));
        let b = g.leaf(t2(vec![3.0, 4.0], 1, 2));
        let cat = g.concat_rows(a, b);
        let back = g.slice_rows(cat, 1, 1);
        assert_eq!(g.value(back).data, vec![3.0, 4.0]);
        let catc = g.concat_cols(&[a, b]);
        assert_eq!(g.value(catc).data, vec![1.0, 2.0, 3.0, 4.0]);
        let col = g.slice_cols(catc, 1, 2);
        assert_eq!(g.value(col).data, vec![2.0, 3.0]);
    }

    #[test]
    fn conv2d_identity_kernel() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(
            (1..=9).map(|i| i as f32).collect(),
            vec![1, 3, 3],
        ));
        let w = g.leaf(Tensor::from_vec(vec![1.0], vec![1, 1, 1, 1]));
        let b = g.leaf(Tensor::from_vec(vec![0.5], vec![1]));
        let y = g.conv2d(x, w, b, 1);
        assert_eq!(g.value(y).shape, vec![1, 3, 3]);
        assert_eq!(g.value(y).data[0], 1.5);
        assert_eq!(g.value(y).data[8], 9.5);
    }

    #[test]
    fn conv2d_sum_kernel_and_stride() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![1.0; 16], vec![1, 4, 4]));
        let w = g.leaf(Tensor::from_vec(vec![1.0; 4], vec![1, 1, 2, 2]));
        let b = g.leaf(Tensor::from_vec(vec![0.0], vec![1]));
        let y = g.conv2d(x, w, b, 2);
        assert_eq!(g.value(y).shape, vec![1, 2, 2]);
        assert_eq!(g.value(y).data, vec![4.0; 4]);
    }

    #[test]
    fn max_pool_selects_max_and_routes_grad() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![1.0, 5.0, 2.0, 3.0], vec![1, 2, 2]));
        let y = g.max_pool2d(x, 2);
        assert_eq!(g.value(y).data, vec![5.0]);
        let s = g.sum(y);
        g.backward(s);
        assert_eq!(g.grad(x), vec![0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn avg_pool_values_and_grad() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], vec![1, 2, 2]));
        let y = g.avg_pool2d(x, 2);
        assert_eq!(g.value(y).data, vec![2.5]);
        let s = g.sum(y);
        g.backward(s);
        assert_eq!(g.grad(x), vec![0.25; 4]);
    }

    #[test]
    fn layer_norm_output_is_normalised() {
        let mut g = Graph::new();
        let x = g.leaf(t2(vec![1.0, 2.0, 3.0, 4.0], 1, 4));
        let gamma = g.leaf(Tensor::from_vec(vec![1.0; 4], vec![4]));
        let beta = g.leaf(Tensor::from_vec(vec![0.0; 4], vec![4]));
        let y = g.layer_norm(x, gamma, beta, 1e-5);
        let v = g.value(y);
        let mean: f32 = v.data.iter().sum::<f32>() / 4.0;
        let var: f32 = v.data.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn param_grads_accumulate_into_store() {
        let mut store = ParamStore::new();
        let w = store.add("w", t2(vec![1.0, 2.0], 1, 2));
        let mut g = Graph::new();
        let wv = g.param(&store, w);
        let s = g.sum(wv);
        g.backward(s);
        g.accumulate_grads(&mut store);
        assert_eq!(store.grad(w), &[1.0, 1.0]);
        // A second pass accumulates on top.
        let mut g2 = Graph::new();
        let wv2 = g2.param(&store, w);
        let s2 = g2.sum(wv2);
        g2.backward(s2);
        g2.accumulate_grads(&mut store);
        assert_eq!(store.grad(w), &[2.0, 2.0]);
    }

    #[test]
    fn log_sigmoid_is_stable_at_extremes() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![-100.0, 0.0, 100.0], vec![3]));
        let y = g.log_sigmoid(x);
        let v = g.value(y);
        assert!((v.data[0] + 100.0).abs() < 1e-3);
        assert!((v.data[1] - (0.5f32).ln()).abs() < 1e-5);
        assert!(v.data[2].abs() < 1e-3);
        assert!(v.all_finite());
    }

    #[test]
    fn row_mean_values_and_grad() {
        let mut g = Graph::new();
        let x = g.leaf(t2(vec![1.0, 2.0, 3.0, 4.0], 2, 2));
        let m = g.row_mean(x);
        assert_eq!(g.value(m).data, vec![2.0, 3.0]);
        let s = g.sum(m);
        g.backward(s);
        assert_eq!(g.grad(x), vec![0.5; 4]);
    }
}
