//! Small random-sampling helpers on top of `rand`.
//!
//! `rand_distr` is deliberately not a dependency; the two distributions the
//! workspace needs (standard normal, Gumbel for sampling without replacement)
//! are implemented here.

use rand::Rng;

/// Standard normal sample via the Box–Muller transform.
pub fn normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // Avoid ln(0) by sampling u1 from the half-open (0, 1].
    let u1: f32 = 1.0 - rng.random::<f32>();
    let u2: f32 = rng.random::<f32>();
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// Normal sample with the given mean and standard deviation.
pub fn normal_with<R: Rng + ?Sized>(rng: &mut R, mean: f32, std: f32) -> f32 {
    mean + std * normal(rng)
}

/// Standard Gumbel(0, 1) sample: `-ln(-ln(U))`.
pub fn gumbel<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u: f32 = rng.random::<f32>().clamp(1e-10, 1.0 - 1e-7);
    -(-u.ln()).ln()
}

/// Sample an index from unnormalised log-weights (softmax sampling) using
/// the Gumbel-max trick.  Temperature 0 or below degrades to argmax.
pub fn sample_logits<R: Rng + ?Sized>(rng: &mut R, logits: &[f32], temperature: f32) -> usize {
    assert!(!logits.is_empty());
    if temperature <= 0.0 {
        return crate::tensor::argmax(logits);
    }
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &l) in logits.iter().enumerate() {
        let v = l / temperature + gumbel(rng);
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean: f32 = xs.iter().sum::<f32>() / n as f32;
        let var: f32 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
        assert!(xs.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn normal_with_shifts() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mean: f32 = (0..n).map(|_| normal_with(&mut rng, 3.0, 0.5)).sum::<f32>() / n as f32;
        assert!((mean - 3.0).abs() < 0.05);
    }

    #[test]
    fn sample_logits_zero_temperature_is_argmax() {
        let mut rng = StdRng::seed_from_u64(0);
        let logits = [0.1, 5.0, -2.0];
        for _ in 0..10 {
            assert_eq!(sample_logits(&mut rng, &logits, 0.0), 1);
        }
    }

    #[test]
    fn sample_logits_matches_softmax_frequencies() {
        let mut rng = StdRng::seed_from_u64(123);
        let logits = [0.0f32, 1.0];
        let n = 20_000;
        let ones = (0..n)
            .filter(|_| sample_logits(&mut rng, &logits, 1.0) == 1)
            .count();
        let p1 = ones as f32 / n as f32;
        let expect = 1.0 / (1.0 + (-1.0f32).exp());
        assert!((p1 - expect).abs() < 0.02, "p1 {p1} expect {expect}");
    }

    #[test]
    fn low_temperature_sharpens() {
        let mut rng = StdRng::seed_from_u64(5);
        let logits = [0.0f32, 1.0];
        let n = 5_000;
        let ones = (0..n)
            .filter(|_| sample_logits(&mut rng, &logits, 0.2) == 1)
            .count();
        assert!(ones as f32 / n as f32 > 0.95);
    }

    #[test]
    fn gumbel_is_finite() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            assert!(gumbel(&mut rng).is_finite());
        }
    }
}
