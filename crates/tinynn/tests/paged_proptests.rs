//! Property tests for the paged KV slab: the page table must mirror the
//! flat `KvCache` bit-for-bit under arbitrary append/truncate/clone
//! interleavings, and the slab must neither leak nor double-free pages.

use proptest::prelude::*;
use std::sync::Arc;
use tinynn::infer::{attend_paged, attend_row, KvCache, PageSlab, PagedKv, PagesExhausted};

fn row(tag: usize, d: usize, phase: f32) -> Vec<f32> {
    (0..d)
        .map(|i| ((tag * d + i) as f32 * phase).sin())
        .collect()
}

/// One scripted step against the paged cache and its flat mirror.
/// `arg` parameterizes the step (truncation point, etc.).
fn op_strategy() -> impl Strategy<Value = (u8, usize)> {
    (0u8..4, 0usize..32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Append/truncate/snapshot/restore on `PagedKv` matches a flat
    /// `KvCache` mirror row-for-row at any page size, and every page goes
    /// back to the slab when the sequences drop.
    #[test]
    fn paged_mirrors_flat_and_never_leaks(
        page_rows in 1usize..6,
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let d = 3;
        let slab = PageSlab::new(d, page_rows, 0);
        let mut kv = PagedKv::new(Arc::clone(&slab));
        let mut flat = KvCache::new(d, 64);
        // (paged, flat) snapshots — clones share pages with the live pair.
        let mut stack: Vec<(PagedKv, KvCache)> = Vec::new();
        let mut tag = 0usize;
        for (kind, arg) in ops {
            match kind {
                0 => {
                    let (k, v) = (row(tag, d, 0.37), (row(tag, d, 0.71)));
                    kv.append(&k, &v).unwrap();
                    flat.append(&k, &v);
                    tag += 1;
                }
                1 => {
                    let to = arg % (kv.len() + 1);
                    kv.truncate(to);
                    flat.truncate(to);
                }
                2 => stack.push((kv.clone(), flat.clone())),
                _ => {
                    if let Some((pk, fl)) = stack.pop() {
                        kv = pk;
                        flat = fl;
                    }
                }
            }
            prop_assert_eq!(kv.len(), flat.len());
        }
        stack.push((kv, flat));
        for (pk, fl) in &stack {
            prop_assert_eq!(pk.len(), fl.len());
            for i in 0..pk.len() {
                prop_assert_eq!(pk.k_row(i), fl.k_row(i));
                prop_assert_eq!(pk.v_row(i), fl.v_row(i));
            }
        }
        let peak = slab.peak_pages();
        prop_assert!(slab.pages_in_use() <= peak);
        drop(stack);
        // No leak: every page is back on the free list...
        prop_assert_eq!(slab.pages_in_use(), 0);
        // ...and no double-free: the free list cannot exceed what was made.
        prop_assert_eq!(slab.pages_total(), peak);
    }

    /// Paged attention equals flat attention bitwise, for any page size and
    /// cache length.
    #[test]
    fn attend_paged_is_bitwise_flat(
        page_rows in 1usize..6,
        rows in 1usize..20,
        qtag in 100usize..200,
    ) {
        let (d, heads) = (6, 2);
        let scale = 1.0 / ((d / heads) as f32).sqrt();
        let mut flat = KvCache::new(d, rows);
        let slab = PageSlab::new(d, page_rows, 0);
        let mut kv = PagedKv::new(slab);
        for p in 0..rows {
            let (k, v) = (row(p, d, 0.37), row(p, d, 0.71));
            flat.append(&k, &v);
            kv.append(&k, &v).unwrap();
        }
        let q = row(qtag, d, 0.13);
        let (mut want, mut got) = (vec![0.0f32; d], vec![0.0f32; d]);
        let mut scratch = Vec::new();
        attend_row(&mut want, &q, &flat, heads, scale, &mut scratch);
        attend_paged(&mut got, &q, &kv, heads, scale, &mut scratch);
        prop_assert_eq!(got, want);
    }

    /// A bounded slab never exceeds its bound, fails appends cleanly
    /// (sequence state unchanged), and recovers once pages free up.
    #[test]
    fn bounded_slab_upholds_its_bound(
        page_rows in 1usize..4,
        max_pages in 1usize..5,
        appends in 1usize..24,
    ) {
        let d = 2;
        let slab = PageSlab::new(d, page_rows, max_pages);
        let mut kv = PagedKv::new(Arc::clone(&slab));
        let mut accepted = 0usize;
        for p in 0..appends {
            let (k, v) = (row(p, d, 0.3), row(p, d, 0.7));
            match kv.append(&k, &v) {
                Ok(()) => accepted += 1,
                Err(PagesExhausted) => {
                    prop_assert_eq!(kv.len(), accepted);
                    break;
                }
            }
            prop_assert!(slab.pages_in_use() <= max_pages);
        }
        prop_assert_eq!(kv.len(), accepted);
        prop_assert_eq!(accepted, appends.min(max_pages * page_rows));
        kv.truncate(0);
        prop_assert_eq!(slab.pages_in_use(), 0);
        // Recovery: the freed pages are allocatable again.
        kv.append(&row(99, d, 0.3), &row(99, d, 0.7)).unwrap();
        prop_assert_eq!(slab.pages_in_use(), 1);
    }
}
