//! Property-based tests for the autodiff engine.

use proptest::prelude::*;
use std::rc::Rc;
use tinynn::{Graph, ParamStore, Tensor};

fn finite_vec(n: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-3.0f32..3.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Softmax rows are valid probability distributions for any input.
    #[test]
    fn softmax_rows_are_distributions(data in finite_vec(12)) {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(data, vec![3, 4]));
        let s = g.softmax(x);
        let v = g.value(s);
        for row in 0..3 {
            let r = v.row(row);
            prop_assert!(r.iter().all(|&p| (0.0..=1.0).contains(&p)));
            prop_assert!((r.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        }
    }

    /// matmul distributes over addition: (A + B)·C = A·C + B·C.
    #[test]
    fn matmul_distributes(a in finite_vec(6), b in finite_vec(6), c in finite_vec(6)) {
        let mut g = Graph::new();
        let av = g.leaf(Tensor::from_vec(a, vec![2, 3]));
        let bv = g.leaf(Tensor::from_vec(b, vec![2, 3]));
        let cv = g.leaf(Tensor::from_vec(c, vec![3, 2]));
        let sum = g.add(av, bv);
        let lhs = g.matmul(sum, cv);
        let ac = g.matmul(av, cv);
        let bc = g.matmul(bv, cv);
        let rhs = g.add(ac, bc);
        for (x, y) in g.value(lhs).data.iter().zip(&g.value(rhs).data) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// matmul_tb(A, B) equals matmul(A, Bᵀ) computed by hand.
    #[test]
    fn matmul_tb_consistent(a in finite_vec(6), b in finite_vec(6)) {
        let mut g = Graph::new();
        let av = g.leaf(Tensor::from_vec(a, vec![2, 3]));
        let bv = g.leaf(Tensor::from_vec(b.clone(), vec![2, 3]));
        let tb = g.matmul_tb(av, bv);
        // Transpose b manually: [3, 2].
        let mut bt = vec![0.0f32; 6];
        for i in 0..2 {
            for j in 0..3 {
                bt[j * 2 + i] = b[i * 3 + j];
            }
        }
        let btv = g.leaf(Tensor::from_vec(bt, vec![3, 2]));
        let mm = g.matmul(av, btv);
        for (x, y) in g.value(tb).data.iter().zip(&g.value(mm).data) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Gradient of sum(x·w) w.r.t. w is exactly x, for any x.
    #[test]
    fn linear_gradient_is_input(x in finite_vec(4)) {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::zeros(vec![4, 1]));
        let mut g = Graph::new();
        let wv = g.param(&store, w);
        let xv = g.leaf(Tensor::from_vec(x.clone(), vec![1, 4]));
        let y = g.matmul(xv, wv);
        let s = g.sum(y);
        g.backward(s);
        g.accumulate_grads(&mut store);
        for (gi, xi) in store.grad(w).iter().zip(&x) {
            prop_assert!((gi - xi).abs() < 1e-5);
        }
    }

    /// log_softmax_gather values are valid log-probabilities (≤ 0) and
    /// exponentiate to the softmax entries.
    #[test]
    fn log_softmax_gather_consistent(data in finite_vec(8), t0 in 0usize..4, t1 in 0usize..4) {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(data, vec![2, 4]));
        let lp = g.log_softmax_gather(x, Rc::new(vec![t0, t1]));
        let sm = g.softmax(x);
        let lpv = g.value(lp).data.clone();
        let smv = g.value(sm);
        prop_assert!(lpv.iter().all(|&l| l <= 1e-6));
        prop_assert!((lpv[0].exp() - smv.at(0, t0)).abs() < 1e-4);
        prop_assert!((lpv[1].exp() - smv.at(1, t1)).abs() < 1e-4);
    }

    /// Mean backward spreads the gradient uniformly.
    #[test]
    fn mean_gradient_uniform(data in finite_vec(6)) {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(data, vec![6]));
        let m = g.mean(x);
        g.backward(m);
        for gi in g.grad(x) {
            prop_assert!((gi - 1.0 / 6.0).abs() < 1e-6);
        }
    }

    /// Slice/concat of rows are mutually inverse.
    #[test]
    fn slice_concat_inverse(data in finite_vec(12)) {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(data.clone(), vec![4, 3]));
        let top = g.slice_rows(x, 0, 2);
        let bottom = g.slice_rows(x, 2, 2);
        let back = g.concat_rows(top, bottom);
        prop_assert_eq!(&g.value(back).data, &data);
    }

    /// The blocked/packed matmul kernel is *bit-identical* to the naive
    /// reference loop for arbitrary shapes and data, zeros included —
    /// every blocking decision must preserve the k-accumulation order.
    #[test]
    fn blocked_matmul_bit_identical_to_reference(
        r in 1usize..48,
        k in 1usize..48,
        c in 1usize..48,
        seed in 0u32..u32::MAX,
        zero_every in 2usize..9,
    ) {
        // Deterministic irregular data from the seed, with exact zeros
        // sprinkled in to exercise the skip path.
        let gen = |n: usize, salt: u32| -> Vec<f32> {
            (0..n)
                .map(|i| {
                    if i % zero_every == 0 {
                        0.0
                    } else {
                        let h = (i as u32)
                            .wrapping_mul(2_654_435_761)
                            .wrapping_add(seed ^ salt);
                        ((h >> 8) as f32 / 1e6).sin()
                    }
                })
                .collect()
        };
        let a = gen(r * k, 0xA);
        let b = gen(k * c, 0xB);
        // Reference: increasing-k accumulation with the exact-zero skip.
        let mut want = vec![0.0f32; r * c];
        for i in 0..r {
            for kk in 0..k {
                let aik = a[i * k + kk];
                if aik != 0.0 {
                    for cc in 0..c {
                        want[i * c + cc] += aik * b[kk * c + cc];
                    }
                }
            }
        }
        prop_assert_eq!(tinynn::kernels::matmul(&a, &b, r, k, c), want);
    }

    /// The fast register-blocked tier is bit-identical to the exact tier
    /// on finite data for *adversarial* shapes: r/k/c deliberately not
    /// multiples of the micro-panel sizes (MR=4, NR=32/16/8/4), k=0,
    /// c=1, single rows — and at 1/2/4 threads the fast tier returns the
    /// same bits regardless of thread count.
    #[test]
    fn fast_tier_bit_identical_across_shapes_and_threads(
        r in 1usize..70,
        k in 0usize..70,    // k == 0 is a valid (all-zero) product
        c in 1usize..70,
        seed in 0u32..u32::MAX,
        zero_every in 2usize..9,
    ) {
        use tinynn::kernels::{matmul_with, KernelTier};
        let gen = |n: usize, salt: u32| -> Vec<f32> {
            (0..n)
                .map(|i| {
                    if i % zero_every == 0 {
                        0.0
                    } else {
                        let h = (i as u32)
                            .wrapping_mul(2_654_435_761)
                            .wrapping_add(seed ^ salt);
                        ((h >> 8) as f32 / 1e6).sin()
                    }
                })
                .collect()
        };
        let a = gen(r * k, 0xA);
        let b = gen(k * c, 0xB);
        let oracle = matmul_with(KernelTier::Exact, &a, &b, r, k, c);
        let mut per_thread = Vec::new();
        for threads in [1usize, 2, 4] {
            runtime::set_threads(threads);
            per_thread.push(matmul_with(KernelTier::Fast, &a, &b, r, k, c));
        }
        runtime::set_threads(0);
        for (i, fast) in per_thread.iter().enumerate() {
            prop_assert_eq!(fast, &oracle, "threads index {}", i);
        }
    }

    /// All exact-tier scalar kernels share one zero-skip contract: a term
    /// whose left operand is exactly 0.0 is dropped even when the right
    /// operand is NaN or ±Inf, so `dot`, `matmul` (both dispatch arms)
    /// and `linear_row` agree bit-for-bit on non-finite payloads instead
    /// of diverging by dispatch shape.
    #[test]
    fn exact_kernels_agree_on_nonfinite_payloads(
        r in 1usize..6,
        k in 1usize..24,
        c in 1usize..24,
        seed in 0u32..u32::MAX,
        zero_every in 2usize..5,
        poison_every in 2usize..5,
    ) {
        use tinynn::kernels::{dot, linear_row_with, matmul_with, KernelTier};
        // a: exact zeros sprinkled in; b: NaN/Inf poison sprinkled in.
        let a: Vec<f32> = (0..r * k)
            .map(|i| {
                if i % zero_every == 0 {
                    0.0
                } else {
                    let h = (i as u32).wrapping_mul(2_654_435_761).wrapping_add(seed);
                    ((h >> 8) as f32 / 1e6).sin()
                }
            })
            .collect();
        let b: Vec<f32> = (0..k * c)
            .map(|i| {
                if i % poison_every == 0 {
                    match i % 3 {
                        0 => f32::NAN,
                        1 => f32::INFINITY,
                        _ => f32::NEG_INFINITY,
                    }
                } else {
                    let h = (i as u32).wrapping_mul(0x9E37_79B9).wrapping_add(seed);
                    ((h >> 8) as f32 / 1e6).cos()
                }
            })
            .collect();
        // Reference with the uniform skip contract.
        let mut want = vec![0.0f32; r * c];
        for i in 0..r {
            for kk in 0..k {
                let aik = a[i * k + kk];
                if aik != 0.0 {
                    for cc in 0..c {
                        want[i * c + cc] += aik * b[kk * c + cc];
                    }
                }
            }
        }
        let to_bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
        // matmul (covers both the streaming and packed dispatch arms
        // depending on shape).
        let mm = matmul_with(KernelTier::Exact, &a, &b, r, k, c);
        prop_assert_eq!(to_bits(&mm), to_bits(&want));
        // linear_row over the first activation row.
        let zeros = vec![0.0f32; c];
        let mut lr = vec![0.0f32; c];
        linear_row_with(KernelTier::Exact, &mut lr, &a[..k], &b, &zeros);
        prop_assert_eq!(to_bits(&lr), to_bits(&want[..c]));
        // dot over the transposed layout (matmul_tb's per-element kernel).
        let mut bt = vec![0.0f32; c * k];
        for kk in 0..k {
            for j in 0..c {
                bt[j * k + kk] = b[kk * c + j];
            }
        }
        for (i, row) in want.chunks_exact(c).enumerate() {
            for j in 0..c {
                let d = dot(&a[i * k..(i + 1) * k], &bt[j * k..(j + 1) * k]);
                prop_assert_eq!(d.to_bits(), row[j].to_bits(), "element ({}, {})", i, j);
            }
        }
    }

    /// The packed-weights row kernel (padded aligned stride, the layout
    /// Fast-tier serve sessions pre-build) is bit-identical to the exact
    /// kernel at every shape, including strides that round `c` up.
    #[test]
    fn packed_linear_row_bit_identical_at_any_shape(
        k in 0usize..48,
        c in 1usize..100,
        x in proptest::collection::vec(-3.0f32..3.0, 48),
        w in proptest::collection::vec(-3.0f32..3.0, 48 * 100),
    ) {
        use tinynn::kernels::{linear_row_packed, linear_row_with, KernelTier, PackedWeights};
        let x = &x[..k];
        let w = &w[..k * c];
        let pw = PackedWeights::pack(w, k, c);
        let zeros = vec![0.0f32; c];
        let mut exact = vec![0.0f32; c];
        linear_row_with(KernelTier::Exact, &mut exact, x, w, &zeros);
        let mut packed = vec![0.0f32; c];
        linear_row_packed(&mut packed, x, &pw, &zeros);
        let to_bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
        prop_assert_eq!(to_bits(&exact), to_bits(&packed));
    }

    /// The q8 weight-quantized row kernel stays within its documented
    /// analytic error bound against the exact kernel, for any data.
    #[test]
    fn q8_linear_row_within_documented_bound(
        k in 1usize..48,
        c in 1usize..48,
        x in proptest::collection::vec(-3.0f32..3.0, 48),
        w in proptest::collection::vec(-3.0f32..3.0, 48 * 48),
    ) {
        use tinynn::kernels::{linear_row_with, linear_row_q8, KernelTier, Q8Weights};
        let x = &x[..k];
        let w = &w[..k * c];
        let qw = Q8Weights::quantize(w, k, c);
        let zeros = vec![0.0f32; c];
        let mut exact = vec![0.0f32; c];
        linear_row_with(KernelTier::Exact, &mut exact, x, w, &zeros);
        let mut q8 = vec![0.0f32; c];
        linear_row_q8(&mut q8, x, &qw, &zeros);
        for j in 0..c {
            let bound = qw.row_error_bound(x, j) * 1.001 + 1e-5;
            prop_assert!(
                (q8[j] - exact[j]).abs() <= bound,
                "col {}: |{} - {}| > {}", j, q8[j], exact[j], bound
            );
        }
    }
}
