//! Classification invariance across kernel tiers: the fast
//! register-blocked kernels must not change a single decision anywhere in
//! the `Describe → Assess → Highlight` chain.  For every video in a smoke
//! corpus, an `Exact`-tier session and a `Fast`-tier session must produce
//! the same assess label, the same highlighted rationale regions, and the
//! same grammar-constrained description token choices (the description
//! *is* the sequence of constrained choices, so AuSet equality is choice
//! equality).  This holds exactly — not within a tolerance — because the
//! fast tier is bit-identical to the exact oracle on finite inputs (see
//! the tinynn kernels module docs).

use chain_reason::{PipelineConfig, StressPipeline};
use lfm::{InferSession, Lfm, ModelConfig};
use tinynn::kernels::KernelTier;
use videosynth::dataset::{Dataset, DatasetProfile, Scale};

fn pipeline(seed: u64) -> StressPipeline {
    StressPipeline::new(Lfm::new(ModelConfig::tiny(), seed), PipelineConfig::smoke())
}

#[test]
fn chain_decisions_identical_across_exact_and_fast_tiers() {
    for seed in [3u64, 11] {
        let p = pipeline(seed);
        let ds = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), seed);
        assert!(!ds.samples.is_empty());
        for (vi, video) in ds.samples.iter().enumerate() {
            let mut exact = InferSession::with_tier(&p.model, KernelTier::Exact);
            let mut fast = InferSession::with_tier(&p.model, KernelTier::Fast);
            let out_exact = p.predict_with_session(&mut exact, video, seed);
            let out_fast = p.predict_with_session(&mut fast, video, seed);
            // ChainOutput equality covers all three invariance claims:
            // description (grammar-constrained token choices), assessment
            // (assess label), rationale (highlight regions).
            assert_eq!(out_exact, out_fast, "seed={seed} video={vi}");
        }
    }
}

#[test]
fn stress_scores_identical_across_exact_and_fast_tiers() {
    let seed = 7u64;
    let p = pipeline(seed);
    let ds = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), seed);
    for video in ds.samples.iter().take(4) {
        let mut exact = InferSession::with_tier(&p.model, KernelTier::Exact);
        let mut fast = InferSession::with_tier(&p.model, KernelTier::Fast);
        let (out_e, score_e) = p.predict_scored_with_session(&mut exact, video, seed);
        let (out_f, score_f) = p.predict_scored_with_session(&mut fast, video, seed);
        assert_eq!(out_e, out_f);
        // Scores are f32 computed from bit-identical logits: exactly equal.
        assert_eq!(score_e.to_bits(), score_f.to_bits());
    }
}
