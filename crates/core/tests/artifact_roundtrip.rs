//! Artifact round-trip equivalence: a pipeline loaded from an `SRCR1`
//! checkpoint must be indistinguishable from the one that was saved —
//! byte-identical artifact re-serialization and bit-identical predictions,
//! across seeds and worker-pool widths.

use chain_reason::artifact::{self, ArtifactMeta};
use chain_reason::{PipelineConfig, StressPipeline};
use lfm::{Lfm, ModelConfig};
use runtime::Pool;
use videosynth::dataset::{Dataset, DatasetProfile, Scale};
use videosynth::world::WorldConfig;

fn meta(seed: u64) -> ArtifactMeta {
    ArtifactMeta {
        name: "uvsd_sim".to_string(),
        version: 1,
        scale: 0.25,
        variant: "Full".to_string(),
        seed,
        git: "test".to_string(),
    }
}

#[test]
fn loaded_pipeline_is_bitwise_identical_across_seeds_and_thread_counts() {
    for seed in [3u64, 11] {
        let original =
            StressPipeline::new(Lfm::new(ModelConfig::tiny(), seed), PipelineConfig::smoke());
        let world = WorldConfig::uvsd_like();

        // Serialization is reproducible (no timestamps, shortest-round-trip
        // float formatting), and survives a load → save cycle unchanged.
        let bytes = artifact::pipeline_to_bytes(&original, &world, &meta(seed)).unwrap();
        let again = artifact::pipeline_to_bytes(&original, &world, &meta(seed)).unwrap();
        assert_eq!(bytes, again, "artifact bytes are not reproducible");

        let loaded = artifact::load_pipeline_from_bytes(&bytes).unwrap();
        let resaved =
            artifact::pipeline_to_bytes(&loaded.pipeline, &loaded.world, &loaded.meta).unwrap();
        assert_eq!(bytes, resaved, "load → save changed the artifact bytes");

        // The loaded pipeline predicts bit-identically to the original, no
        // matter how many workers evaluate the batch.
        let ds = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), seed);
        let samples = &ds.samples[..4.min(ds.samples.len())];
        let reference: Vec<_> = samples
            .iter()
            .map(|v| original.predict_scored(v, seed))
            .collect();
        for threads in [1usize, 2, 4] {
            let got =
                Pool::new(threads).par_map(samples, |_, v| loaded.pipeline.predict_scored(v, seed));
            for (i, ((out, score), (ref_out, ref_score))) in got.iter().zip(&reference).enumerate()
            {
                assert_eq!(
                    out, ref_out,
                    "chain output differs (threads={threads}, sample {i})"
                );
                assert_eq!(
                    score.to_bits(),
                    ref_score.to_bits(),
                    "score bits differ (threads={threads}, sample {i})"
                );
            }
        }
    }
}
