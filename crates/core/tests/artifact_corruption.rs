//! Corruption properties of the `SRCR1` artifact loader: every strict
//! truncation and every single-bit flip must be rejected with a typed
//! error — never a panic, never a silent misload.

use std::sync::OnceLock;

use chain_reason::artifact::{self, ArtifactMeta};
use chain_reason::{PipelineConfig, StressPipeline};
use lfm::{Lfm, ModelConfig};
use proptest::prelude::*;
use videosynth::world::WorldConfig;

/// One small artifact, built once and shared by every property case.
fn artifact_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let pipeline =
            StressPipeline::new(Lfm::new(ModelConfig::tiny(), 5), PipelineConfig::smoke());
        let meta = ArtifactMeta {
            name: "uvsd_sim".to_string(),
            version: 1,
            scale: 0.25,
            variant: "Full".to_string(),
            seed: 5,
            git: "test".to_string(),
        };
        artifact::pipeline_to_bytes(&pipeline, &WorldConfig::uvsd_like(), &meta).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn truncations_are_always_rejected(frac in 0usize..10_000) {
        let bytes = artifact_bytes();
        // A strict prefix, anywhere from empty to one byte short.
        let cut = frac * bytes.len() / 10_000;
        let result = artifact::load_pipeline_from_bytes(&bytes[..cut]);
        prop_assert!(result.is_err(), "truncation to {} of {} bytes loaded", cut, bytes.len());
    }

    #[test]
    fn single_bit_flips_are_always_rejected(frac in 0usize..10_000, bit in 0u32..8) {
        let bytes = artifact_bytes();
        let i = (frac * bytes.len() / 10_000).min(bytes.len() - 1);
        let mut corrupt = bytes.to_vec();
        corrupt[i] ^= 1u8 << bit;
        let result = artifact::load_pipeline_from_bytes(&corrupt);
        prop_assert!(result.is_err(), "bit {} of byte {} flipped and still loaded", bit, i);
    }
}
