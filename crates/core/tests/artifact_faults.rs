//! End-to-end fault injection on the artifact *file* path: a seeded
//! `runtime::faults` plan corrupts real `load_pipeline` reads mid-stream,
//! and every failure mode must surface as a typed `ArtifactError` — never
//! a panic, never a silently wrong model.

use chain_reason::artifact::{
    load_pipeline, save_pipeline, ArtifactError, ArtifactMeta, FAULT_ARTIFACT_READ,
};
use chain_reason::{PipelineConfig, StressPipeline};
use lfm::Lfm;
use runtime::faults::{self, FaultKind, FaultPlan};
use std::sync::{Mutex, MutexGuard};
use videosynth::world::WorldConfig;

/// The fault plan is process-global; serialise the tests that arm it.
fn lock() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

fn saved_artifact(dir: &str) -> std::path::PathBuf {
    let cfg = PipelineConfig::smoke();
    let pipeline = StressPipeline::new(Lfm::new(cfg.model.clone(), 5), cfg);
    let meta = ArtifactMeta {
        name: "uvsd_sim".to_string(),
        version: 1,
        scale: 0.25,
        variant: "full".to_string(),
        seed: 5,
        git: "test".to_string(),
    };
    let dir = std::env::temp_dir().join(dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("uvsd_sim.srcr");
    save_pipeline(&path, &pipeline, &WorldConfig::uvsd_like(), &meta).unwrap();
    path
}

#[test]
fn injected_read_faults_become_typed_errors_and_recovery_works() {
    let _g = lock();
    let path = saved_artifact("srcr_artifact_fault_test");

    // Clean load first: the file is good.
    faults::disarm();
    let clean = load_pipeline(&path).expect("clean load");

    // Truncation mid-stream: the second read call reports EOF, so the
    // loader sees a short byte stream — a container-level error.
    faults::arm(FaultPlan::new(3).with(FAULT_ARTIFACT_READ, FaultKind::Truncate, 1.0));
    match load_pipeline(&path) {
        Err(ArtifactError::Container(_)) | Err(ArtifactError::Io(_)) => {}
        other => panic!("truncated load gave {other:?}"),
    }

    // Interleaved corruption: every faulted read flips a bit; the
    // per-section CRCs must catch it.
    faults::arm(FaultPlan::new(3).with(FAULT_ARTIFACT_READ, FaultKind::Corrupt, 1.0));
    match load_pipeline(&path) {
        Err(ArtifactError::Container(_)) => {}
        other => panic!("corrupted load gave {other:?}"),
    }

    // Sporadic corruption at a seeded rate: deterministic across runs.
    faults::arm(FaultPlan::new(9).with(FAULT_ARTIFACT_READ, FaultKind::Corrupt, 0.5));
    let a = load_pipeline(&path)
        .map(|l| l.content_hash)
        .err()
        .map(|e| e.to_string());
    faults::arm(FaultPlan::new(9).with(FAULT_ARTIFACT_READ, FaultKind::Corrupt, 0.5));
    let b = load_pipeline(&path)
        .map(|l| l.content_hash)
        .err()
        .map(|e| e.to_string());
    assert_eq!(a, b, "same seed, same faults, same outcome");

    // I/O errors propagate as Io.
    faults::arm(FaultPlan::new(3).with(FAULT_ARTIFACT_READ, FaultKind::Error, 1.0));
    match load_pipeline(&path) {
        Err(ArtifactError::Io(_)) => {}
        other => panic!("io-faulted load gave {other:?}"),
    }

    // Disarm: the very same file loads bit-identically again.
    faults::disarm();
    let again = load_pipeline(&path).expect("recovered load");
    assert_eq!(again.content_hash, clean.content_hash);
    assert_eq!(again.meta, clean.meta);

    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn capped_fault_lets_a_retry_succeed() {
    let _g = lock();
    let path = saved_artifact("srcr_artifact_fault_retry");

    // Exactly one fault: the first load fails, the retry goes through —
    // the transient-fault-then-recover pattern reload rollback relies on.
    faults::arm(FaultPlan::new(1).with_capped(FAULT_ARTIFACT_READ, FaultKind::Error, 1.0, 1));
    assert!(load_pipeline(&path).is_err(), "first load must fault");
    let ok = load_pipeline(&path);
    faults::disarm();
    assert!(ok.is_ok(), "retry after the capped fault must succeed");

    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}
