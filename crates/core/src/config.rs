//! Pipeline hyper-parameters (§IV-H plus the self-refinement knobs).

use std::fmt;

use facs::region::FACE_SIZE;
use lfm::ModelConfig;

/// A rejected [`PipelineConfig`] field combination.
///
/// Construction through [`PipelineConfigBuilder`] surfaces these instead of
/// panicking downstream (e.g. inside model construction), so servers and
/// CLIs can report bad configs as errors rather than crashes.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// An architecture constraint does not hold (e.g. `heads` must divide
    /// `d_model`).
    Model { reason: String },
    /// A count field that must be at least one is zero.
    ZeroCount { field: &'static str },
    /// A float field is outside its valid range or not finite.
    BadFloat { field: &'static str, value: f32 },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Model { reason } => write!(f, "invalid model config: {reason}"),
            ConfigError::ZeroCount { field } => write!(f, "{field} must be at least 1"),
            ConfigError::BadFloat { field, value } => {
                write!(f, "{field} must be positive and finite, got {value}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Everything Algorithm 1 needs besides the data.
#[derive(Clone, Debug, PartialEq)]
pub struct PipelineConfig {
    /// Architecture of the underlying foundation model.
    pub model: ModelConfig,
    /// K — repeats used for the helpfulness and faithfulness scores
    /// (§III-C prompts the model K times with different random seeds).
    pub k_repeats: usize,
    /// Maximum self-reflection rounds per description (the paper's
    /// do-while loop, bounded for termination).
    pub max_reflection_rounds: usize,
    /// n — number of reflected rationales to score (§III-D).
    pub n_rationales: usize,
    /// DPO β (0.1 in §IV-H).
    pub dpo_beta: f32,
    /// Sampling temperature for generation during refinement.
    pub temperature: f32,
    /// Epochs for the describe instruction tuning (Eq. 2).
    pub describe_epochs: usize,
    /// Epochs for the assess tuning (Eq. 4).
    pub assess_epochs: usize,
    /// Epochs for each DPO phase (Eq. 3 / Eq. 5).
    pub dpo_epochs: usize,
    /// Learning rate for the SFT phases.
    pub sft_lr: f32,
    /// Learning rate for the DPO phases.
    pub dpo_lr: f32,
    /// Base RNG seed for the whole training run.
    pub seed: u64,
}

impl PipelineConfig {
    /// Experiment defaults (mirrors §IV-H where applicable; the iteration
    /// counts are scaled to the miniature model).
    pub fn default_experiment() -> Self {
        PipelineConfig {
            model: ModelConfig::small(),
            k_repeats: 3,
            max_reflection_rounds: 2,
            n_rationales: 3,
            dpo_beta: 0.1,
            temperature: 0.8,
            describe_epochs: 4,
            assess_epochs: 4,
            dpo_epochs: 2,
            sft_lr: 2e-3,
            dpo_lr: 5e-4,
            seed: 0,
        }
    }

    /// Small/fast settings for tests.
    pub fn smoke() -> Self {
        PipelineConfig {
            model: ModelConfig::tiny(),
            k_repeats: 2,
            max_reflection_rounds: 1,
            n_rationales: 2,
            dpo_beta: 0.1,
            temperature: 0.8,
            describe_epochs: 6,
            assess_epochs: 8,
            dpo_epochs: 1,
            sft_lr: 5e-3,
            dpo_lr: 1e-3,
            seed: 0,
        }
    }

    /// Start a validated builder seeded with [`default_experiment`]
    /// (`Self::default_experiment`) values.
    pub fn builder() -> PipelineConfigBuilder {
        PipelineConfigBuilder::new()
    }

    /// Check every field combination this pipeline relies on.  Called by
    /// [`PipelineConfigBuilder::build`] and by the artifact loader, so a
    /// corrupt or hand-edited config is rejected before any model exists.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let m = &self.model;
        let model_err = |reason: String| ConfigError::Model { reason };
        if m.d_model == 0 || m.heads == 0 || !m.d_model.is_multiple_of(m.heads) {
            return Err(model_err(format!(
                "heads ({}) must divide d_model ({})",
                m.heads, m.d_model
            )));
        }
        if m.patch == 0 || !FACE_SIZE.is_multiple_of(m.patch) {
            return Err(model_err(format!(
                "patch ({}) must divide the face size ({FACE_SIZE})",
                m.patch
            )));
        }
        let side = FACE_SIZE / m.patch;
        let pf = side * side;
        if m.vis_tokens == 0 || !pf.is_multiple_of(m.vis_tokens) {
            return Err(model_err(format!(
                "vis_tokens ({}) must divide the {pf} patch features",
                m.vis_tokens
            )));
        }
        for (field, n) in [
            ("model.layers", m.layers),
            ("model.ff", m.ff),
            ("model.max_seq", m.max_seq),
            ("k_repeats", self.k_repeats),
            ("max_reflection_rounds", self.max_reflection_rounds),
            ("n_rationales", self.n_rationales),
        ] {
            if n == 0 {
                return Err(ConfigError::ZeroCount { field });
            }
        }
        if m.max_seq <= m.vis_tokens + 2 {
            return Err(model_err(format!(
                "max_seq ({}) leaves no room after the {} visual tokens",
                m.max_seq, m.vis_tokens
            )));
        }
        for (field, value) in [
            ("dpo_beta", self.dpo_beta),
            ("sft_lr", self.sft_lr),
            ("dpo_lr", self.dpo_lr),
        ] {
            if !(value.is_finite() && value > 0.0) {
                return Err(ConfigError::BadFloat { field, value });
            }
        }
        if !(self.temperature.is_finite() && self.temperature >= 0.0) {
            return Err(ConfigError::BadFloat {
                field: "temperature",
                value: self.temperature,
            });
        }
        Ok(())
    }
}

/// Builder for [`PipelineConfig`] whose [`build`](Self::build) validates the
/// assembled config and returns a typed [`ConfigError`] on bad field
/// combinations — the one construction path shared by `core`, `serve` and
/// `bench`.
#[derive(Clone, Debug)]
pub struct PipelineConfigBuilder {
    cfg: PipelineConfig,
}

impl Default for PipelineConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PipelineConfigBuilder {
    /// Start from [`PipelineConfig::default_experiment`].
    pub fn new() -> Self {
        PipelineConfigBuilder {
            cfg: PipelineConfig::default_experiment(),
        }
    }

    /// Start from [`PipelineConfig::smoke`].
    pub fn smoke() -> Self {
        PipelineConfigBuilder {
            cfg: PipelineConfig::smoke(),
        }
    }

    /// Start from an existing config (e.g. one loaded from an artifact).
    pub fn from_config(cfg: PipelineConfig) -> Self {
        PipelineConfigBuilder { cfg }
    }

    /// Replace the model architecture.
    pub fn model(mut self, model: ModelConfig) -> Self {
        self.cfg.model = model;
        self
    }

    /// Set K, the assessment-repeat count used by the refinement scores.
    pub fn k_repeats(mut self, k: usize) -> Self {
        self.cfg.k_repeats = k;
        self
    }

    /// Bound the self-reflection do-while loop.
    pub fn max_reflection_rounds(mut self, rounds: usize) -> Self {
        self.cfg.max_reflection_rounds = rounds;
        self
    }

    /// Set n, the number of reflected rationales to score.
    pub fn n_rationales(mut self, n: usize) -> Self {
        self.cfg.n_rationales = n;
        self
    }

    /// Set the DPO β.
    pub fn dpo_beta(mut self, beta: f32) -> Self {
        self.cfg.dpo_beta = beta;
        self
    }

    /// Set the refinement sampling temperature.
    pub fn temperature(mut self, t: f32) -> Self {
        self.cfg.temperature = t;
        self
    }

    /// Set the describe-tuning epoch count.
    pub fn describe_epochs(mut self, n: usize) -> Self {
        self.cfg.describe_epochs = n;
        self
    }

    /// Set the assess-tuning epoch count.
    pub fn assess_epochs(mut self, n: usize) -> Self {
        self.cfg.assess_epochs = n;
        self
    }

    /// Set the per-phase DPO epoch count.
    pub fn dpo_epochs(mut self, n: usize) -> Self {
        self.cfg.dpo_epochs = n;
        self
    }

    /// Set the SFT learning rate.
    pub fn sft_lr(mut self, lr: f32) -> Self {
        self.cfg.sft_lr = lr;
        self
    }

    /// Set the DPO learning rate.
    pub fn dpo_lr(mut self, lr: f32) -> Self {
        self.cfg.dpo_lr = lr;
        self
    }

    /// Set the base RNG seed for the whole run.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Validate and return the config.
    pub fn build(self) -> Result<PipelineConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = PipelineConfig::default_experiment();
        assert_eq!(c.dpo_beta, 0.1, "β = 0.1 per §IV-H");
        assert!(c.k_repeats >= 2);
        assert!(c.n_rationales >= 2);
    }

    #[test]
    fn smoke_uses_the_tiny_model() {
        let c = PipelineConfig::smoke();
        let d = PipelineConfig::default_experiment();
        assert!(c.model.d_model <= d.model.d_model);
        assert!(c.k_repeats <= d.k_repeats);
    }

    #[test]
    fn presets_pass_validation() {
        assert_eq!(PipelineConfig::default_experiment().validate(), Ok(()));
        assert_eq!(PipelineConfig::smoke().validate(), Ok(()));
        let built = PipelineConfig::builder()
            .seed(7)
            .k_repeats(4)
            .build()
            .unwrap();
        assert_eq!(built.seed, 7);
        assert_eq!(built.k_repeats, 4);
    }

    #[test]
    fn builder_rejects_bad_combinations_with_typed_errors() {
        let bad_heads = PipelineConfig::builder()
            .model(ModelConfig {
                heads: 3,
                ..ModelConfig::tiny()
            })
            .build();
        assert!(matches!(bad_heads, Err(ConfigError::Model { .. })));

        let bad_patch = PipelineConfig::builder()
            .model(ModelConfig {
                patch: 7,
                ..ModelConfig::tiny()
            })
            .build();
        assert!(matches!(bad_patch, Err(ConfigError::Model { .. })));

        assert_eq!(
            PipelineConfig::builder().k_repeats(0).build(),
            Err(ConfigError::ZeroCount { field: "k_repeats" })
        );
        assert!(matches!(
            PipelineConfig::builder().dpo_beta(0.0).build(),
            Err(ConfigError::BadFloat {
                field: "dpo_beta",
                ..
            })
        ));
        assert!(matches!(
            PipelineConfig::builder().temperature(f32::NAN).build(),
            Err(ConfigError::BadFloat {
                field: "temperature",
                ..
            })
        ));
        // Errors render as readable messages.
        let msg = PipelineConfig::builder()
            .k_repeats(0)
            .build()
            .unwrap_err()
            .to_string();
        assert!(msg.contains("k_repeats"), "{msg}");
    }
}
