//! Pipeline hyper-parameters (§IV-H plus the self-refinement knobs).

use lfm::ModelConfig;

/// Everything Algorithm 1 needs besides the data.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Architecture of the underlying foundation model.
    pub model: ModelConfig,
    /// K — repeats used for the helpfulness and faithfulness scores
    /// (§III-C prompts the model K times with different random seeds).
    pub k_repeats: usize,
    /// Maximum self-reflection rounds per description (the paper's
    /// do-while loop, bounded for termination).
    pub max_reflection_rounds: usize,
    /// n — number of reflected rationales to score (§III-D).
    pub n_rationales: usize,
    /// DPO β (0.1 in §IV-H).
    pub dpo_beta: f32,
    /// Sampling temperature for generation during refinement.
    pub temperature: f32,
    /// Epochs for the describe instruction tuning (Eq. 2).
    pub describe_epochs: usize,
    /// Epochs for the assess tuning (Eq. 4).
    pub assess_epochs: usize,
    /// Epochs for each DPO phase (Eq. 3 / Eq. 5).
    pub dpo_epochs: usize,
    /// Learning rate for the SFT phases.
    pub sft_lr: f32,
    /// Learning rate for the DPO phases.
    pub dpo_lr: f32,
    /// Base RNG seed for the whole training run.
    pub seed: u64,
}

impl PipelineConfig {
    /// Experiment defaults (mirrors §IV-H where applicable; the iteration
    /// counts are scaled to the miniature model).
    pub fn default_experiment() -> Self {
        PipelineConfig {
            model: ModelConfig::small(),
            k_repeats: 3,
            max_reflection_rounds: 2,
            n_rationales: 3,
            dpo_beta: 0.1,
            temperature: 0.8,
            describe_epochs: 4,
            assess_epochs: 4,
            dpo_epochs: 2,
            sft_lr: 2e-3,
            dpo_lr: 5e-4,
            seed: 0,
        }
    }

    /// Small/fast settings for tests.
    pub fn smoke() -> Self {
        PipelineConfig {
            model: ModelConfig::tiny(),
            k_repeats: 2,
            max_reflection_rounds: 1,
            n_rationales: 2,
            dpo_beta: 0.1,
            temperature: 0.8,
            describe_epochs: 6,
            assess_epochs: 8,
            dpo_epochs: 1,
            sft_lr: 5e-3,
            dpo_lr: 1e-3,
            seed: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = PipelineConfig::default_experiment();
        assert_eq!(c.dpo_beta, 0.1, "β = 0.1 per §IV-H");
        assert!(c.k_repeats >= 2);
        assert!(c.n_rationales >= 2);
    }

    #[test]
    fn smoke_uses_the_tiny_model() {
        let c = PipelineConfig::smoke();
        let d = PipelineConfig::default_experiment();
        assert!(c.model.d_model <= d.model.d_model);
        assert!(c.k_repeats <= d.k_repeats);
    }
}
