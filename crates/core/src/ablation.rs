//! Ablation variants of §IV-E.

/// Which parts of the method a trained pipeline uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// The full method.
    Full,
    /// "w/o Chain": the model is trained and queried to detect stress
    /// directly from the video ("Is the subject in this video stressed?"),
    /// and highlights over the full AU space.
    WithoutChain,
    /// "w/o learn des.": the reasoning chain is kept but the Eq. 2
    /// describe tuning on expert AU annotations is skipped.
    WithoutLearnDescribe,
    /// "w/o Refine": the entire self-refine learning scheme (both DPO
    /// phases) is removed.
    WithoutRefine,
    /// "w/o Reflection": refinement runs, but candidate descriptions and
    /// rationales come from plain resampling instead of reflection prompts.
    WithoutReflection,
}

impl Variant {
    /// Whether the Describe→Assess→Highlight chain is used at all.
    pub fn uses_chain(self) -> bool {
        !matches!(self, Variant::WithoutChain)
    }

    /// Whether Eq. 2 describe tuning runs.
    pub fn learns_describe(self) -> bool {
        matches!(
            self,
            Variant::Full | Variant::WithoutRefine | Variant::WithoutReflection
        )
    }

    /// Whether the self-refine DPO phases run.
    pub fn uses_refinement(self) -> bool {
        matches!(
            self,
            Variant::Full | Variant::WithoutReflection | Variant::WithoutLearnDescribe
        )
    }

    /// Whether refinement candidates come from reflection prompts.
    pub fn uses_reflection(self) -> bool {
        matches!(self, Variant::Full | Variant::WithoutLearnDescribe)
    }

    /// Row label used in the ablation tables.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Full => "Ours",
            Variant::WithoutChain => "w/o Chain",
            Variant::WithoutLearnDescribe => "w/o learn des.",
            Variant::WithoutRefine => "w/o Refine",
            Variant::WithoutReflection => "w/o Reflection",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_uses_everything() {
        let v = Variant::Full;
        assert!(
            v.uses_chain() && v.learns_describe() && v.uses_refinement() && v.uses_reflection()
        );
    }

    #[test]
    fn ablations_drop_exactly_their_component() {
        assert!(!Variant::WithoutChain.uses_chain());
        assert!(!Variant::WithoutLearnDescribe.learns_describe());
        assert!(Variant::WithoutLearnDescribe.uses_chain());
        assert!(!Variant::WithoutRefine.uses_refinement());
        assert!(Variant::WithoutRefine.learns_describe());
        assert!(!Variant::WithoutReflection.uses_reflection());
        assert!(Variant::WithoutReflection.uses_refinement());
    }

    #[test]
    fn labels_match_paper_rows() {
        assert_eq!(Variant::Full.label(), "Ours");
        assert_eq!(Variant::WithoutChain.label(), "w/o Chain");
        assert_eq!(Variant::WithoutLearnDescribe.label(), "w/o learn des.");
        assert_eq!(Variant::WithoutRefine.label(), "w/o Refine");
        assert_eq!(Variant::WithoutReflection.label(), "w/o Reflection");
    }
}
