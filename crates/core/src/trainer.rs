//! Algorithm 1: the full learning process of model `F`.
//!
//! The paper interleaves per-sample refinement with per-sample DPO updates;
//! for throughput we run the same computation in phases — Eq. 2 SFT, then
//! refinement + Eq. 3 DPO over the whole training set, then Eq. 4 SFT, then
//! rationale refinement + Eq. 5 DPO — which optimises identical losses on
//! identical preference pairs (the standard "offline DPO" schedule).

use lfm::instructions::{
    assess_direct_prompt, assess_prompt, choice_answer, describe_prompt, description_answer,
    highlight_prompt, label_answer, verify_prompt,
};
use lfm::{dpo, sft, DpoPair, Lfm, SftExample, TrainConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use videosynth::video::VideoSample;

use crate::ablation::Variant;
use crate::config::PipelineConfig;
use crate::pipeline::StressPipeline;
use crate::refine::{refine_description, refine_rationale};

/// What happened during training (for logging / EXPERIMENTS.md).
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    /// Final loss of the describe SFT phase (Eq. 2), if it ran.
    pub describe_loss: Option<f32>,
    /// Number of description preference pairs found (Eq. 3).
    pub desc_pairs: usize,
    /// Final loss of the description DPO phase.
    pub desc_dpo_loss: Option<f32>,
    /// Final loss of the assess SFT phase (Eq. 4).
    pub assess_loss: Option<f32>,
    /// Number of rationale preference pairs found (Eq. 5).
    pub rationale_pairs: usize,
    /// Final loss of the rationale DPO phase.
    pub rationale_dpo_loss: Option<f32>,
}

/// Train a pipeline per Algorithm 1 on `stress_train` (the D of the paper)
/// with `au_train` as the expert-annotated facial-expression corpus (D′).
///
/// `base` should be a generically pretrained model
/// ([`lfm::pretrain::pretrain`] with the `base` profile) — the stand-in for
/// Qwen-VL.  The `variant` switches implement the §IV-E ablations.
pub fn train_pipeline(
    base: Lfm,
    cfg: PipelineConfig,
    au_train: &[VideoSample],
    stress_train: &[VideoSample],
    variant: Variant,
) -> (StressPipeline, TrainReport) {
    let mut report = TrainReport::default();
    let mut pl = StressPipeline::new(base, cfg);
    let seed = pl.cfg.seed;

    // ---- Learn to describe facial actions (Eq. 2) -----------------------
    if variant.uses_chain() && variant.learns_describe() {
        assert!(!au_train.is_empty(), "describe tuning needs the AU corpus");
        let mut data: Vec<SftExample> = au_train
            .iter()
            .map(|v| SftExample {
                prompt: describe_prompt(&pl.model, v),
                answer: description_answer(&pl.model.vocab, v.apex_aus()),
            })
            .collect();
        // The same expert annotations also teach *verification* (matching a
        // description to its video among distractors) — the skill the
        // self-refinement faithfulness filter depends on.  Without it the
        // filter is blind and reflection can drift toward label-stereotyped
        // descriptions.
        if au_train.len() >= 4 {
            let mut vrng = StdRng::seed_from_u64(seed ^ 0x7E81F1);
            // Reflection examples: a corrupted previous description must be
            // corrected back to the expert annotation.  The label hint in
            // the prompt is arbitrary here (DISFA has no stress condition),
            // which teaches reflection to correct toward the *video*, not
            // toward the hint — the anti-reward-hacking property the
            // faithfulness filter then only has to confirm.
            for (j, v) in au_train.iter().enumerate() {
                if j % 3 != 0 {
                    continue;
                }
                let mut prev = v.apex_aus();
                for au in facs::au::ALL_AUS {
                    if vrng.random::<f32>() < 0.25 {
                        prev.toggle(au);
                    }
                }
                let hint = if vrng.random::<f32>() < 0.5 {
                    videosynth::video::StressLabel::Stressed
                } else {
                    videosynth::video::StressLabel::Unstressed
                };
                data.push(SftExample {
                    prompt: lfm::instructions::reflect_description_prompt(&pl.model, v, prev, hint),
                    answer: description_answer(&pl.model.vocab, v.apex_aus()),
                });
            }
            for (j, v) in au_train.iter().enumerate() {
                if j % 2 != 0 {
                    continue;
                }
                let mut others: Vec<&videosynth::video::VideoSample> = Vec::with_capacity(3);
                while others.len() < 3 {
                    let c = &au_train[vrng.random_range(0..au_train.len())];
                    if c.id != v.id {
                        others.push(c);
                    }
                }
                let correct = vrng.random_range(0..4usize);
                let mut slots = Vec::with_capacity(4);
                let mut oi = 0;
                for slot in 0..4 {
                    if slot == correct {
                        slots.push(v);
                    } else {
                        slots.push(others[oi]);
                        oi += 1;
                    }
                }
                data.push(SftExample {
                    prompt: verify_prompt(
                        &pl.model,
                        [slots[0], slots[1], slots[2], slots[3]],
                        v.apex_aus(),
                    ),
                    answer: choice_answer(&pl.model.vocab, correct),
                });
            }
        }
        let tc = TrainConfig {
            lr: pl.cfg.sft_lr,
            epochs: pl.cfg.describe_epochs,
            batch_size: 8,
            grad_clip: 5.0,
            seed,
        };
        let losses = sft(&mut pl.model, &data, &tc);
        report.describe_loss = losses.last().copied();
    }

    // ---- Warm up the assess head --------------------------------------
    // Algorithm 1 interleaves refinement and assess updates per sample, so
    // most samples are refined under a partially trained assessor.  Our
    // phase schedule reproduces that by a short Eq. 4 warm-up on the
    // model's own greedy descriptions before any refinement: the
    // helpfulness score h then measures something real.
    if variant.uses_chain() && variant.uses_refinement() {
        let data: Vec<SftExample> = stress_train
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let d = pl.describe(v, 0.0, seed ^ (i as u64) << 3);
                SftExample {
                    prompt: assess_prompt(&pl.model, v, d),
                    answer: label_answer(&pl.model.vocab, v.label),
                }
            })
            .collect();
        let tc = TrainConfig {
            lr: pl.cfg.sft_lr,
            epochs: 2,
            batch_size: 8,
            grad_clip: 5.0,
            seed: seed ^ 0x3A3,
        };
        let _ = sft(&mut pl.model, &data, &tc);
    }

    // ---- Self-refine descriptions, learn via DPO (Eq. 3) ----------------
    let mut refined: Vec<(usize, facs::au::AuSet)> = Vec::with_capacity(stress_train.len());
    if variant.uses_chain() {
        let reference = pl.model.snapshot();
        let mut pairs: Vec<DpoPair> = Vec::new();
        for (i, v) in stress_train.iter().enumerate() {
            if variant.uses_refinement() {
                let r = refine_description(
                    &pl,
                    v,
                    v.label,
                    stress_train,
                    variant.uses_reflection(),
                    seed ^ (i as u64) << 4,
                );
                if r.improved {
                    pairs.push(DpoPair {
                        prompt: describe_prompt(&pl.model, v),
                        chosen: description_answer(&pl.model.vocab, r.refined),
                        rejected: description_answer(&pl.model.vocab, r.original),
                    });
                }
                refined.push((i, r.refined));
            } else {
                let d = pl.describe(v, 0.0, seed ^ (i as u64) << 4);
                refined.push((i, d));
            }
        }
        report.desc_pairs = pairs.len();
        if !pairs.is_empty() {
            let tc = TrainConfig {
                lr: pl.cfg.dpo_lr,
                epochs: pl.cfg.dpo_epochs,
                batch_size: 8,
                grad_clip: 5.0,
                seed: seed ^ 0xD90,
            };
            let losses = dpo(&mut pl.model, &reference, &pairs, pl.cfg.dpo_beta, &tc);
            report.desc_dpo_loss = losses.last().copied();
            // After DPO the deployed describe distribution has shifted;
            // regenerate the descriptions the assess step will actually see
            // (greedy decoding, as at inference).  Training Eq. 4 on the
            // raw refinement outputs instead would create a train/test
            // mismatch the miniature model cannot absorb.
            for (i, v) in stress_train.iter().enumerate() {
                refined[i].1 = pl.describe(v, 0.0, seed ^ (i as u64) << 4);
            }
        }
    }

    // ---- Learn to assess stress (Eq. 4) ----------------------------------
    {
        let data: Vec<SftExample> = if variant.uses_chain() {
            let mut data: Vec<SftExample> = refined
                .iter()
                .map(|&(i, desc)| {
                    let v = &stress_train[i];
                    SftExample {
                        prompt: assess_prompt(&pl.model, v, desc),
                        answer: label_answer(&pl.model.vocab, v.label),
                    }
                })
                .collect();
            // Algorithm 1 interleaves the describe and assess losses per
            // sample; our phase schedule replays describe examples here so
            // the assess phase cannot erase the describe skill (the
            // miniature model has no capacity slack).
            if variant.learns_describe() && !au_train.is_empty() {
                for (j, v) in au_train.iter().enumerate() {
                    if j % 2 == 0 {
                        data.push(SftExample {
                            prompt: describe_prompt(&pl.model, v),
                            answer: description_answer(&pl.model.vocab, v.apex_aus()),
                        });
                    }
                }
            }
            data
        } else {
            stress_train
                .iter()
                .map(|v| SftExample {
                    prompt: assess_direct_prompt(&pl.model, v),
                    answer: label_answer(&pl.model.vocab, v.label),
                })
                .collect()
        };
        let tc = TrainConfig {
            lr: pl.cfg.sft_lr,
            epochs: pl.cfg.assess_epochs,
            batch_size: 8,
            grad_clip: 5.0,
            seed: seed ^ 0xA55,
        };
        let losses = sft(&mut pl.model, &data, &tc);
        report.assess_loss = losses.last().copied();
    }

    // ---- Self-refine rationales, learn via DPO (Eq. 5) -------------------
    if variant.uses_refinement() {
        let reference = pl.model.snapshot();
        let mut pairs: Vec<DpoPair> = Vec::new();
        for (i, v) in stress_train.iter().enumerate() {
            let desc = if variant.uses_chain() {
                refined[i].1
            } else {
                facs::au::AuSet::FULL
            };
            let assessment = if variant.uses_chain() {
                pl.assess(v, desc, 0.0, v.id as u64)
            } else {
                pl.assess_direct(v, 0.0, v.id as u64)
            };
            if let Some(r) = refine_rationale(
                &pl,
                v,
                desc,
                assessment,
                variant.uses_reflection(),
                seed ^ (i as u64) << 6,
            ) {
                if r.best != r.worst {
                    pairs.push(DpoPair {
                        prompt: highlight_prompt(&pl.model, v, desc, assessment),
                        chosen: description_answer(&pl.model.vocab, r.best),
                        rejected: description_answer(&pl.model.vocab, r.worst),
                    });
                }
            }
        }
        report.rationale_pairs = pairs.len();
        if !pairs.is_empty() {
            let tc = TrainConfig {
                lr: pl.cfg.dpo_lr,
                epochs: pl.cfg.dpo_epochs,
                batch_size: 8,
                grad_clip: 5.0,
                seed: seed ^ 0xBA5,
            };
            let losses = dpo(&mut pl.model, &reference, &pairs, pl.cfg.dpo_beta, &tc);
            report.rationale_dpo_loss = losses.last().copied();
        }
    }

    (pl, report)
}

/// Convenience: does this pipeline predict with the chain or directly?
/// (Evaluation code needs to query the variant-appropriate path.)
pub fn predict_for_variant(
    pl: &StressPipeline,
    variant: Variant,
    video: &VideoSample,
) -> videosynth::video::StressLabel {
    if variant.uses_chain() {
        pl.predict_label(video)
    } else {
        pl.assess_direct(video, 0.0, video.id as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfm::pretrain::{pretrain, CapabilityProfile};
    use lfm::ModelConfig;
    use videosynth::dataset::{Dataset, DatasetProfile, Scale};
    use videosynth::video::StressLabel;

    fn tiny_base() -> Lfm {
        let mut m = Lfm::new(ModelConfig::tiny(), 9);
        let profile = CapabilityProfile::base().scaled(0.25);
        // Seed 1 converges under the vendored generator's stream (seed 4 was
        // tuned for the upstream rand stream and lands in a bad init).
        pretrain(&mut m, &profile, 1);
        m
    }

    fn smoke_data() -> (Vec<VideoSample>, Vec<VideoSample>) {
        let au = Dataset::generate(DatasetProfile::disfa(Scale::Smoke), 1);
        let stress = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), 2);
        (
            au.samples.into_iter().take(12).collect(),
            stress.samples.into_iter().take(12).collect(),
        )
    }

    #[test]
    fn full_training_runs_and_reports() {
        let (au, stress) = smoke_data();
        let (pl, report) = train_pipeline(
            tiny_base(),
            PipelineConfig::smoke(),
            &au,
            &stress,
            Variant::Full,
        );
        assert!(report.describe_loss.is_some());
        assert!(report.assess_loss.is_some());
        // The pipeline predicts something on every sample.
        for v in &stress[..3] {
            let _ = pl.predict(v, 0);
        }
    }

    #[test]
    fn without_chain_skips_describe_phase() {
        let (au, stress) = smoke_data();
        let (pl, report) = train_pipeline(
            tiny_base(),
            PipelineConfig::smoke(),
            &au,
            &stress,
            Variant::WithoutChain,
        );
        assert!(report.describe_loss.is_none());
        assert_eq!(report.desc_pairs, 0);
        let _ = pl.assess_direct(&stress[0], 0.0, 0);
    }

    #[test]
    fn without_refine_skips_dpo() {
        let (au, stress) = smoke_data();
        let (_, report) = train_pipeline(
            tiny_base(),
            PipelineConfig::smoke(),
            &au,
            &stress,
            Variant::WithoutRefine,
        );
        assert_eq!(report.desc_pairs, 0);
        assert_eq!(report.rationale_pairs, 0);
        assert!(report.describe_loss.is_some());
    }

    #[test]
    fn trained_pipeline_beats_chance_on_train_set() {
        let (au, stress) = smoke_data();
        let (pl, _) = train_pipeline(
            tiny_base(),
            PipelineConfig::smoke(),
            &au,
            &stress,
            Variant::Full,
        );
        let correct = stress
            .iter()
            .filter(|v| pl.predict_label(v) == v.label)
            .count();
        assert!(
            correct * 10 >= stress.len() * 6,
            "train accuracy too low: {correct}/{}",
            stress.len()
        );
        let _ = StressLabel::Stressed;
    }
}
