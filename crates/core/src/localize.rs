//! Rationale → SLIC-segment localisation (§IV-H).
//!
//! "For our framework, after generating highlighted rationale R, we locate
//! the segment of each single facial action using the corresponding facial
//! landmark."  Each highlighted AU names a facial region; the Table II
//! protocol needs a *segment ranking*, so segments are ordered by their
//! overlap with the rationale's regions, rationale order first.

use facs::au::AuSet;
use videosynth::slic::Segmentation;

/// Rank SLIC segments by the rationale: for each highlighted AU in
/// rationale order, the segments overlapping its facial region (by
/// decreasing overlap); remaining segments follow in stable index order.
///
/// Always returns every segment exactly once, so the Top-k protocol can
/// take any prefix.
pub fn rationale_segment_ranking(rationale: AuSet, seg: &Segmentation) -> Vec<usize> {
    let n = seg.num_segments();
    let mut picked = vec![false; n];
    let mut out = Vec::with_capacity(n);

    for au in rationale.iter() {
        // Overlap of every segment with this AU's region rectangles.
        let mut overlap = vec![0usize; n];
        for rect in au.region().rects() {
            for (x, y) in rect.pixels() {
                overlap[seg.segment_of(x, y)] += 1;
            }
        }
        let mut idx: Vec<usize> = (0..n).filter(|&s| overlap[s] > 0 && !picked[s]).collect();
        idx.sort_by_key(|&s| std::cmp::Reverse(overlap[s]));
        for s in idx {
            picked[s] = true;
            out.push(s);
        }
    }
    for (s, taken) in picked.iter().enumerate() {
        if !taken {
            out.push(s);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use facs::ActionUnit;
    use videosynth::dataset::{Dataset, DatasetProfile, Scale};
    use videosynth::slic::slic;

    fn segmentation() -> Segmentation {
        let ds = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), 3);
        let img = ds.samples[0].render_frame(0);
        slic(&img, 64, 0.1, 5)
    }

    #[test]
    fn ranking_is_a_permutation() {
        let seg = segmentation();
        let r = rationale_segment_ranking(
            AuSet::from_aus([ActionUnit::BrowLowerer, ActionUnit::JawDrop]),
            &seg,
        );
        assert_eq!(r.len(), seg.num_segments());
        let mut sorted = r.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seg.num_segments());
    }

    #[test]
    fn first_segment_overlaps_first_rationale_region() {
        let seg = segmentation();
        let rationale = AuSet::from_aus([ActionUnit::BrowLowerer]);
        let ranking = rationale_segment_ranking(rationale, &seg);
        let rect = facs::region::FacialRegion::Eyebrow.rect();
        // The top segment must intersect the brow rect.
        let top = ranking[0];
        let hit = rect.pixels().any(|(x, y)| seg.segment_of(x, y) == top);
        assert!(hit, "top segment does not touch the rationale region");
    }

    #[test]
    fn empty_rationale_gives_index_order() {
        let seg = segmentation();
        let r = rationale_segment_ranking(AuSet::EMPTY, &seg);
        let expect: Vec<usize> = (0..seg.num_segments()).collect();
        assert_eq!(r, expect);
    }

    #[test]
    fn rationale_order_takes_precedence() {
        let seg = segmentation();
        // AU17 (jaw) listed via a rationale whose first AU is in the brow.
        let r1 = rationale_segment_ranking(
            AuSet::from_aus([ActionUnit::InnerBrowRaiser, ActionUnit::ChinRaiser]),
            &seg,
        );
        // The first segments should be brow segments, not jaw.
        let brow = facs::region::FacialRegion::Eyebrow.rect();
        let hit = brow.pixels().any(|(x, y)| seg.segment_of(x, y) == r1[0]);
        assert!(hit);
    }
}
