//! `chain-reason` — the paper's contribution: interpretable video-based
//! stress detection with a self-refining `Describe → Assess → Highlight`
//! reasoning chain.
//!
//! The pipeline (§III) decomposes end-to-end stress detection into the
//! expert-like steps of Eq. 1:
//!
//! 1. **Describe** (I₁): recognise the facial actions in the video —
//!    learned from expert AU annotations (Eq. 2);
//! 2. **Assess** (I₂): judge the stress state from the video *and* the
//!    description (Eq. 4);
//! 3. **Highlight** (I₃): name the critical facial actions as the
//!    rationale.
//!
//! Two self-refinement loops make the chain accurate and faithful:
//! descriptions are *reflected on* and kept only if they improve both
//! K-repeat assessment accuracy (helpfulness) and 4-way self-verification
//! (faithfulness), then locked in with DPO (Eq. 3, Fig. 3/4); rationales
//! are reflected `n` ways, scored by how few region removals flip the
//! decision, and the best/worst pair is optimised with DPO (Eq. 5, Fig. 5).
//!
//! [`trainer::train_pipeline`] is Algorithm 1; [`ablation`] exposes the
//! "w/o Chain" / "w/o learn des." / "w/o Refine" / "w/o Reflection"
//! variants of §IV-E; [`test_time`] is the training-free variant applied to
//! frozen off-the-shelf models in §IV-G.

pub mod ablation;
pub mod artifact;
pub mod config;
pub mod localize;
pub mod pipeline;
pub mod refine;
pub mod stepper;
pub mod test_time;
pub mod trainer;

pub use ablation::Variant;
pub use artifact::{load_pipeline, save_pipeline, ArtifactError, ArtifactMeta, LoadedArtifact};
pub use config::{ConfigError, PipelineConfig, PipelineConfigBuilder};
pub use pipeline::{ChainOutput, StressPipeline};
pub use stepper::{ChainStepper, StepOutcome};
pub use trainer::{train_pipeline, TrainReport};
