//! Self-refinement: reflection, helpfulness / faithfulness scoring, and
//! preference-pair construction (§III-C, §III-D).

use facs::au::AuSet;
use lfm::grammar::{generate_description, generate_description_within};
use lfm::instructions::{
    assess_prompt_from_images, choice_tokens, label_tokens, reflect_description_prompt,
    reflect_rationale_prompt, verify_prompt,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use videosynth::perturb::mosaic_region;
use videosynth::video::{StressLabel, VideoSample};

use crate::pipeline::StressPipeline;

/// Helpfulness `h` of a description (§III-C): fraction of K stochastic
/// assessments that match the ground-truth label when conditioned on it.
pub fn helpfulness(
    pl: &StressPipeline,
    video: &VideoSample,
    description: AuSet,
    truth: StressLabel,
    seed: u64,
) -> f32 {
    let k = pl.cfg.k_repeats;
    let mut correct = 0usize;
    // All K repeats assess the same prompt: after the first, the session's
    // KV cache turns each repeat into a single logits read.
    let mut session = pl.session();
    for rep in 0..k {
        let a = pl.assess_with_session(
            &mut session,
            video,
            description,
            pl.cfg.temperature,
            seed ^ ((rep as u64 + 1) * 7919),
        );
        if a == truth {
            correct += 1;
        }
    }
    correct as f32 / k as f32
}

/// Faithfulness `f` of a description via self-verification (§III-C,
/// Fig. 4): K rounds of "which of these 4 videos does E describe?", each
/// with the correct video at a random slot among 3 negatives from other
/// subjects.  Runs as a fresh prompt — there is no dialogue history to
/// cheat from.
pub fn verification_faithfulness(
    pl: &StressPipeline,
    video: &VideoSample,
    description: AuSet,
    pool: &[VideoSample],
    seed: u64,
) -> f32 {
    let k = pl.cfg.k_repeats;
    let mut rng = StdRng::seed_from_u64(seed);
    // Negatives: videos of *other subjects* (§III-C).
    let negatives: Vec<&VideoSample> = {
        let mut cands: Vec<&VideoSample> =
            pool.iter().filter(|v| v.subject != video.subject).collect();
        if cands.len() < 3 {
            // Degenerate pools (tests): fall back to any other video.
            cands = pool.iter().filter(|v| v.id != video.id).collect();
        }
        assert!(
            cands.len() >= 3,
            "verification needs at least 3 negative candidates"
        );
        cands.shuffle(&mut rng);
        cands.truncate(3);
        cands
    };
    let choices = choice_tokens(&pl.model.vocab);
    let mut correct = 0usize;
    // Rounds differ only in slot order; the session reuses the shared
    // prompt prefix up to the first differing video.
    let mut session = pl.session();
    for _ in 0..k {
        let slot = rng.random_range(0..4usize);
        let mut slots: Vec<&VideoSample> = Vec::with_capacity(4);
        let mut ni = 0;
        for i in 0..4 {
            if i == slot {
                slots.push(video);
            } else {
                slots.push(negatives[ni]);
                ni += 1;
            }
        }
        let p = verify_prompt(
            &pl.model,
            [slots[0], slots[1], slots[2], slots[3]],
            description,
        );
        let picked =
            pl.model
                .choose_with_session(&mut session, &p, &choices, pl.cfg.temperature, &mut rng);
        if picked == choices[slot] {
            correct += 1;
        }
    }
    correct as f32 / k as f32
}

/// One reflection step on a description (Fig. 3): the model sees its
/// previous description and the ground truth, and proposes a new one.
pub fn reflect_description(
    pl: &StressPipeline,
    video: &VideoSample,
    previous: AuSet,
    truth: StressLabel,
    seed: u64,
) -> AuSet {
    let p = reflect_description_prompt(&pl.model, video, previous, truth);
    generate_description(&pl.model, &p, pl.cfg.temperature, seed)
}

/// The "w/o Reflection" alternative: simply resample from I₁.
pub fn resample_description(pl: &StressPipeline, video: &VideoSample, seed: u64) -> AuSet {
    pl.describe(video, pl.cfg.temperature.max(0.9), seed)
}

/// Result of the description-refinement loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RefinedDescription {
    /// The description after refinement (`E` of Eq. 3).
    pub refined: AuSet,
    /// The original description (`E_o` of Eq. 3).
    pub original: AuSet,
    /// Whether any replacement happened (only then is a DPO pair emitted).
    pub improved: bool,
}

/// Algorithm 1, lines 3–8: generate `E`, repeatedly reflect, replace when
/// both helpfulness and faithfulness do not degrade, stop otherwise (or
/// after the configured round budget).
pub fn refine_description(
    pl: &StressPipeline,
    video: &VideoSample,
    truth: StressLabel,
    pool: &[VideoSample],
    use_reflection: bool,
    seed: u64,
) -> RefinedDescription {
    let original = pl.describe(video, pl.cfg.temperature, seed);
    let mut current = original;
    let mut h = helpfulness(pl, video, current, truth, seed ^ 0x11);
    let mut f = verification_faithfulness(pl, video, current, pool, seed ^ 0x22);

    for round in 0..pl.cfg.max_reflection_rounds {
        let rseed = seed ^ ((round as u64 + 1) << 8);
        let proposal = if use_reflection {
            reflect_description(pl, video, current, truth, rseed)
        } else {
            resample_description(pl, video, rseed)
        };
        if proposal == current {
            break;
        }
        let h2 = helpfulness(pl, video, proposal, truth, rseed ^ 0x11);
        let f2 = verification_faithfulness(pl, video, proposal, pool, rseed ^ 0x22);
        // Replace only on a strict lexicographic improvement: the paper's
        // h′ ≥ h ∧ f′ ≥ f with ties allowed lets a label-conditioned
        // reflection drift toward stereotyped descriptions that score the
        // same; requiring a measurable gain keeps every accepted pair an
        // actual improvement.
        let better = h2 > h || (h2 == h && f2 > f);
        if h2 >= h && f2 >= f && better {
            current = proposal;
            h = h2;
            f = f2;
        } else {
            break;
        }
    }
    RefinedDescription {
        refined: current,
        original,
        improved: current != original,
    }
}

/// Faithfulness score of a rationale (§III-D): mosaic the facial region of
/// each highlighted action in order, re-assessing after each removal; the
/// score is the number of removals needed to flip the decision (lower =
/// more faithful), or `rationale.len() + 1` if the decision never flips.
pub fn rationale_flip_count(
    pl: &StressPipeline,
    video: &VideoSample,
    description: AuSet,
    assessment: StressLabel,
    rationale: AuSet,
) -> usize {
    let (mut fe, mut fl) = video.expressive_pair();
    let [st, un] = label_tokens(&pl.model.vocab);
    let mut session = pl.session();
    for (i, au) in rationale.iter().enumerate() {
        fe = mosaic_region(&fe, au.region());
        fl = mosaic_region(&fl, au.region());
        let p = assess_prompt_from_images(&pl.model, &fe, &fl, description);
        let mut rng = StdRng::seed_from_u64(0);
        let c = pl
            .model
            .choose_with_session(&mut session, &p, &[st, un], 0.0, &mut rng);
        let label = if c == st {
            StressLabel::Stressed
        } else {
            StressLabel::Unstressed
        };
        if label != assessment {
            return i + 1;
        }
    }
    rationale.len() + 1
}

/// Result of rationale refinement: the best/worst pair for Eq. 5.
#[derive(Clone, Debug)]
pub struct RefinedRationale {
    /// `R_b` — flips the decision fastest.
    pub best: AuSet,
    /// `R_w` — flips slowest (or not at all).
    pub worst: AuSet,
    /// Flip score of the best rationale.
    pub best_score: usize,
    /// Flip score of the worst rationale.
    pub worst_score: usize,
}

/// §III-D: reflect `n` alternative rationales (or resample, for the
/// "w/o Reflection" ablation), estimate each flip score, return best/worst.
/// Returns `None` when the description is empty (nothing to highlight) or
/// all candidates coincide.
pub fn refine_rationale(
    pl: &StressPipeline,
    video: &VideoSample,
    description: AuSet,
    assessment: StressLabel,
    use_reflection: bool,
    seed: u64,
) -> Option<RefinedRationale> {
    if description.is_empty() {
        return None;
    }
    let initial = pl.highlight(video, description, assessment, pl.cfg.temperature, seed);
    let mut candidates = vec![initial];
    for i in 0..pl.cfg.n_rationales {
        let rseed = seed ^ ((i as u64 + 1) << 12);
        let proposal = if use_reflection {
            let p = reflect_rationale_prompt(
                &pl.model,
                video,
                description,
                assessment,
                *candidates.last().expect("non-empty"),
            );
            generate_description_within(&pl.model, &p, description, pl.cfg.temperature, rseed)
        } else {
            pl.highlight(
                video,
                description,
                assessment,
                pl.cfg.temperature.max(0.9),
                rseed,
            )
        };
        if !candidates.contains(&proposal) {
            candidates.push(proposal);
        }
    }
    if candidates.len() < 2 {
        return None;
    }
    let scored: Vec<(AuSet, usize)> = candidates
        .into_iter()
        .map(|r| {
            let s = rationale_flip_count(pl, video, description, assessment, r);
            (r, s)
        })
        .collect();
    let best = scored
        .iter()
        .min_by_key(|(r, s)| (*s, r.len()))
        .expect("non-empty");
    let worst = scored
        .iter()
        .max_by_key(|(r, s)| (*s, r.len()))
        .expect("non-empty");
    if best.1 == worst.1 && best.0 == worst.0 {
        return None;
    }
    Some(RefinedRationale {
        best: best.0,
        worst: worst.0,
        best_score: best.1,
        worst_score: worst.1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use lfm::{Lfm, ModelConfig};
    use videosynth::dataset::{Dataset, DatasetProfile, Scale};

    fn pipeline() -> StressPipeline {
        StressPipeline::new(Lfm::new(ModelConfig::tiny(), 4), PipelineConfig::smoke())
    }

    fn pool() -> Dataset {
        Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), 8)
    }

    #[test]
    fn helpfulness_is_a_fraction() {
        let pl = pipeline();
        let ds = pool();
        let v = &ds.samples[0];
        let h = helpfulness(&pl, v, v.apex_aus(), v.label, 1);
        assert!((0.0..=1.0).contains(&h));
        // Deterministic in seed.
        assert_eq!(h, helpfulness(&pl, v, v.apex_aus(), v.label, 1));
    }

    #[test]
    fn verification_runs_and_is_bounded() {
        let pl = pipeline();
        let ds = pool();
        let v = &ds.samples[0];
        let f = verification_faithfulness(&pl, v, v.apex_aus(), &ds.samples, 2);
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn refine_description_terminates_and_reports_origin() {
        let pl = pipeline();
        let ds = pool();
        let v = &ds.samples[1];
        let r = refine_description(&pl, v, v.label, &ds.samples, true, 3);
        assert_eq!(r.improved, r.refined != r.original);
    }

    #[test]
    fn flip_count_bounds() {
        let pl = pipeline();
        let ds = pool();
        let v = &ds.samples[2];
        let desc = v.apex_aus();
        let out = pl.predict(v, 0);
        let score = rationale_flip_count(&pl, v, desc, out.assessment, desc);
        assert!(score >= 1);
        assert!(score <= desc.len() + 1);
    }

    #[test]
    fn empty_rationale_never_flips() {
        let pl = pipeline();
        let ds = pool();
        let v = &ds.samples[3];
        let score = rationale_flip_count(&pl, v, v.apex_aus(), StressLabel::Stressed, AuSet::EMPTY);
        assert_eq!(score, 1, "empty rationale scores len+1 = 1");
    }

    #[test]
    fn refine_rationale_none_on_empty_description() {
        let pl = pipeline();
        let ds = pool();
        let v = &ds.samples[4];
        assert!(refine_rationale(&pl, v, AuSet::EMPTY, StressLabel::Stressed, true, 0).is_none());
    }

    #[test]
    fn refine_rationale_orders_best_and_worst() {
        let pl = pipeline();
        let ds = pool();
        let v = &ds.samples[5];
        let desc = v.apex_aus();
        if desc.is_empty() {
            return;
        }
        let out = pl.predict(v, 0);
        if let Some(r) = refine_rationale(&pl, v, desc, out.assessment, true, 7) {
            assert!(r.best_score <= r.worst_score);
            assert!(r.best.difference(desc).is_empty());
            assert!(r.worst.difference(desc).is_empty());
        }
    }
}
