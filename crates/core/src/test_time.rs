//! Test-time self-refinement for frozen models (§IV-G).
//!
//! Off-the-shelf foundation models cannot be fine-tuned, so the paper
//! applies the chain + refinement *at inference*: describe with I₁, reflect
//! for an alternative description, keep whichever set of descriptions is
//! more faithful under self-verification (run in a fresh session), and only
//! then assess with I₂.  No parameter ever changes.

use facs::au::AuSet;
use videosynth::video::{StressLabel, VideoSample};

use crate::pipeline::StressPipeline;
use crate::refine::{reflect_description, verification_faithfulness};

/// Outcome of one test-time refined prediction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TestTimeOutput {
    /// The description actually used for assessment.
    pub description: AuSet,
    /// Whether the reflected description replaced the original.
    pub replaced: bool,
    /// The final assessment.
    pub assessment: StressLabel,
}

/// Chain + test-time self-refinement on a frozen model.
///
/// Note the asymmetry with training-time refinement: no ground-truth label
/// exists at test time, so only the *faithfulness* filter applies (the
/// paper: "We only compare the faithfulness of each set of descriptions").
/// The label hint fed to the reflection prompt is the model's own
/// preliminary assessment.
pub fn predict_with_test_time_refinement(
    pl: &StressPipeline,
    video: &VideoSample,
    pool: &[VideoSample],
    seed: u64,
) -> TestTimeOutput {
    let original = pl.describe(video, pl.cfg.temperature, seed);
    let preliminary = pl.assess(video, original, 0.0, seed);
    let reflected = reflect_description(pl, video, original, preliminary, seed ^ 0x7E57);

    let (description, replaced) = if reflected != original {
        let f_orig = verification_faithfulness(pl, video, original, pool, seed ^ 0x0F);
        let f_new = verification_faithfulness(pl, video, reflected, pool, seed ^ 0x1F);
        if f_new > f_orig {
            (reflected, true)
        } else {
            (original, false)
        }
    } else {
        (original, false)
    };

    // Re-assess only when the description changed (§IV-G: "prompted to
    // reassess the stress level only if it cannot produce a more faithful
    // set of descriptions" — i.e. the final assessment always uses the
    // retained description).
    let assessment = if replaced {
        pl.assess(video, description, 0.0, seed ^ 0x2F)
    } else {
        preliminary
    };

    TestTimeOutput {
        description,
        replaced,
        assessment,
    }
}

/// Plain zero-shot chain prediction on a frozen model (the "Original" rows
/// of Table VIII use direct assessment; this helper gives both).
pub fn predict_zero_shot_direct(pl: &StressPipeline, video: &VideoSample) -> StressLabel {
    pl.assess_direct(video, 0.0, video.id as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use lfm::pretrain::{pretrain, CapabilityProfile};
    use lfm::{Lfm, ModelConfig};
    use videosynth::dataset::{Dataset, DatasetProfile, Scale};

    fn frozen_proxy() -> StressPipeline {
        let mut m = Lfm::new(ModelConfig::tiny(), 12);
        pretrain(&mut m, &CapabilityProfile::gpt4o().scaled(0.1), 3);
        StressPipeline::new(m, PipelineConfig::smoke())
    }

    #[test]
    fn test_time_refinement_runs_without_training() {
        let pl = frozen_proxy();
        let ds = Dataset::generate(DatasetProfile::rsl(Scale::Smoke), 5);
        let before = pl.model.store.snapshot();
        let out = predict_with_test_time_refinement(&pl, &ds.samples[0], &ds.samples, 1);
        // The model must be byte-identical afterwards — no training happened.
        for id in pl.model.store.ids() {
            assert_eq!(pl.model.store.value(id).data, before.value(id).data);
        }
        assert!(matches!(
            out.assessment,
            StressLabel::Stressed | StressLabel::Unstressed
        ));
    }

    #[test]
    fn deterministic_in_seed() {
        let pl = frozen_proxy();
        let ds = Dataset::generate(DatasetProfile::rsl(Scale::Smoke), 5);
        let a = predict_with_test_time_refinement(&pl, &ds.samples[1], &ds.samples, 42);
        let b = predict_with_test_time_refinement(&pl, &ds.samples[1], &ds.samples, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn unreplaced_keeps_preliminary_assessment() {
        let pl = frozen_proxy();
        let ds = Dataset::generate(DatasetProfile::rsl(Scale::Smoke), 5);
        let out = predict_with_test_time_refinement(&pl, &ds.samples[2], &ds.samples, 7);
        if !out.replaced {
            let orig = pl.describe(&ds.samples[2], pl.cfg.temperature, 7);
            assert_eq!(out.description, orig);
        }
    }
}
