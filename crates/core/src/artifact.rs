//! `SRCR1` model artifacts: integrity-checked persistence of a trained
//! [`StressPipeline`].
//!
//! An artifact is one [`tinynn::serialize`] container file holding five
//! sections — training metadata, the pipeline config, the vocabulary, the
//! parameter tensors (nested `TNN1` bytes) and the world profile the model
//! was trained against.  Every section is CRC32-guarded by the container
//! layer, writes are atomic (tmp file + rename), and the load path
//! revalidates the config and the parameter structure, so a truncated,
//! bit-flipped or hand-edited file is always a typed [`ArtifactError`],
//! never a panic or a silently wrong model.
//!
//! Because [`lfm::Lfm::from_parts`] adopts the stored tensors without any
//! random initialisation, a loaded pipeline is bitwise-identical to the one
//! that was saved: same logits, same decoded tokens, at any thread count.

use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;
use std::process::Command;
use std::str::FromStr;

use lfm::{Lfm, ModelConfig, Vocab};
use tinynn::serialize::{crc32, read_container, write_container, ContainerError};
use videosynth::world::WorldConfig;

use crate::config::{ConfigError, PipelineConfig};
use crate::pipeline::StressPipeline;

/// File extension for pipeline artifacts.
pub const ARTIFACT_EXT: &str = "srcr";

/// Fault-injection point consulted on every artifact file read.
///
/// Arming a [`runtime::faults`] plan against this point exercises the
/// loader's recovery from truncation, I/O errors and bit flips **through
/// the real file path**, not just the in-memory parser: every injected
/// fault must surface as a typed [`ArtifactError`], never a panic.
pub const FAULT_ARTIFACT_READ: &str = "artifact.read";

const SEC_META: &str = "srcr.meta";
const SEC_PIPELINE: &str = "pipeline.config";
const SEC_VOCAB: &str = "lfm.vocab";
const SEC_PARAMS: &str = "lfm.params";
const SEC_WORLD: &str = "world.config";

/// Provenance recorded alongside the weights.
#[derive(Clone, Debug, PartialEq)]
pub struct ArtifactMeta {
    /// Model name exposed by the serving API (e.g. `uvsd_sim`).
    pub name: String,
    /// Monotonic artifact version for this name.
    pub version: u32,
    /// Dataset scale multiplier the model was trained at.
    pub scale: f64,
    /// Ablation variant label (e.g. `full`).
    pub variant: String,
    /// Base RNG seed of the training run.
    pub seed: u64,
    /// `git describe` of the producing tree, or `unknown`.
    pub git: String,
}

/// Why an artifact failed to save or load.
#[derive(Debug)]
pub enum ArtifactError {
    /// Filesystem failure.
    Io(io::Error),
    /// The container layer rejected the bytes (bad magic, checksum
    /// mismatch, truncation, trailing garbage, ...).
    Container(ContainerError),
    /// A required section is absent.
    MissingSection(&'static str),
    /// A section the format does not define (or a duplicate).
    UnknownSection(String),
    /// A section's payload does not parse.
    Parse {
        /// Which section.
        section: &'static str,
        /// What went wrong.
        reason: String,
    },
    /// The stored pipeline config fails validation.
    Config(ConfigError),
    /// Vocab/params do not assemble into the declared architecture.
    Model(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact io error: {e}"),
            ArtifactError::Container(e) => write!(f, "artifact container error: {e}"),
            ArtifactError::MissingSection(s) => write!(f, "artifact is missing section {s:?}"),
            ArtifactError::UnknownSection(s) => {
                write!(f, "artifact holds unexpected section {s:?}")
            }
            ArtifactError::Parse { section, reason } => {
                write!(f, "artifact section {section:?} is malformed: {reason}")
            }
            ArtifactError::Config(e) => write!(f, "artifact pipeline config is invalid: {e}"),
            ArtifactError::Model(e) => write!(f, "artifact does not assemble: {e}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<io::Error> for ArtifactError {
    fn from(e: io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

impl From<ContainerError> for ArtifactError {
    fn from(e: ContainerError) -> Self {
        ArtifactError::Container(e)
    }
}

/// A pipeline reconstructed from an artifact, with its provenance.
#[derive(Clone, Debug)]
pub struct LoadedArtifact {
    /// The reassembled pipeline, bitwise-identical to the saved one.
    pub pipeline: StressPipeline,
    /// World profile the model was trained against.
    pub world: WorldConfig,
    /// Training provenance.
    pub meta: ArtifactMeta,
    /// CRC32 of the whole artifact byte stream (reported by `/v1/models`).
    pub content_hash: u32,
}

/// `git describe --always --dirty` of the working tree, or `"unknown"`.
pub fn git_describe() -> String {
    Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Conventional file name for a named artifact: `<name>.srcr`.
pub fn artifact_file_name(name: &str) -> String {
    format!("{name}.{ARTIFACT_EXT}")
}

/// Serialise a pipeline into `SRCR1` artifact bytes.
pub fn pipeline_to_bytes(
    pipeline: &StressPipeline,
    world: &WorldConfig,
    meta: &ArtifactMeta,
) -> io::Result<Vec<u8>> {
    let meta_kv = kv_encode(&[
        ("name", meta.name.clone()),
        ("version", meta.version.to_string()),
        ("scale", meta.scale.to_string()),
        ("variant", meta.variant.clone()),
        ("seed", meta.seed.to_string()),
        ("git", meta.git.clone()),
    ]);
    // The pipeline's configured architecture can differ from the model it
    // actually wraps (training starts from a pretrained base whose shape is
    // chosen independently of the chain config).  The artifact records the
    // architecture of the *stored tensors*, so `Lfm::from_parts` always
    // reassembles against the right shapes.
    let mut cfg = pipeline.cfg.clone();
    cfg.model = pipeline.model.cfg.clone();
    let cfg_kv = encode_pipeline_config(&cfg);
    let world_kv = encode_world_config(world);
    let mut vocab = Vec::new();
    pipeline.model.vocab.save(&mut vocab)?;
    let mut params = Vec::new();
    pipeline.model.save_weights(&mut params)?;

    let mut out = Vec::new();
    write_container(
        &mut out,
        &[
            (SEC_META, &meta_kv),
            (SEC_PIPELINE, &cfg_kv),
            (SEC_VOCAB, &vocab),
            (SEC_PARAMS, &params),
            (SEC_WORLD, &world_kv),
        ],
    )?;
    Ok(out)
}

/// Save a pipeline artifact atomically: the bytes land in a `.tmp` sibling
/// first and are renamed into place, so a crash mid-write never leaves a
/// half-written file under the final name.
pub fn save_pipeline(
    path: &Path,
    pipeline: &StressPipeline,
    world: &WorldConfig,
    meta: &ArtifactMeta,
) -> io::Result<()> {
    let bytes = pipeline_to_bytes(pipeline, world, meta)?;
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// Load and verify a pipeline artifact from a file.
///
/// Reads go through a fault-injectable reader
/// ([`FAULT_ARTIFACT_READ`]), so chaos runs corrupt real loads mid-stream;
/// when no fault plan is armed the wrapper is a single branch per read.
pub fn load_pipeline(path: &Path) -> Result<LoadedArtifact, ArtifactError> {
    let mut bytes = Vec::new();
    let file = fs::File::open(path)?;
    runtime::faults::FaultyRead::new(io::BufReader::new(file), FAULT_ARTIFACT_READ)
        .read_to_end(&mut bytes)?;
    load_pipeline_from_bytes(&bytes)
}

/// Load and verify a pipeline artifact from memory.
///
/// Every failure mode — truncation, bit flips anywhere in the stream,
/// missing/duplicate/unknown sections, malformed payloads, invalid configs,
/// parameter/architecture mismatches — returns a typed error.
pub fn load_pipeline_from_bytes(bytes: &[u8]) -> Result<LoadedArtifact, ArtifactError> {
    let sections = read_container(&mut io::Cursor::new(bytes))?;

    let mut meta_b = None;
    let mut cfg_b = None;
    let mut vocab_b = None;
    let mut params_b = None;
    let mut world_b = None;
    for (name, payload) in sections {
        let slot = match name.as_str() {
            SEC_META => &mut meta_b,
            SEC_PIPELINE => &mut cfg_b,
            SEC_VOCAB => &mut vocab_b,
            SEC_PARAMS => &mut params_b,
            SEC_WORLD => &mut world_b,
            _ => return Err(ArtifactError::UnknownSection(name)),
        };
        if slot.replace(payload).is_some() {
            return Err(ArtifactError::UnknownSection(format!("{name} (duplicate)")));
        }
    }
    let take = |slot: Option<Vec<u8>>, name| slot.ok_or(ArtifactError::MissingSection(name));

    let meta = decode_meta(&take(meta_b, SEC_META)?)?;
    let cfg = decode_pipeline_config(&take(cfg_b, SEC_PIPELINE)?)?;
    cfg.validate().map_err(ArtifactError::Config)?;
    let vocab = Vocab::load(&mut io::Cursor::new(take(vocab_b, SEC_VOCAB)?)).map_err(|e| {
        ArtifactError::Parse {
            section: SEC_VOCAB,
            reason: e.to_string(),
        }
    })?;
    let store = tinynn::serialize::load_params(&mut io::Cursor::new(take(params_b, SEC_PARAMS)?))
        .map_err(|e| ArtifactError::Parse {
        section: SEC_PARAMS,
        reason: e.to_string(),
    })?;
    let world = decode_world_config(&take(world_b, SEC_WORLD)?)?;

    let model = Lfm::from_parts(cfg.model.clone(), vocab, store).map_err(ArtifactError::Model)?;
    Ok(LoadedArtifact {
        pipeline: StressPipeline::new(model, cfg),
        world,
        meta,
        content_hash: crc32(bytes),
    })
}

// ---------------------------------------------------------------------------
// key=value section payloads
// ---------------------------------------------------------------------------
//
// Text sections are newline-separated `key=value` lines in a fixed order.
// Floats are printed with Rust's shortest round-trip `Display`, so parsing
// recovers the exact bit pattern.  Parsing is strict: every defined key must
// appear exactly once and nothing else may.

fn kv_encode(pairs: &[(&str, String)]) -> Vec<u8> {
    let mut out = String::new();
    for (k, v) in pairs {
        debug_assert!(!v.contains('\n'), "kv value for {k} holds a newline");
        out.push_str(k);
        out.push('=');
        out.push_str(v);
        out.push('\n');
    }
    out.into_bytes()
}

struct Kv<'a> {
    section: &'static str,
    pairs: Vec<(&'a str, &'a str)>,
    read: usize,
}

impl<'a> Kv<'a> {
    fn parse(section: &'static str, bytes: &'a [u8]) -> Result<Kv<'a>, ArtifactError> {
        let err = |reason: String| ArtifactError::Parse { section, reason };
        let text =
            std::str::from_utf8(bytes).map_err(|_| err("payload is not UTF-8".to_string()))?;
        let mut pairs = Vec::new();
        for line in text.lines() {
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| err(format!("line without '=': {line:?}")))?;
            if pairs.iter().any(|(seen, _)| *seen == k) {
                return Err(err(format!("duplicate key {k:?}")));
            }
            pairs.push((k, v));
        }
        Ok(Kv {
            section,
            pairs,
            read: 0,
        })
    }

    fn get<T: FromStr>(&mut self, key: &str) -> Result<T, ArtifactError>
    where
        T::Err: fmt::Display,
    {
        let err = |reason: String| ArtifactError::Parse {
            section: self.section,
            reason,
        };
        let v = self
            .pairs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .ok_or_else(|| err(format!("missing key {key:?}")))?;
        self.read += 1;
        v.parse()
            .map_err(|e| err(format!("key {key:?} value {v:?}: {e}")))
    }

    /// Fail if any key was never consumed by [`get`](Self::get).
    fn finish(self) -> Result<(), ArtifactError> {
        if self.read != self.pairs.len() {
            return Err(ArtifactError::Parse {
                section: self.section,
                reason: format!(
                    "section holds {} keys, format defines {}",
                    self.pairs.len(),
                    self.read
                ),
            });
        }
        Ok(())
    }
}

fn decode_meta(bytes: &[u8]) -> Result<ArtifactMeta, ArtifactError> {
    let mut kv = Kv::parse(SEC_META, bytes)?;
    let meta = ArtifactMeta {
        name: kv.get("name")?,
        version: kv.get("version")?,
        scale: kv.get("scale")?,
        variant: kv.get("variant")?,
        seed: kv.get("seed")?,
        git: kv.get("git")?,
    };
    kv.finish()?;
    if meta.name.is_empty()
        || !meta
            .name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.')
    {
        return Err(ArtifactError::Parse {
            section: SEC_META,
            reason: format!("model name {:?} is not a safe identifier", meta.name),
        });
    }
    Ok(meta)
}

fn encode_pipeline_config(cfg: &PipelineConfig) -> Vec<u8> {
    kv_encode(&[
        ("model.d_model", cfg.model.d_model.to_string()),
        ("model.heads", cfg.model.heads.to_string()),
        ("model.layers", cfg.model.layers.to_string()),
        ("model.ff", cfg.model.ff.to_string()),
        ("model.max_seq", cfg.model.max_seq.to_string()),
        ("model.patch", cfg.model.patch.to_string()),
        ("model.vis_tokens", cfg.model.vis_tokens.to_string()),
        ("k_repeats", cfg.k_repeats.to_string()),
        (
            "max_reflection_rounds",
            cfg.max_reflection_rounds.to_string(),
        ),
        ("n_rationales", cfg.n_rationales.to_string()),
        ("dpo_beta", cfg.dpo_beta.to_string()),
        ("temperature", cfg.temperature.to_string()),
        ("describe_epochs", cfg.describe_epochs.to_string()),
        ("assess_epochs", cfg.assess_epochs.to_string()),
        ("dpo_epochs", cfg.dpo_epochs.to_string()),
        ("sft_lr", cfg.sft_lr.to_string()),
        ("dpo_lr", cfg.dpo_lr.to_string()),
        ("seed", cfg.seed.to_string()),
    ])
}

fn decode_pipeline_config(bytes: &[u8]) -> Result<PipelineConfig, ArtifactError> {
    let mut kv = Kv::parse(SEC_PIPELINE, bytes)?;
    let cfg = PipelineConfig {
        model: ModelConfig {
            d_model: kv.get("model.d_model")?,
            heads: kv.get("model.heads")?,
            layers: kv.get("model.layers")?,
            ff: kv.get("model.ff")?,
            max_seq: kv.get("model.max_seq")?,
            patch: kv.get("model.patch")?,
            vis_tokens: kv.get("model.vis_tokens")?,
        },
        k_repeats: kv.get("k_repeats")?,
        max_reflection_rounds: kv.get("max_reflection_rounds")?,
        n_rationales: kv.get("n_rationales")?,
        dpo_beta: kv.get("dpo_beta")?,
        temperature: kv.get("temperature")?,
        describe_epochs: kv.get("describe_epochs")?,
        assess_epochs: kv.get("assess_epochs")?,
        dpo_epochs: kv.get("dpo_epochs")?,
        sft_lr: kv.get("sft_lr")?,
        dpo_lr: kv.get("dpo_lr")?,
        seed: kv.get("seed")?,
    };
    kv.finish()?;
    Ok(cfg)
}

fn encode_world_config(w: &WorldConfig) -> Vec<u8> {
    kv_encode(&[
        ("num_frames", w.num_frames.to_string()),
        ("au_label_coupling", w.au_label_coupling.to_string()),
        ("au_base_rate", w.au_base_rate.to_string()),
        ("subject_idiosyncrasy", w.subject_idiosyncrasy.to_string()),
        ("intensity_noise", w.intensity_noise.to_string()),
        ("pixel_noise", w.pixel_noise.to_string()),
        ("distractor_rate", w.distractor_rate.to_string()),
        ("texture_gain", w.texture_gain.to_string()),
        ("identity_strength", w.identity_strength.to_string()),
    ])
}

fn decode_world_config(bytes: &[u8]) -> Result<WorldConfig, ArtifactError> {
    let mut kv = Kv::parse(SEC_WORLD, bytes)?;
    let w = WorldConfig {
        num_frames: kv.get("num_frames")?,
        au_label_coupling: kv.get("au_label_coupling")?,
        au_base_rate: kv.get("au_base_rate")?,
        subject_idiosyncrasy: kv.get("subject_idiosyncrasy")?,
        intensity_noise: kv.get("intensity_noise")?,
        pixel_noise: kv.get("pixel_noise")?,
        distractor_rate: kv.get("distractor_rate")?,
        texture_gain: kv.get("texture_gain")?,
        identity_strength: kv.get("identity_strength")?,
    };
    kv.finish()?;
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (StressPipeline, WorldConfig, ArtifactMeta) {
        let cfg = PipelineConfig::smoke();
        let model = Lfm::new(cfg.model.clone(), 11);
        let meta = ArtifactMeta {
            name: "uvsd_sim".to_string(),
            version: 1,
            scale: 0.25,
            variant: "full".to_string(),
            seed: 11,
            git: "test".to_string(),
        };
        (
            StressPipeline::new(model, cfg),
            WorldConfig::uvsd_like(),
            meta,
        )
    }

    #[test]
    fn bytes_round_trip_preserves_everything() {
        let (p, w, meta) = sample();
        let bytes = pipeline_to_bytes(&p, &w, &meta).unwrap();
        let loaded = load_pipeline_from_bytes(&bytes).unwrap();
        assert_eq!(loaded.meta, meta);
        assert_eq!(loaded.content_hash, crc32(&bytes));
        assert_eq!(loaded.pipeline.cfg.seed, p.cfg.seed);
        assert_eq!(loaded.pipeline.cfg.sft_lr, p.cfg.sft_lr);
        assert_eq!(loaded.world.au_label_coupling, w.au_label_coupling);
        assert_eq!(loaded.pipeline.model.vocab.words(), p.model.vocab.words());
        // Exact parameter bytes survive.
        for id in p.model.store.ids() {
            assert_eq!(
                p.model.store.value(id).data,
                loaded.pipeline.model.store.value(id).data,
                "param {}",
                p.model.store.name(id)
            );
        }
    }

    #[test]
    fn file_round_trip_is_atomic_and_clean() {
        let (p, w, meta) = sample();
        let dir = std::env::temp_dir().join("srcr_artifact_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(artifact_file_name(&meta.name));
        save_pipeline(&path, &p, &w, &meta).unwrap();
        // No tmp residue next to the artifact.
        assert!(!dir.join("uvsd_sim.srcr.tmp").exists());
        let loaded = load_pipeline(&path).unwrap();
        assert_eq!(loaded.meta.name, "uvsd_sim");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tampered_sections_are_typed_errors() {
        let (p, w, meta) = sample();

        // Unknown section.
        let mut cfg_kv = encode_pipeline_config(&p.cfg);
        cfg_kv.extend_from_slice(b"rogue=1\n");
        let err = decode_pipeline_config(&cfg_kv).unwrap_err();
        assert!(matches!(err, ArtifactError::Parse { .. }), "{err}");

        // An invalid stored config combination is rejected post-parse.
        // The saver canonicalises `cfg.model` to the wrapped model, so an
        // inconsistent config can only reach the loader via a rewritten
        // container (the per-section checksums bar cheaper edits).
        let mut bad = p.cfg.clone();
        bad.model = p.model.cfg.clone();
        bad.model.heads = 3;
        let bad_kv = encode_pipeline_config(&bad);
        let bytes = pipeline_to_bytes(&p, &w, &meta).unwrap();
        let patched: Vec<(String, Vec<u8>)> =
            read_container(&mut io::Cursor::new(bytes.as_slice()))
                .unwrap()
                .into_iter()
                .map(|(n, pl)| {
                    let pl = if n == SEC_PIPELINE {
                        bad_kv.clone()
                    } else {
                        pl
                    };
                    (n, pl)
                })
                .collect();
        let refs: Vec<(&str, &[u8])> = patched
            .iter()
            .map(|(n, pl)| (n.as_str(), pl.as_slice()))
            .collect();
        let mut tampered = Vec::new();
        write_container(&mut tampered, &refs).unwrap();
        assert!(matches!(
            load_pipeline_from_bytes(&tampered),
            Err(ArtifactError::Config(_))
        ));

        // Unsafe model name.
        let mut m2 = meta.clone();
        m2.name = "../escape".to_string();
        let bytes = pipeline_to_bytes(&p, &w, &m2).unwrap();
        assert!(matches!(
            load_pipeline_from_bytes(&bytes),
            Err(ArtifactError::Parse { .. })
        ));

        // Truncation is a container error.
        let bytes = pipeline_to_bytes(&p, &w, &meta).unwrap();
        assert!(matches!(
            load_pipeline_from_bytes(&bytes[..bytes.len() - 1]),
            Err(ArtifactError::Container(_))
        ));
    }

    #[test]
    fn float_display_round_trips_exactly() {
        for v in [0.1f32, 2e-3, 5e-4, f32::MIN_POSITIVE, 1.0 / 3.0] {
            assert_eq!(v.to_string().parse::<f32>().unwrap(), v);
        }
    }
}
