//! The SRCR chain as a resumable token-level state machine — the unit of
//! work the continuous-batching scheduler interleaves across requests.
//!
//! [`StressPipeline::predict_scored_with_session`] runs
//! Describe→Assess→Highlight→Score to completion on one session.
//! [`ChainStepper`] performs the *same* computation one token (or one
//! forced-choice/scoring prompt) at a time: each [`ChainStepper::step`]
//! call advances the chain by exactly one unit and reports whether the
//! request is still decoding, crossed a stage boundary, or finished.  A
//! stepper driven to completion produces bit-identical results to the
//! monolithic path — same prompts, same rng streams, same session reuse —
//! which `tests` in this module assert directly.
//!
//! `repeats` re-runs the describe→assess→highlight chain that many times on
//! the same session before scoring once — the serving work-size knob
//! (`chain_repeats` in the predict API) that makes mixed short/long loads
//! expressible.  Every repeat uses the same per-request chain seed, so
//! repeats only add decode work, never change the final answer.
//!
//! Failure contract: a step that returns [`PagesExhausted`] may have
//! consumed rng state already.  Never resume a failed stepper — the
//! scheduler drops it (freeing its pages) and restarts the request from
//! scratch; determinism makes the replay identical.

use facs::au::AuSet;
use lfm::grammar::{DescriptionSampler, SamplerStep};
use lfm::instructions::{assess_prompt, describe_prompt, highlight_prompt, label_tokens};
use lfm::{InferSession, PagesExhausted};
use rand::rngs::StdRng;
use rand::SeedableRng;
use videosynth::video::{StressLabel, VideoSample};

use crate::pipeline::{ChainOutput, StressPipeline};

/// What one [`ChainStepper::step`] call did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// One decode token was emitted; the stage continues.
    Token,
    /// A stage completed (describe/assess/highlight); the next step starts
    /// the following stage.  Deadline checks at these points reproduce the
    /// monolithic path's abort boundaries.
    StageBoundary,
    /// The chain is complete; [`ChainStepper::finish`] yields the result.
    Finished,
}

enum Stage {
    Describe(DescriptionSampler),
    Assess,
    Highlight(DescriptionSampler),
    Score,
    Done,
}

/// A single predict request advancing through the SRCR chain one token at
/// a time on its own [`InferSession`].
pub struct ChainStepper {
    video: VideoSample,
    chain_seed: u64,
    /// Total describe→assess→highlight passes to run (≥ 1).
    repeats: u32,
    /// Completed passes.
    repeat: u32,
    stage: Stage,
    session: InferSession,
    description: AuSet,
    assessment: StressLabel,
    rationale: AuSet,
    score: f32,
}

impl ChainStepper {
    /// A stepper over `session` (typically scheduler-built via
    /// [`InferSession::with_parts`] on the model's shared slab + prefix
    /// cache).  `chain_seed` is the per-request stream seed the serving
    /// layer derives; `repeats` ≥ 1 chain passes run before scoring.
    pub fn new(
        pipeline: &StressPipeline,
        session: InferSession,
        video: VideoSample,
        chain_seed: u64,
        repeats: u32,
    ) -> Self {
        assert!(repeats >= 1, "at least one chain pass");
        let sampler = DescriptionSampler::new(
            &pipeline.model,
            describe_prompt(&pipeline.model, &video),
            AuSet::FULL,
            0.0,
            chain_seed,
        );
        ChainStepper {
            video,
            chain_seed,
            repeats,
            repeat: 0,
            stage: Stage::Describe(sampler),
            session,
            description: AuSet::EMPTY,
            assessment: StressLabel::Unstressed,
            rationale: AuSet::EMPTY,
            score: 0.5,
        }
    }

    /// Whether the next step will prefill a prompt (`set_context`) rather
    /// than decode one token.  The scheduler serializes priming steps so a
    /// shared prefix is published before identical co-tenants re-embed it.
    pub fn will_prime(&self) -> bool {
        match &self.stage {
            Stage::Describe(s) | Stage::Highlight(s) => s.will_prime(),
            Stage::Assess | Stage::Score => true,
            Stage::Done => false,
        }
    }

    /// The session, for decode/prefill statistics.
    pub fn session(&self) -> &InferSession {
        &self.session
    }

    /// Advance the chain by one unit.  On [`PagesExhausted`] the stepper
    /// must be discarded (see module docs).
    pub fn step(&mut self, pipeline: &StressPipeline) -> Result<StepOutcome, PagesExhausted> {
        let model = &pipeline.model;
        match &mut self.stage {
            Stage::Describe(sampler) => match sampler.step(model, &mut self.session)? {
                SamplerStep::Emitted => Ok(StepOutcome::Token),
                SamplerStep::Done(set) => {
                    self.description = set;
                    self.stage = Stage::Assess;
                    Ok(StepOutcome::StageBoundary)
                }
            },
            Stage::Assess => {
                // Exactly `forced_label_with_session`: fresh rng from the
                // chain seed, forced choice over the two label tokens.
                let p = assess_prompt(model, &self.video, self.description);
                let [st, un] = label_tokens(&model.vocab);
                let mut rng = StdRng::seed_from_u64(self.chain_seed);
                let c = model.try_choose_with_session(
                    &mut self.session,
                    &p,
                    &[st, un],
                    0.0,
                    &mut rng,
                )?;
                self.assessment = if c == st {
                    StressLabel::Stressed
                } else {
                    StressLabel::Unstressed
                };
                self.stage = Stage::Highlight(DescriptionSampler::new(
                    model,
                    highlight_prompt(model, &self.video, self.description, self.assessment),
                    self.description,
                    0.0,
                    self.chain_seed,
                ));
                Ok(StepOutcome::StageBoundary)
            }
            Stage::Highlight(sampler) => match sampler.step(model, &mut self.session)? {
                SamplerStep::Emitted => Ok(StepOutcome::Token),
                SamplerStep::Done(set) => {
                    self.rationale = set;
                    self.repeat += 1;
                    self.stage = if self.repeat < self.repeats {
                        Stage::Describe(DescriptionSampler::new(
                            model,
                            describe_prompt(model, &self.video),
                            AuSet::FULL,
                            0.0,
                            self.chain_seed,
                        ))
                    } else {
                        Stage::Score
                    };
                    Ok(StepOutcome::StageBoundary)
                }
            },
            Stage::Score => {
                // Exactly `stress_score_with_session`.
                let p = assess_prompt(model, &self.video, self.description);
                let dist = model.try_next_token_distribution_with_session(&mut self.session, &p)?;
                let [st, un] = label_tokens(&model.vocab);
                let (ps, pu) = (dist[st as usize], dist[un as usize]);
                self.score = if ps + pu > 0.0 { ps / (ps + pu) } else { 0.5 };
                self.stage = Stage::Done;
                Ok(StepOutcome::Finished)
            }
            Stage::Done => Ok(StepOutcome::Finished),
        }
    }

    /// The completed chain output and assess confidence.  Panics if called
    /// before a step returned [`StepOutcome::Finished`].
    pub fn finish(&self) -> (ChainOutput, f32) {
        assert!(
            matches!(self.stage, Stage::Done),
            "chain has not finished yet"
        );
        (
            ChainOutput {
                description: self.description,
                assessment: self.assessment,
                rationale: self.rationale,
            },
            self.score,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use lfm::{Lfm, ModelConfig};
    use videosynth::world::{sample_video, Subject, WorldConfig};

    fn pipeline() -> StressPipeline {
        StressPipeline::new(Lfm::new(ModelConfig::tiny(), 3), PipelineConfig::smoke())
    }

    fn video(id: usize, label: StressLabel) -> VideoSample {
        let mut rng = StdRng::seed_from_u64(id as u64);
        let s = Subject::generate(0, 0.3, &mut rng);
        sample_video(&WorldConfig::uvsd_like(), &s, label, id, 5)
    }

    fn run_to_completion(p: &StressPipeline, stepper: &mut ChainStepper) -> (ChainOutput, f32) {
        let mut steps = 0usize;
        loop {
            match stepper.step(p).expect("unbounded slab") {
                StepOutcome::Finished => return stepper.finish(),
                _ => {
                    steps += 1;
                    assert!(steps < 100_000, "chain must terminate");
                }
            }
        }
    }

    #[test]
    fn stepper_matches_monolithic_chain_bitwise() {
        let p = pipeline();
        for (id, label, seed) in [
            (1, StressLabel::Stressed, 0u64),
            (2, StressLabel::Unstressed, 7),
            (5, StressLabel::Stressed, 123),
        ] {
            let v = video(id, label);
            let want = p.predict_scored_with_session(&mut p.session(), &v, seed);
            let mut stepper = ChainStepper::new(&p, p.session(), v, seed, 1);
            let got = run_to_completion(&p, &mut stepper);
            assert_eq!(got, want, "id={id} seed={seed}");
        }
    }

    #[test]
    fn repeats_only_add_work_never_change_the_answer() {
        let p = pipeline();
        let v = video(3, StressLabel::Stressed);
        let want = p.predict_scored_with_session(&mut p.session(), &v, 9);
        let mut one = ChainStepper::new(&p, p.session(), v.clone(), 9, 1);
        let r1 = run_to_completion(&p, &mut one);
        let mut three = ChainStepper::new(&p, p.session(), v, 9, 3);
        let r3 = run_to_completion(&p, &mut three);
        assert_eq!(r1, want);
        assert_eq!(r3, want, "repeats must not change the output");
        assert!(
            three.session().decoded_tokens() > one.session().decoded_tokens(),
            "repeats must add decode work"
        );
    }

    #[test]
    fn boundary_count_matches_stage_structure() {
        let p = pipeline();
        let v = video(4, StressLabel::Unstressed);
        let repeats = 2u32;
        let mut stepper = ChainStepper::new(&p, p.session(), v, 0, repeats);
        let mut boundaries = 0;
        loop {
            match stepper.step(&p).expect("unbounded slab") {
                StepOutcome::StageBoundary => boundaries += 1,
                StepOutcome::Finished => break,
                StepOutcome::Token => {}
            }
        }
        // describe/assess/highlight per repeat; Score ends with Finished.
        assert_eq!(boundaries, 3 * repeats);
    }
}
