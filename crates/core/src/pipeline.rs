//! The `Describe → Assess → Highlight` inference pipeline (Eq. 1).

use facs::au::AuSet;
use lfm::grammar::generate_description_within_session;
use lfm::instructions::{
    assess_direct_prompt, assess_prompt, assess_prompt_with_examples, describe_prompt,
    highlight_prompt, label_tokens, IclExample,
};
use lfm::{InferSession, Lfm};
use rand::rngs::StdRng;
use rand::SeedableRng;
use videosynth::video::{StressLabel, VideoSample};

use crate::config::PipelineConfig;

/// One full chain-of-thought output for a video.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainOutput {
    /// The generated facial-action description `E`.
    pub description: AuSet,
    /// The stress assessment `A`.
    pub assessment: StressLabel,
    /// The highlighted rationale `R ⊆ E`.
    pub rationale: AuSet,
}

/// A trained (or in-training) stress-detection pipeline: the foundation
/// model plus the chain configuration.
#[derive(Clone, Debug)]
pub struct StressPipeline {
    /// The underlying foundation model `F`.
    pub model: Lfm,
    /// Chain hyper-parameters.
    pub cfg: PipelineConfig,
}

impl StressPipeline {
    /// Wrap an existing model.
    pub fn new(model: Lfm, cfg: PipelineConfig) -> Self {
        StressPipeline { model, cfg }
    }

    /// A fresh decoding session for this pipeline's model.  Thread one
    /// session through repeated calls on related prompts (same video, same
    /// description) and the KV cache skips the shared prefix.
    pub fn session(&self) -> InferSession {
        InferSession::new(&self.model)
    }

    /// **Describe** (I₁): generate a facial-action description of the video.
    pub fn describe(&self, video: &VideoSample, temperature: f32, seed: u64) -> AuSet {
        self.describe_with_session(&mut self.session(), video, temperature, seed)
    }

    /// [`describe`](Self::describe) on a caller-owned session.
    pub fn describe_with_session(
        &self,
        session: &mut InferSession,
        video: &VideoSample,
        temperature: f32,
        seed: u64,
    ) -> AuSet {
        let p = describe_prompt(&self.model, video);
        generate_description_within_session(
            &self.model,
            session,
            &p,
            AuSet::FULL,
            temperature,
            seed,
        )
    }

    /// **Assess** (I₂): judge the stress state given video and description.
    pub fn assess(
        &self,
        video: &VideoSample,
        description: AuSet,
        temperature: f32,
        seed: u64,
    ) -> StressLabel {
        self.assess_with_session(&mut self.session(), video, description, temperature, seed)
    }

    /// [`assess`](Self::assess) on a caller-owned session.
    pub fn assess_with_session(
        &self,
        session: &mut InferSession,
        video: &VideoSample,
        description: AuSet,
        temperature: f32,
        seed: u64,
    ) -> StressLabel {
        let p = assess_prompt(&self.model, video, description);
        self.forced_label_with_session(session, &p, temperature, seed)
    }

    /// Assess with in-context examples prepended (§IV-F).
    pub fn assess_with_examples(
        &self,
        video: &VideoSample,
        description: AuSet,
        examples: &[IclExample<'_>],
        temperature: f32,
        seed: u64,
    ) -> StressLabel {
        let p = assess_prompt_with_examples(&self.model, video, description, examples);
        self.forced_label(&p, temperature, seed)
    }

    /// Direct pixel→label assessment (the "w/o Chain" query).
    pub fn assess_direct(&self, video: &VideoSample, temperature: f32, seed: u64) -> StressLabel {
        let p = assess_direct_prompt(&self.model, video);
        self.forced_label(&p, temperature, seed)
    }

    /// **Highlight** (I₃): name the critical facial actions.  The rationale
    /// is constrained to the AUs the description mentioned.
    pub fn highlight(
        &self,
        video: &VideoSample,
        description: AuSet,
        assessment: StressLabel,
        temperature: f32,
        seed: u64,
    ) -> AuSet {
        self.highlight_with_session(
            &mut self.session(),
            video,
            description,
            assessment,
            temperature,
            seed,
        )
    }

    /// [`highlight`](Self::highlight) on a caller-owned session.
    pub fn highlight_with_session(
        &self,
        session: &mut InferSession,
        video: &VideoSample,
        description: AuSet,
        assessment: StressLabel,
        temperature: f32,
        seed: u64,
    ) -> AuSet {
        let p = highlight_prompt(&self.model, video, description, assessment);
        generate_description_within_session(
            &self.model,
            session,
            &p,
            description,
            temperature,
            seed,
        )
    }

    /// Run the whole chain greedily (deployment mode: `seed` only matters
    /// at non-zero temperature).
    pub fn predict(&self, video: &VideoSample, seed: u64) -> ChainOutput {
        self.predict_with_session(&mut self.session(), video, seed)
    }

    /// [`predict`](Self::predict) on a caller-owned session: the three
    /// stages share one KV cache, so the video prefix and the growing
    /// chain prompt are embedded once, not three times.
    pub fn predict_with_session(
        &self,
        session: &mut InferSession,
        video: &VideoSample,
        seed: u64,
    ) -> ChainOutput {
        let description = self.describe_with_session(session, video, 0.0, seed);
        let assessment = self.assess_with_session(session, video, description, 0.0, seed);
        let rationale =
            self.highlight_with_session(session, video, description, assessment, 0.0, seed);
        ChainOutput {
            description,
            assessment,
            rationale,
        }
    }

    /// Greedy label prediction only (for accuracy evaluation).
    pub fn predict_label(&self, video: &VideoSample) -> StressLabel {
        let session = &mut self.session();
        let description = self.describe_with_session(session, video, 0.0, video.id as u64);
        self.assess_with_session(session, video, description, 0.0, video.id as u64)
    }

    /// p(stressed) of the assess step given the video and a description —
    /// the label-token probability mass renormalised over the two labels.
    /// This is the confidence the serving API returns with every
    /// prediction, and a pure function of `(model, video, description)`.
    pub fn stress_score(&self, video: &VideoSample, description: AuSet) -> f32 {
        self.stress_score_with_session(&mut self.session(), video, description)
    }

    /// [`stress_score`](Self::stress_score) on a caller-owned session —
    /// after an assess call on the same `(video, description)` the whole
    /// prompt is a cache hit.
    pub fn stress_score_with_session(
        &self,
        session: &mut InferSession,
        video: &VideoSample,
        description: AuSet,
    ) -> f32 {
        let p = assess_prompt(&self.model, video, description);
        let dist = self.model.next_token_distribution_with_session(session, &p);
        let [st, un] = label_tokens(&self.model.vocab);
        let ps = dist[st as usize];
        let pu = dist[un as usize];
        if ps + pu > 0.0 {
            ps / (ps + pu)
        } else {
            0.5
        }
    }

    /// [`predict`](Self::predict) plus the assess-step confidence.
    pub fn predict_scored(&self, video: &VideoSample, seed: u64) -> (ChainOutput, f32) {
        self.predict_scored_with_session(&mut self.session(), video, seed)
    }

    /// [`predict_scored`](Self::predict_scored) on a caller-owned session,
    /// so callers can read decode statistics off the session afterwards.
    pub fn predict_scored_with_session(
        &self,
        session: &mut InferSession,
        video: &VideoSample,
        seed: u64,
    ) -> (ChainOutput, f32) {
        let out = self.predict_with_session(session, video, seed);
        let score = self.stress_score_with_session(session, video, out.description);
        (out, score)
    }

    fn forced_label(&self, p: &lfm::Prompt, temperature: f32, seed: u64) -> StressLabel {
        self.forced_label_with_session(&mut self.session(), p, temperature, seed)
    }

    fn forced_label_with_session(
        &self,
        session: &mut InferSession,
        p: &lfm::Prompt,
        temperature: f32,
        seed: u64,
    ) -> StressLabel {
        let [st, un] = label_tokens(&self.model.vocab);
        let mut rng = StdRng::seed_from_u64(seed);
        let c = self
            .model
            .choose_with_session(session, p, &[st, un], temperature, &mut rng);
        if c == st {
            StressLabel::Stressed
        } else {
            StressLabel::Unstressed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfm::ModelConfig;
    use videosynth::world::{sample_video, Subject, WorldConfig};

    fn pipeline() -> StressPipeline {
        StressPipeline::new(Lfm::new(ModelConfig::tiny(), 3), PipelineConfig::smoke())
    }

    fn video(id: usize, label: StressLabel) -> VideoSample {
        let mut rng = StdRng::seed_from_u64(id as u64);
        let s = Subject::generate(0, 0.3, &mut rng);
        sample_video(&WorldConfig::uvsd_like(), &s, label, id, 5)
    }

    #[test]
    fn predict_produces_consistent_chain() {
        let p = pipeline();
        let v = video(1, StressLabel::Stressed);
        let out = p.predict(&v, 0);
        // The rationale must be a subset of the description.
        assert!(out.rationale.difference(out.description).is_empty());
        // Greedy predict is deterministic.
        assert_eq!(p.predict(&v, 0), p.predict(&v, 99));
    }

    #[test]
    fn sampled_assess_varies_with_seed_for_untrained_model() {
        let p = pipeline();
        let v = video(2, StressLabel::Unstressed);
        let desc = AuSet::EMPTY;
        let labels: Vec<StressLabel> = (0..20).map(|s| p.assess(&v, desc, 2.0, s)).collect();
        let stressed = labels
            .iter()
            .filter(|&&l| l == StressLabel::Stressed)
            .count();
        assert!(
            stressed > 0 && stressed < 20,
            "hot sampling should vary: {stressed}/20"
        );
    }

    #[test]
    fn stress_score_is_a_probability_consistent_with_the_label() {
        let p = pipeline();
        let v = video(4, StressLabel::Stressed);
        let (out, score) = p.predict_scored(&v, 0);
        assert!((0.0..=1.0).contains(&score));
        // The greedy assess label and the renormalised mass must agree.
        match out.assessment {
            StressLabel::Stressed => assert!(score >= 0.5, "score = {score}"),
            StressLabel::Unstressed => assert!(score <= 0.5, "score = {score}"),
        }
        assert_eq!(out, p.predict(&v, 0), "scoring must not perturb the chain");
    }

    #[test]
    fn shared_session_chain_matches_fresh_sessions() {
        let p = pipeline();
        let v = video(5, StressLabel::Stressed);
        // predict() threads ONE session through all three stages; the
        // per-stage entry points each use a fresh session.  KV-cache reuse
        // must not change a single token of the chain.
        let out = p.predict(&v, 7);
        let description = p.describe(&v, 0.0, 7);
        let assessment = p.assess(&v, description, 0.0, 7);
        let rationale = p.highlight(&v, description, assessment, 0.0, 7);
        assert_eq!(
            out,
            ChainOutput {
                description,
                assessment,
                rationale
            }
        );
        // Same for the scored variant's cache-hit stress_score.
        let (out2, score) = p.predict_scored(&v, 7);
        assert_eq!(out2, out);
        assert_eq!(score, p.stress_score(&v, description));
    }

    #[test]
    fn predict_label_matches_chain_prefix() {
        let p = pipeline();
        let v = video(3, StressLabel::Stressed);
        let full = p.predict(&v, v.id as u64);
        assert_eq!(p.predict_label(&v), full.assessment);
    }
}
