//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] names *injection points* — stable string labels such as
//! `socket.read`, `worker.exec`, `sched.step`, `artifact.read`,
//! `reload.swap` — and for
//! each point a [`FaultKind`], an injection rate, and an optional cap on
//! how many times the fault may fire.  Production code consults a point
//! with [`check`]; the armed plan decides **deterministically** whether
//! this consult is faulted: the decision is a pure hash of
//! `(plan seed, point name, consult index)`, so the same plan against the
//! same sequence of consults injects the same faults on every run.
//!
//! When no plan is armed, [`check`] is a single relaxed atomic load and a
//! branch — zero allocation, zero locking — so leaving the injection
//! points compiled into release binaries costs nothing on the hot path.
//!
//! Plans are parsed from a compact spec string (flag- and env-friendly):
//!
//! ```text
//! seed=42;worker.exec:panic:0.05;socket.read:error:0.02;reload.swap:error:1x2
//! ```
//!
//! Each clause is `point:kind:rate` with an optional `xN` suffix capping
//! the fault at `N` firings.  Kinds: `error`, `panic`, `truncate`,
//! `corrupt`.

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// What a faulted consult should do to the consulting code path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Surface an operational error (an `io::Error` for I/O points).
    Error,
    /// Panic — exercises unwind isolation (worker execution points).
    Panic,
    /// Truncate the stream: reads report EOF early.
    Truncate,
    /// Corrupt the payload: flip one bit in the bytes read.
    Corrupt,
}

impl FaultKind {
    fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "error" => Some(FaultKind::Error),
            "panic" => Some(FaultKind::Panic),
            "truncate" => Some(FaultKind::Truncate),
            "corrupt" => Some(FaultKind::Corrupt),
            _ => None,
        }
    }

    /// The spec-string name of this kind.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Error => "error",
            FaultKind::Panic => "panic",
            FaultKind::Truncate => "truncate",
            FaultKind::Corrupt => "corrupt",
        }
    }
}

/// One injection point's schedule within a plan.
#[derive(Clone, Debug)]
struct PointSpec {
    point: String,
    kind: FaultKind,
    /// Probability in `[0, 1]` that any given consult faults.
    rate: f64,
    /// Cap on total firings (`u64::MAX` = unlimited).
    max_fires: u64,
}

/// A seeded schedule of faults over named injection points.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    points: Vec<PointSpec>,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            points: Vec::new(),
        }
    }

    /// Add an injection schedule: consults of `point` fault with
    /// probability `rate` (clamped to `[0, 1]`), acting out `kind`.
    pub fn with(mut self, point: &str, kind: FaultKind, rate: f64) -> Self {
        self.points.push(PointSpec {
            point: point.to_string(),
            kind,
            rate: rate.clamp(0.0, 1.0),
            max_fires: u64::MAX,
        });
        self
    }

    /// [`with`](Self::with), capped at `max_fires` total firings.
    pub fn with_capped(mut self, point: &str, kind: FaultKind, rate: f64, max_fires: u64) -> Self {
        self.points.push(PointSpec {
            point: point.to_string(),
            kind,
            rate: rate.clamp(0.0, 1.0),
            max_fires,
        });
        self
    }

    /// Parse a spec string: `seed=N;point:kind:rate[xCAP];...`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(0);
        for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            if let Some(seed) = clause.strip_prefix("seed=") {
                plan.seed = seed
                    .parse()
                    .map_err(|e| format!("bad seed {seed:?}: {e}"))?;
                continue;
            }
            let mut parts = clause.split(':');
            let (point, kind, rate) = match (parts.next(), parts.next(), parts.next(), parts.next())
            {
                (Some(p), Some(k), Some(r), None) if !p.is_empty() => (p, k, r),
                _ => return Err(format!("bad clause {clause:?} (want point:kind:rate)")),
            };
            let kind =
                FaultKind::parse(kind).ok_or_else(|| format!("unknown fault kind {kind:?}"))?;
            let (rate, cap) = match rate.split_once('x') {
                Some((r, c)) => (
                    r,
                    c.parse::<u64>()
                        .map_err(|e| format!("bad fire cap {c:?}: {e}"))?,
                ),
                None => (rate, u64::MAX),
            };
            let rate: f64 = rate
                .parse()
                .map_err(|e| format!("bad rate {rate:?}: {e}"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("rate {rate} out of [0, 1]"));
            }
            plan.points.push(PointSpec {
                point: point.to_string(),
                kind,
                rate,
                max_fires: cap,
            });
        }
        Ok(plan)
    }

    /// Whether the plan can ever inject anything.
    pub fn is_empty(&self) -> bool {
        self.points
            .iter()
            .all(|p| p.rate == 0.0 || p.max_fires == 0)
    }
}

/// An armed plan: the schedule plus per-point consult/fire accounting.
struct ArmedPlan {
    seed: u64,
    points: Vec<(PointSpec, AtomicU64, AtomicU64)>, // (spec, consults, fires)
    injected_total: AtomicU64,
}

/// Fast-path gate: true only while a plan is armed.
static ARMED: AtomicBool = AtomicBool::new(false);

fn slot() -> &'static Mutex<Option<Arc<ArmedPlan>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<ArmedPlan>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

fn armed_plan() -> Option<Arc<ArmedPlan>> {
    slot().lock().expect("fault plan lock").clone()
}

/// Arm a plan process-wide.  Replaces any previously armed plan and
/// resets all counters.
pub fn arm(plan: FaultPlan) {
    let armed = ArmedPlan {
        seed: plan.seed,
        points: plan
            .points
            .into_iter()
            .map(|p| (p, AtomicU64::new(0), AtomicU64::new(0)))
            .collect(),
        injected_total: AtomicU64::new(0),
    };
    *slot().lock().expect("fault plan lock") = Some(Arc::new(armed));
    ARMED.store(true, Ordering::Release);
}

/// Disarm: every subsequent [`check`] is a no-op again.
pub fn disarm() {
    ARMED.store(false, Ordering::Release);
    *slot().lock().expect("fault plan lock") = None;
}

/// Arm from the `SRCR_FAULT_PLAN` environment variable, if set and
/// non-empty.  Returns whether a plan was armed.
pub fn arm_from_env() -> Result<bool, String> {
    match std::env::var("SRCR_FAULT_PLAN") {
        Ok(spec) if !spec.trim().is_empty() => {
            arm(FaultPlan::parse(&spec)?);
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// splitmix64 — the decision hash behind every injection choice.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over a point name — folds the label into the decision hash.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Consult an injection point.  `None` (the overwhelmingly common case,
/// and always when disarmed) means proceed normally; `Some(kind)` means
/// act out that fault.
#[inline]
pub fn check(point: &str) -> Option<FaultKind> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    check_slow(point)
}

#[cold]
fn check_slow(point: &str) -> Option<FaultKind> {
    let plan = armed_plan()?;
    for (spec, consults, fires) in &plan.points {
        if spec.point != point {
            continue;
        }
        let n = consults.fetch_add(1, Ordering::Relaxed);
        // Pure function of (seed, point, consult index): replays exactly.
        let h = splitmix64(plan.seed ^ fnv1a(point) ^ n.wrapping_mul(0x2545_F491_4F6C_DD1D));
        let p = (h >> 11) as f64 / (1u64 << 53) as f64;
        if p < spec.rate && fires.load(Ordering::Relaxed) < spec.max_fires {
            let prior = fires.fetch_add(1, Ordering::Relaxed);
            if prior >= spec.max_fires {
                return None; // lost the cap race
            }
            plan.injected_total.fetch_add(1, Ordering::Relaxed);
            return Some(spec.kind);
        }
        return None;
    }
    None
}

/// Total faults injected since the current plan was armed (0 if disarmed).
pub fn injected_total() -> u64 {
    armed_plan().map_or(0, |p| p.injected_total.load(Ordering::Relaxed))
}

/// Faults injected at one point since the current plan was armed.
pub fn injected_at(point: &str) -> u64 {
    armed_plan().map_or(0, |p| {
        p.points
            .iter()
            .filter(|(s, _, _)| s.point == point)
            .map(|(_, _, fires)| fires.load(Ordering::Relaxed))
            .sum()
    })
}

/// A reader that consults an injection point on every `read` call.
///
/// - [`FaultKind::Error`] → the read fails with `io::ErrorKind::Other`;
/// - [`FaultKind::Truncate`] → the read reports EOF (0 bytes);
/// - [`FaultKind::Corrupt`] → the read succeeds but one bit of the bytes
///   read is flipped (deterministically — the lowest bit of the first
///   byte);
/// - [`FaultKind::Panic`] → the read panics.
///
/// Wrap any `Read` whose failure handling should be exercised end-to-end:
/// artifact loads, socket reads.
pub struct FaultyRead<R> {
    inner: R,
    point: &'static str,
}

impl<R: Read> FaultyRead<R> {
    /// Wrap `inner`; every read consults `point`.
    pub fn new(inner: R, point: &'static str) -> Self {
        FaultyRead { inner, point }
    }
}

impl<R: Read> Read for FaultyRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match check(self.point) {
            None => self.inner.read(buf),
            Some(FaultKind::Error) => Err(io::Error::other(format!(
                "injected fault at {}",
                self.point
            ))),
            Some(FaultKind::Truncate) => Ok(0),
            Some(FaultKind::Corrupt) => {
                let n = self.inner.read(buf)?;
                if n > 0 {
                    buf[0] ^= 1;
                }
                Ok(n)
            }
            Some(FaultKind::Panic) => panic!("injected panic at {}", self.point),
        }
    }
}

/// A writer that consults an injection point on every `write` call.
///
/// - [`FaultKind::Error`] → the write fails with `io::ErrorKind::Other`
///   (the peer sees a reset mid-response);
/// - [`FaultKind::Truncate`] → the write reports `Ok(0)` (write-zero — a
///   stalled peer), which `write_all` surfaces as `WriteZero`;
/// - [`FaultKind::Corrupt`] → treated as `Error` (we never put corrupt
///   bytes on a real wire — the peer's parser is not the system under
///   test);
/// - [`FaultKind::Panic`] → the write panics.
///
/// Flushes pass through untouched.
pub struct FaultyWrite<W> {
    inner: W,
    point: &'static str,
}

impl<W: Write> FaultyWrite<W> {
    /// Wrap `inner`; every write consults `point`.
    pub fn new(inner: W, point: &'static str) -> Self {
        FaultyWrite { inner, point }
    }
}

impl<W: Write> Write for FaultyWrite<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match check(self.point) {
            None => self.inner.write(buf),
            Some(FaultKind::Error) | Some(FaultKind::Corrupt) => Err(io::Error::other(format!(
                "injected fault at {}",
                self.point
            ))),
            Some(FaultKind::Truncate) => Ok(0),
            Some(FaultKind::Panic) => panic!("injected panic at {}", self.point),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests in this module share the process-wide plan; serialise them.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disarmed_checks_are_none() {
        let _g = lock();
        disarm();
        assert_eq!(check("socket.read"), None);
        assert_eq!(injected_total(), 0);
    }

    #[test]
    fn armed_plan_injects_deterministically() {
        let _g = lock();
        let run = || {
            arm(FaultPlan::new(42).with("worker.exec", FaultKind::Panic, 0.3));
            let hits: Vec<bool> = (0..200).map(|_| check("worker.exec").is_some()).collect();
            let total = injected_total();
            disarm();
            (hits, total)
        };
        let (a, ta) = run();
        let (b, tb) = run();
        assert_eq!(a, b, "same plan, same consult sequence, same faults");
        assert_eq!(ta, tb);
        assert!(ta > 20 && ta < 120, "rate 0.3 over 200: got {ta}");
        // Other points are unaffected.
        arm(FaultPlan::new(42).with("worker.exec", FaultKind::Panic, 1.0));
        assert_eq!(check("socket.read"), None);
        disarm();
    }

    #[test]
    fn fire_cap_limits_injections() {
        let _g = lock();
        arm(FaultPlan::new(7).with_capped("reload.swap", FaultKind::Error, 1.0, 2));
        let hits = (0..10).filter(|_| check("reload.swap").is_some()).count();
        assert_eq!(hits, 2);
        assert_eq!(injected_at("reload.swap"), 2);
        assert_eq!(injected_total(), 2);
        disarm();
    }

    #[test]
    fn spec_round_trips() {
        let plan =
            FaultPlan::parse("seed=9; worker.exec:panic:0.05 ;socket.read:error:0.5x3").unwrap();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.points.len(), 2);
        assert_eq!(plan.points[0].kind, FaultKind::Panic);
        assert_eq!(plan.points[1].max_fires, 3);
        assert!(!plan.is_empty());
        assert!(FaultPlan::parse("seed=1").unwrap().is_empty());
        for bad in [
            "nope",
            "p:flip:0.5",
            "p:error:1.5",
            "p:error:x",
            "seed=abc",
            "p:error:0.5x-1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn faulty_read_acts_out_kinds() {
        let _g = lock();
        disarm();
        // Disarmed: transparent.
        let mut r = FaultyRead::new(&b"hello"[..], "artifact.read");
        let mut buf = [0u8; 5];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");

        // Truncate: EOF on the faulted call.
        arm(FaultPlan::new(1).with("artifact.read", FaultKind::Truncate, 1.0));
        let mut r = FaultyRead::new(&b"hello"[..], "artifact.read");
        assert_eq!(r.read(&mut buf).unwrap(), 0);
        disarm();

        // Corrupt: one bit flipped in the first byte.
        arm(FaultPlan::new(1).with("artifact.read", FaultKind::Corrupt, 1.0));
        let mut r = FaultyRead::new(&b"hello"[..], "artifact.read");
        let n = r.read(&mut buf).unwrap();
        assert_eq!(n, 5);
        assert_eq!(buf[0], b'h' ^ 1);
        disarm();

        // Error: typed io error.
        arm(FaultPlan::new(1).with("artifact.read", FaultKind::Error, 1.0));
        let mut r = FaultyRead::new(&b"hello"[..], "artifact.read");
        assert!(r.read(&mut buf).is_err());
        disarm();
    }

    #[test]
    fn faulty_write_acts_out_kinds() {
        let _g = lock();
        disarm();
        // Disarmed: transparent.
        let mut sink = Vec::new();
        FaultyWrite::new(&mut sink, "socket.write")
            .write_all(b"ok")
            .unwrap();
        assert_eq!(sink, b"ok");

        // Error: the write fails outright.
        arm(FaultPlan::new(1).with("socket.write", FaultKind::Error, 1.0));
        let mut sink = Vec::new();
        assert!(FaultyWrite::new(&mut sink, "socket.write")
            .write_all(b"ok")
            .is_err());
        disarm();

        // Truncate: write-zero, surfaced by write_all as an error.
        arm(FaultPlan::new(1).with("socket.write", FaultKind::Truncate, 1.0));
        let mut sink = Vec::new();
        let err = FaultyWrite::new(&mut sink, "socket.write")
            .write_all(b"ok")
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        disarm();
    }
}
