//! Per-item seed streams for deterministic parallel workloads.

/// Derive the seed of item `index` from a `master` seed.
///
/// A double SplitMix64-style finalizer over the `(master, index)` pair:
/// adjacent indices map to statistically independent seeds, so per-item RNG
/// streams never overlap the way `master + index` seeding would, and the
/// result depends only on the pair — never on which worker thread runs the
/// item or in what order.
pub fn stream_seed(master: u64, index: u64) -> u64 {
    let mut z = master ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // Second round decorrelates low-entropy (master, index) pairs fully.
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_both_arguments() {
        assert_eq!(stream_seed(1, 2), stream_seed(1, 2));
        assert_ne!(stream_seed(1, 2), stream_seed(1, 3));
        assert_ne!(stream_seed(1, 2), stream_seed(2, 2));
    }

    #[test]
    fn no_collisions_over_a_dense_grid() {
        let mut seen = std::collections::HashSet::new();
        for master in 0..64u64 {
            for index in 0..256u64 {
                assert!(
                    seen.insert(stream_seed(master, index)),
                    "collision at ({master}, {index})"
                );
            }
        }
    }

    #[test]
    fn adjacent_indices_differ_in_many_bits() {
        for i in 0..100u64 {
            let d = (stream_seed(7, i) ^ stream_seed(7, i + 1)).count_ones();
            assert!(
                (8..=56).contains(&d),
                "weak diffusion at index {i}: {d} bits"
            );
        }
    }
}
