//! `runtime` — the deterministic parallel evaluation runtime.
//!
//! The paper's efficiency story (Fig. 6) hinges on repeated black-box
//! evaluations: LIME/SHAP/SOBOL pay ≥ 1 000 masked forward passes per
//! sample, the faithfulness protocol disturbs every test sample three
//! times, cross validation trains one pipeline per fold, and the synthetic
//! corpora render thousands of clips.  All of those loops are
//! embarrassingly parallel *and* seeded, so this crate provides the one
//! primitive they all share:
//!
//! * [`Pool`] — a bounded worker pool (default size
//!   `available_parallelism`, overridable globally via [`set_threads`] and
//!   per-binary via the `--threads` CLI flag in `bench-suite`);
//! * [`Pool::par_map`] — an **order-preserving** parallel map: results come
//!   back indexed by input position, so parallel and sequential runs are
//!   bit-identical whenever each item's work is a pure function of the item
//!   (which seeded per-item RNG streams guarantee — see [`stream_seed`]);
//! * [`KeyedCache`] — a sharded concurrent memo table used by the
//!   explainers to deduplicate repeated mask coalitions across
//!   LIME/SHAP/SOBOL on the same sample.
//!
//! Nested `par_map` calls run sequentially on the inner level (a
//! thread-local depth guard), so composing parallel stages — e.g. the
//! faithfulness protocol parallelised over samples, each sample running a
//! perturbation explainer that itself calls `par_map` — never oversubscribes
//! the machine and never changes results.

pub mod cache;
pub mod faults;
pub mod pool;
pub mod seed;

pub use cache::KeyedCache;
pub use faults::{FaultKind, FaultPlan};
pub use pool::{set_threads, threads, JobPanicked, Pool};
pub use seed::stream_seed;
