//! Sharded concurrent memo table for deduplicating repeated evaluations.

use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

const SHARDS: usize = 16;

/// A concurrent `HashMap<K, V>` split into mutex-guarded shards.
///
/// Used as the shared mask-keyed evaluation cache: the three perturbation
/// explainers hit many identical coalitions (the empty and full masks, the
/// anchors, repeated SHAP size-1 coalitions), and on the same sample the
/// black-box score is a pure function of the mask — so the first evaluation
/// can serve every later request, across explainers and across threads.
///
/// Correctness under parallelism: values must be a pure function of their
/// key.  Two threads may race to compute the same key; both compute the
/// same value, one insert wins, and the results are identical either way —
/// which is what keeps `--threads 1` and `--threads N` bit-identical.
#[derive(Debug, Default)]
pub struct KeyedCache<K, V> {
    shards: [Mutex<HashMap<K, V>>; SHARDS],
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl<K: Eq + Hash, V: Clone> KeyedCache<K, V> {
    /// Empty cache.
    pub fn new() -> Self {
        KeyedCache {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, V>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Cached value for `key`, if present.
    pub fn get(&self, key: &K) -> Option<V> {
        let out = self
            .shard(key)
            .lock()
            .expect("cache shard poisoned")
            .get(key)
            .cloned();
        match out {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        out
    }

    /// Insert (first write wins; later identical values are no-ops).
    pub fn insert(&self, key: K, value: V) {
        if let Entry::Vacant(e) = self
            .shard(&key)
            .lock()
            .expect("cache shard poisoned")
            .entry(key)
        {
            e.insert(value);
        }
    }

    /// Cached value or `compute()`, memoized.  `compute` runs outside the
    /// shard lock so slow evaluations never serialize the cache.
    pub fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> V {
        if let Some(v) = self.get(&key) {
            return v;
        }
        let v = compute();
        self.insert(key, v.clone());
        v
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// Whether nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters of `get`/`get_or_compute` lookups.
    pub fn stats(&self) -> (usize, usize) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoizes_and_counts() {
        let cache: KeyedCache<u64, u64> = KeyedCache::new();
        let mut calls = 0;
        let a = cache.get_or_compute(7, || {
            calls += 1;
            49
        });
        let b = cache.get_or_compute(7, || {
            calls += 1;
            49
        });
        assert_eq!((a, b, calls), (49, 49, 1));
        assert_eq!(cache.len(), 1);
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn first_insert_wins() {
        let cache: KeyedCache<u8, u8> = KeyedCache::new();
        cache.insert(1, 10);
        cache.insert(1, 20);
        assert_eq!(cache.get(&1), Some(10));
    }

    #[test]
    fn concurrent_get_or_compute_is_consistent() {
        let cache: KeyedCache<u64, u64> = KeyedCache::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for k in 0..100u64 {
                        assert_eq!(cache.get_or_compute(k, || k * 3), k * 3);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 100);
    }
}
