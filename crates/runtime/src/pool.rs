//! The bounded worker pool and its order-preserving parallel map.

use std::cell::Cell;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A job handed to [`Pool::try_par_map`] panicked.
///
/// Carries the input index (so callers can fail exactly that item) and the
/// panic payload's message when it was a string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobPanicked {
    /// Index of the input item whose job panicked.
    pub index: usize,
    /// The panic message, or `"non-string panic payload"`.
    pub message: String,
}

impl fmt::Display for JobPanicked {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for JobPanicked {}

/// Render a `catch_unwind` payload as a message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Process-wide thread-count override: 0 = use `available_parallelism`.
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set while the current thread is a pool worker; nested `par_map`
    /// calls then run sequentially instead of spawning threads-of-threads.
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Override the global pool width (0 restores the default).
/// Threaded through `bench-suite`'s `--threads` flag.
///
/// When no explicit width is set (`n == 0`), the `SRCR_THREADS`
/// environment variable is consulted before falling back to
/// `available_parallelism`, so servers and CI can pin parallelism
/// process-wide without per-binary flags.  An explicit flag always wins
/// over the environment.
pub fn set_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// The currently configured global pool width, resolved to a concrete
/// count (≥ 1).
pub fn threads() -> usize {
    resolve(GLOBAL_THREADS.load(Ordering::Relaxed))
}

/// Worker count from `SRCR_THREADS`, if set to a positive integer.
fn env_threads() -> Option<usize> {
    std::env::var("SRCR_THREADS")
        .ok()?
        .trim()
        .parse()
        .ok()
        .filter(|&n: &usize| n > 0)
}

fn resolve(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else if let Some(n) = env_threads() {
        n
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// A bounded pool of worker threads.
///
/// The pool is configuration, not resident threads: each [`par_map`]
/// spawns at most `threads` scoped workers that pull item indices from a
/// shared atomic cursor and write results into per-index slots, so results
/// always come back in input order regardless of which worker ran what.
///
/// [`par_map`]: Pool::par_map
#[derive(Clone, Copy, Debug)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// Pool of exactly `threads` workers (0 = `available_parallelism`).
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: resolve(threads),
        }
    }

    /// The globally configured pool (see [`set_threads`]).
    pub fn global() -> Self {
        Pool { threads: threads() }
    }

    /// Worker count this pool runs with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Order-preserving parallel map: `out[i] == f(i, &items[i])` for all
    /// `i`, bit-identical to the sequential loop whenever `f` is a pure
    /// function of `(i, item)`.
    ///
    /// Runs sequentially when the pool has one thread, the input is tiny,
    /// or the caller is itself a pool worker (no nested thread explosions).
    /// Panics in `f` propagate to the caller.
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        let nested = IN_POOL_WORKER.with(Cell::get);
        if workers <= 1 || nested {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }

        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    IN_POOL_WORKER.with(|flag| flag.set(true));
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let out = f(i, &items[i]);
                        *slots[i].lock().expect("result slot poisoned") = Some(out);
                    }
                    IN_POOL_WORKER.with(|flag| flag.set(false));
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker skipped an item")
            })
            .collect()
    }

    /// [`par_map`](Pool::par_map) with per-item panic isolation: a
    /// panicking job yields `Err(JobPanicked)` for **that index only**,
    /// every other item completes normally, output order is preserved, and
    /// the pool (its worker threads are scoped per call) remains fully
    /// usable afterwards.
    ///
    /// This is what lets a server treat one poisoned request in a batch as
    /// one failed response instead of a dead process.
    pub fn try_par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<Result<U, JobPanicked>>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        // `f` is only observed through its return value per index; a panic
        // discards that index's result entirely, so broken invariants
        // cannot leak across items.
        self.par_map(items, |i, item| {
            std::panic::catch_unwind(AssertUnwindSafe(|| f(i, item))).map_err(|payload| {
                JobPanicked {
                    index: i,
                    message: panic_message(payload.as_ref()),
                }
            })
        })
    }

    /// [`par_map`](Pool::par_map) with a per-item decorrelated seed stream:
    /// `f` receives `(stream_seed(master_seed, i), i, &items[i])`.  The seed
    /// depends only on `(master_seed, i)`, never on scheduling, which is
    /// what makes seeded parallel workloads reproducible.
    pub fn par_map_seeded<T, U, F>(&self, master_seed: u64, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(u64, usize, &T) -> U + Sync,
    {
        self.par_map(items, |i, item| {
            f(crate::seed::stream_seed(master_seed, i as u64), i, item)
        })
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::global()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential_map() {
        let items: Vec<u64> = (0..997).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = Pool::new(threads).par_map(&items, |_, &x| x * x + 1);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_preserves_order_under_uneven_work() {
        // Early items sleep longest so completion order reverses input order.
        let items: Vec<usize> = (0..16).collect();
        let got = Pool::new(8).par_map(&items, |i, _| {
            std::thread::sleep(std::time::Duration::from_millis((16 - i) as u64));
            i
        });
        assert_eq!(got, items);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(Pool::new(4).par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(Pool::new(4).par_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn nested_par_map_runs_and_agrees() {
        let outer: Vec<u64> = (0..6).collect();
        let pool = Pool::new(4);
        let got = pool.par_map(&outer, |_, &x| {
            let inner: Vec<u64> = (0..50).collect();
            pool.par_map(&inner, |_, &y| x * 100 + y)
                .iter()
                .sum::<u64>()
        });
        let expect: Vec<u64> = outer
            .iter()
            .map(|&x| (0..50).map(|y| x * 100 + y).sum())
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn par_map_seeded_is_thread_count_invariant() {
        let items: Vec<usize> = (0..200).collect();
        let one = Pool::new(1).par_map_seeded(99, &items, |seed, i, _| (seed, i));
        let many = Pool::new(7).par_map_seeded(99, &items, |seed, i, _| (seed, i));
        assert_eq!(one, many);
        // Streams must be decorrelated, not sequential.
        assert_ne!(one[0].0 + 1, one[1].0);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            Pool::new(4).par_map(&[1, 2, 3, 4], |i, _| {
                if i == 2 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn try_par_map_isolates_panics_per_item() {
        let items: Vec<u64> = (0..64).collect();
        let pool = Pool::new(4);
        let got = pool.try_par_map(&items, |i, &x| {
            if i % 7 == 3 {
                panic!("boom at {i}");
            }
            x * 2
        });
        for (i, r) in got.iter().enumerate() {
            if i % 7 == 3 {
                let e = r.as_ref().unwrap_err();
                assert_eq!(e.index, i);
                assert_eq!(e.message, format!("boom at {i}"));
            } else {
                assert_eq!(*r.as_ref().unwrap(), items[i] * 2);
            }
        }
        // The pool survives and is reusable after panicking jobs.
        let again = pool.try_par_map(&items, |_, &x| x + 1);
        assert!(again.iter().all(|r| r.is_ok()));
        assert_eq!(pool.par_map(&[1u64, 2], |_, &x| x), vec![1, 2]);
    }

    #[test]
    fn try_par_map_formats_non_string_payloads() {
        let got = Pool::new(2).try_par_map(&[0u32], |_, _| -> u32 {
            std::panic::panic_any(17u32);
        });
        assert_eq!(
            got[0].as_ref().unwrap_err().message,
            "non-string panic payload"
        );
    }

    #[test]
    fn env_threads_parsing() {
        // `resolve` consults SRCR_THREADS only when no flag width is given.
        // Parse logic is exercised directly to stay independent of the
        // process environment other tests run under.
        assert_eq!(resolve(5), 5, "explicit width always wins");
        std::env::set_var("SRCR_THREADS", "3");
        assert_eq!(env_threads(), Some(3));
        assert_eq!(resolve(0), 3, "env fallback applies when width is 0");
        assert_eq!(resolve(2), 2, "flag still wins over the environment");
        std::env::set_var("SRCR_THREADS", "not-a-number");
        assert_eq!(env_threads(), None);
        std::env::set_var("SRCR_THREADS", "0");
        assert_eq!(env_threads(), None, "zero is not a valid pin");
        std::env::remove_var("SRCR_THREADS");
        assert_eq!(env_threads(), None);
        assert!(resolve(0) >= 1);
    }

    #[test]
    fn global_threads_roundtrip() {
        // Other tests run concurrently; only exercise the resolved floor.
        assert!(threads() >= 1);
        assert!(Pool::global().threads() >= 1);
        assert_eq!(Pool::new(5).threads(), 5);
        assert!(Pool::new(0).threads() >= 1);
    }
}
