//! Property tests for `Pool::try_par_map` panic isolation: randomly
//! panicking jobs fail exactly their own index, everything else completes
//! in order, and the pool is reusable afterwards.

use proptest::prelude::*;
use runtime::Pool;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any input length, panic set and thread count: `Err(JobPanicked)`
    /// exactly at the panicking indices, in-order `Ok`s everywhere else,
    /// and the same pool keeps working afterwards.
    #[test]
    fn panics_fail_only_their_index(
        n in 1usize..120,
        panic_salt in 0u64..u64::MAX,
        panic_one_in in 1u64..6,
        threads in 1usize..9,
    ) {
        let items: Vec<u64> = (0..n as u64).collect();
        // Deterministic pseudo-random panic set derived from the inputs.
        let panics: Vec<bool> = items
            .iter()
            .map(|&i| (i ^ panic_salt).wrapping_mul(0x9E37_79B9_7F4A_7C15) % panic_one_in == 0)
            .collect();
        let pool = Pool::new(threads);

        let got = pool.try_par_map(&items, |i, &x| {
            if panics[i] {
                panic!("injected {i}");
            }
            x.wrapping_mul(3).wrapping_add(1)
        });

        prop_assert_eq!(got.len(), n);
        for (i, r) in got.iter().enumerate() {
            if panics[i] {
                let e = r.as_ref().unwrap_err();
                prop_assert_eq!(e.index, i);
                prop_assert_eq!(e.message.clone(), format!("injected {i}"));
            } else {
                prop_assert_eq!(*r.as_ref().unwrap(), items[i].wrapping_mul(3).wrapping_add(1));
            }
        }

        // The pool survives arbitrary panic patterns and still preserves
        // order on the next call.
        let expect: Vec<u64> = items.iter().map(|&x| x + 7).collect();
        let again: Vec<u64> = pool
            .try_par_map(&items, |_, &x| x + 7)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        prop_assert_eq!(again, expect);
    }

    /// Panic-free runs of `try_par_map` agree bit-for-bit with `par_map`
    /// at any thread count.
    #[test]
    fn fault_free_runs_match_par_map(n in 0usize..200, threads in 1usize..9) {
        let items: Vec<u64> = (0..n as u64).collect();
        let pool = Pool::new(threads);
        let plain = pool.par_map(&items, |i, &x| x * x + i as u64);
        let tried: Vec<u64> = pool
            .try_par_map(&items, |i, &x| x * x + i as u64)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        prop_assert_eq!(plain, tried);
    }
}
