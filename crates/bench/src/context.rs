//! Shared experiment setup: corpora, splits, pretrained bases and trained
//! pipelines.

use std::path::{Path, PathBuf};

use chain_reason::{
    artifact, train_pipeline, ArtifactMeta, PipelineConfig, StressPipeline, TrainReport, Variant,
};
use lfm::pretrain::{pretrain, CapabilityProfile};
use lfm::{Lfm, ModelConfig};
use videosynth::dataset::{Dataset, DatasetProfile, Scale};
use videosynth::video::VideoSample;
use videosynth::world::WorldConfig;

/// Which stress corpus an experiment runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Corpus {
    Uvsd,
    Rsl,
}

impl Corpus {
    /// Display name as used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Corpus::Uvsd => "UVSD",
            Corpus::Rsl => "RSL",
        }
    }

    /// Dataset profile at a scale.
    pub fn profile(self, scale: Scale) -> DatasetProfile {
        match self {
            Corpus::Uvsd => DatasetProfile::uvsd(scale),
            Corpus::Rsl => DatasetProfile::rsl(scale),
        }
    }

    /// Name this corpus is served under — the `serve` registry convention,
    /// so bench-trained artifacts drop straight into `serve --model-dir`.
    pub fn registry_name(self) -> &'static str {
        match self {
            Corpus::Uvsd => "uvsd_sim",
            Corpus::Rsl => "rsl_sim",
        }
    }
}

/// A fully prepared experiment context for one corpus: the stress data with
/// a train/test split, the AU instruction corpus, and the seed.
pub struct Context {
    /// Corpus identity.
    pub corpus: Corpus,
    /// Scale everything was generated at.
    pub scale: Scale,
    /// Training samples (owned clones).
    pub train: Vec<VideoSample>,
    /// Held-out test samples.
    pub test: Vec<VideoSample>,
    /// The DISFA-like AU corpus (always Full scale — it is small).
    pub au_corpus: Vec<VideoSample>,
    /// Master seed.
    pub seed: u64,
}

impl Context {
    /// Generate corpora and an 80/20 stratified split.
    ///
    /// §IV-H runs 10-fold cross-validation; on a single core a fold costs
    /// minutes, so the recorded experiments use one fold (the first of
    /// five) and EXPERIMENTS.md notes the substitution.
    pub fn prepare(corpus: Corpus, scale: Scale, seed: u64) -> Self {
        let ds = Dataset::generate(corpus.profile(scale), seed);
        let au = Dataset::generate(DatasetProfile::disfa(Scale::Full), seed ^ 0xA0);
        let (train_idx, test_idx) = ds.train_test_split(0.8, seed ^ 0x51);
        let train = train_idx.iter().map(|&i| ds.samples[i].clone()).collect();
        let test = test_idx.iter().map(|&i| ds.samples[i].clone()).collect();
        Context {
            corpus,
            scale,
            train,
            test,
            au_corpus: au.samples,
            seed,
        }
    }

    /// A generically pretrained base model (the Qwen-VL stand-in).
    pub fn pretrained_base(&self) -> Lfm {
        let mut base = Lfm::new(ModelConfig::small(), self.seed ^ 0xBA5E);
        let profile = match self.scale {
            Scale::Smoke => CapabilityProfile::base().scaled(0.25),
            _ => CapabilityProfile::base(),
        };
        pretrain(&mut base, &profile, self.seed ^ 0x9E7);
        base
    }

    /// Pipeline configuration for the scale.
    pub fn pipeline_config(&self) -> PipelineConfig {
        let mut cfg = match self.scale {
            Scale::Smoke => PipelineConfig::smoke(),
            _ => PipelineConfig::default_experiment(),
        };
        cfg.seed = self.seed;
        cfg
    }

    /// Train the method (or an ablation variant) on this context.
    pub fn train_variant(&self, variant: Variant) -> (StressPipeline, TrainReport) {
        train_pipeline(
            self.pretrained_base(),
            self.pipeline_config(),
            &self.au_corpus,
            &self.train,
            variant,
        )
    }

    /// Generative world configuration of this corpus at the prepared scale.
    pub fn world(&self) -> WorldConfig {
        self.corpus.profile(self.scale).world
    }

    /// Save a trained pipeline as a versioned `SRCR1` artifact in `dir`,
    /// named after the serving registry entry (`uvsd_sim.srcr` / …) so the
    /// directory can be handed to `serve --model-dir` as is.
    pub fn save_artifact(
        &self,
        dir: &Path,
        pipeline: &StressPipeline,
        variant: Variant,
    ) -> Result<PathBuf, String> {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let meta = ArtifactMeta {
            name: self.corpus.registry_name().to_string(),
            version: 1,
            scale: match self.scale {
                Scale::Smoke => 0.25,
                _ => 1.0,
            },
            variant: format!("{variant:?}"),
            seed: self.seed,
            git: artifact::git_describe(),
        };
        let path = dir.join(artifact::artifact_file_name(&meta.name));
        chain_reason::save_pipeline(&path, pipeline, &self.world(), &meta)
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_splits_are_disjoint() {
        let ctx = Context::prepare(Corpus::Rsl, Scale::Smoke, 3);
        assert!(!ctx.train.is_empty());
        assert!(!ctx.test.is_empty());
        let train_ids: Vec<usize> = ctx.train.iter().map(|v| v.id).collect();
        assert!(ctx.test.iter().all(|v| !train_ids.contains(&v.id)));
        assert!(!ctx.au_corpus.is_empty());
    }

    #[test]
    fn corpus_labels() {
        assert_eq!(Corpus::Uvsd.label(), "UVSD");
        assert_eq!(Corpus::Rsl.label(), "RSL");
        assert_eq!(Corpus::Uvsd.registry_name(), "uvsd_sim");
        assert_eq!(Corpus::Rsl.registry_name(), "rsl_sim");
    }

    #[test]
    fn save_artifact_uses_registry_names_and_loads_back() {
        let ctx = Context::prepare(Corpus::Rsl, Scale::Smoke, 3);
        let pipeline =
            StressPipeline::new(Lfm::new(ModelConfig::tiny(), 3), PipelineConfig::smoke());
        let dir = std::env::temp_dir().join("bench_ctx_artifact");
        let path = ctx.save_artifact(&dir, &pipeline, Variant::Full).unwrap();
        assert!(path.ends_with("rsl_sim.srcr"), "{}", path.display());
        let loaded = chain_reason::load_pipeline(&path).unwrap();
        assert_eq!(loaded.meta.name, "rsl_sim");
        assert_eq!(loaded.meta.variant, "Full");
        assert_eq!(loaded.meta.seed, 3);
        assert_eq!(loaded.world, ctx.world());
        std::fs::remove_dir_all(&dir).ok();
    }
}
