//! Table VIII — applying the method's chain + test-time self-refinement to
//! frozen off-the-shelf foundation models (§IV-G).

use baselines::offtheshelf::OffTheShelf;
use chain_reason::test_time::predict_with_test_time_refinement;
use chain_reason::{PipelineConfig, StressPipeline};
use evalkit::metrics::{Confusion, Metrics};
use evalkit::table::Table;
use lfm::pretrain::CapabilityProfile;
use videosynth::dataset::Scale;

use crate::context::{Context, Corpus};

/// One Table VIII block: a proxy's zero-shot ("Original") and test-time
/// refined ("New") metrics.
#[derive(Clone, Debug)]
pub struct TestTimeRow {
    pub model: &'static str,
    pub original: Metrics,
    pub refined: Metrics,
}

/// Paper Table VIII accuracies `(original, new)`.
pub fn paper_testtime(corpus: Corpus, model: &str) -> (f64, f64) {
    match (corpus, model) {
        (Corpus::Uvsd, "GPT-4o") => (75.95, 81.49),
        (Corpus::Uvsd, "Claude-3.5") => (73.29, 75.89),
        (Corpus::Uvsd, "Gemini-1.5") => (70.19, 73.43),
        (Corpus::Rsl, "GPT-4o") => (66.89, 74.06),
        (Corpus::Rsl, "Claude-3.5") => (60.76, 63.50),
        (Corpus::Rsl, "Gemini-1.5") => (66.53, 70.34),
        _ => (0.0, 0.0),
    }
}

/// Run all three proxies with and without test-time refinement.
pub fn run_table8(ctx: &Context) -> Vec<TestTimeRow> {
    let scale_factor = if ctx.scale == Scale::Smoke { 0.25 } else { 1.0 };
    [
        CapabilityProfile::gpt4o(),
        CapabilityProfile::claude(),
        CapabilityProfile::gemini(),
    ]
    .into_iter()
    .map(|profile| {
        let name = profile.name;
        let proxy = OffTheShelf::build(profile.scaled(scale_factor), ctx.seed ^ 0x0F5);
        // Original: zero-shot direct assessment (as in Table I).
        let orig_pairs: Vec<_> = ctx
            .test
            .iter()
            .map(|v| {
                (
                    v.label,
                    baselines::common::StressDetector::predict(&proxy, v),
                )
            })
            .collect();
        let original = Confusion::from_pairs(&orig_pairs).metrics();

        // New: chain + test-time self-refinement, parameters frozen.
        let mut cfg = match ctx.scale {
            Scale::Smoke => PipelineConfig::smoke(),
            _ => PipelineConfig::default_experiment(),
        };
        cfg.model = proxy.model().cfg.clone();
        let pl = StressPipeline::new(proxy.into_model(), cfg);
        let new_pairs: Vec<_> = ctx
            .test
            .iter()
            .map(|v| {
                let out =
                    predict_with_test_time_refinement(&pl, v, &ctx.train, ctx.seed ^ v.id as u64);
                (v.label, out.assessment)
            })
            .collect();
        let refined = Confusion::from_pairs(&new_pairs).metrics();
        TestTimeRow {
            model: name,
            original,
            refined,
        }
    })
    .collect()
}

/// Render Table VIII.
pub fn render_table8(title: &str, corpus: Corpus, rows: &[TestTimeRow]) -> Table {
    let mut t = Table::new(title, &["Model", "variant", "Acc.", "F1.", "paper Acc."]);
    for r in rows {
        let (po, pn) = paper_testtime(corpus, r.model);
        let co = r.original.row_cells();
        let cn = r.refined.row_cells();
        t.row(vec![
            r.model.to_owned(),
            "Original".into(),
            co[0].clone(),
            co[3].clone(),
            format!("{po:.2}%"),
        ]);
        t.row(vec![
            r.model.to_owned(),
            "New".into(),
            cn[0].clone(),
            cn[3].clone(),
            format!("{pn:.2}%"),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_new_beats_original_everywhere() {
        for c in [Corpus::Uvsd, Corpus::Rsl] {
            for m in ["GPT-4o", "Claude-3.5", "Gemini-1.5"] {
                let (o, n) = paper_testtime(c, m);
                assert!(n > o, "{m} on {c:?}");
            }
        }
    }
}
