//! Table VII (in-context retrieval), Figure 7 (similarity separation) and
//! Figure 8 (pool-size sweep).

use chain_reason::{StressPipeline, Variant};
use evalkit::metrics::{Confusion, Metrics};
use evalkit::table::Table;
use facs::au::AuSet;
use lfm::instructions::IclExample;
use retrieval::analysis::Separation;
use retrieval::{RetrievalStrategy, Retriever};
use videosynth::video::VideoSample;

use crate::context::{Context, Corpus};

/// Paper Table VII accuracies.
pub fn paper_icl_accuracy(corpus: Corpus, strategy: RetrievalStrategy) -> f64 {
    match (corpus, strategy) {
        (Corpus::Uvsd, RetrievalStrategy::None) => 95.81,
        (Corpus::Uvsd, RetrievalStrategy::Random) => 95.43,
        (Corpus::Uvsd, RetrievalStrategy::ByVision) => 96.25,
        (Corpus::Uvsd, RetrievalStrategy::ByDescription) => 96.79,
        (Corpus::Rsl, RetrievalStrategy::None) => 90.94,
        (Corpus::Rsl, RetrievalStrategy::Random) => 90.69,
        (Corpus::Rsl, RetrievalStrategy::ByVision) => 92.71,
        (Corpus::Rsl, RetrievalStrategy::ByDescription) => 94.05,
    }
}

/// Build a retrieval index over the training pool using the trained
/// pipeline's own descriptions (the pool "supports knowledge sharing").
pub fn build_retriever(pl: &StressPipeline, pool: &[VideoSample], seed: u64) -> Retriever {
    let descs: Vec<AuSet> = pool
        .iter()
        .map(|v| pl.describe(v, 0.0, v.id as u64))
        .collect();
    Retriever::build(pool, &descs, seed)
}

/// Predict one test sample under a retrieval strategy.
pub fn predict_with_strategy(
    pl: &StressPipeline,
    retriever: &Retriever,
    pool: &[VideoSample],
    strategy: RetrievalStrategy,
    video: &VideoSample,
    seed: u64,
) -> videosynth::video::StressLabel {
    let desc = pl.describe(video, 0.0, video.id as u64);
    match retriever.select(strategy, video, desc, seed) {
        None => pl.assess(video, desc, 0.0, video.id as u64),
        Some(idx) => {
            let ex = IclExample {
                video: &pool[idx],
                description: retriever.pool_descriptions[idx],
                label: pool[idx].label,
            };
            pl.assess_with_examples(video, desc, &[ex], 0.0, video.id as u64)
        }
    }
}

/// Table VII: one trained pipeline, four retrieval strategies.
pub fn run_table7(ctx: &Context) -> (StressPipeline, Vec<(RetrievalStrategy, Metrics)>) {
    let (pl, _) = ctx.train_variant(Variant::Full);
    let retriever = build_retriever(&pl, &ctx.train, ctx.seed ^ 0x1C1);
    let rows = [
        RetrievalStrategy::None,
        RetrievalStrategy::Random,
        RetrievalStrategy::ByVision,
        RetrievalStrategy::ByDescription,
    ]
    .into_iter()
    .map(|s| {
        let pairs: Vec<_> = ctx
            .test
            .iter()
            .map(|v| {
                (
                    v.label,
                    predict_with_strategy(&pl, &retriever, &ctx.train, s, v, ctx.seed ^ 0x1C2),
                )
            })
            .collect();
        (s, Confusion::from_pairs(&pairs).metrics())
    })
    .collect();
    (pl, rows)
}

/// Render Table VII.
pub fn render_table7(title: &str, corpus: Corpus, rows: &[(RetrievalStrategy, Metrics)]) -> Table {
    let mut t = Table::new(
        title,
        &["Method", "Acc.", "Prec.", "Rec.", "F1.", "paper Acc."],
    );
    for (s, m) in rows {
        let c = m.row_cells();
        t.row(vec![
            s.label().to_owned(),
            c[0].clone(),
            c[1].clone(),
            c[2].clone(),
            c[3].clone(),
            format!("{:.2}%", paper_icl_accuracy(corpus, *s)),
        ]);
    }
    t
}

/// Figure 7: helpful-vs-unhelpful similarity separation under the visual
/// and the description embeddings.  A training sample is *helpful* for a
/// test sample when using it as the in-context example yields the correct
/// prediction.
pub fn run_fig7(
    ctx: &Context,
    pl: &StressPipeline,
    test_samples: usize,
    pool_per_test: usize,
) -> (Separation, Separation) {
    let retriever = build_retriever(pl, &ctx.train, ctx.seed ^ 0x1C1);
    let mut vision_pairs = Vec::new();
    let mut desc_pairs = Vec::new();

    for v in ctx.test.iter().take(test_samples) {
        let q_desc = pl.describe(v, 0.0, v.id as u64);
        let vis_sims = retriever.visual_similarities(v);
        let desc_sims = retriever.description_similarities(q_desc);
        for (j, ex) in ctx.train.iter().enumerate().take(pool_per_test) {
            let example = IclExample {
                video: ex,
                description: retriever.pool_descriptions[j],
                label: ex.label,
            };
            let pred = pl.assess_with_examples(v, q_desc, &[example], 0.0, ctx.seed ^ (j as u64));
            let helpful = pred == v.label;
            vision_pairs.push((vis_sims[j], helpful));
            desc_pairs.push((desc_sims[j], helpful));
        }
    }
    (
        Separation::from_pairs(&vision_pairs),
        Separation::from_pairs(&desc_pairs),
    )
}

/// Figure 8: accuracy of each retrieval strategy as the pool shrinks.
/// Returns `(fraction, strategy, accuracy)` triples.
pub fn run_fig8(
    ctx: &Context,
    pl: &StressPipeline,
    fractions: &[f32],
) -> Vec<(f32, RetrievalStrategy, f64)> {
    let mut out = Vec::new();
    for &frac in fractions {
        let n = ((ctx.train.len() as f32 * frac) as usize).max(4);
        let pool: Vec<VideoSample> = ctx.train.iter().take(n).cloned().collect();
        let retriever = build_retriever(pl, &pool, ctx.seed ^ 0x1C8);
        for s in [
            RetrievalStrategy::Random,
            RetrievalStrategy::ByVision,
            RetrievalStrategy::ByDescription,
        ] {
            let correct = ctx
                .test
                .iter()
                .filter(|v| {
                    predict_with_strategy(pl, &retriever, &pool, s, v, ctx.seed ^ 0x1C9) == v.label
                })
                .count();
            out.push((frac, s, correct as f64 / ctx.test.len() as f64));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_by_description_wins_both() {
        for c in [Corpus::Uvsd, Corpus::Rsl] {
            let d = paper_icl_accuracy(c, RetrievalStrategy::ByDescription);
            for s in [
                RetrievalStrategy::None,
                RetrievalStrategy::Random,
                RetrievalStrategy::ByVision,
            ] {
                assert!(d > paper_icl_accuracy(c, s));
            }
        }
    }
}
