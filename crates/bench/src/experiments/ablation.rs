//! Tables III & V (ablation detection) and IV & VI (ablation faithfulness).

use chain_reason::localize::rationale_segment_ranking;
use chain_reason::{StressPipeline, Variant};
use evalkit::faithfulness::{topk_accuracy_drops, ExplainedClassifier, TopKDrops};
use evalkit::metrics::{Confusion, Metrics};
use evalkit::table::Table;
use lfm::instructions::{
    assess_direct_prompt_from_images, assess_prompt_from_images, describe_prompt_from_images,
    label_tokens,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use videosynth::image::Image;
use videosynth::slic::Segmentation;
use videosynth::video::{StressLabel, VideoSample};

use crate::context::{Context, Corpus};

/// One ablation result: detection metrics and Top-k drops.
#[derive(Clone, Debug)]
pub struct AblationRow {
    pub variant: Variant,
    pub metrics: Metrics,
    pub drops: TopKDrops,
}

/// The paper's ablation accuracy numbers (Tables III & V).
pub fn paper_ablation_accuracy(corpus: Corpus, variant: Variant) -> f64 {
    match (corpus, variant) {
        (Corpus::Uvsd, Variant::Full) => 95.81,
        (Corpus::Uvsd, Variant::WithoutChain) => 91.74,
        (Corpus::Uvsd, Variant::WithoutLearnDescribe) => 93.75,
        (Corpus::Uvsd, Variant::WithoutRefine) => 93.56,
        (Corpus::Uvsd, Variant::WithoutReflection) => 94.99,
        (Corpus::Rsl, Variant::Full) => 90.94,
        (Corpus::Rsl, Variant::WithoutChain) => 86.98,
        (Corpus::Rsl, Variant::WithoutLearnDescribe) => 88.43,
        (Corpus::Rsl, Variant::WithoutRefine) => 88.79,
        (Corpus::Rsl, Variant::WithoutReflection) => 89.71,
    }
}

/// The paper's ablation Top-1 drops (Tables IV & VI).
pub fn paper_ablation_top1(corpus: Corpus, variant: Variant) -> f64 {
    match (corpus, variant) {
        (Corpus::Uvsd, Variant::Full) => 11.96,
        (Corpus::Uvsd, Variant::WithoutChain) => 6.29,
        (Corpus::Uvsd, Variant::WithoutLearnDescribe) => 10.92,
        (Corpus::Uvsd, Variant::WithoutRefine) => 8.89,
        (Corpus::Uvsd, Variant::WithoutReflection) => 11.14,
        (Corpus::Rsl, Variant::Full) => 14.70,
        (Corpus::Rsl, Variant::WithoutChain) => 7.16,
        (Corpus::Rsl, Variant::WithoutLearnDescribe) => 12.47,
        (Corpus::Rsl, Variant::WithoutRefine) => 11.81,
        (Corpus::Rsl, Variant::WithoutReflection) => 13.85,
    }
}

/// A trained pipeline wrapped for the Top-k disturb protocol.  The chain
/// re-runs end to end on the (possibly disturbed) frames; the rationale of
/// the *clean* prediction provides the segment ranking.
pub struct ChainClassifier<'a> {
    pub pipeline: &'a StressPipeline,
    pub variant: Variant,
}

impl ChainClassifier<'_> {
    fn predict_from(&self, fe: &Image, fl: &Image) -> StressLabel {
        let m = &self.pipeline.model;
        let [st, un] = label_tokens(&m.vocab);
        let prompt = if self.variant.uses_chain() {
            let dp = describe_prompt_from_images(m, fe, fl);
            let desc = lfm::grammar::generate_description(m, &dp, 0.0, 0);
            assess_prompt_from_images(m, fe, fl, desc)
        } else {
            assess_direct_prompt_from_images(m, fe, fl)
        };
        let mut rng = StdRng::seed_from_u64(0);
        if m.choose(&prompt, &[st, un], 0.0, &mut rng) == st {
            StressLabel::Stressed
        } else {
            StressLabel::Unstressed
        }
    }
}

impl ExplainedClassifier for ChainClassifier<'_> {
    fn predict_images(&self, fe: &Image, fl: &Image, _video: &VideoSample) -> StressLabel {
        self.predict_from(fe, fl)
    }

    fn rank_segments(&self, video: &VideoSample, _fe: &Image, seg: &Segmentation) -> Vec<usize> {
        // Highlight on the clean input; the "w/o Chain" variant highlights
        // over the full AU space (§IV-E).
        let out = if self.variant.uses_chain() {
            self.pipeline.predict(video, video.id as u64)
        } else {
            let assessment = self.pipeline.assess_direct(video, 0.0, video.id as u64);
            let rationale = self.pipeline.highlight(
                video,
                facs::au::AuSet::FULL,
                assessment,
                0.0,
                video.id as u64,
            );
            chain_reason::ChainOutput {
                description: facs::au::AuSet::FULL,
                assessment,
                rationale,
            }
        };
        rationale_segment_ranking(out.rationale, seg)
    }
}

/// Train and evaluate one variant: detection metrics on the full test set,
/// Top-k drops on `faith_samples` test samples.
pub fn run_variant(ctx: &Context, variant: Variant, faith_samples: usize) -> AblationRow {
    let (pl, _) = ctx.train_variant(variant);
    let pairs: Vec<_> = ctx
        .test
        .iter()
        .map(|v| {
            (
                v.label,
                chain_reason::trainer::predict_for_variant(&pl, variant, v),
            )
        })
        .collect();
    let metrics = Confusion::from_pairs(&pairs).metrics();
    let subset: Vec<VideoSample> = ctx.test.iter().take(faith_samples).cloned().collect();
    let clf = ChainClassifier {
        pipeline: &pl,
        variant,
    };
    let drops = topk_accuracy_drops(&clf, &subset, ctx.seed ^ 0xD15);
    AblationRow {
        variant,
        metrics,
        drops,
    }
}

/// Render the detection side (Tables III / V).
pub fn render_detection(title: &str, corpus: Corpus, rows: &[AblationRow]) -> Table {
    let mut t = Table::new(
        title,
        &["Method", "Acc.", "Prec.", "Rec.", "F1.", "paper Acc."],
    );
    for r in rows {
        let c = r.metrics.row_cells();
        t.row(vec![
            r.variant.label().to_owned(),
            c[0].clone(),
            c[1].clone(),
            c[2].clone(),
            c[3].clone(),
            format!("{:.2}%", paper_ablation_accuracy(corpus, r.variant)),
        ]);
    }
    t
}

/// Render the faithfulness side (Tables IV / VI).
pub fn render_faithfulness(title: &str, corpus: Corpus, rows: &[AblationRow]) -> Table {
    let mut t = Table::new(title, &["Method", "Top-1", "Top-2", "Top-3", "paper Top-1"]);
    for r in rows {
        t.row(vec![
            r.variant.label().to_owned(),
            format!("{:.2}%", r.drops.drops[0] * 100.0),
            format!("{:.2}%", r.drops.drops[1] * 100.0),
            format!("{:.2}%", r.drops.drops[2] * 100.0),
            format!("{:.2}%", paper_ablation_top1(corpus, r.variant)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_are_internally_ordered() {
        for c in [Corpus::Uvsd, Corpus::Rsl] {
            let full = paper_ablation_accuracy(c, Variant::Full);
            for v in [
                Variant::WithoutChain,
                Variant::WithoutLearnDescribe,
                Variant::WithoutRefine,
                Variant::WithoutReflection,
            ] {
                assert!(full > paper_ablation_accuracy(c, v));
                assert!(paper_ablation_top1(c, Variant::Full) > paper_ablation_top1(c, v));
            }
        }
    }
}
