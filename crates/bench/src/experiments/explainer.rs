//! Table II (explainer faithfulness) and Figure 6 (explanation latency).

use chain_reason::StressPipeline;
use chain_reason::Variant;
use evalkit::faithfulness::{topk_accuracy_drops, ExplainedClassifier, TopKDrops};
use evalkit::table::Table;
use evalkit::timing::fmt_seconds;
use explainers::{
    kernel_shap_in, lime_in, sobol_total_indices_in, Attribution, EvalCache, MaskExecutor,
};
use lfm::instructions::{assess_prompt_from_images, label_tokens};
use videosynth::image::Image;
use videosynth::slic::Segmentation;
use videosynth::video::{StressLabel, VideoSample};

use crate::context::{Context, Corpus};
use crate::experiments::ablation::ChainClassifier;

/// Which explanation method ranks the segments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Explainer {
    Shap,
    Lime,
    Sobol,
    Ours,
}

impl Explainer {
    /// Row label of Table II.
    pub fn label(self) -> &'static str {
        match self {
            Explainer::Shap => "SHAP",
            Explainer::Lime => "LIME",
            Explainer::Sobol => "SOBOL",
            Explainer::Ours => "Ours",
        }
    }
}

/// Paper Table II drops (Top-1, Top-2, Top-3) per corpus and explainer.
pub fn paper_drops(corpus: Corpus, e: Explainer) -> [f64; 3] {
    match (corpus, e) {
        (Corpus::Uvsd, Explainer::Shap) => [8.92, 20.05, 24.49],
        (Corpus::Uvsd, Explainer::Lime) => [10.85, 28.83, 34.97],
        (Corpus::Uvsd, Explainer::Sobol) => [9.14, 19.76, 28.53],
        (Corpus::Uvsd, Explainer::Ours) => [11.96, 24.31, 29.79],
        (Corpus::Rsl, Explainer::Shap) => [9.76, 25.26, 39.81],
        (Corpus::Rsl, Explainer::Lime) => [11.54, 30.59, 45.79],
        (Corpus::Rsl, Explainer::Sobol) => [11.61, 25.48, 38.70],
        (Corpus::Rsl, Explainer::Ours) => [14.70, 26.70, 35.45],
    }
}

/// Evaluation budget for the perturbation explainers (§IV-H sets 1 000 for
/// LIME/SHAP; SOBOL's QMC design uses n·(d+2) ≈ the same).
pub const PERTURBATION_EVALS: usize = 1000;
/// SOBOL QMC rows (n·(d+2) ≈ 1 000 at d = 64).
pub const SOBOL_ROWS: usize = 15;

/// The frozen decision function the perturbation explainers probe:
/// p(stressed) of the trained pipeline's assess step given a perturbed
/// expressive frame, with the clean description and least-expressive frame
/// held fixed (explaining *this* decision).
pub struct DecisionFunction<'a> {
    pipeline: &'a StressPipeline,
    description: facs::au::AuSet,
    fl: Image,
}

impl<'a> DecisionFunction<'a> {
    /// Build for one test video: runs the chain once on the clean input.
    pub fn new(pipeline: &'a StressPipeline, video: &VideoSample) -> Self {
        let description = pipeline.describe(video, 0.0, video.id as u64);
        let (_, fl) = video.expressive_pair();
        DecisionFunction {
            pipeline,
            description,
            fl,
        }
    }

    /// p(stressed | perturbed f_e).
    pub fn score(&self, fe: &Image) -> f32 {
        let m = &self.pipeline.model;
        let p = assess_prompt_from_images(m, fe, &self.fl, self.description);
        let dist = m.next_token_distribution(&p);
        let [st, un] = label_tokens(&m.vocab);
        let ps = dist[st as usize];
        let pu = dist[un as usize];
        if ps + pu > 0.0 {
            ps / (ps + pu)
        } else {
            0.5
        }
    }
}

/// Attribution of one explainer for one sample, using the default
/// executor (global pool, no cross-call cache).
pub fn explain(
    e: Explainer,
    pipeline: &StressPipeline,
    video: &VideoSample,
    fe: &Image,
    seg: &Segmentation,
    seed: u64,
) -> Attribution {
    explain_in(&MaskExecutor::new(), e, pipeline, video, fe, seg, seed)
}

/// [`explain`] with an explicit [`MaskExecutor`], so one mask-keyed
/// evaluation cache can dedup coalitions across LIME/SHAP/SOBOL probing the
/// same sample.
pub fn explain_in(
    exec: &MaskExecutor,
    e: Explainer,
    pipeline: &StressPipeline,
    video: &VideoSample,
    fe: &Image,
    seg: &Segmentation,
    seed: u64,
) -> Attribution {
    match e {
        Explainer::Ours => {
            // The chain's own rationale, converted to segment scores by
            // ranking (§IV-H); emitted as descending pseudo-scores.
            let out = pipeline.predict(video, video.id as u64);
            let ranking = chain_reason::localize::rationale_segment_ranking(out.rationale, seg);
            let n = ranking.len();
            let mut scores = vec![0.0f32; n];
            for (pos, &s) in ranking.iter().enumerate() {
                scores[s] = (n - pos) as f32;
            }
            Attribution::new(scores)
        }
        Explainer::Lime => {
            let f = DecisionFunction::new(pipeline, video);
            lime_in(
                exec,
                fe,
                seg,
                |img: &Image| f.score(img),
                PERTURBATION_EVALS,
                seed,
            )
        }
        Explainer::Shap => {
            let f = DecisionFunction::new(pipeline, video);
            kernel_shap_in(
                exec,
                fe,
                seg,
                |img: &Image| f.score(img),
                PERTURBATION_EVALS,
                seed,
            )
        }
        Explainer::Sobol => {
            let f = DecisionFunction::new(pipeline, video);
            sobol_total_indices_in(exec, fe, seg, |img: &Image| f.score(img), SOBOL_ROWS, seed)
        }
    }
}

/// Adapter: the trained pipeline predicts, one explainer ranks.
///
/// When a shared cache is attached, mask evaluations are scoped by video
/// id — sound because [`DecisionFunction`] is a pure function of the video
/// and the (shared) trained pipeline.
struct ExplainedChain<'a> {
    chain: ChainClassifier<'a>,
    explainer: Explainer,
    seed: u64,
    cache: Option<&'a EvalCache>,
}

impl ExplainedClassifier for ExplainedChain<'_> {
    fn predict_images(&self, fe: &Image, fl: &Image, video: &VideoSample) -> StressLabel {
        self.chain.predict_images(fe, fl, video)
    }

    fn rank_segments(&self, video: &VideoSample, fe: &Image, seg: &Segmentation) -> Vec<usize> {
        let exec = match self.cache {
            Some(c) => MaskExecutor::new().with_cache(c, video.id as u64),
            None => MaskExecutor::new(),
        };
        explain_in(
            &exec,
            self.explainer,
            self.chain.pipeline,
            video,
            fe,
            seg,
            self.seed ^ video.id as u64,
        )
        .top_k(seg.num_segments())
    }
}

/// Table II: train the full method once, then measure Top-k drops under
/// each explanation method's ranking.  One evaluation cache is shared
/// across the three perturbation explainers, deduplicating repeated
/// coalitions (anchors, clean instances, extreme QMC rows) per sample.
pub fn run_table2(ctx: &Context, faith_samples: usize) -> Vec<(Explainer, TopKDrops)> {
    let (pl, _) = ctx.train_variant(Variant::Full);
    let subset: Vec<VideoSample> = ctx.test.iter().take(faith_samples).cloned().collect();
    let cache = EvalCache::new();
    [
        Explainer::Shap,
        Explainer::Lime,
        Explainer::Sobol,
        Explainer::Ours,
    ]
    .into_iter()
    .map(|e| {
        let clf = ExplainedChain {
            chain: ChainClassifier {
                pipeline: &pl,
                variant: Variant::Full,
            },
            explainer: e,
            seed: ctx.seed ^ 0x7AB2,
            cache: Some(&cache),
        };
        (e, topk_accuracy_drops(&clf, &subset, ctx.seed ^ 0x7AB2))
    })
    .collect()
}

/// Render Table II.
pub fn render_table2(title: &str, corpus: Corpus, rows: &[(Explainer, TopKDrops)]) -> Table {
    let mut t = Table::new(
        title,
        &["Method", "Top-1", "Top-2", "Top-3", "paper Top-1/2/3"],
    );
    for (e, d) in rows {
        let p = paper_drops(corpus, *e);
        t.row(vec![
            e.label().to_owned(),
            format!("{:.2}%", d.drops[0] * 100.0),
            format!("{:.2}%", d.drops[1] * 100.0),
            format!("{:.2}%", d.drops[2] * 100.0),
            format!("{:.2}/{:.2}/{:.2}%", p[0], p[1], p[2]),
        ]);
    }
    t
}

/// Figure 6: wall-clock seconds to explain one sample per method, one
/// measurement per test sample (so the distribution, not just the mean,
/// can be reported).
/// Paper: Ours 3.4 s; SOBOL 216.3 s (the fastest baseline explainer).
pub fn run_fig6(ctx: &Context, timing_samples: usize) -> Vec<(Explainer, Vec<f64>)> {
    let (pl, _) = ctx.train_variant(Variant::Full);
    let subset: Vec<VideoSample> = ctx
        .test
        .iter()
        .take(timing_samples.max(1))
        .cloned()
        .collect();
    let mut out = Vec::new();
    for e in [
        Explainer::Ours,
        Explainer::Sobol,
        Explainer::Lime,
        Explainer::Shap,
    ] {
        let mut seconds = Vec::with_capacity(subset.len());
        for v in &subset {
            let start = std::time::Instant::now();
            let (fe, seg) = evalkit::faithfulness::segment_expressive_frame(v);
            match e {
                // "Ours" timing covers describing, assessing and
                // highlighting — the full self-explanation (§IV-D(3)).
                Explainer::Ours => {
                    let _ = pl.predict(v, v.id as u64);
                }
                _ => {
                    let _ = explain(e, &pl, v, &fe, &seg, ctx.seed);
                }
            }
            seconds.push(start.elapsed().as_secs_f64());
        }
        out.push((e, seconds));
    }
    out
}

/// Mean per-sample latency of one Figure 6 row.
pub fn fig6_mean(seconds: &[f64]) -> f64 {
    seconds.iter().sum::<f64>() / seconds.len().max(1) as f64
}

/// Render Figure 6 as a table of per-sample latency statistics.
pub fn render_fig6(rows: &[(Explainer, Vec<f64>)]) -> Table {
    let paper = |e: Explainer| match e {
        Explainer::Ours => "3.4s",
        Explainer::Sobol => "216.3s",
        Explainer::Lime => ">216s",
        Explainer::Shap => ">216s",
    };
    let mut t = Table::new(
        "Figure 6 — per-sample explanation latency",
        &["Method", "mean", "p50", "p95", "p99", "paper"],
    );
    for (e, seconds) in rows {
        let mut window = seconds.clone();
        let [p50, p95, p99] = evalkit::timing::p50_p95_p99(&mut window);
        t.row(vec![
            e.label().to_owned(),
            fmt_seconds(fig6_mean(seconds)),
            fmt_seconds(p50),
            fmt_seconds(p95),
            fmt_seconds(p99),
            paper(*e).to_owned(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ours_wins_top1_everywhere() {
        for c in [Corpus::Uvsd, Corpus::Rsl] {
            let ours = paper_drops(c, Explainer::Ours)[0];
            for e in [Explainer::Shap, Explainer::Lime, Explainer::Sobol] {
                assert!(ours > paper_drops(c, e)[0]);
            }
        }
    }

    #[test]
    fn labels() {
        assert_eq!(Explainer::Sobol.label(), "SOBOL");
        assert_eq!(Explainer::Ours.label(), "Ours");
    }
}
