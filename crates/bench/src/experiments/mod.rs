//! Library runners for every table and figure of the paper's evaluation.
//!
//! Each module exposes a `run(...)` returning structured results plus a
//! rendered [`evalkit::Table`]; binaries print it, integration tests assert
//! on it.

pub mod ablation;
pub mod detection;
pub mod explainer;
pub mod icl;
pub mod testtime;
