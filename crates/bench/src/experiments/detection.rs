//! Table I — stress-detection performance of every method on both corpora.

use baselines::common::StressDetector;
use baselines::offtheshelf::OffTheShelf;
use chain_reason::Variant;
use evalkit::metrics::{Confusion, Metrics};
use evalkit::table::Table;
use lfm::pretrain::CapabilityProfile;
use videosynth::dataset::Scale;
use videosynth::video::VideoSample;

use crate::context::{Context, Corpus};

/// One Table I row: method name, measured metrics, the paper's reported
/// numbers `(acc, prec, rec, f1)` in percent.
#[derive(Clone, Debug)]
pub struct DetectionRow {
    pub method: &'static str,
    pub metrics: Metrics,
    pub paper: [f64; 4],
}

/// The paper's Table I numbers (UVSD, RSL) per method.
pub fn paper_numbers(corpus: Corpus, method: &str) -> [f64; 4] {
    match (corpus, method) {
        (Corpus::Uvsd, "GPT-4o") => [75.95, 77.42, 76.93, 76.70],
        (Corpus::Uvsd, "Claude-3.5") => [73.29, 74.11, 73.04, 73.18],
        (Corpus::Uvsd, "Gemini-1.5") => [70.19, 69.91, 72.50, 70.76],
        (Corpus::Uvsd, "FDASSNN") => [74.11, 73.71, 74.00, 74.06],
        (Corpus::Uvsd, "Gao et al.") => [78.38, 65.00, 63.83, 64.40],
        (Corpus::Uvsd, "Zhang et al.") => [81.58, 67.38, 77.30, 72.00],
        (Corpus::Uvsd, "Jeon et al.") => [82.71, 69.61, 77.30, 73.26],
        (Corpus::Uvsd, "TSDNet") => [85.42, 85.28, 85.32, 85.53],
        (Corpus::Uvsd, "MARLIN") => [86.56, 86.56, 87.33, 86.49],
        (Corpus::Uvsd, "Singh et al.") => [81.56, 81.87, 80.30, 80.76],
        (Corpus::Uvsd, "Ding et al.") => [91.25, 92.18, 90.24, 90.89],
        (Corpus::Uvsd, "Ours") => [95.81, 96.05, 92.82, 94.22],
        (Corpus::Rsl, "GPT-4o") => [66.89, 66.01, 68.93, 65.45],
        (Corpus::Rsl, "Claude-3.5") => [60.76, 61.35, 63.88, 63.42],
        (Corpus::Rsl, "Gemini-1.5") => [66.53, 65.83, 64.31, 62.07],
        (Corpus::Rsl, "FDASSNN") => [67.42, 62.26, 63.26, 62.75],
        (Corpus::Rsl, "Gao et al.") => [63.30, 52.81, 62.42, 52.61],
        (Corpus::Rsl, "Zhang et al.") => [65.49, 56.77, 56.21, 56.49],
        (Corpus::Rsl, "Jeon et al.") => [79.53, 74.54, 64.72, 66.78],
        (Corpus::Rsl, "TSDNet") => [81.76, 80.37, 72.77, 74.99],
        (Corpus::Rsl, "MARLIN") => [82.50, 84.76, 76.64, 78.64],
        (Corpus::Rsl, "Singh et al.") => [78.12, 73.22, 69.22, 70.58],
        (Corpus::Rsl, "Ding et al.") => [86.50, 84.81, 78.40, 80.79],
        (Corpus::Rsl, "Ours") => [90.94, 90.13, 85.13, 85.94],
        _ => [0.0; 4],
    }
}

/// Evaluate one fitted detector on a test set.
pub fn evaluate_detector<D: StressDetector + ?Sized>(det: &D, test: &[VideoSample]) -> Metrics {
    let pairs: Vec<_> = test.iter().map(|v| (v.label, det.predict(v))).collect();
    Confusion::from_pairs(&pairs).metrics()
}

/// Run every Table I method on one corpus, in the paper's row order.
///
/// `include_ours` lets cheap callers skip the (expensive) full pipeline.
pub fn run_corpus(ctx: &Context, include_ours: bool) -> Vec<DetectionRow> {
    run_corpus_saving(ctx, include_ours, None)
}

/// [`run_corpus`], optionally checkpointing the trained `Ours` pipeline as
/// an `SRCR1` artifact (`--save-artifacts`) before evaluation — the single
/// training run pays for both the table row and the serving checkpoint.
pub fn run_corpus_saving(
    ctx: &Context,
    include_ours: bool,
    save_artifacts: Option<&std::path::Path>,
) -> Vec<DetectionRow> {
    let mut rows = Vec::new();
    let scale_factor = if ctx.scale == Scale::Smoke { 0.25 } else { 1.0 };

    // Off-the-shelf foundation models (zero shot).
    for profile in [
        CapabilityProfile::gpt4o(),
        CapabilityProfile::claude(),
        CapabilityProfile::gemini(),
    ] {
        let proxy = OffTheShelf::build(profile.scaled(scale_factor), ctx.seed ^ 0x0F5);
        let name = proxy.name();
        rows.push(DetectionRow {
            method: name,
            metrics: evaluate_detector(&proxy, &ctx.test),
            paper: paper_numbers(ctx.corpus, name),
        });
    }

    // Supervised baselines.
    let supervised: Vec<Box<dyn StressDetector>> = vec![
        Box::new(baselines::fdassnn::Fdassnn::fit(&ctx.train, ctx.seed ^ 1)),
        Box::new(baselines::gao::Gao::fit(&ctx.train, ctx.seed ^ 2)),
        Box::new(baselines::zhang::Zhang::fit(&ctx.train, ctx.seed ^ 3)),
        Box::new(baselines::jeon::Jeon::fit(&ctx.train, ctx.seed ^ 4)),
        Box::new(baselines::tsdnet::Tsdnet::fit(&ctx.train, ctx.seed ^ 5)),
        Box::new(baselines::marlin::Marlin::fit(&ctx.train, ctx.seed ^ 6)),
        Box::new(baselines::singh::Singh::fit(&ctx.train, ctx.seed ^ 7)),
        Box::new(baselines::ding::Ding::fit(&ctx.train, ctx.seed ^ 8)),
    ];
    for det in &supervised {
        rows.push(DetectionRow {
            method: detector_static_name(det.name()),
            metrics: evaluate_detector(det.as_ref(), &ctx.test),
            paper: paper_numbers(ctx.corpus, det.name()),
        });
    }

    // Ours.
    if include_ours {
        let (pl, _) = ctx.train_variant(Variant::Full);
        if let Some(dir) = save_artifacts {
            match ctx.save_artifact(dir, &pl, Variant::Full) {
                Ok(path) => eprintln!("[table1] saved artifact {}", path.display()),
                Err(e) => panic!("artifact save failed: {e}"),
            }
        }
        let pairs: Vec<_> = ctx
            .test
            .iter()
            .map(|v| (v.label, pl.predict_label(v)))
            .collect();
        rows.push(DetectionRow {
            method: "Ours",
            metrics: Confusion::from_pairs(&pairs).metrics(),
            paper: paper_numbers(ctx.corpus, "Ours"),
        });
    }
    rows
}

fn detector_static_name(name: &str) -> &'static str {
    match name {
        "FDASSNN" => "FDASSNN",
        "Gao et al." => "Gao et al.",
        "Zhang et al." => "Zhang et al.",
        "Jeon et al." => "Jeon et al.",
        "TSDNet" => "TSDNet",
        "MARLIN" => "MARLIN",
        "Singh et al." => "Singh et al.",
        "Ding et al." => "Ding et al.",
        _ => "unknown",
    }
}

/// Render rows (for one or both corpora) as a Table I-style text table.
pub fn render(title: &str, sections: &[(&str, &[DetectionRow])]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "Method",
            "Acc.",
            "Prec.",
            "Rec.",
            "F1.",
            "paper Acc.",
            "paper F1.",
        ],
    );
    for (label, rows) in sections {
        t.section(label);
        for r in *rows {
            let c = r.metrics.row_cells();
            t.row(vec![
                r.method.to_owned(),
                c[0].clone(),
                c[1].clone(),
                c[2].clone(),
                c[3].clone(),
                format!("{:.2}%", r.paper[0]),
                format!("{:.2}%", r.paper[3]),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_cover_all_methods() {
        for m in [
            "GPT-4o",
            "Claude-3.5",
            "Gemini-1.5",
            "FDASSNN",
            "Gao et al.",
            "Zhang et al.",
            "Jeon et al.",
            "TSDNet",
            "MARLIN",
            "Singh et al.",
            "Ding et al.",
            "Ours",
        ] {
            assert!(paper_numbers(Corpus::Uvsd, m)[0] > 0.0, "{m} uvsd missing");
            assert!(paper_numbers(Corpus::Rsl, m)[0] > 0.0, "{m} rsl missing");
        }
        assert_eq!(paper_numbers(Corpus::Uvsd, "nope"), [0.0; 4]);
    }

    #[test]
    fn paper_ours_is_best_on_both() {
        for c in [Corpus::Uvsd, Corpus::Rsl] {
            let ours = paper_numbers(c, "Ours")[0];
            for m in ["GPT-4o", "TSDNet", "Ding et al."] {
                assert!(ours > paper_numbers(c, m)[0]);
            }
        }
    }
}
