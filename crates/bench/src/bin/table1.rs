//! Regenerate Table I — stress-detection performance of all methods.

use bench_suite::context::Corpus;
use bench_suite::corpus_main;
use bench_suite::experiments::detection::{render, run_corpus};

fn main() {
    let mut sections = Vec::new();
    corpus_main("table1", &[Corpus::Uvsd, Corpus::Rsl], |_, ctx| {
        sections.push((ctx.corpus.label(), run_corpus(ctx, true)));
    });
    let slices: Vec<(&str, &[_])> = sections.iter().map(|(l, r)| (*l, r.as_slice())).collect();
    render("Table I — stress detection performance", &slices).print();
}
