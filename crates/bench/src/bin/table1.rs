//! Regenerate Table I — stress-detection performance of all methods.

use bench_suite::context::{Context, Corpus};
use bench_suite::experiments::detection::{render, run_corpus};
use bench_suite::CliArgs;

fn main() {
    let args = CliArgs::from_env();
    let mut sections = Vec::new();
    for corpus in [Corpus::Uvsd, Corpus::Rsl] {
        eprintln!("[table1] running {} at {:?}…", corpus.label(), args.scale);
        let ctx = Context::prepare(corpus, args.scale, args.seed);
        sections.push((corpus.label(), run_corpus(&ctx, true)));
    }
    let slices: Vec<(&str, &[_])> = sections.iter().map(|(l, r)| (*l, r.as_slice())).collect();
    render("Table I — stress detection performance", &slices).print();
}
