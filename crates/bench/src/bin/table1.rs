//! Regenerate Table I — stress-detection performance of all methods.

use bench_suite::context::Corpus;
use bench_suite::corpus_main;
use bench_suite::experiments::detection::{render, run_corpus_saving};

fn main() {
    let mut sections = Vec::new();
    corpus_main("table1", &[Corpus::Uvsd, Corpus::Rsl], |args, ctx| {
        let save = args.save_artifacts.as_deref();
        sections.push((ctx.corpus.label(), run_corpus_saving(ctx, true, save)));
    });
    let slices: Vec<(&str, &[_])> = sections.iter().map(|(l, r)| (*l, r.as_slice())).collect();
    render("Table I — stress detection performance", &slices).print();
}
