//! kernelbench — raw matmul throughput of the kernel tiers (GFLOP/s) on
//! shapes drawn from the real model configs.
//!
//! ```text
//! kernelbench [--smoke] [--threads 1,2,4] [--out PATH]
//! ```
//!
//! For every model scale this sweeps two shape families:
//!
//! * **decode** — the `r == 1` single-row products of KV-cached decoding
//!   (q/k/v/o projections, the two FF layers, the vocab head): the
//!   hottest serve shapes, measured at 1 thread (row parallelism cannot
//!   apply to one row);
//! * **tape** — the same `k × c` weights applied to a full
//!   `max_seq`-row activation block (training / naive-decode shape),
//!   measured at each requested thread count.
//!
//! Before any timing, each (shape, tier) pair is *verified*: the fast
//! tier must be bit-identical to the exact oracle (finite inputs — see
//! the kernels module docs), and the q8 tier must be within the
//! documented per-column error bound.  A benchmark run is also an
//! equivalence check, in the same spirit as `decodebench`.
//!
//! Writes one JSON document (for `scripts/bench_kernels.sh` →
//! `BENCH_kernels.json`).  Exits non-zero if the fast tier fails to beat
//! the oracle on every large tape shape at 1 thread — the regression
//! gate `scripts/ci.sh` relies on in `--smoke` mode.

use std::hint::black_box;
use std::time::Instant;

use lfm::{ModelConfig, Vocab};
use tinynn::kernels::{self, KernelTier, PackedWeights, Q8Weights};

struct Args {
    smoke: bool,
    threads: Vec<usize>,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        threads: vec![1, 2, 4],
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--smoke" => args.smoke = true,
            "--threads" => {
                args.threads = value("--threads")?
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|e| format!("--threads: {e}"))
                    })
                    .collect::<Result<_, _>>()?;
                if args.threads.is_empty() || args.threads.contains(&0) {
                    return Err("--threads needs positive counts".into());
                }
            }
            "--out" => args.out = Some(value("--out")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// One benchmarked shape: `r` activation rows through a `[k, c]` weight.
struct Shape {
    config: &'static str,
    family: &'static str,
    name: &'static str,
    r: usize,
    k: usize,
    c: usize,
}

/// The linear layers of one model scale, as (name, k, c).
fn layers(cfg: &ModelConfig, vocab: usize) -> Vec<(&'static str, usize, usize)> {
    vec![
        ("qkv_proj", cfg.d_model, cfg.d_model),
        ("ff1", cfg.d_model, cfg.ff),
        ("ff2", cfg.ff, cfg.d_model),
        ("head", cfg.d_model, vocab),
    ]
}

fn shapes() -> Vec<Shape> {
    let vocab = Vocab::build().len();
    let mut out = Vec::new();
    for (config, cfg) in [
        ("tiny", ModelConfig::tiny()),
        ("small", ModelConfig::small()),
    ] {
        for (name, k, c) in layers(&cfg, vocab) {
            out.push(Shape {
                config,
                family: "decode",
                name,
                r: 1,
                k,
                c,
            });
            out.push(Shape {
                config,
                family: "tape",
                name,
                r: cfg.max_seq,
                k,
                c,
            });
        }
    }
    out
}

/// Deterministic irregular data with exact zeros sprinkled in, matching
/// the distributions the kernel unit tests use.
fn filled(n: usize, seed: u32) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let h = (i as u32).wrapping_mul(2_654_435_761).wrapping_add(seed);
            if i % 7 == 0 {
                0.0
            } else {
                ((h >> 8) as f32 / 1e6).sin()
            }
        })
        .collect()
}

/// Time `reps` calls of `f` three times and keep the best trial (the one
/// least disturbed by scheduler noise), returning GFLOP/s for the shape.
fn gflops<F: FnMut()>(r: usize, k: usize, c: usize, reps: usize, mut f: F) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..3 {
        let started = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(started.elapsed().as_secs_f64());
    }
    (2.0 * (r * k * c) as f64 * reps as f64) / best / 1e9
}

struct Row {
    config: String,
    family: String,
    name: String,
    r: usize,
    k: usize,
    c: usize,
    tier: String,
    threads: usize,
    gflops: f64,
    speedup_vs_exact: f64,
}

impl Row {
    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"config\":\"{}\",\"family\":\"{}\",\"layer\":\"{}\",",
                "\"r\":{},\"k\":{},\"c\":{},\"tier\":\"{}\",\"threads\":{},",
                "\"gflops\":{:.3},\"speedup_vs_exact\":{:.2}}}"
            ),
            self.config,
            self.family,
            self.name,
            self.r,
            self.k,
            self.c,
            self.tier,
            self.threads,
            self.gflops,
            self.speedup_vs_exact,
        )
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("kernelbench: {e}");
            std::process::exit(2);
        }
    };
    // Target multiply-adds per timed measurement: enough to swamp timer
    // noise in full mode, an order less in smoke mode.
    let target_flops: f64 = if args.smoke { 2e7 } else { 2e8 };

    let mut rows: Vec<Row> = Vec::new();
    for s in shapes() {
        let a = filled(s.r * s.k, 0xA);
        let b = filled(s.k * s.c, 0xB);
        let bias = vec![0.0f32; s.c];
        let qw = Q8Weights::quantize(&b, s.k, s.c);
        let pw = PackedWeights::pack(&b, s.k, s.c);

        // Verify before timing: fast must match the oracle bitwise
        // (including through the packed-weights layout a Fast serve
        // session uses), q8 must sit inside its documented error bound.
        runtime::set_threads(1);
        let oracle = kernels::matmul_with(KernelTier::Exact, &a, &b, s.r, s.k, s.c);
        let fast = kernels::matmul_with(KernelTier::Fast, &a, &b, s.r, s.k, s.c);
        assert_eq!(
            oracle, fast,
            "fast tier diverged from oracle on {}/{}",
            s.config, s.name
        );
        if s.r == 1 {
            let mut packed = vec![0.0f32; s.c];
            kernels::linear_row_packed(&mut packed, &a, &pw, &bias);
            assert_eq!(
                oracle, packed,
                "packed fast tier diverged from oracle on {}/{}",
                s.config, s.name
            );
            let mut q8 = vec![0.0f32; s.c];
            kernels::linear_row_q8(&mut q8, &a, &qw, &bias);
            for j in 0..s.c {
                let bound = qw.row_error_bound(&a, j) * 1.001 + 1e-6;
                assert!(
                    (q8[j] - oracle[j]).abs() <= bound,
                    "q8 outside bound on {}/{} col {j}",
                    s.config,
                    s.name
                );
            }
        }

        let flops = (2 * s.r * s.k * s.c) as f64;
        let reps = ((target_flops / flops).ceil() as usize).max(4);
        let thread_counts: &[usize] = if s.r == 1 { &[1] } else { &args.threads };
        for &t in thread_counts {
            runtime::set_threads(t);
            // Decode shapes go through the fused row kernels the serve
            // path actually calls (caller-owned output, no allocation in
            // either tier; the fast tier reads session-packed weights,
            // exactly as a `Fast` InferSession does); tape shapes go
            // through the tape's matmul entry point.
            let (exact, fast) = if s.r == 1 {
                let mut out = vec![0.0f32; s.c];
                let exact = gflops(s.r, s.k, s.c, reps, || {
                    kernels::linear_row_with(KernelTier::Exact, &mut out, &a, &b, &bias);
                    black_box(&mut out);
                });
                let fast = gflops(s.r, s.k, s.c, reps, || {
                    kernels::linear_row_packed(&mut out, &a, &pw, &bias);
                    black_box(&mut out);
                });
                (exact, fast)
            } else {
                let run = |tier: KernelTier| {
                    gflops(s.r, s.k, s.c, reps, || {
                        black_box(kernels::matmul_with(tier, &a, &b, s.r, s.k, s.c));
                    })
                };
                (run(KernelTier::Exact), run(KernelTier::Fast))
            };
            println!(
                "  {:>5} {:>6} {:>8}  r={:<3} k={:<3} c={:<3} t={}  exact {:>6.2}  fast {:>6.2}  ({:.2}x)",
                s.config,
                s.family,
                s.name,
                s.r,
                s.k,
                s.c,
                t,
                exact,
                fast,
                fast / exact
            );
            for (tier, g) in [("exact", exact), ("fast", fast)] {
                rows.push(Row {
                    config: s.config.into(),
                    family: s.family.into(),
                    name: s.name.into(),
                    r: s.r,
                    k: s.k,
                    c: s.c,
                    tier: tier.into(),
                    threads: t,
                    gflops: g,
                    speedup_vs_exact: g / exact,
                });
            }
            if s.r == 1 {
                // q8 timed through the fused row kernel it serves.
                let mut out = vec![0.0f32; s.c];
                let started = Instant::now();
                for _ in 0..reps {
                    kernels::linear_row_q8(&mut out, &a, &qw, &bias);
                    black_box(&out);
                }
                let secs = started.elapsed().as_secs_f64();
                let g = (flops * reps as f64) / secs / 1e9;
                rows.push(Row {
                    config: s.config.into(),
                    family: s.family.into(),
                    name: s.name.into(),
                    r: s.r,
                    k: s.k,
                    c: s.c,
                    tier: "fast-q8".into(),
                    threads: t,
                    gflops: g,
                    speedup_vs_exact: g / exact,
                });
            }
        }
    }
    runtime::set_threads(0);

    let doc = format!(
        "{{\"bench\":\"kernels\",\"smoke\":{},\"rows\":[{}]}}\n",
        args.smoke,
        rows.iter().map(Row::json).collect::<Vec<_>>().join(",")
    );
    if let Some(path) = &args.out {
        std::fs::write(path, &doc).unwrap_or_else(|e| {
            eprintln!("kernelbench: write {path}: {e}");
            std::process::exit(1);
        });
        println!("  wrote {path}");
    } else {
        print!("{doc}");
    }

    // Regression gates, all at 1 thread.  Sub-microsecond micro shapes
    // (tiny qkv at 512 flops/call) are excluded — they time dispatch
    // overhead, not the kernel.
    let fast1 = |pred: &dyn Fn(&Row) -> bool| -> (usize, f64) {
        let mut n = 0usize;
        let mut worst = f64::MAX;
        for r in rows.iter().filter(|r| r.tier == "fast" && r.threads == 1) {
            if pred(r) {
                n += 1;
                worst = worst.min(r.speedup_vs_exact);
            }
        }
        (n, worst)
    };
    // Every large tape shape must beat the oracle outright.
    let (n_tape, worst_tape) = fast1(&|r| r.family == "tape" && r.r * r.k * r.c >= 1 << 16);
    // Every non-micro decode shape must at least not regress.
    let (n_dec, worst_dec) = fast1(&|r| r.family == "decode" && r.k * r.c >= 1024);
    // Headline criterion: >= 2x on the large decode shapes (hard-asserted
    // in full runs, reported in smoke runs to keep CI free of
    // timing-flake failures).
    let (n_big, worst_big) = fast1(&|r| r.family == "decode" && r.k * r.c >= 2048);
    assert!(
        n_tape > 0 && n_dec > 0 && n_big > 0,
        "gates matched no shapes"
    );
    if worst_tape < 1.0 || worst_dec < 1.0 {
        eprintln!(
            "kernelbench: fast tier slower than oracle (tape worst {worst_tape:.2}x over {n_tape}, decode worst {worst_dec:.2}x over {n_dec})"
        );
        std::process::exit(1);
    }
    println!(
        "  gate ok: fast >= exact on {n_tape} large tape shapes (worst {worst_tape:.2}x) and {n_dec} decode shapes (worst {worst_dec:.2}x)"
    );
    println!("  large-decode criterion: worst {worst_big:.2}x over {n_big} shapes (target >= 2x)");
    if !args.smoke && worst_big < 2.0 {
        eprintln!("kernelbench: fast tier under 2x on a large decode shape ({worst_big:.2}x)");
        std::process::exit(1);
    }
}
