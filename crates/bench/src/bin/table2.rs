//! Regenerate Table II — explainer faithfulness (Top-k accuracy drops).

use bench_suite::context::{Context, Corpus};
use bench_suite::experiments::explainer::{render_table2, run_table2};
use bench_suite::CliArgs;

fn main() {
    let args = CliArgs::from_env();
    for corpus in [Corpus::Uvsd, Corpus::Rsl] {
        eprintln!("[table2] running {} at {:?}…", corpus.label(), args.scale);
        let ctx = Context::prepare(corpus, args.scale, args.seed);
        let rows = run_table2(&ctx, args.faithfulness_samples());
        render_table2(
            &format!(
                "Table II — accuracy drops after disturbing Top-k segments ({})",
                corpus.label()
            ),
            corpus,
            &rows,
        )
        .print();
    }
}
