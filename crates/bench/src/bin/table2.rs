//! Regenerate Table II — explainer faithfulness (Top-k accuracy drops).

use bench_suite::context::Corpus;
use bench_suite::corpus_main;
use bench_suite::experiments::explainer::{render_table2, run_table2};

fn main() {
    corpus_main("table2", &[Corpus::Uvsd, Corpus::Rsl], |args, ctx| {
        let rows = run_table2(ctx, args.faithfulness_samples());
        render_table2(
            &format!(
                "Table II — accuracy drops after disturbing Top-k segments ({})",
                ctx.corpus.label()
            ),
            ctx.corpus,
            &rows,
        )
        .print();
    });
}
