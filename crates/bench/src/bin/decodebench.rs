//! decodebench — end-to-end generation throughput of the KV-cached
//! incremental decode path against the naive full-recompute oracle.
//!
//! ```text
//! decodebench [--scale tiny|small] [--seed N] [--steps 8,32,64] \
//!             [--pad N] [--threads N] [--kernel-tier exact|fast] [--out PATH]
//! ```
//!
//! Both paths decode the *same* forced (non-eos) token sequence after the
//! same describe-style prompt, so they do identical logical work; the
//! naive path re-runs the whole graph per token (`last_logits_full`)
//! while the cached path prefills once and appends one row per token.
//! The final-position logits of the two paths are asserted bit-identical
//! before any number is reported — a benchmark run is also an
//! equivalence check.
//!
//! Reports prefill/decode split and tokens/s, and writes a JSON record
//! (for `scripts/bench_decode.sh` → `BENCH_decode.json`).

use std::time::Instant;

use facs::au::AuVector;
use lfm::{InferSession, Lfm, ModelConfig, Prompt, Special, TokenId};
use tinynn::kernels::KernelTier;
use videosynth::render::render_face;

struct Args {
    scale: String,
    seed: u64,
    steps: Vec<usize>,
    pad: usize,
    threads: usize,
    tier: KernelTier,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: "small".into(),
        seed: 7,
        steps: vec![8, 32, 64],
        pad: 24,
        threads: 0,
        tier: KernelTier::Exact,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--scale" => {
                args.scale = value("--scale")?;
                if !matches!(args.scale.as_str(), "tiny" | "small") {
                    return Err(format!("unknown scale {:?} (tiny|small)", args.scale));
                }
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--steps" => {
                args.steps = value("--steps")?
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|e| format!("--steps: {e}"))
                    })
                    .collect::<Result<_, _>>()?;
                if args.steps.is_empty() || args.steps.contains(&0) {
                    return Err("--steps needs positive counts".into());
                }
            }
            "--pad" => args.pad = value("--pad")?.parse().map_err(|e| format!("--pad: {e}"))?,
            "--kernel-tier" => {
                args.tier = KernelTier::parse(&value("--kernel-tier")?)?;
                if args.tier == KernelTier::FastQ8 {
                    // Quantization is lossy; the naive-vs-cached bitwise
                    // gate below would always fail.  Measure q8 raw
                    // throughput with kernelbench instead.
                    return Err("decodebench supports exact|fast (fast-q8 is lossy)".into());
                }
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--out" => args.out = Some(value("--out")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// A describe-style prompt — instruction special, rendered face image,
/// `pad` separators to control prefill length, then Bos.
fn prompt(m: &Lfm, pad: usize) -> Prompt {
    let mut p = Prompt::new();
    p.push_special(&m.vocab, Special::Describe);
    p.push_image(&m.cfg, &render_face(&AuVector::zeros(), 0.01, 1));
    p.push_tokens(&vec![m.vocab.special(Special::Sep); pad]);
    p.push_special(&m.vocab, Special::Bos);
    p
}

/// The forced decode sequence: `n` deterministic non-eos tokens, cycling
/// the vocabulary so both paths push identical context.
fn forced_tokens(m: &Lfm, n: usize) -> Vec<TokenId> {
    let eos = m.vocab.special(Special::Eos);
    let len = m.vocab.len() as TokenId;
    (0..n)
        .map(|i| {
            let t = (i as TokenId).wrapping_mul(7).wrapping_add(1) % len;
            if t == eos {
                (t + 1) % len
            } else {
                t
            }
        })
        .collect()
}

struct Run {
    new_tokens: usize,
    naive_s: f64,
    prefill_s: f64,
    decode_s: f64,
}

impl Run {
    fn naive_tok_s(&self) -> f64 {
        self.new_tokens as f64 / self.naive_s
    }
    fn cached_tok_s(&self) -> f64 {
        self.new_tokens as f64 / self.decode_s
    }
    /// End-to-end: the naive loop amortises its "prefill" into every
    /// step, so the fair comparison includes the session's prefill.
    fn speedup(&self) -> f64 {
        self.naive_s / (self.prefill_s + self.decode_s)
    }
}

fn measure(m: &Lfm, p: &Prompt, n: usize) -> Run {
    let toks = forced_tokens(m, n);

    // Naive: full graph recompute for every next-token query.
    let started = Instant::now();
    let mut answer: Vec<TokenId> = Vec::new();
    let mut naive_logits = Vec::new();
    for &t in &toks {
        naive_logits = m.last_logits_full(p, &answer);
        answer.push(t);
    }
    let naive_s = started.elapsed().as_secs_f64();

    // Cached: prefill once, then one incremental row per token.
    let mut session = InferSession::new(m);
    let started = Instant::now();
    session.set_context(m, p, &[]);
    let prefill_s = started.elapsed().as_secs_f64();
    let started = Instant::now();
    let mut cached_logits: &[f32] = &[];
    for &t in toks.iter().take(n - 1) {
        cached_logits = session.push_token(m, t);
    }
    let decode_s = started.elapsed().as_secs_f64();

    // The benchmark is only meaningful if the two paths agree bitwise at
    // the last compared position (logits after n-1 pushed tokens).
    assert_eq!(
        naive_logits, cached_logits,
        "cached decode diverged from the oracle"
    );

    Run {
        new_tokens: n,
        naive_s,
        prefill_s,
        decode_s,
    }
}

fn json(args: &Args, prompt_len: usize, runs: &[Run]) -> String {
    let rows: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "{{\"new_tokens\":{},\"naive_s\":{:.6},\"naive_tok_s\":{:.2},",
                    "\"prefill_s\":{:.6},\"decode_s\":{:.6},\"cached_tok_s\":{:.2},",
                    "\"speedup\":{:.2}}}"
                ),
                r.new_tokens,
                r.naive_s,
                r.naive_tok_s(),
                r.prefill_s,
                r.decode_s,
                r.cached_tok_s(),
                r.speedup(),
            )
        })
        .collect();
    format!(
        "{{\"bench\":\"decode\",\"scale\":\"{}\",\"seed\":{},\"threads\":{},\"kernel_tier\":\"{}\",\"prompt_len\":{},\"runs\":[{}]}}\n",
        args.scale,
        args.seed,
        runtime::threads(),
        args.tier,
        prompt_len,
        rows.join(",")
    )
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("decodebench: {e}");
            std::process::exit(2);
        }
    };
    if args.threads > 0 {
        runtime::set_threads(args.threads);
    }
    // Both paths run under the selected tier: the naive oracle through the
    // tape's dispatching matmuls, the session by construction-time pinning.
    // The bitwise gate in measure() still holds — exact and fast are
    // bit-identical on finite data.
    tinynn::kernels::set_kernel_tier(args.tier);
    let cfg = match args.scale.as_str() {
        "tiny" => ModelConfig::tiny(),
        _ => ModelConfig::small(),
    };
    let max_new = cfg.max_seq.saturating_sub(1);
    let m = Lfm::new(cfg, args.seed);
    let p = prompt(&m, args.pad);
    let prompt_len = p.seq_len(&m.cfg);
    println!(
        "decodebench: scale={} prompt_len={prompt_len} threads={} kernel_tier={}",
        args.scale,
        runtime::threads(),
        args.tier,
    );

    // Warm up allocators and the thread pool before timing anything.
    measure(&m, &p, 2);

    let mut runs = Vec::new();
    for &n in &args.steps {
        // At least one prefill + one incremental step, within max_seq.
        let n = n.min(max_new.saturating_sub(prompt_len)).max(2);
        let r = measure(&m, &p, n);
        println!(
            "  new_tokens={:>4}  naive {:>8.1} tok/s ({:.3}s)  cached {:>8.1} tok/s (prefill {:.4}s + decode {:.4}s)  speedup {:>5.2}x",
            r.new_tokens,
            r.naive_tok_s(),
            r.naive_s,
            r.cached_tok_s(),
            r.prefill_s,
            r.decode_s,
            r.speedup(),
        );
        runs.push(r);
    }

    let doc = json(&args, prompt_len, &runs);
    if let Some(path) = &args.out {
        std::fs::write(path, &doc).unwrap_or_else(|e| {
            eprintln!("decodebench: write {path}: {e}");
            std::process::exit(1);
        });
        println!("  wrote {path}");
    } else {
        print!("{doc}");
    }

    // The whole point of the fast path: a worthwhile end-to-end win on
    // every measured length.
    let worst = runs.iter().map(Run::speedup).fold(f64::MAX, f64::min);
    if worst < 1.0 {
        eprintln!("decodebench: cached path slower than naive ({worst:.2}x)");
        std::process::exit(1);
    }
}
