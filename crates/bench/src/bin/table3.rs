//! Regenerate Table III — chain-reasoning ablation (detection).

use bench_suite::context::Corpus;
use bench_suite::corpus_main;
use bench_suite::experiments::ablation::{render_detection, run_variant};
use chain_reason::Variant;

fn main() {
    corpus_main("table3", &[Corpus::Uvsd, Corpus::Rsl], |args, ctx| {
        let rows: Vec<_> = [
            Variant::WithoutChain,
            Variant::WithoutLearnDescribe,
            Variant::Full,
        ]
        .into_iter()
        .map(|v| run_variant(ctx, v, args.faithfulness_samples()))
        .collect();
        render_detection(
            &format!(
                "Table III — chain reasoning ablation, detection ({})",
                ctx.corpus.label()
            ),
            ctx.corpus,
            &rows,
        )
        .print();
    });
}
