//! Regenerate Figure 8 — retrieval-pool size vs accuracy (RSL).

use bench_suite::context::Corpus;
use bench_suite::corpus_main;
use bench_suite::experiments::icl::run_fig8;
use chain_reason::Variant;
use evalkit::table::Table;

fn main() {
    corpus_main("fig8", &[Corpus::Rsl], |_, ctx| {
        let (pl, _) = ctx.train_variant(Variant::Full);
        let fractions = [0.2f32, 0.4, 0.6, 0.8, 1.0];
        let rows = run_fig8(ctx, &pl, &fractions);
        let mut t = Table::new(
            "Figure 8 — training-pool size vs accuracy per retrieval strategy (RSL)",
            &[
                "pool fraction",
                "Random",
                "Retrieve-by-vision",
                "Retrieve-by-description",
            ],
        );
        for &f in &fractions {
            let get = |s| {
                rows.iter()
                    .find(|(ff, ss, _)| *ff == f && *ss == s)
                    .map(|(_, _, a)| format!("{:.2}%", a * 100.0))
                    .unwrap_or_default()
            };
            t.row(vec![
                format!("{:.0}%", f * 100.0),
                get(retrieval::RetrievalStrategy::Random),
                get(retrieval::RetrievalStrategy::ByVision),
                get(retrieval::RetrievalStrategy::ByDescription),
            ]);
        }
        t.print();
        let xs: Vec<f64> = fractions.iter().map(|&f| f as f64).collect();
        let series: Vec<(String, Vec<f64>)> = [
            retrieval::RetrievalStrategy::Random,
            retrieval::RetrievalStrategy::ByVision,
            retrieval::RetrievalStrategy::ByDescription,
        ]
        .into_iter()
        .map(|s| {
            let ys = fractions
                .iter()
                .map(|&f| {
                    rows.iter()
                        .find(|(ff, ss, _)| *ff == f && *ss == s)
                        .map(|(_, _, a)| *a)
                        .unwrap_or(0.0)
                })
                .collect();
            (s.label().to_owned(), ys)
        })
        .collect();
        let svg = evalkit::chart::line_chart(
            "Figure 8 — pool size vs accuracy (RSL)",
            "training-pool fraction",
            "accuracy",
            &xs,
            &series,
        );
        std::fs::create_dir_all("results").ok();
        if std::fs::write("results/fig8.svg", svg).is_ok() {
            println!("wrote results/fig8.svg");
        }
        println!("paper: retrieval-based strategies improve with pool size; Random does not.");
    });
}
