//! Regenerate Figure 7 — similarity separation of helpful vs unhelpful
//! in-context examples under the two embeddings.

use bench_suite::context::Corpus;
use bench_suite::corpus_main;
use bench_suite::experiments::icl::{build_retriever, run_fig7};
use chain_reason::Variant;
use evalkit::table::Table;
use lfm::instructions::IclExample;

fn main() {
    corpus_main("fig7", &[Corpus::Rsl], |args, ctx| {
        let (pl, _) = ctx.train_variant(Variant::Full);
        let (vision, desc) = run_fig7(ctx, &pl, args.samples.unwrap_or(12), 24);
        let mut t = Table::new(
            "Figure 7 — cosine-similarity separation of Helpful vs Unhelpful training samples",
            &[
                "Embedding",
                "helpful mean",
                "unhelpful mean",
                "effect size (Cohen's d)",
            ],
        );
        for (name, s) in [
            ("Retrieve-by-vision", vision),
            ("Retrieve-by-description", desc),
        ] {
            t.row(vec![
                name.into(),
                format!("{:.3}", s.helpful.mean),
                format!("{:.3}", s.unhelpful.mean),
                format!("{:.2}", s.effect_size()),
            ]);
        }
        t.print();

        // Emit the two histogram panels as SVGs (the figure itself).
        let retriever = build_retriever(&pl, &ctx.train, args.seed ^ 0x1C1);
        let mut vis_h = Vec::new();
        let mut vis_u = Vec::new();
        let mut des_h = Vec::new();
        let mut des_u = Vec::new();
        for v in ctx.test.iter().take(args.samples.unwrap_or(12)) {
            let q = pl.describe(v, 0.0, v.id as u64);
            let vs = retriever.visual_similarities(v);
            let dsim = retriever.description_similarities(q);
            for (j, ex) in ctx.train.iter().enumerate().take(24) {
                let example = IclExample {
                    video: ex,
                    description: retriever.pool_descriptions[j],
                    label: ex.label,
                };
                let helpful =
                    pl.assess_with_examples(v, q, &[example], 0.0, args.seed ^ (j as u64))
                        == v.label;
                if helpful {
                    vis_h.push(vs[j]);
                    des_h.push(dsim[j]);
                } else {
                    vis_u.push(vs[j]);
                    des_u.push(dsim[j]);
                }
            }
        }
        std::fs::create_dir_all("results").ok();
        for (name, h, u) in [
            ("fig7a_vision", &vis_h, &vis_u),
            ("fig7b_description", &des_h, &des_u),
        ] {
            if h.is_empty() && u.is_empty() {
                continue;
            }
            let svg = evalkit::chart::paired_histogram(
                &format!("Figure 7 — {} similarities", name),
                "cosine similarity",
                ("Helpful", h),
                ("Unhelpful", u),
                14,
            );
            let path = format!("results/{name}.svg");
            if std::fs::write(&path, svg).is_ok() {
                println!("wrote {path}");
            }
        }
        println!("paper: description embeddings separate Helpful from Unhelpful more cleanly than visual ones.");
    });
}
