//! Regenerate Table VII — in-context example retrieval methods.

use bench_suite::context::Corpus;
use bench_suite::corpus_main;
use bench_suite::experiments::icl::{render_table7, run_table7};

fn main() {
    corpus_main("table7", &[Corpus::Uvsd, Corpus::Rsl], |_, ctx| {
        let (_, rows) = run_table7(ctx);
        render_table7(
            &format!(
                "Table VII — in-context example retrieval ({})",
                ctx.corpus.label()
            ),
            ctx.corpus,
            &rows,
        )
        .print();
    });
}
