//! Regenerate Table VII — in-context example retrieval methods.

use bench_suite::context::{Context, Corpus};
use bench_suite::experiments::icl::{render_table7, run_table7};
use bench_suite::CliArgs;

fn main() {
    let args = CliArgs::from_env();
    for corpus in [Corpus::Uvsd, Corpus::Rsl] {
        eprintln!("[table7] running {} at {:?}…", corpus.label(), args.scale);
        let ctx = Context::prepare(corpus, args.scale, args.seed);
        let (_, rows) = run_table7(&ctx);
        render_table7(
            &format!(
                "Table VII — in-context example retrieval ({})",
                corpus.label()
            ),
            corpus,
            &rows,
        )
        .print();
    }
}
