//! Regenerate Table V — self-refine ablation (detection).

use bench_suite::context::{Context, Corpus};
use bench_suite::experiments::ablation::{render_detection, run_variant};
use bench_suite::CliArgs;
use chain_reason::Variant;

fn main() {
    let args = CliArgs::from_env();
    for corpus in [Corpus::Uvsd, Corpus::Rsl] {
        eprintln!("[table5] running {} at {:?}…", corpus.label(), args.scale);
        let ctx = Context::prepare(corpus, args.scale, args.seed);
        let rows: Vec<_> = [
            Variant::WithoutRefine,
            Variant::WithoutReflection,
            Variant::Full,
        ]
        .into_iter()
        .map(|v| run_variant(&ctx, v, args.faithfulness_samples()))
        .collect();
        render_detection(
            &format!(
                "Table V — self-refine ablation, detection ({})",
                corpus.label()
            ),
            corpus,
            &rows,
        )
        .print();
    }
}
