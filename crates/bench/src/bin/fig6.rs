//! Regenerate Figure 6 — per-sample explanation latency.

use bench_suite::context::Corpus;
use bench_suite::corpus_main;
use bench_suite::experiments::explainer::{fig6_mean, render_fig6, run_fig6, Explainer};

fn main() {
    corpus_main("fig6", &[Corpus::Uvsd], |args, ctx| {
        let rows = run_fig6(ctx, args.samples.unwrap_or(3));
        render_fig6(&rows).print();
        let bars: Vec<(String, f64)> = rows
            .iter()
            .map(|(e, s)| (e.label().to_owned(), fig6_mean(s).max(1e-4)))
            .collect();
        let svg = evalkit::chart::bar_chart(
            "Figure 6 — per-sample explanation latency (log scale)",
            "seconds (log10)",
            &bars,
            true,
        );
        std::fs::create_dir_all("results").ok();
        if std::fs::write("results/fig6.svg", svg).is_ok() {
            println!("wrote results/fig6.svg");
        }
        // The headline claim is the ratio, not the absolute seconds.
        if let (Some(ours), Some(sobol)) = (
            rows.iter().find(|r| r.0 == Explainer::Ours),
            rows.iter().find(|r| r.0 == Explainer::Sobol),
        ) {
            println!(
                "speedup of Ours over SOBOL: {:.1}x (paper: 63x)",
                fig6_mean(&sobol.1) / fig6_mean(&ours.1).max(1e-9)
            );
        }
    });
}
