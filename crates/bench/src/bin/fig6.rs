//! Regenerate Figure 6 — per-sample explanation latency.

use bench_suite::context::{Context, Corpus};
use bench_suite::experiments::explainer::{render_fig6, run_fig6};
use bench_suite::CliArgs;

fn main() {
    let args = CliArgs::from_env();
    eprintln!("[fig6] running UVSD at {:?}…", args.scale);
    let ctx = Context::prepare(Corpus::Uvsd, args.scale, args.seed);
    let rows = run_fig6(&ctx, args.samples.unwrap_or(3));
    render_fig6(&rows).print();
    let bars: Vec<(String, f64)> = rows
        .iter()
        .map(|(e, s)| (e.label().to_owned(), s.max(1e-4)))
        .collect();
    let svg = evalkit::chart::bar_chart(
        "Figure 6 — per-sample explanation latency (log scale)",
        "seconds (log10)",
        &bars,
        true,
    );
    std::fs::create_dir_all("results").ok();
    if std::fs::write("results/fig6.svg", svg).is_ok() {
        println!("wrote results/fig6.svg");
    }
    // The headline claim is the ratio, not the absolute seconds.
    if let (Some(ours), Some(sobol)) = (
        rows.iter()
            .find(|r| r.0 == bench_suite::experiments::explainer::Explainer::Ours),
        rows.iter()
            .find(|r| r.0 == bench_suite::experiments::explainer::Explainer::Sobol),
    ) {
        println!(
            "speedup of Ours over SOBOL: {:.1}x (paper: 63x)",
            sobol.1 / ours.1.max(1e-9)
        );
    }
}
