//! Train the serving registry's pipelines and checkpoint them as `SRCR1`
//! artifacts — the producer side of `serve --model-dir`.
//!
//! ```text
//! artifacts --save-artifacts DIR [--scale smoke|default|full] [--seed N]
//!           [--threads N]
//! ```
//!
//! Trains the full method (`Variant::Full`) on both corpora at the chosen
//! scale and writes `uvsd_sim.srcr` and `rsl_sim.srcr` into the directory
//! (default `artifacts/`).  A server booted with `serve --model-dir DIR`
//! then loads them with zero training at startup.

use std::path::PathBuf;
use std::time::Instant;

use bench_suite::context::Corpus;
use bench_suite::corpus_main;
use chain_reason::Variant;

fn main() {
    let args = corpus_main("artifacts", &[Corpus::Uvsd, Corpus::Rsl], |args, ctx| {
        let dir: PathBuf = args
            .save_artifacts
            .clone()
            .unwrap_or_else(|| "artifacts".into());
        let started = Instant::now();
        let (pipeline, _) = ctx.train_variant(Variant::Full);
        match ctx.save_artifact(&dir, &pipeline, Variant::Full) {
            Ok(path) => eprintln!(
                "[artifacts] saved {} ({:.1}s training)",
                path.display(),
                started.elapsed().as_secs_f64()
            ),
            Err(e) => {
                eprintln!("[artifacts] {e}");
                std::process::exit(1);
            }
        }
    });
    let dir = args.save_artifacts.unwrap_or_else(|| "artifacts".into());
    println!("artifacts ready in {}", dir.display());
}
