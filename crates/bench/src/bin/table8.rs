//! Regenerate Table VIII — test-time refinement of off-the-shelf models.

use bench_suite::context::{Context, Corpus};
use bench_suite::experiments::testtime::{render_table8, run_table8};
use bench_suite::CliArgs;

fn main() {
    let args = CliArgs::from_env();
    for corpus in [Corpus::Uvsd, Corpus::Rsl] {
        eprintln!("[table8] running {} at {:?}…", corpus.label(), args.scale);
        let ctx = Context::prepare(corpus, args.scale, args.seed);
        let rows = run_table8(&ctx);
        render_table8(
            &format!(
                "Table VIII — off-the-shelf models + our method ({})",
                corpus.label()
            ),
            corpus,
            &rows,
        )
        .print();
    }
}
