//! Regenerate Table VIII — test-time refinement of off-the-shelf models.

use bench_suite::context::Corpus;
use bench_suite::corpus_main;
use bench_suite::experiments::testtime::{render_table8, run_table8};

fn main() {
    corpus_main("table8", &[Corpus::Uvsd, Corpus::Rsl], |_, ctx| {
        let rows = run_table8(ctx);
        render_table8(
            &format!(
                "Table VIII — off-the-shelf models + our method ({})",
                ctx.corpus.label()
            ),
            ctx.corpus,
            &rows,
        )
        .print();
    });
}
