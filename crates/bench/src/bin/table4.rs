//! Regenerate Table IV — chain-reasoning ablation (rationale faithfulness).

use bench_suite::context::{Context, Corpus};
use bench_suite::experiments::ablation::{render_faithfulness, run_variant};
use bench_suite::CliArgs;
use chain_reason::Variant;

fn main() {
    let args = CliArgs::from_env();
    for corpus in [Corpus::Uvsd, Corpus::Rsl] {
        eprintln!("[table4] running {} at {:?}…", corpus.label(), args.scale);
        let ctx = Context::prepare(corpus, args.scale, args.seed);
        let rows: Vec<_> = [
            Variant::WithoutChain,
            Variant::WithoutLearnDescribe,
            Variant::Full,
        ]
        .into_iter()
        .map(|v| run_variant(&ctx, v, args.faithfulness_samples()))
        .collect();
        render_faithfulness(
            &format!(
                "Table IV — chain reasoning ablation, Top-k drops ({})",
                corpus.label()
            ),
            corpus,
            &rows,
        )
        .print();
    }
}
