//! Regenerate Table IV — chain-reasoning ablation (rationale faithfulness).

use bench_suite::context::Corpus;
use bench_suite::corpus_main;
use bench_suite::experiments::ablation::{render_faithfulness, run_variant};
use chain_reason::Variant;

fn main() {
    corpus_main("table4", &[Corpus::Uvsd, Corpus::Rsl], |args, ctx| {
        let rows: Vec<_> = [
            Variant::WithoutChain,
            Variant::WithoutLearnDescribe,
            Variant::Full,
        ]
        .into_iter()
        .map(|v| run_variant(ctx, v, args.faithfulness_samples()))
        .collect();
        render_faithfulness(
            &format!(
                "Table IV — chain reasoning ablation, Top-k drops ({})",
                ctx.corpus.label()
            ),
            ctx.corpus,
            &rows,
        )
        .print();
    });
}
