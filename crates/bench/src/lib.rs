//! `bench-suite` — the experiment harness.
//!
//! One binary per paper table/figure (`src/bin/table1.rs` …), each a thin
//! wrapper over a library runner in [`experiments`] so integration tests
//! can drive the same code at smoke scale.  Micro-benchmarks for the
//! component costs live in `benches/`.
//!
//! Every binary accepts `--scale smoke|default|full` (default `default`),
//! `--seed N`, `--threads N` (evaluation worker-pool size, `0` = all
//! cores; results are bit-identical for any value) and, where relevant,
//! `--samples N` caps; each prints the measured numbers next to the
//! paper's reported values.

pub mod args;
pub mod context;
pub mod experiments;

pub use args::{corpus_main, CliArgs};
// One config construction path across `core`, `serve` and `bench`.
pub use chain_reason::{ConfigError, PipelineConfig, PipelineConfigBuilder};
