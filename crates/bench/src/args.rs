//! Minimal CLI parsing and the shared `main`-fn skeleton of the table and
//! figure binaries.

use videosynth::dataset::Scale;

use crate::context::{Context, Corpus};

/// Common experiment options.
#[derive(Clone, Debug)]
pub struct CliArgs {
    /// Corpus scale.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Cap on evaluated test samples for the expensive protocols
    /// (faithfulness / explainers); `None` = scale default.
    pub samples: Option<usize>,
    /// Worker-pool size for the evaluation runtime; `0` = one worker per
    /// available core.  Results are bit-identical for any value.
    pub threads: usize,
    /// Save trained `Ours` pipelines as `SRCR1` artifacts into this
    /// directory (for `serve --model-dir`); `None` = don't save.
    pub save_artifacts: Option<std::path::PathBuf>,
}

impl Default for CliArgs {
    fn default() -> Self {
        CliArgs {
            scale: Scale::Default,
            seed: 7,
            samples: None,
            threads: 0,
            save_artifacts: None,
        }
    }
}

impl CliArgs {
    /// Parse from an iterator of arguments (without the program name).
    /// Unknown flags abort with a usage message.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = CliArgs::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    let v = it.next().ok_or("--scale needs a value")?;
                    out.scale = Scale::parse(&v)
                        .ok_or_else(|| format!("bad scale {v:?} (smoke|default|full)"))?;
                }
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    out.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
                }
                "--samples" => {
                    let v = it.next().ok_or("--samples needs a value")?;
                    out.samples = Some(v.parse().map_err(|_| format!("bad sample cap {v:?}"))?);
                }
                "--threads" => {
                    let v = it.next().ok_or("--threads needs a value")?;
                    out.threads = v.parse().map_err(|_| format!("bad thread count {v:?}"))?;
                }
                "--save-artifacts" => {
                    let v = it.next().ok_or("--save-artifacts needs a directory")?;
                    out.save_artifacts = Some(v.into());
                }
                "--help" | "-h" => {
                    return Err(
                        "usage: --scale smoke|default|full --seed N [--samples N] [--threads N] \
                         [--save-artifacts DIR]"
                            .into(),
                    )
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(out)
    }

    /// Parse from the process arguments, exiting with the message on error.
    /// Applies `--threads` to the global evaluation runtime, so every table
    /// binary picks it up through this one entry point.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(a) => {
                a.apply_threads();
                a
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }

    /// Configure the global worker pool from `threads`.
    pub fn apply_threads(&self) {
        runtime::set_threads(self.threads);
    }

    /// The faithfulness-protocol sample cap for the chosen scale.
    pub fn faithfulness_samples(&self) -> usize {
        self.samples.unwrap_or(match self.scale {
            Scale::Smoke => 10,
            Scale::Default => 24,
            Scale::Full => 80,
        })
    }
}

/// The shared skeleton of every table/figure binary: parse the process
/// arguments once, then for each corpus print the progress banner, prepare
/// the experiment [`Context`] and hand it to `f`.
///
/// Returns the parsed arguments so callers can render cross-corpus output
/// (for example Table I collects one section per corpus and prints a single
/// combined table after the loop).
pub fn corpus_main(
    tag: &str,
    corpora: &[Corpus],
    mut f: impl FnMut(&CliArgs, &Context),
) -> CliArgs {
    let args = CliArgs::from_env();
    for &corpus in corpora {
        eprintln!("[{tag}] running {} at {:?}…", corpus.label(), args.scale);
        let ctx = Context::prepare(corpus, args.scale, args.seed);
        f(&args, &ctx);
    }
    args
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Result<CliArgs, String> {
        CliArgs::parse(v.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.scale, Scale::Default);
        assert_eq!(a.seed, 7);
        assert_eq!(a.samples, None);
        assert_eq!(a.threads, 0, "default = one worker per core");
        assert_eq!(a.save_artifacts, None);
    }

    #[test]
    fn full_parse() {
        let a = parse(&[
            "--scale",
            "smoke",
            "--seed",
            "42",
            "--samples",
            "5",
            "--threads",
            "3",
            "--save-artifacts",
            "ckpts",
        ])
        .unwrap();
        assert_eq!(a.scale, Scale::Smoke);
        assert_eq!(a.seed, 42);
        assert_eq!(a.samples, Some(5));
        assert_eq!(a.faithfulness_samples(), 5);
        assert_eq!(a.threads, 3);
        assert_eq!(a.save_artifacts.as_deref(), Some("ckpts".as_ref()));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--scale", "huge"]).is_err());
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--wat"]).is_err());
        assert!(parse(&["--threads", "lots"]).is_err());
        assert!(parse(&["--threads"]).is_err());
        assert!(parse(&["--save-artifacts"]).is_err());
    }

    #[test]
    fn scale_dependent_caps() {
        let a = parse(&["--scale", "smoke"]).unwrap();
        assert_eq!(a.faithfulness_samples(), 10);
        let b = parse(&["--scale", "full"]).unwrap();
        assert_eq!(b.faithfulness_samples(), 80);
    }
}
