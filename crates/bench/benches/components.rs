//! Criterion micro-benchmarks of the per-component costs that Figure 6's
//! latency comparison is built from: one model forward/generation, one
//! masked evaluation for the perturbation explainers, SLIC segmentation,
//! and one training step.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use chain_reason::{PipelineConfig, StressPipeline};
use lfm::instructions::{assess_prompt, describe_prompt};
use lfm::{Lfm, ModelConfig};
use videosynth::dataset::{Dataset, DatasetProfile, Scale};
use videosynth::perturb::mask_segments;
use videosynth::slic::slic;

fn setup() -> (StressPipeline, Dataset) {
    let model = Lfm::new(ModelConfig::small(), 7);
    let pl = StressPipeline::new(model, PipelineConfig::default_experiment());
    let ds = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), 5);
    (pl, ds)
}

fn bench_components(c: &mut Criterion) {
    let (pl, ds) = setup();
    let v = &ds.samples[0];
    let fe = v.render_frame(v.most_expressive_frame());
    let seg = slic(&fe, 64, 0.1, 5);

    c.bench_function("render_frame", |b| {
        b.iter(|| black_box(v.render_frame(black_box(3))))
    });

    c.bench_function("slic_64_segments", |b| {
        b.iter(|| black_box(slic(black_box(&fe), 64, 0.1, 5)))
    });

    c.bench_function("assess_forward", |b| {
        let p = assess_prompt(&pl.model, v, v.apex_aus());
        b.iter(|| black_box(pl.model.next_token_distribution(black_box(&p))))
    });

    c.bench_function("describe_generation", |b| {
        let p = describe_prompt(&pl.model, v);
        b.iter(|| black_box(lfm::grammar::generate_description(&pl.model, black_box(&p), 0.0, 1)))
    });

    c.bench_function("masked_eval_unit", |b| {
        // One perturbation-explainer evaluation: mask + assess forward.
        let p_desc = v.apex_aus();
        b.iter(|| {
            let masked = mask_segments(&fe, &seg, &[0, 5, 9], 0.5);
            let (_, fl) = v.expressive_pair();
            let p = lfm::instructions::assess_prompt_from_images(&pl.model, &masked, &fl, p_desc);
            black_box(pl.model.next_token_distribution(&p))
        })
    });

    c.bench_function("full_chain_predict", |b| {
        b.iter(|| black_box(pl.predict(black_box(v), 1)))
    });
}

fn bench_training(c: &mut Criterion) {
    use lfm::train::{sft, SftExample, TrainConfig};
    let (pl, ds) = setup();
    let v = &ds.samples[0];
    c.bench_function("sft_step_one_example", |b| {
        let data = vec![SftExample {
            prompt: describe_prompt(&pl.model, v),
            answer: lfm::instructions::description_answer(&pl.model.vocab, v.apex_aus()),
        }];
        let cfg = TrainConfig { epochs: 1, ..Default::default() };
        b.iter_batched(
            || pl.model.clone(),
            |mut m| black_box(sft(&mut m, &data, &cfg)),
            criterion::BatchSize::LargeInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_components, bench_training
}
criterion_main!(benches);
