//! Micro-benchmarks of the per-component costs that Figure 6's latency
//! comparison is built from: one model forward/generation, one masked
//! evaluation for the perturbation explainers, SLIC segmentation, and one
//! training step.
//!
//! A plain `main` harness (`cargo bench -p bench-suite`): each component is
//! timed with [`evalkit::timing::mean_seconds`], which runs one untimed
//! warm-up call before the timed repetitions.

use std::hint::black_box;

use chain_reason::{PipelineConfig, StressPipeline};
use evalkit::timing::{fmt_seconds, mean_seconds};
use lfm::instructions::{assess_prompt, describe_prompt};
use lfm::{Lfm, ModelConfig};
use videosynth::dataset::{Dataset, DatasetProfile, Scale};
use videosynth::perturb::mask_segments;
use videosynth::slic::slic;

fn setup() -> (StressPipeline, Dataset) {
    let model = Lfm::new(ModelConfig::small(), 7);
    let pl = StressPipeline::new(model, PipelineConfig::default_experiment());
    let ds = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), 5);
    (pl, ds)
}

fn report<F: FnMut()>(name: &str, reps: usize, f: F) {
    let mean = mean_seconds(reps, f);
    println!("{name:<24} {:>10}  ({reps} reps)", fmt_seconds(mean));
}

fn main() {
    let (pl, ds) = setup();
    let v = &ds.samples[0];
    let fe = v.render_frame(v.most_expressive_frame());
    let seg = slic(&fe, 64, 0.1, 5);

    println!("component                 mean/call");

    report("render_frame", 50, || {
        black_box(v.render_frame(black_box(3)));
    });

    report("slic_64_segments", 20, || {
        black_box(slic(black_box(&fe), 64, 0.1, 5));
    });

    let p_assess = assess_prompt(&pl.model, v, v.apex_aus());
    report("assess_forward", 20, || {
        black_box(pl.model.next_token_distribution(black_box(&p_assess)));
    });

    let p_desc = describe_prompt(&pl.model, v);
    report("describe_generation", 10, || {
        black_box(lfm::grammar::generate_description(
            &pl.model,
            black_box(&p_desc),
            0.0,
            1,
        ));
    });

    // One perturbation-explainer evaluation: mask + assess forward.
    let apex = v.apex_aus();
    report("masked_eval_unit", 10, || {
        let masked = mask_segments(&fe, &seg, &[0, 5, 9], 0.5);
        let (_, fl) = v.expressive_pair();
        let p = lfm::instructions::assess_prompt_from_images(&pl.model, &masked, &fl, apex);
        black_box(pl.model.next_token_distribution(&p));
    });

    report("full_chain_predict", 10, || {
        black_box(pl.predict(black_box(v), 1));
    });

    {
        use lfm::train::{sft, SftExample, TrainConfig};
        let data = vec![SftExample {
            prompt: describe_prompt(&pl.model, v),
            answer: lfm::instructions::description_answer(&pl.model.vocab, v.apex_aus()),
        }];
        let cfg = TrainConfig {
            epochs: 1,
            ..Default::default()
        };
        report("sft_step_one_example", 5, || {
            let mut m = pl.model.clone();
            black_box(sft(&mut m, &data, &cfg));
        });
    }
}
