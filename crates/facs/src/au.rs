//! The 12 DISFA+ facial Action Units and dense/sparse activation containers.

use std::fmt;

use crate::region::FacialRegion;

/// Number of action units annotated in DISFA+ and used throughout the paper.
pub const NUM_AUS: usize = 12;

/// The 12 facial Action Units labelled in DISFA+ (§IV-A of the paper).
///
/// The discriminant is the AU's *index* (0..12), not its FACS number; use
/// [`ActionUnit::facs_number`] for the latter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum ActionUnit {
    /// AU1 — inner brow raiser (frontalis, pars medialis).
    InnerBrowRaiser = 0,
    /// AU2 — outer brow raiser (frontalis, pars lateralis).
    OuterBrowRaiser = 1,
    /// AU4 — brow lowerer (corrugator supercilii).
    BrowLowerer = 2,
    /// AU5 — upper lid raiser (levator palpebrae superioris).
    UpperLidRaiser = 3,
    /// AU6 — cheek raiser (orbicularis oculi, pars orbitalis).
    CheekRaiser = 4,
    /// AU9 — nose wrinkler (levator labii superioris alaeque nasi).
    NoseWrinkler = 5,
    /// AU12 — lip corner puller (zygomaticus major).
    LipCornerPuller = 6,
    /// AU15 — lip corner depressor (depressor anguli oris).
    LipCornerDepressor = 7,
    /// AU17 — chin raiser (mentalis).
    ChinRaiser = 8,
    /// AU20 — lip stretcher (risorius).
    LipStretcher = 9,
    /// AU25 — lips part (depressor labii inferioris relaxation).
    LipsPart = 10,
    /// AU26 — jaw drop (masseter relaxation).
    JawDrop = 11,
}

/// All 12 action units in index order.
pub const ALL_AUS: [ActionUnit; NUM_AUS] = [
    ActionUnit::InnerBrowRaiser,
    ActionUnit::OuterBrowRaiser,
    ActionUnit::BrowLowerer,
    ActionUnit::UpperLidRaiser,
    ActionUnit::CheekRaiser,
    ActionUnit::NoseWrinkler,
    ActionUnit::LipCornerPuller,
    ActionUnit::LipCornerDepressor,
    ActionUnit::ChinRaiser,
    ActionUnit::LipStretcher,
    ActionUnit::LipsPart,
    ActionUnit::JawDrop,
];

impl ActionUnit {
    /// Dense index in `0..NUM_AUS`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Construct from a dense index.
    pub fn from_index(idx: usize) -> Option<Self> {
        ALL_AUS.get(idx).copied()
    }

    /// Official FACS number (AU1, AU2, AU4, ...).
    pub fn facs_number(self) -> u8 {
        match self {
            Self::InnerBrowRaiser => 1,
            Self::OuterBrowRaiser => 2,
            Self::BrowLowerer => 4,
            Self::UpperLidRaiser => 5,
            Self::CheekRaiser => 6,
            Self::NoseWrinkler => 9,
            Self::LipCornerPuller => 12,
            Self::LipCornerDepressor => 15,
            Self::ChinRaiser => 17,
            Self::LipStretcher => 20,
            Self::LipsPart => 25,
            Self::JawDrop => 26,
        }
    }

    /// Construct from an official FACS number.
    pub fn from_facs_number(n: u8) -> Option<Self> {
        ALL_AUS.iter().copied().find(|au| au.facs_number() == n)
    }

    /// Short descriptive name as used in the FACS manual.
    pub fn name(self) -> &'static str {
        match self {
            Self::InnerBrowRaiser => "inner brow raiser",
            Self::OuterBrowRaiser => "outer brow raiser",
            Self::BrowLowerer => "brow lowerer",
            Self::UpperLidRaiser => "upper lid raiser",
            Self::CheekRaiser => "cheek raiser",
            Self::NoseWrinkler => "nose wrinkler",
            Self::LipCornerPuller => "lip corner puller",
            Self::LipCornerDepressor => "lip corner depressor",
            Self::ChinRaiser => "chin raiser",
            Self::LipStretcher => "lip stretcher",
            Self::LipsPart => "lips part",
            Self::JawDrop => "jaw drop",
        }
    }

    /// The facial region the AU's movement is localised in.  Used to map a
    /// highlighted rationale back onto image segments (§III-D).
    pub fn region(self) -> FacialRegion {
        match self {
            Self::InnerBrowRaiser | Self::OuterBrowRaiser | Self::BrowLowerer => {
                FacialRegion::Eyebrow
            }
            Self::UpperLidRaiser => FacialRegion::Eyelid,
            Self::CheekRaiser => FacialRegion::Cheek,
            Self::NoseWrinkler => FacialRegion::Nose,
            Self::LipCornerPuller
            | Self::LipCornerDepressor
            | Self::LipStretcher
            | Self::LipsPart => FacialRegion::Mouth,
            Self::ChinRaiser | Self::JawDrop => FacialRegion::Jaw,
        }
    }
}

impl fmt::Display for ActionUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AU{} ({})", self.facs_number(), self.name())
    }
}

/// A set of active action units, stored as a 12-bit mask.
///
/// This is the `a ∈ {0,1}^12` annotation of §IV-A and the canonical payload
/// of a facial-expression description `E`.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct AuSet(u16);

impl AuSet {
    /// The empty (neutral-face) set.
    pub const EMPTY: AuSet = AuSet(0);
    /// Every AU active.
    pub const FULL: AuSet = AuSet((1 << NUM_AUS as u16) - 1);

    /// Build from an iterator of action units.
    pub fn from_aus<I: IntoIterator<Item = ActionUnit>>(aus: I) -> Self {
        let mut s = Self::EMPTY;
        for au in aus {
            s.insert(au);
        }
        s
    }

    /// Build from a raw 12-bit mask.  Bits above `NUM_AUS` are truncated.
    pub fn from_bits(bits: u16) -> Self {
        AuSet(bits & Self::FULL.0)
    }

    /// Raw 12-bit mask.
    #[inline]
    pub fn bits(self) -> u16 {
        self.0
    }

    /// Whether `au` is active.
    #[inline]
    pub fn contains(self, au: ActionUnit) -> bool {
        self.0 & (1 << au.index()) != 0
    }

    /// Activate `au`.
    #[inline]
    pub fn insert(&mut self, au: ActionUnit) {
        self.0 |= 1 << au.index();
    }

    /// Deactivate `au`.
    #[inline]
    pub fn remove(&mut self, au: ActionUnit) {
        self.0 &= !(1 << au.index());
    }

    /// Toggle `au`.
    #[inline]
    pub fn toggle(&mut self, au: ActionUnit) {
        self.0 ^= 1 << au.index();
    }

    /// Number of active AUs.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether no AU is active.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterate over the active AUs in index order.
    pub fn iter(self) -> impl Iterator<Item = ActionUnit> {
        ALL_AUS.into_iter().filter(move |au| self.contains(*au))
    }

    /// Set union.
    pub fn union(self, other: AuSet) -> AuSet {
        AuSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersection(self, other: AuSet) -> AuSet {
        AuSet(self.0 & other.0)
    }

    /// AUs in `self` but not in `other`.
    pub fn difference(self, other: AuSet) -> AuSet {
        AuSet(self.0 & !other.0)
    }

    /// Symmetric difference — the AUs on which two descriptions disagree.
    pub fn symmetric_difference(self, other: AuSet) -> AuSet {
        AuSet(self.0 ^ other.0)
    }

    /// Hamming distance between two activation sets.
    pub fn hamming(self, other: AuSet) -> usize {
        (self.0 ^ other.0).count_ones() as usize
    }

    /// Dense `{0,1}^12` vector, as fed to the baselines' feature pipelines.
    pub fn to_dense(self) -> [f32; NUM_AUS] {
        let mut v = [0.0; NUM_AUS];
        for au in self.iter() {
            v[au.index()] = 1.0;
        }
        v
    }

    /// Threshold a dense intensity vector at `thresh` into an activation set.
    pub fn from_dense(v: &[f32; NUM_AUS], thresh: f32) -> Self {
        let mut s = Self::EMPTY;
        for (i, &x) in v.iter().enumerate() {
            if x >= thresh {
                s.insert(ALL_AUS[i]);
            }
        }
        s
    }
}

impl fmt::Debug for AuSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AuSet{{")?;
        let mut first = true;
        for au in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "AU{}", au.facs_number())?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl FromIterator<ActionUnit> for AuSet {
    fn from_iter<T: IntoIterator<Item = ActionUnit>>(iter: T) -> Self {
        Self::from_aus(iter)
    }
}

/// Dense per-AU intensity vector in `[0, 1]^12`.
///
/// The world model produces continuous intensities; descriptions quantise
/// them to an [`AuSet`] via a threshold, mirroring how DISFA's 0–5 intensity
/// codes are binarised for occurrence prediction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AuVector(pub [f32; NUM_AUS]);

impl AuVector {
    /// The all-zero (neutral) intensity vector.
    pub fn zeros() -> Self {
        AuVector([0.0; NUM_AUS])
    }

    /// Intensity of `au`.
    #[inline]
    pub fn get(&self, au: ActionUnit) -> f32 {
        self.0[au.index()]
    }

    /// Set intensity of `au` (clamped to `[0, 1]`).
    #[inline]
    pub fn set(&mut self, au: ActionUnit, v: f32) {
        self.0[au.index()] = v.clamp(0.0, 1.0);
    }

    /// Binarise at `thresh`.
    pub fn threshold(&self, thresh: f32) -> AuSet {
        AuSet::from_dense(&self.0, thresh)
    }

    /// Total activation mass — the "expressiveness" score used to pick the
    /// most/least expressive frames (Zhang et al., §IV-H).
    pub fn expressiveness(&self) -> f32 {
        self.0.iter().sum()
    }

    /// Elementwise linear interpolation towards `other`.
    pub fn lerp(&self, other: &AuVector, t: f32) -> AuVector {
        let mut out = [0.0; NUM_AUS];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.0[i] + (other.0[i] - self.0[i]) * t;
        }
        AuVector(out)
    }
}

impl Default for AuVector {
    fn default() -> Self {
        Self::zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_round_trip() {
        for (i, au) in ALL_AUS.iter().enumerate() {
            assert_eq!(au.index(), i);
            assert_eq!(ActionUnit::from_index(i), Some(*au));
        }
        assert_eq!(ActionUnit::from_index(NUM_AUS), None);
    }

    #[test]
    fn facs_numbers_round_trip_and_match_disfa() {
        let expected = [1u8, 2, 4, 5, 6, 9, 12, 15, 17, 20, 25, 26];
        for (au, n) in ALL_AUS.iter().zip(expected) {
            assert_eq!(au.facs_number(), n);
            assert_eq!(ActionUnit::from_facs_number(n), Some(*au));
        }
        assert_eq!(ActionUnit::from_facs_number(3), None);
    }

    #[test]
    fn set_insert_remove_contains() {
        let mut s = AuSet::EMPTY;
        assert!(s.is_empty());
        s.insert(ActionUnit::BrowLowerer);
        s.insert(ActionUnit::LipsPart);
        assert!(s.contains(ActionUnit::BrowLowerer));
        assert!(!s.contains(ActionUnit::CheekRaiser));
        assert_eq!(s.len(), 2);
        s.remove(ActionUnit::BrowLowerer);
        assert!(!s.contains(ActionUnit::BrowLowerer));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn set_algebra() {
        let a = AuSet::from_aus([ActionUnit::InnerBrowRaiser, ActionUnit::BrowLowerer]);
        let b = AuSet::from_aus([ActionUnit::BrowLowerer, ActionUnit::JawDrop]);
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.intersection(b).len(), 1);
        assert_eq!(a.difference(b).len(), 1);
        assert_eq!(a.symmetric_difference(b).len(), 2);
        assert_eq!(a.hamming(b), 2);
        assert_eq!(a.hamming(a), 0);
    }

    #[test]
    fn dense_round_trip() {
        let s = AuSet::from_aus([ActionUnit::CheekRaiser, ActionUnit::LipCornerPuller]);
        let d = s.to_dense();
        assert_eq!(AuSet::from_dense(&d, 0.5), s);
    }

    #[test]
    fn full_set_has_all() {
        assert_eq!(AuSet::FULL.len(), NUM_AUS);
        for au in ALL_AUS {
            assert!(AuSet::FULL.contains(au));
        }
    }

    #[test]
    fn from_bits_truncates() {
        let s = AuSet::from_bits(u16::MAX);
        assert_eq!(s, AuSet::FULL);
    }

    #[test]
    fn vector_clamp_and_expressiveness() {
        let mut v = AuVector::zeros();
        v.set(ActionUnit::BrowLowerer, 2.0);
        assert_eq!(v.get(ActionUnit::BrowLowerer), 1.0);
        v.set(ActionUnit::JawDrop, -1.0);
        assert_eq!(v.get(ActionUnit::JawDrop), 0.0);
        assert!((v.expressiveness() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn vector_lerp_midpoint() {
        let a = AuVector::zeros();
        let mut b = AuVector::zeros();
        b.set(ActionUnit::LipsPart, 1.0);
        let mid = a.lerp(&b, 0.5);
        assert!((mid.get(ActionUnit::LipsPart) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn every_au_has_a_region() {
        // Smoke: region() is total and regions partition sensibly.
        for au in ALL_AUS {
            let _ = au.region();
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", ActionUnit::BrowLowerer), "AU4 (brow lowerer)");
        let s = AuSet::from_aus([ActionUnit::InnerBrowRaiser, ActionUnit::JawDrop]);
        assert_eq!(format!("{s:?}"), "AuSet{AU1, AU26}");
    }
}
