//! Facial Action Coding System (FACS) substrate.
//!
//! The paper's reasoning chain is grounded in the psychology practice of
//! decomposing facial expressions into *Action Units* (AUs) and reading
//! psychological state off AU co-occurrence (Cohn, Ambadar & Ekman 2007;
//! CASME II).  This crate provides the shared vocabulary every other crate
//! builds on:
//!
//! * the 12 DISFA+ action units the paper instruction-tunes on ([`ActionUnit`]);
//! * the facial regions each AU lives in ([`FacialRegion`]) together with a
//!   canonical pixel layout on a 96×96 face (the input resolution of §IV-H);
//! * a canonical 49-point facial-landmark layout ([`landmarks`]) used by the
//!   Gao et al. baseline and by rationale→segment localisation;
//! * the *description language* of §III-B / §IV-A: a deterministic, invertible
//!   mapping between an AU activation set and the natural-language template
//!   the model generates ([`describe`]);
//! * stress-relevance priors for each AU ([`stress`]), the domain knowledge
//!   (Viegas et al. 2018, Giannakakis et al. 2020) that the synthetic world
//!   model in `videosynth` uses to couple latent stress to AU activity.

pub mod au;
pub mod describe;
pub mod landmarks;
pub mod region;
pub mod stress;

pub use au::{ActionUnit, AuSet, AuVector, ALL_AUS, NUM_AUS};
pub use describe::{parse_description, render_description, DescriptionError};
pub use landmarks::{landmark_layout, Landmark, NUM_LANDMARKS};
pub use region::{FacialRegion, RegionRect, ALL_REGIONS, FACE_SIZE};
pub use stress::{stress_logit, stress_weight, STRESS_BIAS};
