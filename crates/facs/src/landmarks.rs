//! Canonical 49-point facial-landmark layout.
//!
//! Gao et al. (ICIP 2014) extract "49 feature points of each face image";
//! §IV-H locates each highlighted facial action "using the corresponding
//! facial landmark".  We define one canonical layout on the 96×96 face:
//! 10 brow points, 12 eye points, 9 nose points, 18 mouth/lip points — the
//! standard 49-point subset of the 68-point iBUG annotation (the 68-point
//! scheme minus the 17 jawline points, minus 2 inner-mouth duplicates).
//!
//! Each landmark carries a home position and, per action unit, a
//! displacement direction; the renderer moves landmarks along those
//! directions proportionally to AU intensity, and landmark-based baselines
//! (Gao et al., Jeon et al.) read the displaced positions back.

use crate::au::{ActionUnit, AuVector, NUM_AUS};
use crate::region::FACE_SIZE;

/// Number of facial landmarks.
pub const NUM_LANDMARKS: usize = 49;

/// One facial landmark: an id, a home `(x, y)` position on the canonical
/// face, and a per-AU displacement field.
#[derive(Clone, Debug, PartialEq)]
pub struct Landmark {
    /// Index in `0..NUM_LANDMARKS`.
    pub id: usize,
    /// Neutral-face position in pixels.
    pub home: (f32, f32),
    /// Displacement `(dx, dy)` in pixels applied at full intensity of each AU.
    pub au_displacement: [(f32, f32); NUM_AUS],
}

impl Landmark {
    /// Position after applying the AU intensity vector `aus`.
    pub fn displaced(&self, aus: &AuVector) -> (f32, f32) {
        let mut x = self.home.0;
        let mut y = self.home.1;
        for i in 0..NUM_AUS {
            let w = aus.0[i];
            x += self.au_displacement[i].0 * w;
            y += self.au_displacement[i].1 * w;
        }
        (
            x.clamp(0.0, (FACE_SIZE - 1) as f32),
            y.clamp(0.0, (FACE_SIZE - 1) as f32),
        )
    }
}

/// Build the canonical landmark layout.
///
/// Deterministic; call once and reuse.  The layout is symmetric about the
/// vertical face midline at `x = 48`.
pub fn landmark_layout() -> Vec<Landmark> {
    let s = FACE_SIZE as f32;
    let mut pts: Vec<(f32, f32)> = Vec::with_capacity(NUM_LANDMARKS);

    // 10 brow points: 5 per brow, arched.
    for side in [-1.0f32, 1.0] {
        for k in 0..5 {
            let t = k as f32 / 4.0; // 0 = inner, 1 = outer
            let x = s / 2.0 + side * (6.0 + t * 22.0);
            let y = s * 0.27 - (1.0 - (2.0 * t - 1.0).powi(2)) * 3.0;
            pts.push((x, y));
        }
    }
    // 12 eye points: 6 per eye (corners + upper/lower lid pairs).
    for side in [-1.0f32, 1.0] {
        let cx = s / 2.0 + side * 17.0;
        let cy = s * 0.43;
        pts.push((cx - 7.0, cy)); // outer/inner corner
        pts.push((cx - 3.0, cy - 2.5)); // upper lid
        pts.push((cx + 3.0, cy - 2.5)); // upper lid
        pts.push((cx + 7.0, cy)); // corner
        pts.push((cx + 3.0, cy + 2.5)); // lower lid
        pts.push((cx - 3.0, cy + 2.5)); // lower lid
    }
    // 9 nose points: 4 down the ridge + 5 across the base.
    for k in 0..4 {
        pts.push((s / 2.0, s * 0.42 + k as f32 * 5.0));
    }
    for k in 0..5 {
        pts.push((s / 2.0 + (k as f32 - 2.0) * 4.0, s * 0.63));
    }
    // 18 mouth points: 12 outer ellipse + 6 inner.
    let mcx = s / 2.0;
    let mcy = s * 0.77;
    for k in 0..12 {
        let a = k as f32 / 12.0 * std::f32::consts::TAU;
        pts.push((mcx + a.cos() * 13.0, mcy + a.sin() * 5.5));
    }
    for k in 0..6 {
        let a = k as f32 / 6.0 * std::f32::consts::TAU;
        pts.push((mcx + a.cos() * 7.0, mcy + a.sin() * 2.5));
    }
    debug_assert_eq!(pts.len(), NUM_LANDMARKS);

    pts.into_iter()
        .enumerate()
        .map(|(id, home)| Landmark {
            id,
            home,
            au_displacement: displacement_for(id, home),
        })
        .collect()
}

/// Displacement field of landmark `id` at `home` for each AU.
///
/// Directions follow FACS muscle actions: e.g. AU1 pulls *inner* brow points
/// up, AU4 pulls brow points down and inwards, AU12 pulls mouth corners up
/// and laterally, AU26 drops lower-mouth points.
fn displacement_for(id: usize, home: (f32, f32)) -> [(f32, f32); NUM_AUS] {
    use ActionUnit::*;
    let mut d = [(0.0f32, 0.0f32); NUM_AUS];
    let s = FACE_SIZE as f32;
    let mid = s / 2.0;
    let lateral = if home.0 < mid { -1.0 } else { 1.0 };

    let is_brow = id < 10;
    let brow_inner = is_brow && (home.0 - mid).abs() < 14.0;
    let brow_outer = is_brow && (home.0 - mid).abs() >= 22.0;
    let is_eye = (10..22).contains(&id);
    let is_upper_lid = is_eye && home.1 < s * 0.43;
    let is_nose = (22..31).contains(&id);
    let is_mouth = id >= 31;
    let mouth_corner = is_mouth && (home.0 - mid).abs() > 10.0;
    let mouth_lower = is_mouth && home.1 > s * 0.77;
    let mouth_upper = is_mouth && home.1 < s * 0.77 && !mouth_corner;

    if brow_inner {
        d[InnerBrowRaiser.index()] = (0.0, -4.0);
    }
    if brow_outer {
        d[OuterBrowRaiser.index()] = (0.0, -4.0);
    }
    if is_brow {
        d[BrowLowerer.index()] = (-lateral * 2.0, 3.5);
    }
    if is_upper_lid {
        d[UpperLidRaiser.index()] = (0.0, -3.0);
    }
    if is_eye && !is_upper_lid {
        // Cheek raiser pushes the lower lid up.
        d[CheekRaiser.index()] = (0.0, -2.0);
    }
    if is_nose {
        d[NoseWrinkler.index()] = (0.0, -2.5);
    }
    if mouth_corner {
        d[LipCornerPuller.index()] = (lateral * 3.5, -3.0);
        d[LipCornerDepressor.index()] = (lateral * 1.0, 3.0);
        d[LipStretcher.index()] = (lateral * 4.0, 0.0);
    }
    if mouth_upper {
        d[LipsPart.index()] = (0.0, -1.5);
    }
    if mouth_lower {
        d[LipsPart.index()] = (0.0, 1.5);
        d[JawDrop.index()] = (0.0, 4.5);
        d[ChinRaiser.index()] = (0.0, -2.5);
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::au::AuVector;

    #[test]
    fn layout_has_49_points_in_bounds() {
        let lm = landmark_layout();
        assert_eq!(lm.len(), NUM_LANDMARKS);
        for (i, l) in lm.iter().enumerate() {
            assert_eq!(l.id, i);
            assert!(
                l.home.0 >= 0.0 && l.home.0 < FACE_SIZE as f32,
                "{:?}",
                l.home
            );
            assert!(
                l.home.1 >= 0.0 && l.home.1 < FACE_SIZE as f32,
                "{:?}",
                l.home
            );
        }
    }

    #[test]
    fn layout_is_left_right_symmetric_in_count() {
        let lm = landmark_layout();
        let mid = FACE_SIZE as f32 / 2.0;
        let left = lm.iter().filter(|l| l.home.0 < mid - 0.5).count();
        let right = lm.iter().filter(|l| l.home.0 > mid + 0.5).count();
        assert_eq!(left, right);
    }

    #[test]
    fn neutral_face_has_no_displacement() {
        let lm = landmark_layout();
        let neutral = AuVector::zeros();
        for l in &lm {
            let p = l.displaced(&neutral);
            assert!((p.0 - l.home.0).abs() < 1e-6);
            assert!((p.1 - l.home.1).abs() < 1e-6);
        }
    }

    #[test]
    fn au1_raises_inner_brows() {
        let lm = landmark_layout();
        let mut v = AuVector::zeros();
        v.set(ActionUnit::InnerBrowRaiser, 1.0);
        let moved: Vec<_> = lm
            .iter()
            .filter(|l| l.au_displacement[ActionUnit::InnerBrowRaiser.index()] != (0.0, 0.0))
            .collect();
        assert!(!moved.is_empty(), "AU1 must move some landmarks");
        for l in moved {
            let p = l.displaced(&v);
            assert!(p.1 < l.home.1, "inner brow should move up (smaller y)");
        }
    }

    #[test]
    fn au26_drops_lower_mouth() {
        let lm = landmark_layout();
        let mut v = AuVector::zeros();
        v.set(ActionUnit::JawDrop, 1.0);
        let moved: Vec<_> = lm
            .iter()
            .filter(|l| l.au_displacement[ActionUnit::JawDrop.index()] != (0.0, 0.0))
            .collect();
        assert!(!moved.is_empty());
        for l in moved {
            let p = l.displaced(&v);
            assert!(p.1 > l.home.1, "jaw drop should move lower mouth down");
        }
    }

    #[test]
    fn every_au_moves_at_least_one_landmark() {
        let lm = landmark_layout();
        for au in crate::au::ALL_AUS {
            let any = lm
                .iter()
                .any(|l| l.au_displacement[au.index()] != (0.0, 0.0));
            assert!(any, "{au} moves no landmark");
        }
    }

    #[test]
    fn displacement_stays_in_bounds_at_full_intensity() {
        let lm = landmark_layout();
        let mut v = AuVector::zeros();
        for au in crate::au::ALL_AUS {
            v.set(au, 1.0);
        }
        for l in &lm {
            let p = l.displaced(&v);
            assert!(p.0 >= 0.0 && p.0 <= (FACE_SIZE - 1) as f32);
            assert!(p.1 >= 0.0 && p.1 <= (FACE_SIZE - 1) as f32);
        }
    }
}
