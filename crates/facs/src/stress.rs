//! Stress-relevance priors over action units.
//!
//! Psychological findings the paper builds on (Viegas et al. 2018,
//! Giannakakis et al. 2020; §II-A) associate stress with specific AU
//! occurrence patterns: brow lowering (AU4), upper-lid raising (AU5), nose
//! wrinkling (AU9), lip-corner depression (AU15), chin raising (AU17) and
//! lip stretching (AU20), while Duchenne-smile units (AU6 + AU12) indicate a
//! relaxed state.  The synthetic world model in `videosynth` uses these
//! weights to couple its latent stress state to AU activity; *no detector in
//! the workspace reads them* — models must learn the association from data.

use crate::au::{ActionUnit, AuSet, AuVector, ALL_AUS, NUM_AUS};

/// Bias term of the latent stress→AU logit model.  Negative: a neutral face
/// with no active AUs is likely unstressed.
pub const STRESS_BIAS: f32 = -1.35;

/// Log-odds contribution of each AU to the latent stress state.
///
/// Positive weights are the stress markers of the AU-stress literature;
/// negative weights are relaxation markers.
pub fn stress_weight(au: ActionUnit) -> f32 {
    match au {
        ActionUnit::InnerBrowRaiser => 0.55,    // fear/worry brow
        ActionUnit::OuterBrowRaiser => 0.30,    // surprise component
        ActionUnit::BrowLowerer => 1.25,        // primary stress marker
        ActionUnit::UpperLidRaiser => 0.95,     // eye-widening under threat
        ActionUnit::CheekRaiser => -0.80,       // Duchenne marker (relaxed)
        ActionUnit::NoseWrinkler => 0.70,       // disgust/strain
        ActionUnit::LipCornerPuller => -1.10,   // smiling (relaxed)
        ActionUnit::LipCornerDepressor => 0.85, // sadness/strain
        ActionUnit::ChinRaiser => 0.75,         // tension in the mentalis
        ActionUnit::LipStretcher => 1.05,       // fear stretch
        ActionUnit::LipsPart => 0.05,           // near-neutral
        ActionUnit::JawDrop => 0.20,            // mild surprise
    }
}

/// Dense weight vector in AU-index order.
pub fn stress_weights() -> [f32; NUM_AUS] {
    let mut w = [0.0; NUM_AUS];
    for au in ALL_AUS {
        w[au.index()] = stress_weight(au);
    }
    w
}

/// Latent stress log-odds of a continuous AU intensity vector.
pub fn stress_logit(aus: &AuVector) -> f32 {
    let mut z = STRESS_BIAS;
    for au in ALL_AUS {
        z += stress_weight(au) * aus.get(au);
    }
    z
}

/// Latent stress log-odds of a binary AU occurrence set.
pub fn stress_logit_set(aus: AuSet) -> f32 {
    let mut z = STRESS_BIAS;
    for au in aus.iter() {
        z += stress_weight(au);
    }
    z
}

/// Logistic transform of [`stress_logit`]: probability the expression was
/// produced under stress.
pub fn stress_probability(aus: &AuVector) -> f32 {
    sigmoid(stress_logit(aus))
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(z: f32) -> f32 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Per-AU attribution of the logit: how much each *active* AU pushed the
/// decision.  Used by tests and analyses; detectors never see it.
pub fn logit_attribution(aus: AuSet) -> Vec<(ActionUnit, f32)> {
    aus.iter().map(|au| (au, stress_weight(au))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neutral_face_leans_unstressed() {
        assert!(stress_probability(&AuVector::zeros()) < 0.5);
    }

    #[test]
    fn tension_pattern_is_stressed() {
        // AU4 + AU5 + AU20: the canonical fear/tension combination.
        let mut v = AuVector::zeros();
        v.set(ActionUnit::BrowLowerer, 1.0);
        v.set(ActionUnit::UpperLidRaiser, 1.0);
        v.set(ActionUnit::LipStretcher, 1.0);
        assert!(stress_probability(&v) > 0.8);
    }

    #[test]
    fn duchenne_smile_is_unstressed() {
        // AU6 + AU12: genuine smile.
        let mut v = AuVector::zeros();
        v.set(ActionUnit::CheekRaiser, 1.0);
        v.set(ActionUnit::LipCornerPuller, 1.0);
        assert!(stress_probability(&v) < 0.1);
    }

    #[test]
    fn set_and_vector_logits_agree_on_binary_input() {
        let s = AuSet::from_aus([ActionUnit::BrowLowerer, ActionUnit::ChinRaiser]);
        let mut v = AuVector::zeros();
        for au in s.iter() {
            v.set(au, 1.0);
        }
        assert!((stress_logit(&v) - stress_logit_set(s)).abs() < 1e-6);
    }

    #[test]
    fn logit_is_linear_in_intensity() {
        let mut v = AuVector::zeros();
        v.set(ActionUnit::BrowLowerer, 0.5);
        let z_half = stress_logit(&v) - STRESS_BIAS;
        v.set(ActionUnit::BrowLowerer, 1.0);
        let z_full = stress_logit(&v) - STRESS_BIAS;
        assert!((z_full - 2.0 * z_half).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_is_stable_and_symmetric() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(100.0) > 0.999_999);
        assert!(sigmoid(-100.0) < 1e-6);
        for z in [-3.0f32, -0.7, 0.0, 1.3, 5.0] {
            assert!((sigmoid(z) + sigmoid(-z) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn attribution_covers_active_aus_exactly() {
        let s = AuSet::from_aus([ActionUnit::NoseWrinkler, ActionUnit::LipsPart]);
        let attr = logit_attribution(s);
        assert_eq!(attr.len(), 2);
        let total: f32 = attr.iter().map(|(_, w)| w).sum();
        assert!((total + STRESS_BIAS - stress_logit_set(s)).abs() < 1e-6);
    }
}
