//! The facial-action *description language* `E` of §III-B / §IV-A.
//!
//! The paper transforms a 12-dim AU annotation into a natural-language
//! description, e.g. for AU1 + AU5 + AU6:
//!
//! ```text
//! The facial expressions can be listed below:
//! -eyebrow: inner portions of the eyebrows raising
//! -lid: upper lid raising
//! -cheek: raised
//! ```
//!
//! We fix that template as a closed, deterministic and *invertible* language:
//! [`render_description`] maps an [`AuSet`] to the text and
//! [`parse_description`] maps any well-formed text back.  Invertibility is
//! what makes the self-refinement loops measurable — a generated description
//! can be decoded into the AU claim it makes, compared against the video's
//! ground truth, and located on the face for mosaicing.

use std::fmt;

use crate::au::{ActionUnit, AuSet, ALL_AUS};
use crate::region::{FacialRegion, ALL_REGIONS};

/// Opening line of every description.
pub const HEADER: &str = "The facial expressions can be listed below:";

/// Rendering of the empty AU set.
pub const NEUTRAL: &str = "The face appears neutral with no notable facial actions.";

/// The fixed per-AU phrase used inside the region bullet.
///
/// Phrases are unique across the language, so parsing is unambiguous even
/// without the region prefix.
pub fn phrase(au: ActionUnit) -> &'static str {
    match au {
        ActionUnit::InnerBrowRaiser => "inner portions of the eyebrows raising",
        ActionUnit::OuterBrowRaiser => "outer portions of the eyebrows raising",
        ActionUnit::BrowLowerer => "brows lowered and drawn together",
        ActionUnit::UpperLidRaiser => "upper lid raising",
        ActionUnit::CheekRaiser => "raised",
        ActionUnit::NoseWrinkler => "nose wrinkling",
        ActionUnit::LipCornerPuller => "lip corners pulled upward",
        ActionUnit::LipCornerDepressor => "lip corners depressed",
        ActionUnit::ChinRaiser => "chin boss pushed upward",
        ActionUnit::LipStretcher => "lips stretched laterally",
        ActionUnit::LipsPart => "lips parted",
        ActionUnit::JawDrop => "jaw dropped open",
    }
}

/// Look up the action unit a phrase denotes.
pub fn phrase_to_au(s: &str) -> Option<ActionUnit> {
    ALL_AUS.iter().copied().find(|au| phrase(*au) == s)
}

/// Error produced when parsing a malformed description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DescriptionError {
    /// The text does not start with the canonical header (and is not the
    /// neutral sentence).
    MissingHeader,
    /// A bullet line is not of the form `-<region>: <phrases>`.
    MalformedBullet(String),
    /// A bullet names an unknown facial region.
    UnknownRegion(String),
    /// A phrase is not part of the description language.
    UnknownPhrase(String),
    /// A phrase appears under the wrong region bullet.
    RegionMismatch {
        phrase: String,
        expected: FacialRegion,
        found: FacialRegion,
    },
}

impl fmt::Display for DescriptionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingHeader => {
                write!(f, "description does not start with the canonical header")
            }
            Self::MalformedBullet(l) => write!(f, "malformed bullet line: {l:?}"),
            Self::UnknownRegion(r) => write!(f, "unknown facial region: {r:?}"),
            Self::UnknownPhrase(p) => write!(f, "unknown facial-action phrase: {p:?}"),
            Self::RegionMismatch {
                phrase,
                expected,
                found,
            } => write!(
                f,
                "phrase {phrase:?} belongs to region {expected} but appeared under {found}"
            ),
        }
    }
}

impl std::error::Error for DescriptionError {}

/// Render an AU activation set into the canonical description text.
///
/// Regions appear in anatomical order (eyebrow → jaw); multiple AUs within a
/// region are comma-separated in AU-index order.  The empty set renders as
/// the neutral sentence.
pub fn render_description(aus: AuSet) -> String {
    if aus.is_empty() {
        return NEUTRAL.to_owned();
    }
    let mut out = String::with_capacity(64 + aus.len() * 40);
    out.push_str(HEADER);
    for region in ALL_REGIONS {
        let in_region: Vec<ActionUnit> = aus.iter().filter(|au| au.region() == region).collect();
        if in_region.is_empty() {
            continue;
        }
        out.push('\n');
        out.push('-');
        out.push_str(region.name());
        out.push_str(": ");
        for (i, au) in in_region.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(phrase(*au));
        }
    }
    out
}

/// Parse a description back into the AU set it claims.
///
/// Accepts exactly the output of [`render_description`] plus tolerant
/// whitespace.  Returns every violation as a typed [`DescriptionError`].
pub fn parse_description(text: &str) -> Result<AuSet, DescriptionError> {
    let text = text.trim();
    if text == NEUTRAL {
        return Ok(AuSet::EMPTY);
    }
    let mut lines = text.lines().map(str::trim);
    match lines.next() {
        Some(h) if h == HEADER => {}
        _ => return Err(DescriptionError::MissingHeader),
    }
    let mut set = AuSet::EMPTY;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let body = line
            .strip_prefix('-')
            .ok_or_else(|| DescriptionError::MalformedBullet(line.to_owned()))?;
        let (region_name, rest) = body
            .split_once(':')
            .ok_or_else(|| DescriptionError::MalformedBullet(line.to_owned()))?;
        let region = FacialRegion::from_name(region_name.trim())
            .ok_or_else(|| DescriptionError::UnknownRegion(region_name.trim().to_owned()))?;
        for part in rest.split(',') {
            let part = part.trim();
            if part.is_empty() {
                return Err(DescriptionError::MalformedBullet(line.to_owned()));
            }
            let au = phrase_to_au(part)
                .ok_or_else(|| DescriptionError::UnknownPhrase(part.to_owned()))?;
            if au.region() != region {
                return Err(DescriptionError::RegionMismatch {
                    phrase: part.to_owned(),
                    expected: au.region(),
                    found: region,
                });
            }
            set.insert(au);
        }
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_renders_as_in_figure() {
        // AU1 + AU5 + AU6, the example of §IV-A.
        let aus = AuSet::from_aus([
            ActionUnit::InnerBrowRaiser,
            ActionUnit::UpperLidRaiser,
            ActionUnit::CheekRaiser,
        ]);
        let text = render_description(aus);
        assert_eq!(
            text,
            "The facial expressions can be listed below:\n\
             -eyebrow: inner portions of the eyebrows raising\n\
             -lid: upper lid raising\n\
             -cheek: raised"
        );
    }

    #[test]
    fn empty_set_is_neutral_sentence() {
        assert_eq!(render_description(AuSet::EMPTY), NEUTRAL);
        assert_eq!(parse_description(NEUTRAL), Ok(AuSet::EMPTY));
    }

    #[test]
    fn render_parse_round_trip_all_singletons() {
        for au in ALL_AUS {
            let s = AuSet::from_aus([au]);
            assert_eq!(parse_description(&render_description(s)), Ok(s), "{au}");
        }
    }

    #[test]
    fn render_parse_round_trip_full_set() {
        let s = AuSet::FULL;
        assert_eq!(parse_description(&render_description(s)), Ok(s));
    }

    #[test]
    fn render_parse_round_trip_exhaustive() {
        // All 4096 subsets — the language must be exactly invertible.
        for bits in 0u16..(1 << 12) {
            let s = AuSet::from_bits(bits);
            assert_eq!(
                parse_description(&render_description(s)),
                Ok(s),
                "bits={bits:#b}"
            );
        }
    }

    #[test]
    fn phrases_are_unique() {
        for a in ALL_AUS {
            for b in ALL_AUS {
                if a != b {
                    assert_ne!(phrase(a), phrase(b));
                }
            }
        }
    }

    #[test]
    fn missing_header_is_an_error() {
        assert_eq!(
            parse_description("-eyebrow: brows lowered and drawn together"),
            Err(DescriptionError::MissingHeader)
        );
    }

    #[test]
    fn unknown_region_is_an_error() {
        let text = format!("{HEADER}\n-forehead: brows lowered and drawn together");
        assert_eq!(
            parse_description(&text),
            Err(DescriptionError::UnknownRegion("forehead".into()))
        );
    }

    #[test]
    fn unknown_phrase_is_an_error() {
        let text = format!("{HEADER}\n-eyebrow: eyebrows wiggling");
        assert_eq!(
            parse_description(&text),
            Err(DescriptionError::UnknownPhrase("eyebrows wiggling".into()))
        );
    }

    #[test]
    fn region_mismatch_is_an_error() {
        let text = format!("{HEADER}\n-jaw: upper lid raising");
        match parse_description(&text) {
            Err(DescriptionError::RegionMismatch {
                expected, found, ..
            }) => {
                assert_eq!(expected, FacialRegion::Eyelid);
                assert_eq!(found, FacialRegion::Jaw);
            }
            other => panic!("expected RegionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn parse_tolerates_extra_whitespace() {
        let text = format!("  {HEADER}\n\n  -cheek:  raised  \n");
        assert_eq!(
            parse_description(&text),
            Ok(AuSet::from_aus([ActionUnit::CheekRaiser]))
        );
    }
}
