//! Facial regions and their canonical pixel layout on a 96×96 face.
//!
//! §III-D removes/mosaics "corresponding regions (e.g., eyebrows, lips, and
//! cheek)" of the face image to verify rationale faithfulness, and §IV-H
//! locates each highlighted facial action via its landmarks.  The layouts
//! here define that geometry once for the whole workspace: the renderer in
//! `videosynth` deforms exactly these rectangles, so masking them removes
//! exactly the pixel evidence of the corresponding AUs.

use std::fmt;

/// Side length, in pixels, of the canonical face image (§IV-H resizes the
/// 640×480 source frames to 96×96).
pub const FACE_SIZE: usize = 96;

/// Coarse facial regions that action units are localised in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum FacialRegion {
    /// Brow band across the forehead.
    Eyebrow = 0,
    /// Upper/lower eyelids and the eye aperture.
    Eyelid = 1,
    /// Nose ridge and nostril wings.
    Nose = 2,
    /// Infraorbital cheek mass.
    Cheek = 3,
    /// Lips and mouth corners.
    Mouth = 4,
    /// Chin and jawline.
    Jaw = 5,
}

/// All regions in index order.
pub const ALL_REGIONS: [FacialRegion; 6] = [
    FacialRegion::Eyebrow,
    FacialRegion::Eyelid,
    FacialRegion::Nose,
    FacialRegion::Cheek,
    FacialRegion::Mouth,
    FacialRegion::Jaw,
];

/// Axis-aligned pixel rectangle `[x0, x1) × [y0, y1)` on the canonical face.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegionRect {
    pub x0: usize,
    pub y0: usize,
    pub x1: usize,
    pub y1: usize,
}

impl RegionRect {
    /// Whether the pixel `(x, y)` lies inside the rectangle.
    #[inline]
    pub fn contains(&self, x: usize, y: usize) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1
    }

    /// Area in pixels.
    pub fn area(&self) -> usize {
        (self.x1 - self.x0) * (self.y1 - self.y0)
    }

    /// Centre point (rounded down).
    pub fn center(&self) -> (usize, usize) {
        ((self.x0 + self.x1) / 2, (self.y0 + self.y1) / 2)
    }

    /// Iterate over all `(x, y)` pixels of the rectangle in row-major order.
    pub fn pixels(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let xs = self.x0..self.x1;
        (self.y0..self.y1).flat_map(move |y| xs.clone().map(move |x| (x, y)))
    }
}

impl FacialRegion {
    /// Dense index in `0..6`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Construct from a dense index.
    pub fn from_index(idx: usize) -> Option<Self> {
        ALL_REGIONS.get(idx).copied()
    }

    /// Human-readable name, matching the bullets of the description template
    /// ("-eyebrow:", "-lid:", "-cheek:", ...).
    pub fn name(self) -> &'static str {
        match self {
            Self::Eyebrow => "eyebrow",
            Self::Eyelid => "lid",
            Self::Nose => "nose",
            Self::Cheek => "cheek",
            Self::Mouth => "mouth",
            Self::Jaw => "jaw",
        }
    }

    /// Parse a region from its template name.
    pub fn from_name(name: &str) -> Option<Self> {
        ALL_REGIONS.iter().copied().find(|r| r.name() == name)
    }

    /// Canonical rectangle of this region on the 96×96 face.
    ///
    /// The layout mirrors an upright frontal face: brows at ~1/4 height, eyes
    /// just below, nose centre column, cheeks flanking the nose, mouth at
    /// ~2/3 height, jaw at the bottom.  Rectangles cover the expressive area
    /// generously so that mosaicing one destroys all pixel evidence of the
    /// AUs mapped to it.
    pub fn rect(self) -> RegionRect {
        const S: usize = FACE_SIZE;
        match self {
            // y is measured from the top of the image.
            Self::Eyebrow => RegionRect {
                x0: S / 8,
                y0: S / 5,
                x1: S - S / 8,
                y1: S * 2 / 5,
            },
            Self::Eyelid => RegionRect {
                x0: S / 8,
                y0: S * 2 / 5,
                x1: S - S / 8,
                y1: S / 2,
            },
            Self::Nose => RegionRect {
                x0: S * 2 / 5,
                y0: S * 2 / 5,
                x1: S * 3 / 5,
                y1: S * 7 / 10,
            },
            Self::Cheek => RegionRect {
                x0: S / 10,
                y0: S / 2,
                x1: S * 2 / 5,
                y1: S * 3 / 4,
            },
            Self::Mouth => RegionRect {
                x0: S * 3 / 10,
                y0: S * 7 / 10,
                x1: S * 7 / 10,
                y1: S * 17 / 20,
            },
            Self::Jaw => RegionRect {
                x0: S / 4,
                y0: S * 17 / 20,
                x1: S * 3 / 4,
                y1: S,
            },
        }
    }

    /// Mirrored rectangle for bilateral regions (cheeks); the canonical rect
    /// covers the left side, this covers the right.
    pub fn mirror_rect(self) -> Option<RegionRect> {
        match self {
            Self::Cheek => {
                let r = self.rect();
                Some(RegionRect {
                    x0: FACE_SIZE - r.x1,
                    y0: r.y0,
                    x1: FACE_SIZE - r.x0,
                    y1: r.y1,
                })
            }
            _ => None,
        }
    }

    /// All rectangles belonging to the region (one, or two for bilateral).
    pub fn rects(self) -> Vec<RegionRect> {
        let mut out = vec![self.rect()];
        if let Some(m) = self.mirror_rect() {
            out.push(m);
        }
        out
    }
}

impl fmt::Display for FacialRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_round_trip() {
        for (i, r) in ALL_REGIONS.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(FacialRegion::from_index(i), Some(*r));
        }
        assert_eq!(FacialRegion::from_index(6), None);
    }

    #[test]
    fn names_round_trip() {
        for r in ALL_REGIONS {
            assert_eq!(FacialRegion::from_name(r.name()), Some(r));
        }
        assert_eq!(FacialRegion::from_name("forehead"), None);
    }

    #[test]
    fn rects_stay_in_bounds() {
        for r in ALL_REGIONS {
            for rect in r.rects() {
                assert!(rect.x0 < rect.x1, "{r:?}");
                assert!(rect.y0 < rect.y1, "{r:?}");
                assert!(rect.x1 <= FACE_SIZE, "{r:?}");
                assert!(rect.y1 <= FACE_SIZE, "{r:?}");
                assert!(rect.area() > 0);
            }
        }
    }

    #[test]
    fn rect_contains_its_center_and_pixels_count() {
        for r in ALL_REGIONS {
            let rect = r.rect();
            let (cx, cy) = rect.center();
            assert!(rect.contains(cx, cy));
            assert_eq!(rect.pixels().count(), rect.area());
        }
    }

    #[test]
    fn cheek_is_bilateral_and_mirrored() {
        let left = FacialRegion::Cheek.rect();
        let right = FacialRegion::Cheek.mirror_rect().unwrap();
        assert_eq!(left.area(), right.area());
        assert_eq!(left.y0, right.y0);
        assert!(
            right.x0 >= FACE_SIZE / 2,
            "mirror should be on the right half"
        );
        assert!(FacialRegion::Mouth.mirror_rect().is_none());
    }

    #[test]
    fn vertical_ordering_is_anatomical() {
        // Brows above lids above mouth above jaw.
        let brow = FacialRegion::Eyebrow.rect();
        let lid = FacialRegion::Eyelid.rect();
        let mouth = FacialRegion::Mouth.rect();
        let jaw = FacialRegion::Jaw.rect();
        assert!(brow.y0 < lid.y0);
        assert!(lid.y0 < mouth.y0);
        assert!(mouth.y0 < jaw.y0);
    }
}
