//! Property-based tests for the FACS substrate.

use facs::au::{AuSet, AuVector, NUM_AUS};
use facs::describe::{parse_description, render_description};
use facs::landmarks::landmark_layout;
use facs::region::FACE_SIZE;
use proptest::prelude::*;

proptest! {
    /// The description language is exactly invertible on every AU subset.
    #[test]
    fn describe_round_trip(bits in 0u16..(1 << NUM_AUS)) {
        let s = AuSet::from_bits(bits);
        prop_assert_eq!(parse_description(&render_description(s)), Ok(s));
    }

    /// Rendering is injective: different sets never render identically.
    #[test]
    fn describe_injective(a in 0u16..(1 << NUM_AUS), b in 0u16..(1 << NUM_AUS)) {
        let (sa, sb) = (AuSet::from_bits(a), AuSet::from_bits(b));
        if sa != sb {
            prop_assert_ne!(render_description(sa), render_description(sb));
        }
    }

    /// Hamming distance is a metric: symmetry and triangle inequality.
    #[test]
    fn hamming_is_a_metric(
        a in 0u16..(1 << NUM_AUS),
        b in 0u16..(1 << NUM_AUS),
        c in 0u16..(1 << NUM_AUS),
    ) {
        let (sa, sb, sc) = (AuSet::from_bits(a), AuSet::from_bits(b), AuSet::from_bits(c));
        prop_assert_eq!(sa.hamming(sb), sb.hamming(sa));
        prop_assert!(sa.hamming(sc) <= sa.hamming(sb) + sb.hamming(sc));
        prop_assert_eq!(sa.hamming(sa), 0);
    }

    /// Landmarks never leave the canonical face under any intensity vector.
    #[test]
    fn landmarks_stay_in_bounds(vals in proptest::collection::vec(0.0f32..=1.0, NUM_AUS)) {
        let mut v = AuVector::zeros();
        for (i, x) in vals.iter().enumerate() {
            v.0[i] = *x;
        }
        for l in landmark_layout() {
            let (x, y) = l.displaced(&v);
            prop_assert!((0.0..FACE_SIZE as f32).contains(&x));
            prop_assert!((0.0..FACE_SIZE as f32).contains(&y));
        }
    }

    /// Expressiveness is monotone: adding intensity never decreases it.
    #[test]
    fn expressiveness_monotone(
        base in proptest::collection::vec(0.0f32..=0.5, NUM_AUS),
        extra in proptest::collection::vec(0.0f32..=0.5, NUM_AUS),
    ) {
        let mut lo = AuVector::zeros();
        let mut hi = AuVector::zeros();
        for i in 0..NUM_AUS {
            lo.0[i] = base[i];
            hi.0[i] = base[i] + extra[i];
        }
        prop_assert!(hi.expressiveness() >= lo.expressiveness() - 1e-6);
    }
}
