//! Retrieval strategies over a training pool (§IV-F).

use facs::au::AuSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tinynn::tensor::cosine_similarity;
use videosynth::video::VideoSample;

use crate::embed::{DescriptionEmbedder, VisualEmbedder};

/// How the in-context example is selected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetrievalStrategy {
    /// No in-context example at all.
    None,
    /// A uniformly random training sample.
    Random,
    /// Nearest neighbour under the Videoformer-style visual embedding.
    ByVision,
    /// Nearest neighbour under the description embedding.
    ByDescription,
}

impl RetrievalStrategy {
    /// Row label used in Table VII.
    pub fn label(self) -> &'static str {
        match self {
            Self::None => "w/o Example",
            Self::Random => "Random",
            Self::ByVision => "Retrieve-by-vision",
            Self::ByDescription => "Retrieve-by-description",
        }
    }
}

/// Indices of the `k` pool entries most cosine-similar to `query`.
pub fn retrieve_top_k(pool: &[Vec<f32>], query: &[f32], k: usize) -> Vec<usize> {
    let mut scored: Vec<(usize, f32)> = pool
        .iter()
        .enumerate()
        .map(|(i, e)| (i, cosine_similarity(e, query)))
        .collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite sims")
            .then(a.0.cmp(&b.0))
    });
    scored.into_iter().take(k).map(|(i, _)| i).collect()
}

/// A retrieval index over a fixed training pool: precomputed visual and
/// description embeddings plus the pool's descriptions (needed to build
/// the in-context block).
#[derive(Clone, Debug)]
pub struct Retriever {
    visual: VisualEmbedder,
    desc_embedder: DescriptionEmbedder,
    vis_embeddings: Vec<Vec<f32>>,
    desc_embeddings: Vec<Vec<f32>>,
    /// Descriptions of the pool samples, index-aligned.
    pub pool_descriptions: Vec<AuSet>,
}

impl Retriever {
    /// Build an index.  `descriptions[i]` is the (generated or annotated)
    /// facial-action description of `pool[i]`.
    pub fn build(pool: &[VideoSample], descriptions: &[AuSet], seed: u64) -> Self {
        assert_eq!(
            pool.len(),
            descriptions.len(),
            "one description per pool sample"
        );
        assert!(!pool.is_empty(), "empty retrieval pool");
        let visual = VisualEmbedder::new(48, seed);
        let desc_embedder = DescriptionEmbedder::fit(descriptions);
        let vis_embeddings = pool.iter().map(|v| visual.embed(v)).collect();
        let desc_embeddings = descriptions
            .iter()
            .map(|&d| desc_embedder.embed(d))
            .collect();
        Retriever {
            visual,
            desc_embedder,
            vis_embeddings,
            desc_embeddings,
            pool_descriptions: descriptions.to_vec(),
        }
    }

    /// Pool size.
    pub fn len(&self) -> usize {
        self.vis_embeddings.len()
    }

    /// Whether the pool is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.vis_embeddings.is_empty()
    }

    /// Select the in-context example index for a query video.
    /// `query_description` is required for [`RetrievalStrategy::ByDescription`]
    /// (the model's own generated description of the query, §IV-F: "after
    /// the model generating facial action descriptions for a testing
    /// sample").  Returns `None` for [`RetrievalStrategy::None`].
    pub fn select(
        &self,
        strategy: RetrievalStrategy,
        query: &VideoSample,
        query_description: AuSet,
        seed: u64,
    ) -> Option<usize> {
        match strategy {
            RetrievalStrategy::None => None,
            RetrievalStrategy::Random => {
                let mut rng = StdRng::seed_from_u64(seed ^ query.id as u64);
                Some(rng.random_range(0..self.len()))
            }
            RetrievalStrategy::ByVision => {
                let q = self.visual.embed(query);
                retrieve_top_k(&self.vis_embeddings, &q, 1).first().copied()
            }
            RetrievalStrategy::ByDescription => {
                let q = self.desc_embedder.embed(query_description);
                retrieve_top_k(&self.desc_embeddings, &q, 1)
                    .first()
                    .copied()
            }
        }
    }

    /// All visual similarities of a query against the pool (for Fig. 7a).
    pub fn visual_similarities(&self, query: &VideoSample) -> Vec<f32> {
        let q = self.visual.embed(query);
        self.vis_embeddings
            .iter()
            .map(|e| cosine_similarity(e, &q))
            .collect()
    }

    /// All description similarities of a query (for Fig. 7b).
    pub fn description_similarities(&self, query_description: AuSet) -> Vec<f32> {
        let q = self.desc_embedder.embed(query_description);
        self.desc_embeddings
            .iter()
            .map(|e| cosine_similarity(e, &q))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use videosynth::dataset::{Dataset, DatasetProfile, Scale};

    fn setup() -> (Dataset, Retriever) {
        let ds = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), 21);
        let descs: Vec<AuSet> = ds.samples.iter().map(|v| v.apex_aus()).collect();
        let r = Retriever::build(&ds.samples, &descs, 5);
        (ds, r)
    }

    #[test]
    fn top_k_orders_by_similarity() {
        let pool = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.7, 0.7]];
        let got = retrieve_top_k(&pool, &[1.0, 0.1], 2);
        assert_eq!(got[0], 0);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn by_description_retrieves_identical_description() {
        let (ds, r) = setup();
        // Query with the exact description of pool item 3 → item 3 (or an
        // identical-description item) must come back.
        let target = ds.samples[3].apex_aus();
        if target.is_empty() {
            return;
        }
        let idx = r
            .select(RetrievalStrategy::ByDescription, &ds.samples[3], target, 0)
            .unwrap();
        assert_eq!(r.pool_descriptions[idx], target);
    }

    #[test]
    fn none_strategy_returns_none() {
        let (ds, r) = setup();
        assert!(r
            .select(RetrievalStrategy::None, &ds.samples[0], AuSet::EMPTY, 0)
            .is_none());
    }

    #[test]
    fn random_is_deterministic_per_seed_and_query() {
        let (ds, r) = setup();
        let a = r.select(RetrievalStrategy::Random, &ds.samples[1], AuSet::EMPTY, 9);
        let b = r.select(RetrievalStrategy::Random, &ds.samples[1], AuSet::EMPTY, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn by_vision_self_retrieval() {
        // Querying with a pool member retrieves itself (max self-similarity).
        let (ds, r) = setup();
        let idx = r
            .select(RetrievalStrategy::ByVision, &ds.samples[2], AuSet::EMPTY, 0)
            .unwrap();
        assert_eq!(idx, 2);
    }

    #[test]
    fn similarity_vectors_have_pool_length() {
        let (ds, r) = setup();
        assert_eq!(r.visual_similarities(&ds.samples[0]).len(), ds.len());
        assert_eq!(r.description_similarities(AuSet::FULL).len(), ds.len());
    }

    #[test]
    fn labels_match_table_vii() {
        assert_eq!(RetrievalStrategy::None.label(), "w/o Example");
        assert_eq!(
            RetrievalStrategy::ByDescription.label(),
            "Retrieve-by-description"
        );
    }
}
