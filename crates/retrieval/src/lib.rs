//! `retrieval` — in-context example retrieval (§IV-F, Table VII,
//! Figures 7–8).
//!
//! The paper compares three ways of picking an in-context example for each
//! test sample: random, *retrieve-by-vision* (cosine similarity of
//! Videoformer video embeddings) and *retrieve-by-description* (cosine
//! similarity of BERT embeddings of the facial-action descriptions).
//!
//! Substitutions (both documented in DESIGN.md): the generic pretrained
//! Videoformer is a seeded random projection of the video's patch features
//! (a Johnson–Lindenstrauss sketch preserves exactly the cosine geometry a
//! frozen generic encoder provides), and BERT over the closed description
//! language reduces to the description's AU indicator vector (texts are
//! template renderings, so their semantics *is* the AU set).

pub mod analysis;
pub mod embed;
pub mod strategy;

pub use embed::{DescriptionEmbedder, VisualEmbedder};
pub use strategy::{retrieve_top_k, RetrievalStrategy, Retriever};
