//! Helpful/unhelpful similarity analysis (Figure 7).
//!
//! The paper buckets training samples by whether using them as the
//! in-context example leads the model to the *correct* stress prediction
//! ("Helpful") or not ("Unhelpful"), then compares the cosine-similarity
//! distributions under the two embeddings.  A bigger separation means the
//! embedding is a better retrieval key.

/// Summary statistics of one similarity population.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimilarityStats {
    /// Sample count.
    pub n: usize,
    /// Mean similarity.
    pub mean: f32,
    /// Standard deviation.
    pub std: f32,
}

impl SimilarityStats {
    /// Compute over a slice.
    pub fn of(values: &[f32]) -> Self {
        if values.is_empty() {
            return Self::default();
        }
        let n = values.len();
        let mean = values.iter().sum::<f32>() / n as f32;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        SimilarityStats {
            n,
            mean,
            std: var.sqrt(),
        }
    }
}

/// Helpful-vs-unhelpful separation of one embedding (one panel of Fig. 7).
#[derive(Clone, Copy, Debug, Default)]
pub struct Separation {
    /// Similarities of helpful examples.
    pub helpful: SimilarityStats,
    /// Similarities of unhelpful examples.
    pub unhelpful: SimilarityStats,
}

impl Separation {
    /// Build from labelled similarity pairs `(similarity, was_helpful)`.
    pub fn from_pairs(pairs: &[(f32, bool)]) -> Self {
        let helpful: Vec<f32> = pairs.iter().filter(|p| p.1).map(|p| p.0).collect();
        let unhelpful: Vec<f32> = pairs.iter().filter(|p| !p.1).map(|p| p.0).collect();
        Separation {
            helpful: SimilarityStats::of(&helpful),
            unhelpful: SimilarityStats::of(&unhelpful),
        }
    }

    /// Cohen's d between the two populations (how distinguishable helpful
    /// samples are by similarity alone — the quantity Fig. 7 visualises).
    pub fn effect_size(&self) -> f32 {
        let pooled_var = (self.helpful.std.powi(2) * self.helpful.n as f32
            + self.unhelpful.std.powi(2) * self.unhelpful.n as f32)
            / (self.helpful.n + self.unhelpful.n).max(1) as f32;
        if pooled_var <= 0.0 {
            return 0.0;
        }
        (self.helpful.mean - self.unhelpful.mean) / pooled_var.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_values() {
        let s = SimilarityStats::of(&[1.0, 3.0]);
        assert_eq!(s.n, 2);
        assert!((s.mean - 2.0).abs() < 1e-6);
        assert!((s.std - 1.0).abs() < 1e-6);
        assert_eq!(SimilarityStats::of(&[]), SimilarityStats::default());
    }

    #[test]
    fn separation_partitions_pairs() {
        let pairs = [(0.9, true), (0.8, true), (0.1, false), (0.2, false)];
        let sep = Separation::from_pairs(&pairs);
        assert_eq!(sep.helpful.n, 2);
        assert_eq!(sep.unhelpful.n, 2);
        assert!(sep.helpful.mean > sep.unhelpful.mean);
        assert!(sep.effect_size() > 2.0);
    }

    #[test]
    fn zero_variance_effect_size_is_zero() {
        let pairs = [(0.5, true), (0.5, false)];
        let sep = Separation::from_pairs(&pairs);
        assert_eq!(sep.effect_size(), 0.0);
    }

    #[test]
    fn overlapping_populations_have_small_effect() {
        let mut pairs = Vec::new();
        for i in 0..50 {
            let v = (i % 10) as f32 / 10.0;
            pairs.push((v, i % 2 == 0));
        }
        let sep = Separation::from_pairs(&pairs);
        assert!(sep.effect_size().abs() < 0.5);
    }
}
