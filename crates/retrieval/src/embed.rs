//! Video and description embedders.

use facs::au::{AuSet, NUM_AUS};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tinynn::rngutil::normal;
use videosynth::features::patch_features;
use videosynth::video::VideoSample;

/// Videoformer stand-in: a fixed (seeded) random projection of the video's
/// expressive-frame and difference patch features into `dim` dimensions.
#[derive(Clone, Debug)]
pub struct VisualEmbedder {
    projection: Vec<f32>,
    in_dim: usize,
    /// Embedding width.
    pub dim: usize,
    patch: usize,
}

impl VisualEmbedder {
    /// Build with 8-pixel patches (144 features per frame, 288 total).
    pub fn new(dim: usize, seed: u64) -> Self {
        let patch = 8;
        let per_frame = (96 / patch) * (96 / patch);
        let in_dim = per_frame * 2;
        let mut rng = StdRng::seed_from_u64(seed);
        let projection = (0..in_dim * dim)
            .map(|_| normal(&mut rng) / (in_dim as f32).sqrt())
            .collect();
        VisualEmbedder {
            projection,
            in_dim,
            dim,
            patch,
        }
    }

    /// Embed a video: `[f_e features ‖ (f_e − f_l) features] × P`.
    pub fn embed(&self, video: &VideoSample) -> Vec<f32> {
        let (fe, fl) = video.expressive_pair();
        let a = patch_features(&fe, self.patch);
        let b = patch_features(&fl, self.patch);
        let mut x = Vec::with_capacity(self.in_dim);
        x.extend_from_slice(&a);
        x.extend(a.iter().zip(&b).map(|(p, q)| p - q));
        let mut out = vec![0.0f32; self.dim];
        for (i, &xi) in x.iter().enumerate() {
            if xi != 0.0 {
                for (j, o) in out.iter_mut().enumerate() {
                    *o += xi * self.projection[i * self.dim + j];
                }
            }
        }
        out
    }
}

/// BERT stand-in for the closed description language: the AU indicator
/// vector of the description, with each AU weighted by an idf-like factor
/// so rare, specific actions dominate the similarity — mirroring how
/// sentence embeddings privilege content words.
#[derive(Clone, Debug)]
pub struct DescriptionEmbedder {
    weights: [f32; NUM_AUS],
}

impl DescriptionEmbedder {
    /// Estimate idf weights from a pool of descriptions.
    pub fn fit(pool: &[AuSet]) -> Self {
        let mut weights = [1.0f32; NUM_AUS];
        if !pool.is_empty() {
            for (i, w) in weights.iter_mut().enumerate() {
                let au = facs::au::ALL_AUS[i];
                let df = pool.iter().filter(|s| s.contains(au)).count();
                *w = ((pool.len() as f32 + 1.0) / (df as f32 + 1.0)).ln() + 1.0;
            }
        }
        DescriptionEmbedder { weights }
    }

    /// Uniform weights (no pool statistics).
    pub fn uniform() -> Self {
        DescriptionEmbedder {
            weights: [1.0; NUM_AUS],
        }
    }

    /// Embed one description.
    pub fn embed(&self, description: AuSet) -> Vec<f32> {
        let mut v = description.to_dense().to_vec();
        for (x, w) in v.iter_mut().zip(&self.weights) {
            *x *= w;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facs::ActionUnit;
    use tinynn::tensor::cosine_similarity;
    use videosynth::dataset::{Dataset, DatasetProfile, Scale};

    #[test]
    fn visual_embedding_is_deterministic_and_sized() {
        let ds = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), 1);
        let e = VisualEmbedder::new(32, 7);
        let a = e.embed(&ds.samples[0]);
        let b = e.embed(&ds.samples[0]);
        assert_eq!(a.len(), 32);
        assert_eq!(a, b);
    }

    #[test]
    fn similar_videos_embed_closer_than_dissimilar() {
        // Same subject, same label → usually more similar AU content than a
        // different subject with the opposite label.  Check on aggregate.
        let ds = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), 2);
        let e = VisualEmbedder::new(48, 3);
        let embs: Vec<Vec<f32>> = ds.samples.iter().map(|v| e.embed(v)).collect();
        let mut same = Vec::new();
        let mut diff = Vec::new();
        for i in 0..ds.len() {
            for j in (i + 1)..ds.len() {
                let sim = cosine_similarity(&embs[i], &embs[j]);
                if ds.samples[i].label == ds.samples[j].label {
                    same.push(sim);
                } else {
                    diff.push(sim);
                }
            }
        }
        let ms: f32 = same.iter().sum::<f32>() / same.len() as f32;
        let md: f32 = diff.iter().sum::<f32>() / diff.len() as f32;
        assert!(ms > md, "same-label mean sim {ms} vs cross-label {md}");
    }

    #[test]
    fn description_embedding_reflects_au_overlap() {
        let e = DescriptionEmbedder::uniform();
        let a = AuSet::from_aus([ActionUnit::BrowLowerer, ActionUnit::LipStretcher]);
        let b = AuSet::from_aus([ActionUnit::BrowLowerer, ActionUnit::LipStretcher]);
        let c = AuSet::from_aus([ActionUnit::CheekRaiser, ActionUnit::LipCornerPuller]);
        let sim_ab = cosine_similarity(&e.embed(a), &e.embed(b));
        let sim_ac = cosine_similarity(&e.embed(a), &e.embed(c));
        assert!((sim_ab - 1.0).abs() < 1e-6);
        assert!(sim_ac < 0.1);
    }

    #[test]
    fn idf_downweights_common_aus() {
        // AU25 appears everywhere in the pool, AU9 once.
        let mut pool = vec![AuSet::from_aus([ActionUnit::LipsPart]); 20];
        pool.push(AuSet::from_aus([
            ActionUnit::NoseWrinkler,
            ActionUnit::LipsPart,
        ]));
        let e = DescriptionEmbedder::fit(&pool);
        let common = e.embed(AuSet::from_aus([ActionUnit::LipsPart]));
        let rare = e.embed(AuSet::from_aus([ActionUnit::NoseWrinkler]));
        let wc = common[ActionUnit::LipsPart.index()];
        let wr = rare[ActionUnit::NoseWrinkler.index()];
        assert!(wr > wc, "rare AU weight {wr} should exceed common {wc}");
    }
}
