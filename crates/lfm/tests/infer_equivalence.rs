//! The incremental-decoding contract: the KV-cached [`InferSession`] path
//! must be *bit-identical* to the full-recompute graph oracle — same
//! logits, hence same sampled tokens for the same (prompt, seed,
//! temperature) — at any runtime thread count.

use facs::au::AuVector;
use lfm::{InferSession, Lfm, ModelConfig, Prompt, Special};
use rand::rngs::StdRng;
use rand::SeedableRng;
use videosynth::render::render_face;

fn model() -> Lfm {
    Lfm::new(ModelConfig::tiny(), 42)
}

/// A describe-style prompt: instruction special + image + Bos, with
/// `pad` extra separator tokens to vary the prompt length.
fn prompt_with_pad(m: &Lfm, pad: usize) -> Prompt {
    let mut p = Prompt::new();
    p.push_special(&m.vocab, Special::Describe);
    p.push_image(&m.cfg, &render_face(&AuVector::zeros(), 0.01, 1));
    p.push_tokens(&vec![m.vocab.special(Special::Sep); pad]);
    p.push_special(&m.vocab, Special::Bos);
    p
}

#[test]
fn session_decode_matches_oracle_across_seeds_temps_lengths() {
    let m = model();
    for pad in [0usize, 5, 17] {
        let p = prompt_with_pad(&m, pad);
        for &(temperature, seed) in &[(0.0f32, 0u64), (0.7, 3), (1.0, 7), (1.3, 11)] {
            let fast = m.generate(&p, 12, temperature, seed);
            let oracle = m.generate_full(&p, 12, temperature, seed);
            assert_eq!(
                fast, oracle,
                "pad={pad} temperature={temperature} seed={seed}"
            );
        }
    }
}

#[test]
fn session_logits_match_oracle_logits_bitwise() {
    let m = model();
    let p = prompt_with_pad(&m, 3);
    let mut s = InferSession::new(&m);
    let fast = s.set_context(&m, &p, &[]).to_vec();
    let oracle = m.last_logits_full(&p, &[]);
    assert_eq!(fast, oracle);
    // And after a decoded token.
    let tok = m.vocab.special(Special::Sep);
    let fast = s.push_token(&m, tok).to_vec();
    let oracle = m.last_logits_full(&p, &[tok]);
    assert_eq!(fast, oracle);
}

#[test]
fn decode_is_bit_identical_across_thread_counts() {
    let m = model();
    let p = prompt_with_pad(&m, 9);
    let reference = m.generate(&p, 10, 0.9, 5);
    let ref_logits = m.last_logits_full(&p, &[]);
    for threads in [1usize, 2, 4] {
        runtime::set_threads(threads);
        assert_eq!(m.generate(&p, 10, 0.9, 5), reference, "threads={threads}");
        assert_eq!(m.last_logits_full(&p, &[]), ref_logits, "threads={threads}");
    }
    runtime::set_threads(0);
}

#[test]
fn session_prefix_reuse_matches_fresh_session() {
    let m = model();
    let p1 = prompt_with_pad(&m, 4);
    let p2 = prompt_with_pad(&m, 8); // shares the Describe+image prefix
    let mut reused = InferSession::new(&m);
    reused.set_context(&m, &p1, &[]);
    let before = reused.prefill_positions();
    let via_reuse = reused.set_context(&m, &p2, &[]).to_vec();
    // The shared prefix must not be recomputed…
    assert!(
        reused.prefill_positions() - before < p2.seq_len(&m.cfg) as u64,
        "LCP reuse did not skip any prefix rows"
    );
    // …and the logits must equal a fresh session's.
    let mut fresh = InferSession::new(&m);
    assert_eq!(via_reuse, fresh.set_context(&m, &p2, &[]));
    // Switching back (shrinking the context) is exact too.
    let mut fresh1 = InferSession::new(&m);
    assert_eq!(
        reused.set_context(&m, &p1, &[]),
        fresh1.set_context(&m, &p1, &[])
    );
}

#[test]
fn choose_and_distribution_match_oracle() {
    let m = model();
    let p = prompt_with_pad(&m, 2);
    // next_token_distribution == softmax of the oracle's last logits.
    let dist = m.next_token_distribution(&p);
    let mut oracle = m.last_logits_full(&p, &[]);
    tinynn::kernels::softmax_row(&mut oracle);
    assert_eq!(dist, oracle);
    // choose == sampling the oracle's candidate sub-logits with the same rng.
    let cands = [
        m.vocab.special(Special::Stressed),
        m.vocab.special(Special::Unstressed),
    ];
    let last = m.last_logits_full(&p, &[]);
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let got = m.choose(&p, &cands, 1.0, &mut rng);
        let sub: Vec<f32> = cands.iter().map(|&c| last[c as usize]).collect();
        let mut rng2 = StdRng::seed_from_u64(seed);
        let want = cands[tinynn::rngutil::sample_logits(&mut rng2, &sub, 1.0)];
        assert_eq!(got, want, "seed={seed}");
    }
}

#[test]
fn grammar_session_decode_matches_plain_entry_point() {
    let m = model();
    let mut p = Prompt::new();
    p.push_special(&m.vocab, Special::Describe);
    p.push_image(&m.cfg, &render_face(&AuVector::zeros(), 0.01, 1));
    p.push_special(&m.vocab, Special::Bos);
    let plain = lfm::grammar::generate_description(&m, &p, 0.8, 13);
    let mut s = InferSession::new(&m);
    let via_session = lfm::grammar::generate_description_within_session(
        &m,
        &mut s,
        &p,
        facs::au::AuSet::FULL,
        0.8,
        13,
    );
    assert_eq!(plain, via_session);
    // Re-running on the warm session (full prefix hit) is still identical.
    let again = lfm::grammar::generate_description_within_session(
        &m,
        &mut s,
        &p,
        facs::au::AuSet::FULL,
        0.8,
        13,
    );
    assert_eq!(plain, again);
}

/// The fast kernel tier must not change a single logit bit: an `Exact`
/// session and a `Fast` session walk the same context to the same bits,
/// across prefill, LCP-reusing re-contexting and incremental decode.
#[test]
fn fast_tier_session_is_bit_identical_to_exact_tier() {
    use tinynn::kernels::KernelTier;
    let m = model();
    for pad in [0usize, 5, 17] {
        let p = prompt_with_pad(&m, pad);
        let mut exact = InferSession::with_tier(&m, KernelTier::Exact);
        let mut fast = InferSession::with_tier(&m, KernelTier::Fast);
        assert_eq!(exact.tier(), KernelTier::Exact);
        assert_eq!(fast.tier(), KernelTier::Fast);
        let le = exact.set_context(&m, &p, &[]).to_vec();
        let lf = fast.set_context(&m, &p, &[]).to_vec();
        assert_eq!(le, lf, "prefill logits, pad={pad}");
        let tok = m.vocab.special(Special::Sep);
        for step in 0..6 {
            let le = exact.push_token(&m, tok).to_vec();
            let lf = fast.push_token(&m, tok).to_vec();
            assert_eq!(le, lf, "decode step {step}, pad={pad}");
        }
    }
}

/// Greedy generation under the fast tier equals the full-recompute graph
/// oracle token-for-token (transitively: fast session == exact session ==
/// tape), including sampled (non-greedy) temperatures.
#[test]
fn fast_tier_generation_matches_graph_oracle() {
    use tinynn::kernels::KernelTier;
    let m = model();
    let p = prompt_with_pad(&m, 7);
    for &(temperature, seed) in &[(0.0f32, 0u64), (0.9, 5)] {
        let mut fast = InferSession::with_tier(&m, KernelTier::Fast);
        let got = m.generate_with_session(&mut fast, &p, 12, temperature, seed);
        let oracle = m.generate_full(&p, 12, temperature, seed);
        assert_eq!(got, oracle, "temperature={temperature} seed={seed}");
    }
}

/// A `FastQ8` session is lossy by contract but must stay well-formed:
/// finite logits of the right arity, and a probability distribution that
/// sums to one.
#[test]
fn q8_tier_session_produces_finite_distributions() {
    use tinynn::kernels::KernelTier;
    let m = model();
    let p = prompt_with_pad(&m, 3);
    let mut s = InferSession::with_tier(&m, KernelTier::FastQ8);
    let logits = s.set_context(&m, &p, &[]).to_vec();
    assert_eq!(logits.len(), m.vocab.len());
    assert!(logits.iter().all(|v| v.is_finite()));
    let dist = m.next_token_distribution_with_session(&mut s, &p);
    assert!((dist.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    assert!(dist.iter().all(|&p| (0.0..=1.0).contains(&p)));
}
