//! Cross-session prefix sharing: sessions attached to one `PrefixCache`
//! over a shared `PageSlab` must adopt each other's prefills bit-exactly,
//! never re-embed a published prefix, and degrade cleanly (consistent
//! state, typed error) when the bounded slab runs dry.

use std::sync::Arc;

use facs::au::AuVector;
use lfm::{InferSession, Lfm, ModelConfig, PageSlab, PagesExhausted, PrefixCache, Prompt, Special};
use tinynn::kernels::KernelTier;
use videosynth::render::render_face;

fn model() -> Lfm {
    Lfm::new(ModelConfig::tiny(), 42)
}

fn prompt_with_pad(m: &Lfm, pad: usize) -> Prompt {
    let mut p = Prompt::new();
    p.push_special(&m.vocab, Special::Describe);
    p.push_image(&m.cfg, &render_face(&AuVector::zeros(), 0.01, 1));
    p.push_tokens(&vec![m.vocab.special(Special::Sep); pad]);
    p.push_special(&m.vocab, Special::Bos);
    p
}

fn shared_session(m: &Lfm, slab: &Arc<PageSlab>, tree: &Arc<PrefixCache>) -> InferSession {
    InferSession::with_parts(
        m,
        KernelTier::Exact,
        Arc::clone(slab),
        Some(Arc::clone(tree)),
    )
}

#[test]
fn adoption_is_bitwise_and_skips_prefill() {
    let m = model();
    let p = prompt_with_pad(&m, 3);
    let slab = PageSlab::new(m.cfg.d_model, 8, 0);
    let tree = PrefixCache::new(0);

    let mut a = shared_session(&m, &slab, &tree);
    let want = a.set_context(&m, &p, &[]).to_vec();
    let prompt_rows = a.len() as u64;
    assert_eq!(a.prefill_positions(), prompt_rows);
    assert_eq!(a.prefix_hit_tokens(), 0);
    assert_eq!(tree.entries(), 1);

    // B adopts A's published prefill: zero rows embedded, logits bitwise.
    let mut b = shared_session(&m, &slab, &tree);
    let got = b.set_context(&m, &p, &[]).to_vec();
    assert_eq!(got, want);
    assert_eq!(b.prefill_positions(), 0, "whole prompt adopted");
    assert_eq!(b.prefix_hit_tokens(), prompt_rows);

    // Adoption also matches a fully independent recompute.
    let mut solo = InferSession::new(&m);
    assert_eq!(solo.set_context(&m, &p, &[]).to_vec(), want);

    // Divergence after the shared prefix: B decodes without disturbing A.
    let tok = m.vocab.special(Special::Sep);
    let b_next = b.push_token(&m, tok).to_vec();
    let solo_next = solo.push_token(&m, tok).to_vec();
    assert_eq!(b_next, solo_next, "decode after adoption is bitwise");
    assert_eq!(a.last_logits(), &want[..], "co-tenant state untouched");
}

#[test]
fn partial_overlap_adopts_only_the_common_prefix() {
    let m = model();
    let slab = PageSlab::new(m.cfg.d_model, 4, 0);
    let tree = PrefixCache::new(0);

    let mut a = shared_session(&m, &slab, &tree);
    a.set_context(&m, &prompt_with_pad(&m, 6), &[]);

    // Same instruction+image preamble, different tail.
    let mut b = shared_session(&m, &slab, &tree);
    let p2 = prompt_with_pad(&m, 2);
    let want = InferSession::new(&m).set_context(&m, &p2, &[]).to_vec();
    let got = b.set_context(&m, &p2, &[]).to_vec();
    assert_eq!(got, want);
    assert!(b.prefix_hit_tokens() > 0, "preamble must be adopted");
    assert!(
        (b.prefill_positions() + b.prefix_hit_tokens()) as usize == b.len(),
        "adopted + embedded covers the context exactly"
    );
}

#[test]
fn bounded_slab_fails_typed_and_recovers_after_clear() {
    let m = model();
    // Far too small for one prompt (7 rows need 2 pages of 4).
    let slab = PageSlab::new(m.cfg.d_model, 4, 1);
    let tree = PrefixCache::new(0);
    let p = prompt_with_pad(&m, 3);

    let mut s = shared_session(&m, &slab, &tree);
    assert_eq!(s.try_set_context(&m, &p, &[]), Err(PagesExhausted));
    drop(s);
    tree.clear();
    assert_eq!(slab.pages_in_use(), 0, "failure must strand no pages");

    // A big-enough slab succeeds, and dropping session + tree frees all.
    let slab = PageSlab::new(m.cfg.d_model, 4, 4096);
    let mut s = shared_session(&m, &slab, &tree);
    s.set_context(&m, &p, &[]);
    assert!(slab.pages_in_use() > 0);
    drop(s);
    assert!(slab.pages_in_use() > 0, "published snapshot pins pages");
    tree.clear();
    assert_eq!(slab.pages_in_use(), 0, "clear releases the snapshot pages");
}
