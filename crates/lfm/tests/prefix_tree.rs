//! Property tests for `lfm::prefix::RadixTree`: insert/match/remove must
//! agree with brute-force longest-common-prefix over plain token lists.

use lfm::RadixTree;
use proptest::prelude::*;

fn lcp(a: &[u16], b: &[u16]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

/// Short sequences over a tiny alphabet so shared prefixes, edge splits and
/// mid-edge matches all happen constantly.
fn key_strategy() -> impl Strategy<Value = Vec<u16>> {
    proptest::collection::vec(0u16..4, 0..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `longest_match` equals the brute-force maximum `lcp(key, query)`
    /// over all live entries, and the returned value belongs to an entry
    /// realizing that maximum.
    #[test]
    fn matches_brute_force_lcp(
        keys in proptest::collection::vec(key_strategy(), 1..12),
        queries in proptest::collection::vec(key_strategy(), 1..8),
    ) {
        let mut tree: RadixTree<u16, usize> = RadixTree::new(0);
        // Later inserts win on duplicate keys — mirror that.
        let mut live: Vec<(Vec<u16>, usize)> = Vec::new();
        for (id, key) in keys.iter().enumerate() {
            tree.insert(key, id);
            live.retain(|(k, _)| k != key);
            live.push((key.clone(), id));
        }
        prop_assert_eq!(tree.len(), live.len());
        for q in &queries {
            let want = live.iter().map(|(k, _)| lcp(k, q)).max().unwrap();
            let (got, &id) = tree.longest_match(q).expect("tree is non-empty");
            prop_assert_eq!(got, want);
            prop_assert_eq!(lcp(&keys[id], q), want, "returned value must realize the max");
        }
    }

    /// Removing a subset of keys leaves the tree equivalent to brute force
    /// over the survivors; removing everything empties it.
    #[test]
    fn remove_detaches_exactly(
        keys in proptest::collection::vec(key_strategy(), 1..10),
        drop_mask in proptest::collection::vec(0u8..2, 10),
        query in key_strategy(),
    ) {
        let mut tree: RadixTree<u16, usize> = RadixTree::new(0);
        let mut live: Vec<(Vec<u16>, usize)> = Vec::new();
        for (id, key) in keys.iter().enumerate() {
            tree.insert(key, id);
            live.retain(|(k, _)| k != key);
            live.push((key.clone(), id));
        }
        for (i, key) in keys.iter().enumerate() {
            if drop_mask[i % drop_mask.len()] == 1 {
                let expect = live.iter().position(|(k, _)| k == key);
                let got = tree.remove(key);
                prop_assert_eq!(got.is_some(), expect.is_some());
                if let Some(p) = expect {
                    live.remove(p);
                }
            }
        }
        prop_assert_eq!(tree.len(), live.len());
        match tree.longest_match(&query) {
            None => prop_assert!(live.is_empty()),
            Some((got, _)) => {
                let want = live.iter().map(|(k, _)| lcp(k, &query)).max().unwrap();
                prop_assert_eq!(got, want);
            }
        }
    }

    /// An LRU-capped tree never exceeds its cap and still answers
    /// consistently with brute force over whichever entries survive.
    #[test]
    fn capped_tree_stays_consistent(
        cap in 1usize..4,
        keys in proptest::collection::vec(key_strategy(), 1..12),
        query in key_strategy(),
    ) {
        let mut tree: RadixTree<u16, usize> = RadixTree::new(cap);
        for (id, key) in keys.iter().enumerate() {
            tree.insert(key, id);
            prop_assert!(tree.len() <= cap);
        }
        if let Some((got, &id)) = tree.longest_match(&query) {
            // Whatever survived, the answer must be self-consistent.
            prop_assert_eq!(lcp(&keys[id], &query), got);
        }
    }
}
