//! Closed vocabulary and word-level tokenizer.
//!
//! The model's language is deliberately closed: the facial-action
//! description template of §IV-A, the stress answer words, instruction
//! markers and the multiple-choice letters of the self-verification task.
//! A closed vocabulary keeps the simulator honest — the model can only say
//! things whose truth the world model can check — while still leaving a
//! combinatorially large output space (every subset of 12 AUs in every
//! region order the decoder might attempt).

use std::collections::HashMap;

use facs::au::ALL_AUS;
use facs::describe::{phrase, HEADER, NEUTRAL};
use facs::region::ALL_REGIONS;

/// Token identifier.
pub type TokenId = u32;

/// Special and structural tokens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Special {
    /// Beginning of an answer.
    Bos,
    /// End of an answer (generation stops here).
    Eos,
    /// Segment separator inside prompts.
    Sep,
    /// Instruction marker I₁ — "describe the facial expressions".
    Describe,
    /// Instruction marker I₂ — "assess the stress level".
    Assess,
    /// Instruction marker I₃ — "highlight the critical facial expressions".
    Highlight,
    /// Reflection instruction (Fig. 3) — "reflect on your description".
    Reflect,
    /// Self-verification instruction (Fig. 4) — "which video is described?".
    Verify,
    /// Marks that the ground-truth label hint in a reflection prompt follows.
    LabelHint,
    /// Marks an in-context example block.
    Example,
    /// Answer word for the stressed class.
    Stressed,
    /// Answer word for the unstressed class.
    Unstressed,
    /// Multiple-choice options for self-verification.
    ChoiceA,
    ChoiceB,
    ChoiceC,
    ChoiceD,
}

/// All special tokens in a fixed order.
pub const ALL_SPECIALS: [Special; 16] = [
    Special::Bos,
    Special::Eos,
    Special::Sep,
    Special::Describe,
    Special::Assess,
    Special::Highlight,
    Special::Reflect,
    Special::Verify,
    Special::LabelHint,
    Special::Example,
    Special::Stressed,
    Special::Unstressed,
    Special::ChoiceA,
    Special::ChoiceB,
    Special::ChoiceC,
    Special::ChoiceD,
];

impl Special {
    /// Surface form used in prompt text.
    pub fn text(self) -> &'static str {
        match self {
            Special::Bos => "<bos>",
            Special::Eos => "<eos>",
            Special::Sep => "<sep>",
            Special::Describe => "<describe>",
            Special::Assess => "<assess>",
            Special::Highlight => "<highlight>",
            Special::Reflect => "<reflect>",
            Special::Verify => "<verify>",
            Special::LabelHint => "<label-hint>",
            Special::Example => "<example>",
            Special::Stressed => "Stressed",
            Special::Unstressed => "Unstressed",
            Special::ChoiceA => "<choice-a>",
            Special::ChoiceB => "<choice-b>",
            Special::ChoiceC => "<choice-c>",
            Special::ChoiceD => "<choice-d>",
        }
    }
}

/// The closed vocabulary with encode/decode maps.
#[derive(Clone, Debug)]
pub struct Vocab {
    id_to_word: Vec<String>,
    word_to_id: HashMap<String, TokenId>,
}

impl Vocab {
    /// Build the canonical vocabulary: specials, then every word of the
    /// description language, the region names and punctuation.
    pub fn build() -> Self {
        let mut v = Vocab {
            id_to_word: Vec::new(),
            word_to_id: HashMap::new(),
        };
        for s in ALL_SPECIALS {
            v.intern(s.text());
        }
        // Punctuation/structure of the description template.
        for p in ["\n", "-", ":", ","] {
            v.intern(p);
        }
        // All words of header, neutral sentence, phrases and region names.
        let mut corpus: Vec<String> = vec![HEADER.to_owned(), NEUTRAL.to_owned()];
        for au in ALL_AUS {
            corpus.push(phrase(au).to_owned());
        }
        for r in ALL_REGIONS {
            corpus.push(r.name().to_owned());
        }
        for text in corpus {
            for w in split_words(&text) {
                v.intern(&w);
            }
        }
        v
    }

    fn intern(&mut self, word: &str) -> TokenId {
        if let Some(&id) = self.word_to_id.get(word) {
            return id;
        }
        let id = self.id_to_word.len() as TokenId;
        self.id_to_word.push(word.to_owned());
        self.word_to_id.insert(word.to_owned(), id);
        id
    }

    /// Vocabulary size.
    pub fn len(&self) -> usize {
        self.id_to_word.len()
    }

    /// Whether the vocabulary is empty (never true for [`Vocab::build`]).
    pub fn is_empty(&self) -> bool {
        self.id_to_word.is_empty()
    }

    /// Id of a special token.
    pub fn special(&self, s: Special) -> TokenId {
        self.word_to_id[s.text()]
    }

    /// Id of a word, if in vocabulary.
    pub fn id_of(&self, word: &str) -> Option<TokenId> {
        self.word_to_id.get(word).copied()
    }

    /// Word of an id.
    pub fn word_of(&self, id: TokenId) -> &str {
        &self.id_to_word[id as usize]
    }

    /// Encode text to token ids.  Every word must be in vocabulary;
    /// returns `None` listing no further detail otherwise.
    pub fn encode(&self, text: &str) -> Option<Vec<TokenId>> {
        split_words(text)
            .into_iter()
            .map(|w| self.id_of(&w))
            .collect()
    }

    /// All words in id order (id `i` is `words()[i]`).  The persistence
    /// layer stores exactly this list.
    pub fn words(&self) -> &[String] {
        &self.id_to_word
    }

    /// Rebuild a vocabulary from an id-ordered word list, as written by
    /// [`Vocab::save`].  Rejects duplicates and missing special tokens so a
    /// corrupted artifact cannot produce a silently different tokenizer.
    pub fn from_words(words: Vec<String>) -> Result<Vocab, String> {
        let mut v = Vocab {
            id_to_word: Vec::with_capacity(words.len()),
            word_to_id: HashMap::with_capacity(words.len()),
        };
        for word in words {
            if v.word_to_id.contains_key(&word) {
                return Err(format!("duplicate vocabulary word {word:?}"));
            }
            let id = v.id_to_word.len() as TokenId;
            v.word_to_id.insert(word.clone(), id);
            v.id_to_word.push(word);
        }
        for s in ALL_SPECIALS {
            if !v.word_to_id.contains_key(s.text()) {
                return Err(format!(
                    "vocabulary is missing special token {:?}",
                    s.text()
                ));
            }
        }
        Ok(v)
    }

    /// Write the id-ordered word list (little-endian: `u32` count, then per
    /// word `u32` length + UTF-8 bytes).  Words may contain any character —
    /// including the newline token — so the encoding is length-prefixed
    /// binary, not line-oriented text.
    pub fn save<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        w.write_all(&(self.id_to_word.len() as u32).to_le_bytes())?;
        for word in &self.id_to_word {
            let bytes = word.as_bytes();
            w.write_all(&(bytes.len() as u32).to_le_bytes())?;
            w.write_all(bytes)?;
        }
        Ok(())
    }

    /// Read a word list previously written by [`Vocab::save`].
    pub fn load<R: std::io::Read>(r: &mut R) -> std::io::Result<Vocab> {
        let bad = |m: String| std::io::Error::new(std::io::ErrorKind::InvalidData, m);
        let mut buf4 = [0u8; 4];
        r.read_exact(&mut buf4)?;
        let count = u32::from_le_bytes(buf4) as usize;
        // A closed vocabulary is small; a corrupt count must not allocate.
        if count > 65_536 {
            return Err(bad(format!("implausible vocabulary size {count}")));
        }
        let mut words = Vec::with_capacity(count);
        for _ in 0..count {
            r.read_exact(&mut buf4)?;
            let len = u32::from_le_bytes(buf4) as usize;
            if len > 4096 {
                return Err(bad(format!("implausible word length {len}")));
            }
            let mut bytes = vec![0u8; len];
            r.read_exact(&mut bytes)?;
            words.push(String::from_utf8(bytes).map_err(|e| bad(e.to_string()))?);
        }
        Vocab::from_words(words).map_err(bad)
    }

    /// Decode token ids back to text.  Inverse of [`Vocab::encode`] on the
    /// closed language (whitespace is reconstructed around punctuation).
    pub fn decode(&self, ids: &[TokenId]) -> String {
        let mut out = String::new();
        for (i, &id) in ids.iter().enumerate() {
            let w = self.word_of(id);
            match w {
                "\n" => out.push('\n'),
                "," | ":" => out.push_str(w),
                "-" => {
                    // Bullet dash: no space after a newline, none before region.
                    out.push('-');
                }
                _ => {
                    let need_space =
                        i > 0 && !out.is_empty() && !out.ends_with('\n') && !out.ends_with('-');
                    if need_space {
                        out.push(' ');
                    }
                    out.push_str(w);
                }
            }
        }
        out
    }
}

/// Split text into vocabulary words: whitespace-separated, with `- : ,` and
/// newlines as standalone tokens.
pub fn split_words(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        match ch {
            '\n' => {
                flush(&mut cur, &mut out);
                out.push("\n".to_owned());
            }
            '-' | ':' | ',' => {
                flush(&mut cur, &mut out);
                out.push(ch.to_string());
            }
            c if c.is_whitespace() => flush(&mut cur, &mut out),
            c => cur.push(c),
        }
    }
    flush(&mut cur, &mut out);
    out
}

fn flush(cur: &mut String, out: &mut Vec<String>) {
    if !cur.is_empty() {
        out.push(std::mem::take(cur));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facs::au::{ActionUnit, AuSet};
    use facs::describe::render_description;

    #[test]
    fn vocab_is_closed_and_stable() {
        let v = Vocab::build();
        assert!(v.len() > 40, "vocabulary unexpectedly small: {}", v.len());
        assert!(v.len() < 120, "vocabulary unexpectedly large: {}", v.len());
        // Deterministic ids.
        let v2 = Vocab::build();
        assert_eq!(v.len(), v2.len());
        assert_eq!(v.special(Special::Eos), v2.special(Special::Eos));
    }

    #[test]
    fn specials_have_distinct_ids() {
        let v = Vocab::build();
        let mut ids: Vec<TokenId> = ALL_SPECIALS.iter().map(|&s| v.special(s)).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ALL_SPECIALS.len());
    }

    #[test]
    fn every_description_encodes_and_round_trips() {
        let v = Vocab::build();
        for bits in [0u16, 1, 0b101, 0xFFF, 0b10010, 0b111000111000] {
            let s = AuSet::from_bits(bits);
            let text = render_description(s);
            let ids = v
                .encode(&text)
                .unwrap_or_else(|| panic!("unencodable: {text}"));
            let back = v.decode(&ids);
            assert_eq!(
                facs::describe::parse_description(&back),
                Ok(s),
                "bits {bits:#b}: {back:?}"
            );
        }
    }

    #[test]
    fn decode_restores_template_shape() {
        let v = Vocab::build();
        let text = render_description(AuSet::from_aus([
            ActionUnit::InnerBrowRaiser,
            ActionUnit::CheekRaiser,
        ]));
        let ids = v.encode(&text).unwrap();
        let back = v.decode(&ids);
        assert!(back.contains("-eyebrow:"), "{back}");
        assert!(back.contains("-cheek:"), "{back}");
    }

    #[test]
    fn unknown_word_fails_encode() {
        let v = Vocab::build();
        assert!(v.encode("hello world").is_none());
    }

    #[test]
    fn vocab_round_trips_through_bytes() {
        let v = Vocab::build();
        let mut buf = Vec::new();
        v.save(&mut buf).unwrap();
        let loaded = Vocab::load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), v.len());
        assert_eq!(loaded.words(), v.words());
        for s in ALL_SPECIALS {
            assert_eq!(loaded.special(s), v.special(s));
        }
        // Truncation is rejected.
        let cut = &buf[..buf.len() - 1];
        assert!(Vocab::load(&mut &*cut).is_err());
    }

    #[test]
    fn from_words_rejects_duplicates_and_missing_specials() {
        assert!(Vocab::from_words(vec!["a".into(), "a".into()]).is_err());
        assert!(Vocab::from_words(vec!["just-a-word".into()]).is_err());
        let v = Vocab::build();
        assert!(Vocab::from_words(v.words().to_vec()).is_ok());
    }

    #[test]
    fn split_words_handles_punctuation() {
        assert_eq!(
            split_words("-eyebrow: a, b"),
            vec!["-", "eyebrow", ":", "a", ",", "b"]
        );
        assert_eq!(split_words("x\ny"), vec!["x", "\n", "y"]);
        assert_eq!(split_words("  "), Vec::<String>::new());
    }
}
