//! KV-cached incremental decoding for the [`Lfm`] — the grad-free fast
//! path behind [`Lfm::generate`], [`Lfm::next_token_distribution`] and
//! [`Lfm::choose`].
//!
//! An [`InferSession`] holds, per transformer block, a
//! [`tinynn::infer::KvCache`] over every embedded position, plus the
//! block-stack output (`hidden`) for each position.  Appending a position
//! costs O(L·d) attention instead of the tape's O(L²·d) full recompute,
//! and re-using a session across prompts with a shared prefix (the same
//! video, the same few-shot examples, the same description) skips the
//! shared positions entirely via longest-common-prefix truncation.
//!
//! Every floating-point operation mirrors the tape ops of
//! [`Lfm::embed_sequence`] / [`Lfm::decoder_forward`] in the same order, so
//! the logits — and therefore every sampled token — are bit-identical to
//! the full-recompute oracle ([`Lfm::generate_full`]).  The argument is
//! spelled out in DESIGN.md §infer; the token-for-token equality is
//! asserted in this crate's tests across seeds, temperatures, prompt
//! lengths and runtime thread counts.
//!
//! Storage is paged ([`tinynn::infer::paged`]): each block's cache is a
//! [`PagedKv`] page table over a [`PageSlab`].  Standalone sessions own a
//! private unbounded slab and behave exactly like the old flat caches; the
//! serving scheduler instead passes one bounded slab *per model* plus a
//! [`PrefixCache`] — a cross-request radix tree of published prefill
//! snapshots — via [`InferSession::with_parts`], so concurrent requests
//! sharing a chain preamble adopt each other's pages (refcounted,
//! copy-on-write at the divergence page) instead of re-prefilling.  Since
//! K/V rows for a position are pure functions of the item prefix under
//! fixed weights and tier, adopted pages are bit-identical to the rows
//! recomputation would produce.  Under a bounded slab the `try_*` methods
//! surface [`PagesExhausted`] and leave the session consistent so the
//! scheduler can preempt and retry.

use std::sync::{Arc, Mutex};

use tinynn::infer::{attend_paged, PageSlab, PagedKv, PagesExhausted};
use tinynn::kernels::{self, KernelTier, PackedWeights, Q8Weights};

use crate::model::{Lfm, Prompt, Segment};
use crate::prefix::RadixTree;
use crate::vocab::TokenId;

/// Page granularity for sessions that manage their own slab.
pub const DEFAULT_PAGE_ROWS: usize = 32;

/// Session-side copies of one block's weight matrices (biases stay f32),
/// generic over the representation: [`Q8Weights`] for the `FastQ8` tier,
/// [`PackedWeights`] (aligned padded-stride f32) for the `Fast` tier.
#[derive(Clone, Debug)]
struct BlockWeights<W> {
    wq: W,
    wk: W,
    wv: W,
    wo: W,
    ff1: W,
    ff2: W,
}

/// Session-owned re-encoded weights for every per-token linear layer of
/// the decode hot path (q/k/v/o, both FF layers, the LM head).  The
/// visual projection stays plain f32 — it runs once per image row, not
/// once per decoded token, and keeping it exact keeps image embeddings
/// tier-independent.
#[derive(Clone, Debug)]
struct SessionWeights<W> {
    blocks: Vec<BlockWeights<W>>,
    head: W,
}

/// Quantized weights for [`KernelTier::FastQ8`] (lossy, documented bound).
type SessionQuant = SessionWeights<Q8Weights>;

/// Packed weights for [`KernelTier::Fast`]: bit-identical results, but the
/// padded 64-byte-aligned stride keeps the fast kernel's vector loads off
/// cache-line splits (the unpadded 69-column vocab head is the worst
/// offender).
type SessionPacked = SessionWeights<PackedWeights>;

impl<W> SessionWeights<W> {
    fn build(model: &Lfm, enc: impl Fn(&[f32], usize, usize) -> W) -> Self {
        let cfg = &model.cfg;
        let (d, ff) = (cfg.d_model, cfg.ff);
        let store = &model.store;
        let q = |p, k, c| enc(&store.value(p).data, k, c);
        SessionWeights {
            blocks: model
                .params
                .blocks
                .iter()
                .map(|bp| BlockWeights {
                    wq: q(bp.wq, d, d),
                    wk: q(bp.wk, d, d),
                    wv: q(bp.wv, d, d),
                    wo: q(bp.wo, d, d),
                    ff1: q(bp.ff1_w, d, ff),
                    ff2: q(bp.ff2_w, ff, d),
                })
                .collect(),
            head: q(model.params.head_w, d, model.vocab.len()),
        }
    }
}

/// One linear-row step under a session tier: q8 weights when the session
/// holds them for this matrix, packed f32 when it holds those (Fast tier,
/// bit-identical to plain f32), the tier's f32 kernel otherwise.
fn lin(
    tier: KernelTier,
    out: &mut [f32],
    x: &[f32],
    w: &[f32],
    pw: Option<&PackedWeights>,
    qw: Option<&Q8Weights>,
    b: &[f32],
) {
    match (qw, pw) {
        (Some(q), _) => kernels::linear_row_q8(out, x, q, b),
        (None, Some(p)) => kernels::linear_row_packed(out, x, p, b),
        (None, None) => kernels::linear_row_with(tier, out, x, w, b),
    }
}

/// One embedded position of the mixed visual/text stream: the unit of
/// longest-common-prefix comparison.
#[derive(Clone, Debug, PartialEq)]
enum Item {
    /// A text token.
    Tok(TokenId),
    /// One visual token's feature slice (`cfg.vis_feat_per_token()` floats).
    /// Row `i` of the image projection depends only on this slice, so a
    /// per-position item is a valid prefix unit.
    Vis(Vec<f32>),
}

/// A published prefill: the per-block page tables and block-stack outputs
/// for one item sequence.  Pages are refcount-shared with whoever published
/// them and with every adopter; nothing here is deep-copied row data.
#[derive(Debug)]
struct PrefixSnapshot {
    caches: Vec<PagedKv>,
    hidden: Vec<f32>,
}

/// Cross-request prefix index: a radix tree from item sequences to
/// published prefill snapshots, shared by every session of one model.
///
/// On `set_context`, a session asks the tree for the longest prefix of its
/// target any published snapshot covers; if that beats the session's own
/// LCP it *adopts* the snapshot (cloning page tables — refcounts, not rows
/// — truncated to the match) and only embeds the tail.  After prefilling it
/// *publishes* its own context so later requests can adopt from it.  Rows
/// are pure functions of the item prefix under fixed weights and tier, so
/// adoption is bit-identical to recomputation; the determinism contract is
/// unaffected by who published first.
///
/// The tree is LRU-bounded; evicted snapshots drop their page refcounts,
/// returning unshared pages to the slab.  [`PrefixCache::clear`] does so
/// for everything at once — the scheduler's response to slab exhaustion and
/// to drain.
#[derive(Debug)]
pub struct PrefixCache {
    inner: Mutex<RadixTree<Item, PrefixSnapshot>>,
}

impl PrefixCache {
    /// An empty cache holding at most `cap` snapshots (`0` = unbounded).
    pub fn new(cap: usize) -> Arc<Self> {
        Arc::new(PrefixCache {
            inner: Mutex::new(RadixTree::new(cap)),
        })
    }

    /// Published snapshot count.
    pub fn entries(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Drop every snapshot, releasing their page refcounts.
    pub fn clear(&self) {
        self.inner.lock().unwrap().clear();
    }

    /// The deepest published coverage of `target` beyond `min_len` rows, as
    /// (covered length, page tables truncated to it, hidden rows to it).
    fn adopt(
        &self,
        target: &[Item],
        min_len: usize,
        d: usize,
    ) -> Option<(usize, Vec<PagedKv>, Vec<f32>)> {
        let mut g = self.inner.lock().unwrap();
        let (m, snap) = g.longest_match(target)?;
        if m <= min_len {
            return None;
        }
        let mut caches = snap.caches.clone();
        for c in &mut caches {
            c.truncate(m);
        }
        Some((m, caches, snap.hidden[..m * d].to_vec()))
    }

    /// Record a finished prefill unless an existing snapshot already covers
    /// the whole sequence (which the lookup also LRU-touches).
    fn publish(&self, items: &[Item], caches: &[PagedKv], hidden: &[f32]) {
        let mut g = self.inner.lock().unwrap();
        if let Some((m, _)) = g.longest_match(items) {
            if m == items.len() {
                return;
            }
        }
        g.insert(
            items,
            PrefixSnapshot {
                caches: caches.to_vec(),
                hidden: hidden.to_vec(),
            },
        );
    }
}

/// A reusable incremental-decoding session bound to one model's shapes.
///
/// The session owns all caches and scratch buffers; methods borrow the
/// [`Lfm`] for its parameters.  Typical use:
///
/// ```ignore
/// let mut s = InferSession::new(&model);
/// s.set_context(&model, &prompt, &[]);          // prefill (LCP-aware)
/// let logits = s.last_logits();                 // sample a token...
/// s.push_token(&model, tok);                    // ...then decode one row
/// ```
#[derive(Clone, Debug)]
pub struct InferSession {
    /// Embedded positions, one item each (prefix-comparison key).
    items: Vec<Item>,
    /// Per-block paged KV caches over all embedded positions.
    caches: Vec<PagedKv>,
    /// The slab every cache draws pages from (shared across sessions of
    /// one model in serving; private and unbounded otherwise).
    slab: Arc<PageSlab>,
    /// Cross-request prefix index to adopt from / publish to, if serving.
    shared: Option<Arc<PrefixCache>>,
    /// Block-stack output (pre-`ln_f`) per position, row-major `[len, d]`.
    hidden: Vec<f32>,
    /// Logits of the last position.
    logits: Vec<f32>,
    /// Rows embedded by `set_context` since construction (prefill work).
    prefill_positions: u64,
    /// Rows adopted from the shared prefix cache instead of embedded —
    /// prefill work someone else already did.
    prefix_hit_tokens: u64,
    /// Rows appended by `push_token` since construction (decode work).
    decoded_tokens: u64,
    /// Kernel tier every row of this session runs under (pinned at
    /// construction so ambient tier changes cannot split a context across
    /// tiers mid-sequence).
    tier: KernelTier,
    /// Quantized weights, present only in the [`KernelTier::FastQ8`] tier.
    quant: Option<SessionQuant>,
    /// Packed (aligned padded-stride) f32 weights, present only in the
    /// [`KernelTier::Fast`] tier.  Layout-only: results stay bit-identical.
    packed: Option<SessionPacked>,
    // ----- scratch (reused every row; no per-step allocation) -----
    x: Vec<f32>,
    n: Vec<f32>,
    q: Vec<f32>,
    k: Vec<f32>,
    v: Vec<f32>,
    attn: Vec<f32>,
    proj: Vec<f32>,
    ff: Vec<f32>,
    scores: Vec<f32>,
}

impl InferSession {
    /// Fresh session under the process-global kernel tier
    /// ([`kernels::kernel_tier`], i.e. `--kernel-tier`/`SRCR_KERNEL_TIER`
    /// in the serving binaries, `Exact` by default).
    pub fn new(model: &Lfm) -> Self {
        Self::with_tier(model, kernels::kernel_tier())
    }

    /// Fresh session pinned to an explicit kernel tier, drawing pages from
    /// a private unbounded slab.  `Exact` and `Fast` sessions produce
    /// bit-identical logits (finite weights/activations — see the tinynn
    /// kernels module docs); `FastQ8` quantizes the per-token weight
    /// matrices once here and is lossy within the documented per-column
    /// bound.
    pub fn with_tier(model: &Lfm, tier: KernelTier) -> Self {
        let slab = PageSlab::new(model.cfg.d_model, DEFAULT_PAGE_ROWS, 0);
        Self::with_parts(model, tier, slab, None)
    }

    /// Fresh session over an explicit page slab and (optionally) a shared
    /// cross-request prefix cache — the serving scheduler's constructor.
    /// The slab's row width must match the model, and every session
    /// attached to one `shared` must draw from the same slab.
    pub fn with_parts(
        model: &Lfm,
        tier: KernelTier,
        slab: Arc<PageSlab>,
        shared: Option<Arc<PrefixCache>>,
    ) -> Self {
        let cfg = &model.cfg;
        let d = cfg.d_model;
        assert_eq!(slab.dim(), d, "slab row width must match d_model");
        InferSession {
            items: Vec::with_capacity(cfg.max_seq),
            caches: (0..cfg.layers)
                .map(|_| PagedKv::new(Arc::clone(&slab)))
                .collect(),
            slab,
            shared,
            hidden: Vec::with_capacity(cfg.max_seq * d),
            logits: vec![0.0; model.vocab.len()],
            prefill_positions: 0,
            prefix_hit_tokens: 0,
            decoded_tokens: 0,
            tier,
            quant: (tier == KernelTier::FastQ8)
                .then(|| SessionWeights::build(model, Q8Weights::quantize)),
            packed: (tier == KernelTier::Fast)
                .then(|| SessionWeights::build(model, PackedWeights::pack)),
            x: vec![0.0; d],
            n: vec![0.0; d],
            q: vec![0.0; d],
            k: vec![0.0; d],
            v: vec![0.0; d],
            attn: vec![0.0; d],
            proj: vec![0.0; d],
            ff: vec![0.0; cfg.ff],
            scores: Vec::with_capacity(cfg.max_seq),
        }
    }

    /// Embedded sequence length.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True before any context is set.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Rows embedded via [`InferSession::set_context`] so far.
    pub fn prefill_positions(&self) -> u64 {
        self.prefill_positions
    }

    /// Rows appended via [`InferSession::push_token`] so far.
    pub fn decoded_tokens(&self) -> u64 {
        self.decoded_tokens
    }

    /// Rows adopted from the shared prefix cache instead of re-embedded.
    pub fn prefix_hit_tokens(&self) -> u64 {
        self.prefix_hit_tokens
    }

    /// The page slab this session draws from.
    pub fn slab(&self) -> &Arc<PageSlab> {
        &self.slab
    }

    /// The kernel tier this session was pinned to at construction.
    pub fn tier(&self) -> KernelTier {
        self.tier
    }

    /// Logits of the last embedded position (panics on an empty session).
    pub fn last_logits(&self) -> &[f32] {
        assert!(!self.items.is_empty(), "no context set");
        &self.logits
    }

    /// Make the session's context exactly `prompt ⧺ extra`, reusing the
    /// longest common prefix with the current context, and return the last
    /// position's logits.  Panics on slab exhaustion — only possible under
    /// an explicitly bounded [`PageSlab`], where callers should use
    /// [`InferSession::try_set_context`] instead.
    pub fn set_context(&mut self, model: &Lfm, prompt: &Prompt, extra: &[TokenId]) -> &[f32] {
        self.try_set_context(model, prompt, extra)
            .expect("kv page slab exhausted");
        &self.logits
    }

    /// Fallible [`InferSession::set_context`].  On [`PagesExhausted`] the
    /// session is left internally consistent (a valid shorter context) but
    /// the target context was NOT reached; callers must not keep decoding —
    /// drop or reset the session and retry from a request boundary.
    pub fn try_set_context(
        &mut self,
        model: &Lfm,
        prompt: &Prompt,
        extra: &[TokenId],
    ) -> Result<(), PagesExhausted> {
        let cfg = &model.cfg;
        let per = cfg.vis_feat_per_token();
        let mut target: Vec<Item> = Vec::with_capacity(prompt.seq_len(cfg) + extra.len());
        for seg in prompt.segments() {
            match seg {
                Segment::Tokens(toks) => target.extend(toks.iter().map(|&t| Item::Tok(t))),
                Segment::Image(feats) => {
                    assert_eq!(feats.len(), cfg.vis_tokens * per, "image feature length");
                    target.extend(feats.chunks_exact(per).map(|row| Item::Vis(row.to_vec())));
                }
            }
        }
        target.extend(extra.iter().map(|&t| Item::Tok(t)));
        let l = target.len();
        assert!(l > 0, "empty sequence");
        assert!(
            l <= cfg.max_seq,
            "sequence length {l} exceeds max_seq {}",
            cfg.max_seq
        );

        let lcp = self
            .items
            .iter()
            .zip(&target)
            .take_while(|(a, b)| a == b)
            .count();
        // A published snapshot may cover more of the target than our own
        // context does — adopt its pages and hidden rows for the covered
        // prefix.  Rows are pure functions of the item prefix, so adopted
        // state is bitwise what we would have computed.
        let mut base = lcp;
        if let Some(shared) = self.shared.clone() {
            if let Some((m, caches, hidden)) = shared.adopt(&target, lcp, cfg.d_model) {
                self.items.clear();
                self.items.extend_from_slice(&target[..m]);
                self.caches = caches;
                self.hidden = hidden;
                self.prefix_hit_tokens += (m - lcp) as u64;
                base = m;
            }
        }
        if base == lcp {
            self.items.truncate(lcp);
            self.hidden.truncate(lcp * cfg.d_model);
            for c in &mut self.caches {
                c.truncate(lcp);
            }
        }
        for item in target.into_iter().skip(base) {
            self.try_process_row(model, item)?;
            self.prefill_positions += 1;
        }
        if let Some(shared) = &self.shared {
            shared.publish(&self.items, &self.caches, &self.hidden);
        }
        self.refresh_logits(model);
        Ok(())
    }

    /// Append one text token to the context and return the new logits.
    /// Panics on slab exhaustion — see [`InferSession::try_push_token`].
    pub fn push_token(&mut self, model: &Lfm, tok: TokenId) -> &[f32] {
        self.try_push_token(model, tok)
            .expect("kv page slab exhausted");
        &self.logits
    }

    /// Fallible [`InferSession::push_token`]: on [`PagesExhausted`] the
    /// token was NOT appended and the session still holds its previous
    /// (valid) context.
    pub fn try_push_token(&mut self, model: &Lfm, tok: TokenId) -> Result<(), PagesExhausted> {
        let l = self.items.len() + 1;
        assert!(
            l <= model.cfg.max_seq,
            "sequence length {l} exceeds max_seq {}",
            model.cfg.max_seq
        );
        self.try_process_row(model, Item::Tok(tok))?;
        self.decoded_tokens += 1;
        self.refresh_logits(model);
        Ok(())
    }

    /// Embed and run one position through every block, appending to the
    /// caches and `hidden`.  Mirrors the tape ops row-wise, in tape order.
    /// On [`PagesExhausted`] every cache is rolled back to the pre-row
    /// length and the item is not recorded — the session stays consistent.
    fn try_process_row(&mut self, model: &Lfm, item: Item) -> Result<(), PagesExhausted> {
        let cfg = &model.cfg;
        let d = cfg.d_model;
        let pos = self.items.len();
        let store = &model.store;
        let p = &model.params;

        // Embedding: token row or visual projection, then the position row
        // (the tape adds positions once over the whole concatenated stack).
        match &item {
            Item::Tok(t) => {
                let emb = &store.value(p.tok_emb).data;
                self.x
                    .copy_from_slice(&emb[*t as usize * d..(*t as usize + 1) * d]);
            }
            Item::Vis(feats) => {
                // Always f32 (never quantized); tier-explicit so the
                // session, not ambient state, decides the codegen.
                kernels::linear_row_with(
                    self.tier,
                    &mut self.x,
                    feats,
                    &store.value(p.vis_w).data,
                    &store.value(p.vis_b).data,
                );
            }
        }
        let posr = &store.value(p.pos_emb).data[pos * d..(pos + 1) * d];
        for (xi, pi) in self.x.iter_mut().zip(posr) {
            *xi += pi;
        }

        let dh = d / cfg.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let tier = self.tier;
        let mut exhausted = false;
        for (bi, (bp, cache)) in p.blocks.iter().zip(&mut self.caches).enumerate() {
            let qb = self.quant.as_ref().map(|q| &q.blocks[bi]);
            let pb = self.packed.as_ref().map(|p| &p.blocks[bi]);
            // Pre-norm attention.
            kernels::layer_norm_row(
                &mut self.n,
                &self.x,
                &store.value(bp.ln1_g).data,
                &store.value(bp.ln1_b).data,
                1e-5,
            );
            lin(
                tier,
                &mut self.q,
                &self.n,
                &store.value(bp.wq).data,
                pb.map(|p| &p.wq),
                qb.map(|q| &q.wq),
                &store.value(bp.bq).data,
            );
            lin(
                tier,
                &mut self.k,
                &self.n,
                &store.value(bp.wk).data,
                pb.map(|p| &p.wk),
                qb.map(|q| &q.wk),
                &store.value(bp.bk).data,
            );
            lin(
                tier,
                &mut self.v,
                &self.n,
                &store.value(bp.wv).data,
                pb.map(|p| &p.wv),
                qb.map(|q| &q.wv),
                &store.value(bp.bv).data,
            );
            if cache.append(&self.k, &self.v).is_err() {
                exhausted = true;
                break;
            }
            attend_paged(
                &mut self.attn,
                &self.q,
                cache,
                cfg.heads,
                scale,
                &mut self.scores,
            );
            lin(
                tier,
                &mut self.proj,
                &self.attn,
                &store.value(bp.wo).data,
                pb.map(|p| &p.wo),
                qb.map(|q| &q.wo),
                &store.value(bp.bo).data,
            );
            for (xi, ai) in self.x.iter_mut().zip(&self.proj) {
                *xi += ai;
            }

            // Pre-norm feed-forward.
            kernels::layer_norm_row(
                &mut self.n,
                &self.x,
                &store.value(bp.ln2_g).data,
                &store.value(bp.ln2_b).data,
                1e-5,
            );
            lin(
                tier,
                &mut self.ff,
                &self.n,
                &store.value(bp.ff1_w).data,
                pb.map(|p| &p.ff1),
                qb.map(|q| &q.ff1),
                &store.value(bp.ff1_b).data,
            );
            for f in self.ff.iter_mut() {
                *f = kernels::gelu_fwd(*f);
            }
            lin(
                tier,
                &mut self.proj,
                &self.ff,
                &store.value(bp.ff2_w).data,
                pb.map(|p| &p.ff2),
                qb.map(|q| &q.ff2),
                &store.value(bp.ff2_b).data,
            );
            for (xi, hi) in self.x.iter_mut().zip(&self.proj) {
                *xi += hi;
            }
        }
        if exhausted {
            // Roll caches of earlier blocks back to the pre-row length so
            // the whole session still describes `items` exactly.
            for c in &mut self.caches {
                c.truncate(pos);
            }
            return Err(PagesExhausted);
        }
        self.hidden.extend_from_slice(&self.x);
        self.items.push(item);
        Ok(())
    }

    /// Recompute the last position's logits from its cached block-stack
    /// output: `ln_f` then the LM head.
    fn refresh_logits(&mut self, model: &Lfm) {
        let store = &model.store;
        let p = &model.params;
        let d = model.cfg.d_model;
        let len = self.items.len();
        let last = &self.hidden[(len - 1) * d..len * d];
        kernels::layer_norm_row(
            &mut self.n,
            last,
            &store.value(p.ln_f_g).data,
            &store.value(p.ln_f_b).data,
            1e-5,
        );
        lin(
            self.tier,
            &mut self.logits,
            &self.n,
            &store.value(p.head_w).data,
            self.packed.as_ref().map(|p| &p.head),
            self.quant.as_ref().map(|q| &q.head),
            &store.value(p.head_b).data,
        );
    }
}
