//! Instruction templates I₁/I₂/I₃ and auxiliary prompts (reflection,
//! self-verification, in-context examples), plus answer encoders/parsers.
//!
//! The paper expresses instructions in free-form English; here each
//! instruction is a structured marker token followed by the same content
//! (video, prior description, label hint, …).  Answers are sequences in the
//! closed description language terminated by `Eos`.

use facs::au::AuSet;
use facs::describe::{parse_description, render_description};
use videosynth::video::{StressLabel, VideoSample};

use crate::model::{Lfm, Prompt};
use crate::vocab::{Special, TokenId, Vocab};

/// An in-context example: a solved training case shown before the query
/// (§IV-F).
#[derive(Clone, Debug)]
pub struct IclExample<'a> {
    /// The example video.
    pub video: &'a VideoSample,
    /// Its facial-action description.
    pub description: AuSet,
    /// Its ground-truth stress label.
    pub label: StressLabel,
}

/// I₁ — "Describe the facial expressions in this video."
pub fn describe_prompt(m: &Lfm, video: &VideoSample) -> Prompt {
    let mut p = Prompt::new();
    p.push_special(&m.vocab, Special::Describe);
    p.push_video(&m.cfg, video);
    p.push_special(&m.vocab, Special::Bos);
    p
}

/// I₂ — "Assess whether the subject is stressed", given the video and a
/// facial-action description `E`.
pub fn assess_prompt(m: &Lfm, video: &VideoSample, description: AuSet) -> Prompt {
    assess_prompt_with_examples(m, video, description, &[])
}

/// I₂ with in-context examples prepended (§IV-F).
pub fn assess_prompt_with_examples(
    m: &Lfm,
    video: &VideoSample,
    description: AuSet,
    examples: &[IclExample<'_>],
) -> Prompt {
    let mut p = Prompt::new();
    for ex in examples {
        p.push_special(&m.vocab, Special::Example);
        p.push_video(&m.cfg, ex.video);
        p.push_special(&m.vocab, Special::Sep);
        p.push_text(&m.vocab, &render_description(ex.description));
        p.push_special(&m.vocab, Special::Sep);
        p.push_special(&m.vocab, label_special(ex.label));
    }
    p.push_special(&m.vocab, Special::Assess);
    p.push_video(&m.cfg, video);
    p.push_special(&m.vocab, Special::Sep);
    p.push_text(&m.vocab, &render_description(description));
    p.push_special(&m.vocab, Special::Bos);
    p
}

/// I₂ over raw frames instead of a [`VideoSample`] — used when the frames
/// have been perturbed (mosaic / gaussian disturb) by the faithfulness
/// protocols, so the perturbation actually reaches the model input.
pub fn assess_prompt_from_images(
    m: &Lfm,
    fe: &videosynth::image::Image,
    fl: &videosynth::image::Image,
    description: AuSet,
) -> Prompt {
    let mut p = Prompt::new();
    p.push_special(&m.vocab, Special::Assess);
    p.push_image(&m.cfg, fe);
    p.push_image_diff(&m.cfg, fe, fl);
    p.push_special(&m.vocab, Special::Sep);
    p.push_text(&m.vocab, &render_description(description));
    p.push_special(&m.vocab, Special::Bos);
    p
}

/// I₁ over raw frames instead of a [`VideoSample`] — the describe analogue
/// of [`assess_prompt_from_images`].
pub fn describe_prompt_from_images(
    m: &Lfm,
    fe: &videosynth::image::Image,
    fl: &videosynth::image::Image,
) -> Prompt {
    let mut p = Prompt::new();
    p.push_special(&m.vocab, Special::Describe);
    p.push_image(&m.cfg, fe);
    p.push_image_diff(&m.cfg, fe, fl);
    p.push_special(&m.vocab, Special::Bos);
    p
}

/// Direct (no-description) variant of [`assess_prompt_from_images`].
pub fn assess_direct_prompt_from_images(
    m: &Lfm,
    fe: &videosynth::image::Image,
    fl: &videosynth::image::Image,
) -> Prompt {
    let mut p = Prompt::new();
    p.push_special(&m.vocab, Special::Assess);
    p.push_image(&m.cfg, fe);
    p.push_image_diff(&m.cfg, fe, fl);
    p.push_special(&m.vocab, Special::Bos);
    p
}

/// The "w/o Chain" ablation prompt: "Is the subject in this video
/// stressed? Yes or No?" — assess directly from pixels.
pub fn assess_direct_prompt(m: &Lfm, video: &VideoSample) -> Prompt {
    let mut p = Prompt::new();
    p.push_special(&m.vocab, Special::Assess);
    p.push_video(&m.cfg, video);
    p.push_special(&m.vocab, Special::Bos);
    p
}

/// I₃ — "Highlight the critical facial expressions that influenced your
/// assessment", given video, description and the assessment.
pub fn highlight_prompt(
    m: &Lfm,
    video: &VideoSample,
    description: AuSet,
    assessment: StressLabel,
) -> Prompt {
    let mut p = Prompt::new();
    p.push_special(&m.vocab, Special::Highlight);
    p.push_video(&m.cfg, video);
    p.push_special(&m.vocab, Special::Sep);
    p.push_text(&m.vocab, &render_description(description));
    p.push_special(&m.vocab, Special::Sep);
    p.push_special(&m.vocab, label_special(assessment));
    p.push_special(&m.vocab, Special::Bos);
    p
}

/// Self-reflection on a description (Fig. 3): the model sees its previous
/// description and the ground-truth stress level, and produces a new
/// description.
pub fn reflect_description_prompt(
    m: &Lfm,
    video: &VideoSample,
    previous: AuSet,
    truth: StressLabel,
) -> Prompt {
    let mut p = Prompt::new();
    p.push_special(&m.vocab, Special::Reflect);
    p.push_video(&m.cfg, video);
    p.push_special(&m.vocab, Special::LabelHint);
    p.push_special(&m.vocab, label_special(truth));
    p.push_special(&m.vocab, Special::Sep);
    p.push_text(&m.vocab, &render_description(previous));
    p.push_special(&m.vocab, Special::Describe);
    p.push_special(&m.vocab, Special::Bos);
    p
}

/// Self-reflection on a rationale (Fig. 5): same shape, conditioned on the
/// previous rationale and the assessment instead.
pub fn reflect_rationale_prompt(
    m: &Lfm,
    video: &VideoSample,
    description: AuSet,
    assessment: StressLabel,
    previous_rationale: AuSet,
) -> Prompt {
    let mut p = Prompt::new();
    p.push_special(&m.vocab, Special::Reflect);
    p.push_video(&m.cfg, video);
    p.push_special(&m.vocab, Special::Sep);
    p.push_text(&m.vocab, &render_description(description));
    p.push_special(&m.vocab, Special::LabelHint);
    p.push_special(&m.vocab, label_special(assessment));
    p.push_special(&m.vocab, Special::Sep);
    p.push_text(&m.vocab, &render_description(previous_rationale));
    p.push_special(&m.vocab, Special::Highlight);
    p.push_special(&m.vocab, Special::Bos);
    p
}

/// The four choice markers in order.
pub const CHOICES: [Special; 4] = [
    Special::ChoiceA,
    Special::ChoiceB,
    Special::ChoiceC,
    Special::ChoiceD,
];

/// Self-verification (Fig. 4): four candidate videos, one description; the
/// model answers with the choice token of the video the description
/// describes.  Run in a fresh "dialogue session" by construction — the
/// prompt contains no history.
pub fn verify_prompt(m: &Lfm, videos: [&VideoSample; 4], description: AuSet) -> Prompt {
    let mut p = Prompt::new();
    p.push_special(&m.vocab, Special::Verify);
    for (i, v) in videos.iter().enumerate() {
        p.push_special(&m.vocab, CHOICES[i]);
        p.push_video(&m.cfg, v);
    }
    p.push_special(&m.vocab, Special::Sep);
    p.push_text(&m.vocab, &render_description(description));
    p.push_special(&m.vocab, Special::Bos);
    p
}

/// The candidate answer tokens for a verification prompt.
pub fn choice_tokens(vocab: &Vocab) -> [TokenId; 4] {
    [
        vocab.special(Special::ChoiceA),
        vocab.special(Special::ChoiceB),
        vocab.special(Special::ChoiceC),
        vocab.special(Special::ChoiceD),
    ]
}

/// The two stress answer tokens `[stressed, unstressed]`.
pub fn label_tokens(vocab: &Vocab) -> [TokenId; 2] {
    [
        vocab.special(Special::Stressed),
        vocab.special(Special::Unstressed),
    ]
}

/// Special token of a label.
pub fn label_special(label: StressLabel) -> Special {
    match label {
        StressLabel::Stressed => Special::Stressed,
        StressLabel::Unstressed => Special::Unstressed,
    }
}

/// Encode a description answer (text tokens + `Eos`).
pub fn description_answer(vocab: &Vocab, aus: AuSet) -> Vec<TokenId> {
    let mut toks = vocab
        .encode(&render_description(aus))
        .expect("description language is inside the vocabulary");
    toks.push(vocab.special(Special::Eos));
    toks
}

/// Parse generated description tokens back into the AU set they claim.
/// Returns `None` on any malformed output (counted as a degenerate
/// generation by callers).
pub fn parse_description_tokens(vocab: &Vocab, tokens: &[TokenId]) -> Option<AuSet> {
    let text = vocab.decode(tokens);
    parse_description(&text).ok()
}

/// Encode a stress answer (`label` token + `Eos`).
pub fn label_answer(vocab: &Vocab, label: StressLabel) -> Vec<TokenId> {
    vec![
        vocab.special(label_special(label)),
        vocab.special(Special::Eos),
    ]
}

/// Parse a generated stress answer: first token decides.
pub fn parse_label_tokens(vocab: &Vocab, tokens: &[TokenId]) -> Option<StressLabel> {
    let first = *tokens.first()?;
    if first == vocab.special(Special::Stressed) {
        Some(StressLabel::Stressed)
    } else if first == vocab.special(Special::Unstressed) {
        Some(StressLabel::Unstressed)
    } else {
        None
    }
}

/// Encode a verification answer.
pub fn choice_answer(vocab: &Vocab, idx: usize) -> Vec<TokenId> {
    assert!(idx < 4);
    vec![vocab.special(CHOICES[idx]), vocab.special(Special::Eos)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;
    use facs::ActionUnit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use videosynth::world::{sample_video, Subject, WorldConfig};

    fn model() -> Lfm {
        Lfm::new(ModelConfig::tiny(), 3)
    }

    fn video(id: usize) -> VideoSample {
        let mut rng = StdRng::seed_from_u64(id as u64);
        let s = Subject::generate(0, 0.3, &mut rng);
        sample_video(&WorldConfig::uvsd_like(), &s, StressLabel::Stressed, id, 17)
    }

    #[test]
    fn all_prompts_fit_in_max_seq() {
        let m = model();
        let v = video(0);
        let desc = AuSet::from_aus([ActionUnit::BrowLowerer, ActionUnit::LipStretcher]);
        let prompts = vec![
            describe_prompt(&m, &v),
            assess_prompt(&m, &v, desc),
            assess_direct_prompt(&m, &v),
            highlight_prompt(&m, &v, desc, StressLabel::Stressed),
            reflect_description_prompt(&m, &v, desc, StressLabel::Stressed),
            reflect_rationale_prompt(&m, &v, desc, StressLabel::Stressed, desc),
        ];
        for p in prompts {
            assert!(
                p.seq_len(&m.cfg) + 50 <= m.cfg.max_seq,
                "{}",
                p.seq_len(&m.cfg)
            );
        }
    }

    #[test]
    fn verify_prompt_fits_with_four_videos() {
        let m = model();
        let vids = [video(0), video(1), video(2), video(3)];
        let p = verify_prompt(
            &m,
            [&vids[0], &vids[1], &vids[2], &vids[3]],
            AuSet::from_aus([ActionUnit::CheekRaiser]),
        );
        assert!(p.seq_len(&m.cfg) + 4 <= m.cfg.max_seq);
    }

    #[test]
    fn description_answer_round_trips() {
        let m = model();
        let s = AuSet::from_aus([ActionUnit::InnerBrowRaiser, ActionUnit::JawDrop]);
        let ans = description_answer(&m.vocab, s);
        assert_eq!(*ans.last().unwrap(), m.vocab.special(Special::Eos));
        let parsed = parse_description_tokens(&m.vocab, &ans[..ans.len() - 1]).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn label_answer_round_trips() {
        let m = model();
        for label in [StressLabel::Stressed, StressLabel::Unstressed] {
            let ans = label_answer(&m.vocab, label);
            assert_eq!(parse_label_tokens(&m.vocab, &ans), Some(label));
        }
        assert_eq!(parse_label_tokens(&m.vocab, &[]), None);
        assert_eq!(
            parse_label_tokens(&m.vocab, &[m.vocab.special(Special::Sep)]),
            None
        );
    }

    #[test]
    fn malformed_description_tokens_parse_to_none() {
        let m = model();
        let junk = vec![m.vocab.special(Special::Verify); 3];
        assert_eq!(parse_description_tokens(&m.vocab, &junk), None);
    }

    #[test]
    fn icl_examples_extend_the_prompt() {
        let m = model();
        let v = video(0);
        let ex_v = video(1);
        let base = assess_prompt(&m, &v, AuSet::EMPTY);
        let with = assess_prompt_with_examples(
            &m,
            &v,
            AuSet::EMPTY,
            &[IclExample {
                video: &ex_v,
                description: AuSet::EMPTY,
                label: StressLabel::Unstressed,
            }],
        );
        assert!(with.seq_len(&m.cfg) > base.seq_len(&m.cfg));
    }
}
