//! The vision-language foundation-model simulator.
//!
//! Architecturally a miniature of the Qwen-VL family the paper fine-tunes:
//! a patch-based visual encoder projecting image patches into the token
//! embedding space, a causal transformer decoder over the mixed
//! visual+text sequence, and a language-model head over the closed
//! vocabulary.  Everything the paper's method needs from a foundation model
//! is supported for real: conditional generation with temperature and seed,
//! exact sequence log-probabilities (for DPO), instruction tuning and
//! preference optimization (see [`crate::train`]).

use facs::region::FACE_SIZE;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tinynn::graph::{Graph, Var};
use tinynn::params::{ParamId, ParamStore};
use tinynn::tensor::Tensor;
use videosynth::image::Image;
use videosynth::video::VideoSample;

use crate::infer::InferSession;
use crate::vocab::{Special, TokenId, Vocab};

/// Architecture hyper-parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelConfig {
    /// Embedding / residual width.
    pub d_model: usize,
    /// Attention heads (must divide `d_model`).
    pub heads: usize,
    /// Transformer blocks.
    pub layers: usize,
    /// Feed-forward hidden width.
    pub ff: usize,
    /// Maximum mixed sequence length.
    pub max_seq: usize,
    /// Patch side for the visual encoder (96 must divide by it).
    pub patch: usize,
    /// Visual tokens per image.
    pub vis_tokens: usize,
}

impl ModelConfig {
    /// Test-size model: fast enough for unit tests.
    pub fn tiny() -> Self {
        ModelConfig {
            d_model: 16,
            heads: 2,
            layers: 1,
            ff: 32,
            max_seq: 160,
            patch: 16,
            vis_tokens: 2,
        }
    }

    /// Default experiment-size model.
    pub fn small() -> Self {
        ModelConfig {
            d_model: 32,
            heads: 4,
            layers: 2,
            ff: 64,
            max_seq: 256,
            patch: 8,
            vis_tokens: 4,
        }
    }

    /// Patch-feature count per image.
    pub fn patch_features(&self) -> usize {
        let side = FACE_SIZE / self.patch;
        side * side
    }

    /// Feature width of each visual token.
    pub fn vis_feat_per_token(&self) -> usize {
        let pf = self.patch_features();
        assert_eq!(
            pf % self.vis_tokens,
            0,
            "vis_tokens must divide patch features"
        );
        pf / self.vis_tokens
    }
}

/// All trainable parameters, by explicit id — shared between the autodiff
/// forward pass and the no-grad inference path.
#[derive(Clone, Debug)]
pub struct LfmParams {
    pub tok_emb: ParamId,
    pub pos_emb: ParamId,
    pub vis_w: ParamId,
    pub vis_b: ParamId,
    pub blocks: Vec<BlockParams>,
    pub ln_f_g: ParamId,
    pub ln_f_b: ParamId,
    pub head_w: ParamId,
    pub head_b: ParamId,
}

/// Per-transformer-block parameters.
#[derive(Clone, Debug)]
pub struct BlockParams {
    pub ln1_g: ParamId,
    pub ln1_b: ParamId,
    pub wq: ParamId,
    pub bq: ParamId,
    pub wk: ParamId,
    pub bk: ParamId,
    pub wv: ParamId,
    pub bv: ParamId,
    pub wo: ParamId,
    pub bo: ParamId,
    pub ln2_g: ParamId,
    pub ln2_b: ParamId,
    pub ff1_w: ParamId,
    pub ff1_b: ParamId,
    pub ff2_w: ParamId,
    pub ff2_b: ParamId,
}

/// One element of a mixed prompt.
#[derive(Clone, Debug)]
pub enum Segment {
    /// Plain text tokens.
    Tokens(Vec<TokenId>),
    /// One image as patch-mean features (length `cfg.patch_features()`).
    Image(Vec<f32>),
}

/// A mixed visual/text prompt.
#[derive(Clone, Debug, Default)]
pub struct Prompt {
    segments: Vec<Segment>,
}

impl Prompt {
    /// Empty prompt.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append raw tokens.
    pub fn push_tokens(&mut self, tokens: &[TokenId]) -> &mut Self {
        if let Some(Segment::Tokens(t)) = self.segments.last_mut() {
            t.extend_from_slice(tokens);
        } else {
            self.segments.push(Segment::Tokens(tokens.to_vec()));
        }
        self
    }

    /// Append one special token.
    pub fn push_special(&mut self, vocab: &Vocab, s: Special) -> &mut Self {
        self.push_tokens(&[vocab.special(s)])
    }

    /// Append encoded text (must be inside the closed vocabulary).
    pub fn push_text(&mut self, vocab: &Vocab, text: &str) -> &mut Self {
        let toks = vocab
            .encode(text)
            .unwrap_or_else(|| panic!("text outside the closed vocabulary: {text:?}"));
        self.push_tokens(&toks)
    }

    /// Append one image (patch features computed with the model's patch).
    ///
    /// Features are *neutral-face subtracted* and rescaled: a frozen
    /// pretrained vision tower normalises its inputs, and without this the
    /// constant face template drowns the AU evidence at miniature scale.
    pub fn push_image(&mut self, cfg: &ModelConfig, img: &Image) -> &mut Self {
        let raw = videosynth::features::patch_features(img, cfg.patch);
        assert_eq!(raw.len(), cfg.patch_features());
        let reference = neutral_reference(cfg.patch);
        const VIS_SCALE: f32 = 8.0;
        let feats = raw
            .iter()
            .zip(reference.iter())
            .map(|(x, r)| (x - r) * VIS_SCALE)
            .collect();
        self.segments.push(Segment::Image(feats));
        self
    }

    /// Append a video as its `(f_e, f_l)` expressive frame pair (§IV-H):
    /// one segment of neutral-subtracted `f_e` features and one segment of
    /// `f_e − f_l` *difference* features.
    ///
    /// The difference channel is the point of the two-frame input: `f_l` is
    /// the same subject's least expressive (near-neutral) frame, so the
    /// subtraction cancels the subject's stable identity appearance and
    /// leaves the expression change — exactly the baseline-normalisation
    /// effect Zhang et al. select the frame pair for.
    pub fn push_video(&mut self, cfg: &ModelConfig, video: &VideoSample) -> &mut Self {
        let (fe, fl) = video.expressive_pair();
        self.push_image(cfg, &fe);
        self.push_image_diff(cfg, &fe, &fl)
    }

    /// Append the difference features of two frames (see
    /// [`Prompt::push_video`]).
    pub fn push_image_diff(&mut self, cfg: &ModelConfig, a: &Image, b: &Image) -> &mut Self {
        let fa = videosynth::features::patch_features(a, cfg.patch);
        let fb = videosynth::features::patch_features(b, cfg.patch);
        const VIS_SCALE: f32 = 8.0;
        let feats = fa
            .iter()
            .zip(&fb)
            .map(|(x, y)| (x - y) * VIS_SCALE)
            .collect();
        self.segments.push(Segment::Image(feats));
        self
    }

    /// Segments in order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total sequence length in (visual + text) tokens.
    pub fn seq_len(&self, cfg: &ModelConfig) -> usize {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Tokens(t) => t.len(),
                Segment::Image(_) => cfg.vis_tokens,
            })
            .sum()
    }
}

/// Patch features of the neutral (all-AUs-zero, noise-free) face, cached
/// per patch size.  Used as the reference for visual-input normalisation.
fn neutral_reference(patch: usize) -> std::sync::Arc<Vec<f32>> {
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<HashMap<usize, Arc<Vec<f32>>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = cache.lock().expect("reference cache poisoned");
    Arc::clone(guard.entry(patch).or_insert_with(|| {
        let neutral = videosynth::render::render_face(&facs::au::AuVector::zeros(), 0.0, 0);
        Arc::new(videosynth::features::patch_features(&neutral, patch))
    }))
}

/// The model: config, vocabulary and parameter store.
#[derive(Clone, Debug)]
pub struct Lfm {
    /// Architecture hyper-parameters.
    pub cfg: ModelConfig,
    /// Shared closed vocabulary.
    pub vocab: Vocab,
    /// All trainable parameters.
    pub store: ParamStore,
    /// Parameter handles.
    pub params: LfmParams,
}

impl Lfm {
    /// Initialise a fresh model with Xavier weights from `seed`.
    pub fn new(cfg: ModelConfig, seed: u64) -> Self {
        assert_eq!(cfg.d_model % cfg.heads, 0, "heads must divide d_model");
        let vocab = Vocab::build();
        let v = vocab.len();
        let d = cfg.d_model;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();

        let tok_emb = store.add_xavier("tok_emb", v, d, &mut rng);
        let pos_emb = store.add_xavier("pos_emb", cfg.max_seq, d, &mut rng);
        let vis_w = store.add_xavier("vis.w", cfg.vis_feat_per_token(), d, &mut rng);
        let vis_b = store.add_zeros("vis.b", vec![d]);

        let mut blocks = Vec::with_capacity(cfg.layers);
        for l in 0..cfg.layers {
            let p = |s: &str| format!("block{l}.{s}");
            blocks.push(BlockParams {
                ln1_g: store.add_ones(p("ln1.g"), vec![d]),
                ln1_b: store.add_zeros(p("ln1.b"), vec![d]),
                wq: store.add_xavier(p("wq"), d, d, &mut rng),
                bq: store.add_zeros(p("bq"), vec![d]),
                wk: store.add_xavier(p("wk"), d, d, &mut rng),
                bk: store.add_zeros(p("bk"), vec![d]),
                wv: store.add_xavier(p("wv"), d, d, &mut rng),
                bv: store.add_zeros(p("bv"), vec![d]),
                wo: store.add_xavier(p("wo"), d, d, &mut rng),
                bo: store.add_zeros(p("bo"), vec![d]),
                ln2_g: store.add_ones(p("ln2.g"), vec![d]),
                ln2_b: store.add_zeros(p("ln2.b"), vec![d]),
                ff1_w: store.add_xavier(p("ff1.w"), d, cfg.ff, &mut rng),
                ff1_b: store.add_zeros(p("ff1.b"), vec![cfg.ff]),
                ff2_w: store.add_xavier(p("ff2.w"), cfg.ff, d, &mut rng),
                ff2_b: store.add_zeros(p("ff2.b"), vec![d]),
            });
        }

        let ln_f_g = store.add_ones("ln_f.g", vec![d]);
        let ln_f_b = store.add_zeros("ln_f.b", vec![d]);
        let head_w = store.add_xavier("head.w", d, v, &mut rng);
        let head_b = store.add_zeros("head.b", vec![v]);

        let params = LfmParams {
            tok_emb,
            pos_emb,
            vis_w,
            vis_b,
            blocks,
            ln_f_g,
            ln_f_b,
            head_w,
            head_b,
        };
        Lfm {
            cfg,
            vocab,
            store,
            params,
        }
    }

    /// Reassemble a model from persisted parts: an architecture config, a
    /// vocabulary and a parameter store (e.g. loaded from an `SRCR1`
    /// artifact).  No random initialisation happens — the store's tensors
    /// are adopted as-is, so the result is bitwise-identical to the model
    /// that was saved.
    ///
    /// Every parameter the architecture expects must be present under its
    /// canonical name with exactly the expected shape, and the store must
    /// contain nothing else; any mismatch is a typed error, never a panic.
    pub fn from_parts(cfg: ModelConfig, vocab: Vocab, store: ParamStore) -> Result<Lfm, String> {
        if cfg.d_model == 0 || cfg.heads == 0 || !cfg.d_model.is_multiple_of(cfg.heads) {
            return Err(format!(
                "heads ({}) must divide d_model ({})",
                cfg.heads, cfg.d_model
            ));
        }
        if cfg.patch == 0 || !FACE_SIZE.is_multiple_of(cfg.patch) {
            return Err(format!(
                "patch {} must divide face size {FACE_SIZE}",
                cfg.patch
            ));
        }
        let pf = {
            let side = FACE_SIZE / cfg.patch;
            side * side
        };
        if cfg.vis_tokens == 0 || !pf.is_multiple_of(cfg.vis_tokens) {
            return Err(format!(
                "vis_tokens {} must divide the {pf} patch features",
                cfg.vis_tokens
            ));
        }
        let v = vocab.len();
        let d = cfg.d_model;
        let per = pf / cfg.vis_tokens;

        let lookup = |name: &str, shape: &[usize]| -> Result<ParamId, String> {
            let id = store
                .find(name)
                .ok_or_else(|| format!("artifact is missing parameter {name:?}"))?;
            let got = &store.value(id).shape;
            if got != shape {
                return Err(format!(
                    "parameter {name:?} has shape {got:?}, expected {shape:?}"
                ));
            }
            Ok(id)
        };

        let expected = 8 + 16 * cfg.layers;
        let tok_emb = lookup("tok_emb", &[v, d])?;
        let pos_emb = lookup("pos_emb", &[cfg.max_seq, d])?;
        let vis_w = lookup("vis.w", &[per, d])?;
        let vis_b = lookup("vis.b", &[d])?;
        let mut blocks = Vec::with_capacity(cfg.layers);
        for l in 0..cfg.layers {
            let p = |s: &str| format!("block{l}.{s}");
            blocks.push(BlockParams {
                ln1_g: lookup(&p("ln1.g"), &[d])?,
                ln1_b: lookup(&p("ln1.b"), &[d])?,
                wq: lookup(&p("wq"), &[d, d])?,
                bq: lookup(&p("bq"), &[d])?,
                wk: lookup(&p("wk"), &[d, d])?,
                bk: lookup(&p("bk"), &[d])?,
                wv: lookup(&p("wv"), &[d, d])?,
                bv: lookup(&p("bv"), &[d])?,
                wo: lookup(&p("wo"), &[d, d])?,
                bo: lookup(&p("bo"), &[d])?,
                ln2_g: lookup(&p("ln2.g"), &[d])?,
                ln2_b: lookup(&p("ln2.b"), &[d])?,
                ff1_w: lookup(&p("ff1.w"), &[d, cfg.ff])?,
                ff1_b: lookup(&p("ff1.b"), &[cfg.ff])?,
                ff2_w: lookup(&p("ff2.w"), &[cfg.ff, d])?,
                ff2_b: lookup(&p("ff2.b"), &[d])?,
            });
        }
        let ln_f_g = lookup("ln_f.g", &[d])?;
        let ln_f_b = lookup("ln_f.b", &[d])?;
        let head_w = lookup("head.w", &[d, v])?;
        let head_b = lookup("head.b", &[v])?;
        if store.len() != expected {
            return Err(format!(
                "artifact holds {} parameters, the architecture expects {expected}",
                store.len()
            ));
        }
        Ok(Lfm {
            cfg,
            vocab,
            store,
            params: LfmParams {
                tok_emb,
                pos_emb,
                vis_w,
                vis_b,
                blocks,
                ln_f_g,
                ln_f_b,
                head_w,
                head_b,
            },
        })
    }

    /// Deep copy with independent parameters (e.g. a frozen DPO reference).
    pub fn snapshot(&self) -> Lfm {
        Lfm {
            cfg: self.cfg.clone(),
            vocab: self.vocab.clone(),
            store: self.store.snapshot(),
            params: self.params.clone(),
        }
    }

    /// Write all weights to a writer (see [`tinynn::serialize`]).  The
    /// architecture is not stored; load into a model built with the same
    /// [`ModelConfig`] and init seed structure.
    pub fn save_weights<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        tinynn::serialize::save_params(&self.store, w)
    }

    /// Load weights previously written by [`Lfm::save_weights`] into this
    /// model.  Fails if the parameter structure does not match.
    pub fn load_weights<R: std::io::Read>(&mut self, r: &mut R) -> std::io::Result<()> {
        let loaded = tinynn::serialize::load_params(r)?;
        if loaded.len() != self.store.len() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "parameter count mismatch: {} vs {}",
                    loaded.len(),
                    self.store.len()
                ),
            ));
        }
        self.store.load_values_from(&loaded);
        Ok(())
    }

    /// Embed a mixed token stream into `[L, d]` with positions added.
    ///
    /// `extra_tokens` are appended after the prompt (used for teacher-forced
    /// answers during training and scoring).
    pub fn embed_sequence(&self, g: &mut Graph, prompt: &Prompt, extra_tokens: &[TokenId]) -> Var {
        let cfg = &self.cfg;
        let mut parts: Vec<Var> = Vec::new();
        let tok_w = g.param(&self.store, self.params.tok_emb);
        for seg in prompt.segments() {
            match seg {
                Segment::Tokens(toks) => {
                    let idx: Vec<usize> = toks.iter().map(|&t| t as usize).collect();
                    parts.push(g.embedding(tok_w, std::rc::Rc::new(idx)));
                }
                Segment::Image(feats) => {
                    let per = cfg.vis_feat_per_token();
                    let x = g.leaf(Tensor::from_vec(feats.clone(), vec![cfg.vis_tokens, per]));
                    let w = g.param(&self.store, self.params.vis_w);
                    let b = g.param(&self.store, self.params.vis_b);
                    let h = g.matmul(x, w);
                    parts.push(g.add_bias(h, b));
                }
            }
        }
        if !extra_tokens.is_empty() {
            let idx: Vec<usize> = extra_tokens.iter().map(|&t| t as usize).collect();
            parts.push(g.embedding(tok_w, std::rc::Rc::new(idx)));
        }
        assert!(!parts.is_empty(), "empty sequence");
        let mut x = parts[0];
        for p in &parts[1..] {
            x = g.concat_rows(x, *p);
        }
        let l = g.value(x).rows();
        assert!(
            l <= cfg.max_seq,
            "sequence length {l} exceeds max_seq {}",
            cfg.max_seq
        );
        let pos_w = g.param(&self.store, self.params.pos_emb);
        let pos = g.embedding(pos_w, std::rc::Rc::new((0..l).collect()));
        g.add(x, pos)
    }

    /// Full decoder forward: `[L, d]` hidden → `[L, vocab]` logits.
    pub fn decoder_forward(&self, g: &mut Graph, mut x: Var) -> Var {
        for b in &self.params.blocks {
            x = self.block_forward(g, b, x);
        }
        let gam = g.param(&self.store, self.params.ln_f_g);
        let bet = g.param(&self.store, self.params.ln_f_b);
        let x = g.layer_norm(x, gam, bet, 1e-5);
        let w = g.param(&self.store, self.params.head_w);
        let b = g.param(&self.store, self.params.head_b);
        let h = g.matmul(x, w);
        g.add_bias(h, b)
    }

    fn block_forward(&self, g: &mut Graph, bp: &BlockParams, x: Var) -> Var {
        let cfg = &self.cfg;
        let l = g.value(x).rows();
        let dh = cfg.d_model / cfg.heads;

        // Pre-norm attention.
        let gam = g.param(&self.store, bp.ln1_g);
        let bet = g.param(&self.store, bp.ln1_b);
        let n = g.layer_norm(x, gam, bet, 1e-5);
        let (wq, bq) = (g.param(&self.store, bp.wq), g.param(&self.store, bp.bq));
        let (wk, bk) = (g.param(&self.store, bp.wk), g.param(&self.store, bp.bk));
        let (wv, bv) = (g.param(&self.store, bp.wv), g.param(&self.store, bp.bv));
        let q = g.matmul(n, wq);
        let q = g.add_bias(q, bq);
        let k = g.matmul(n, wk);
        let k = g.add_bias(k, bk);
        let v = g.matmul(n, wv);
        let v = g.add_bias(v, bv);

        let mut mask = vec![0.0f32; l * l];
        for i in 0..l {
            for j in (i + 1)..l {
                mask[i * l + j] = -1e9;
            }
        }
        let mask = std::rc::Rc::new(mask);
        let scale = 1.0 / (dh as f32).sqrt();
        let mut heads = Vec::with_capacity(cfg.heads);
        for h in 0..cfg.heads {
            let qh = g.slice_cols(q, h * dh, dh);
            let kh = g.slice_cols(k, h * dh, dh);
            let vh = g.slice_cols(v, h * dh, dh);
            let scores = g.matmul_tb(qh, kh);
            let scores = g.scale(scores, scale);
            let attn = g.masked_softmax(scores, std::rc::Rc::clone(&mask));
            heads.push(g.matmul(attn, vh));
        }
        let cat = g.concat_cols(&heads);
        let (wo, bo) = (g.param(&self.store, bp.wo), g.param(&self.store, bp.bo));
        let a = g.matmul(cat, wo);
        let a = g.add_bias(a, bo);
        let x = g.add(x, a);

        // Pre-norm feed-forward.
        let gam = g.param(&self.store, bp.ln2_g);
        let bet = g.param(&self.store, bp.ln2_b);
        let n = g.layer_norm(x, gam, bet, 1e-5);
        let (w1, b1) = (
            g.param(&self.store, bp.ff1_w),
            g.param(&self.store, bp.ff1_b),
        );
        let (w2, b2) = (
            g.param(&self.store, bp.ff2_w),
            g.param(&self.store, bp.ff2_b),
        );
        let h = g.matmul(n, w1);
        let h = g.add_bias(h, b1);
        let h = g.gelu(h);
        let h = g.matmul(h, w2);
        let h = g.add_bias(h, b2);
        g.add(x, h)
    }

    /// Logits for the full `prompt ⧺ answer` stream: `([L, V], prompt_len)`.
    pub fn logits(&self, g: &mut Graph, prompt: &Prompt, answer: &[TokenId]) -> (Var, usize) {
        let x = self.embed_sequence(g, prompt, answer);
        let logits = self.decoder_forward(g, x);
        (logits, prompt.seq_len(&self.cfg))
    }

    /// Scalar graph node: `log p(answer | prompt)` summed over all answer
    /// tokens (the quantity DPO differentiates).  The answer should
    /// normally end with `Eos`.
    pub fn seq_logprob_graph(&self, g: &mut Graph, prompt: &Prompt, answer: &[TokenId]) -> Var {
        assert!(!answer.is_empty(), "empty answer");
        let (logits, plen) = self.logits(g, prompt, answer);
        // Position plen-1+i predicts answer[i].
        let rows = g.slice_rows(logits, plen - 1, answer.len());
        let targets: Vec<usize> = answer.iter().map(|&t| t as usize).collect();
        let lp = g.log_softmax_gather(rows, std::rc::Rc::new(targets));
        g.sum(lp)
    }

    /// `log p(answer | prompt)` as a plain number (no gradients kept).
    pub fn seq_logprob(&self, prompt: &Prompt, answer: &[TokenId]) -> f32 {
        let mut g = Graph::new();
        let v = self.seq_logprob_graph(&mut g, prompt, answer);
        g.value(v).item()
    }

    /// Autoregressively sample an answer on the KV-cached fast path.
    ///
    /// Sampling uses the Gumbel-max trick at the given `temperature`
    /// (`0` = greedy) and is fully determined by `seed`.  Generation stops
    /// at `Eos` (excluded from the result) or after `max_new` tokens.
    /// Token-for-token identical to [`Lfm::generate_full`].
    pub fn generate(
        &self,
        prompt: &Prompt,
        max_new: usize,
        temperature: f32,
        seed: u64,
    ) -> Vec<TokenId> {
        let mut session = InferSession::new(self);
        self.generate_with_session(&mut session, prompt, max_new, temperature, seed)
    }

    /// [`Lfm::generate`] on a caller-owned session, reusing any cached
    /// prefix the session shares with `prompt`.
    pub fn generate_with_session(
        &self,
        session: &mut InferSession,
        prompt: &Prompt,
        max_new: usize,
        temperature: f32,
        seed: u64,
    ) -> Vec<TokenId> {
        let eos = self.vocab.special(Special::Eos);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out: Vec<TokenId> = Vec::new();
        let budget = max_new.min(self.cfg.max_seq.saturating_sub(prompt.seq_len(&self.cfg)));
        if budget == 0 {
            return out;
        }
        session.set_context(self, prompt, &[]);
        for _ in 0..budget {
            let next = tinynn::rngutil::sample_logits(&mut rng, session.last_logits(), temperature)
                as TokenId;
            if next == eos {
                break;
            }
            out.push(next);
            session.push_token(self, next);
        }
        out
    }

    /// The pre-session full-recompute sampler: a fresh autodiff graph and a
    /// complete forward pass per token.  Kept as the reference oracle the
    /// fast path is tested against (and as the worst case `decodebench`
    /// measures).
    pub fn generate_full(
        &self,
        prompt: &Prompt,
        max_new: usize,
        temperature: f32,
        seed: u64,
    ) -> Vec<TokenId> {
        let eos = self.vocab.special(Special::Eos);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out: Vec<TokenId> = Vec::new();
        let budget = max_new.min(self.cfg.max_seq.saturating_sub(prompt.seq_len(&self.cfg)));
        for _ in 0..budget {
            let last = self.last_logits_full(prompt, &out);
            let next = tinynn::rngutil::sample_logits(&mut rng, &last, temperature) as TokenId;
            if next == eos {
                break;
            }
            out.push(next);
        }
        out
    }

    /// Last-position logits of `prompt ⧺ answer` on the full-recompute
    /// graph path — the shared helper behind every oracle entry point.
    pub fn last_logits_full(&self, prompt: &Prompt, answer: &[TokenId]) -> Vec<f32> {
        let mut g = Graph::new();
        let (logits, _) = self.logits(&mut g, prompt, answer);
        let v = g.value(logits);
        v.row(v.rows() - 1).to_vec()
    }

    /// Greedy next-token distribution after the prompt (softmax of the last
    /// position's logits).  Useful for forced-choice answers.
    pub fn next_token_distribution(&self, prompt: &Prompt) -> Vec<f32> {
        let mut session = InferSession::new(self);
        self.next_token_distribution_with_session(&mut session, prompt)
    }

    /// [`Lfm::next_token_distribution`] on a caller-owned session.
    pub fn next_token_distribution_with_session(
        &self,
        session: &mut InferSession,
        prompt: &Prompt,
    ) -> Vec<f32> {
        self.try_next_token_distribution_with_session(session, prompt)
            .expect("kv page slab exhausted")
    }

    /// Fallible [`Lfm::next_token_distribution_with_session`] for sessions
    /// on a bounded page slab.
    pub fn try_next_token_distribution_with_session(
        &self,
        session: &mut InferSession,
        prompt: &Prompt,
    ) -> Result<Vec<f32>, tinynn::infer::PagesExhausted> {
        session.try_set_context(self, prompt, &[])?;
        let mut probs = session.last_logits().to_vec();
        tinynn::kernels::softmax_row(&mut probs);
        Ok(probs)
    }

    /// Restricted argmax / sample over a small set of candidate tokens
    /// (forced choice), with temperature and seed.
    pub fn choose<R: Rng>(
        &self,
        prompt: &Prompt,
        candidates: &[TokenId],
        temperature: f32,
        rng: &mut R,
    ) -> TokenId {
        let mut session = InferSession::new(self);
        self.choose_with_session(&mut session, prompt, candidates, temperature, rng)
    }

    /// [`Lfm::choose`] on a caller-owned session.
    pub fn choose_with_session<R: Rng>(
        &self,
        session: &mut InferSession,
        prompt: &Prompt,
        candidates: &[TokenId],
        temperature: f32,
        rng: &mut R,
    ) -> TokenId {
        self.try_choose_with_session(session, prompt, candidates, temperature, rng)
            .expect("kv page slab exhausted")
    }

    /// Fallible [`Lfm::choose_with_session`] for sessions on a bounded page
    /// slab.  On exhaustion the rng is untouched (the context never
    /// reached the point of sampling).
    pub fn try_choose_with_session<R: Rng>(
        &self,
        session: &mut InferSession,
        prompt: &Prompt,
        candidates: &[TokenId],
        temperature: f32,
        rng: &mut R,
    ) -> Result<TokenId, tinynn::infer::PagesExhausted> {
        assert!(!candidates.is_empty());
        session.try_set_context(self, prompt, &[])?;
        let last = session.last_logits();
        let sub: Vec<f32> = candidates.iter().map(|&c| last[c as usize]).collect();
        let idx = tinynn::rngutil::sample_logits(rng, &sub, temperature);
        Ok(candidates[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facs::au::AuVector;
    use videosynth::render::render_face;

    fn model() -> Lfm {
        Lfm::new(ModelConfig::tiny(), 42)
    }

    fn image() -> Image {
        render_face(&AuVector::zeros(), 0.01, 1)
    }

    #[test]
    fn prompt_seq_len_counts_visual_tokens() {
        let m = model();
        let mut p = Prompt::new();
        p.push_special(&m.vocab, Special::Describe);
        p.push_image(&m.cfg, &image());
        p.push_special(&m.vocab, Special::Bos);
        assert_eq!(p.seq_len(&m.cfg), 2 + m.cfg.vis_tokens);
    }

    #[test]
    fn logits_have_vocab_width() {
        let m = model();
        let mut p = Prompt::new();
        p.push_special(&m.vocab, Special::Describe);
        p.push_image(&m.cfg, &image());
        let mut g = Graph::new();
        let (logits, plen) = m.logits(&mut g, &p, &[m.vocab.special(Special::Eos)]);
        assert_eq!(g.value(logits).cols(), m.vocab.len());
        assert_eq!(g.value(logits).rows(), plen + 1);
    }

    #[test]
    fn seq_logprob_is_negative_and_finite() {
        let m = model();
        let mut p = Prompt::new();
        p.push_special(&m.vocab, Special::Assess);
        p.push_image(&m.cfg, &image());
        p.push_special(&m.vocab, Special::Bos);
        let ans = vec![
            m.vocab.special(Special::Stressed),
            m.vocab.special(Special::Eos),
        ];
        let lp = m.seq_logprob(&p, &ans);
        assert!(lp.is_finite());
        assert!(lp < 0.0);
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let m = model();
        let mut p = Prompt::new();
        p.push_special(&m.vocab, Special::Describe);
        p.push_image(&m.cfg, &image());
        p.push_special(&m.vocab, Special::Bos);
        let a = m.generate(&p, 10, 1.0, 7);
        let b = m.generate(&p, 10, 1.0, 7);
        assert_eq!(a, b);
        let c = m.generate(&p, 10, 1.0, 8);
        // Overwhelmingly likely to differ for an untrained model.
        assert!(a != c || a.is_empty());
    }

    #[test]
    fn greedy_generation_matches_temperature_zero() {
        let m = model();
        let mut p = Prompt::new();
        p.push_special(&m.vocab, Special::Assess);
        p.push_image(&m.cfg, &image());
        p.push_special(&m.vocab, Special::Bos);
        let a = m.generate(&p, 5, 0.0, 1);
        let b = m.generate(&p, 5, 0.0, 999);
        assert_eq!(a, b, "greedy decode must ignore the seed");
    }

    #[test]
    fn choose_returns_a_candidate() {
        let m = model();
        let mut p = Prompt::new();
        p.push_special(&m.vocab, Special::Assess);
        p.push_image(&m.cfg, &image());
        p.push_special(&m.vocab, Special::Bos);
        let cands = [
            m.vocab.special(Special::Stressed),
            m.vocab.special(Special::Unstressed),
        ];
        let mut rng = StdRng::seed_from_u64(0);
        let c = m.choose(&p, &cands, 1.0, &mut rng);
        assert!(cands.contains(&c));
    }

    #[test]
    fn snapshot_is_independent() {
        let mut m = model();
        let snap = m.snapshot();
        // Perturb the live model.
        let id = m.params.head_b;
        m.store.value_mut(id).data[0] += 1.0;
        assert_ne!(
            m.store.value(m.params.head_b).data[0],
            snap.store.value(snap.params.head_b).data[0]
        );
    }

    #[test]
    fn next_token_distribution_sums_to_one() {
        let m = model();
        let mut p = Prompt::new();
        p.push_special(&m.vocab, Special::Assess);
        p.push_image(&m.cfg, &image());
        let d = m.next_token_distribution(&p);
        assert_eq!(d.len(), m.vocab.len());
        assert!((d.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn weights_round_trip_through_bytes() {
        let m = model();
        let mut buf = Vec::new();
        m.save_weights(&mut buf).unwrap();
        let mut m2 = Lfm::new(ModelConfig::tiny(), 999); // different init
        m2.load_weights(&mut buf.as_slice()).unwrap();
        // Same behaviour after loading.
        let mut p = Prompt::new();
        p.push_special(&m.vocab, Special::Assess);
        p.push_image(&m.cfg, &image());
        assert_eq!(
            m.next_token_distribution(&p),
            m2.next_token_distribution(&p)
        );
        // Structure mismatch is rejected.
        let mut small = Lfm::new(
            ModelConfig {
                layers: 2,
                ..ModelConfig::tiny()
            },
            1,
        );
        assert!(small.load_weights(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn from_parts_rebuilds_an_identical_model() {
        let m = model();
        let mut buf = Vec::new();
        m.save_weights(&mut buf).unwrap();
        let store = tinynn::serialize::load_params(&mut buf.as_slice()).unwrap();
        let m2 = Lfm::from_parts(m.cfg.clone(), m.vocab.clone(), store).unwrap();
        let mut p = Prompt::new();
        p.push_special(&m.vocab, Special::Assess);
        p.push_image(&m.cfg, &image());
        assert_eq!(
            m.next_token_distribution(&p),
            m2.next_token_distribution(&p)
        );
        p.push_special(&m.vocab, Special::Bos);
        assert_eq!(m.generate(&p, 8, 0.7, 3), m2.generate(&p, 8, 0.7, 3));
    }

    #[test]
    fn from_parts_rejects_structural_mismatch() {
        let m = model();
        let mut buf = Vec::new();
        m.save_weights(&mut buf).unwrap();
        let store = tinynn::serialize::load_params(&mut buf.as_slice()).unwrap();

        // Wrong layer count: parameters for the extra blocks are missing.
        let deeper = ModelConfig {
            layers: m.cfg.layers + 1,
            ..m.cfg.clone()
        };
        let err = Lfm::from_parts(deeper, m.vocab.clone(), store.clone()).unwrap_err();
        assert!(err.contains("missing parameter"), "{err}");

        // Extra parameter beyond the architecture's expectation.
        let mut extra = store.clone();
        extra.add("rogue", Tensor::scalar(1.0));
        let err = Lfm::from_parts(m.cfg.clone(), m.vocab.clone(), extra).unwrap_err();
        assert!(err.contains("expects"), "{err}");

        // Invalid architecture combination is a typed error, not a panic.
        let bad = ModelConfig {
            heads: 3,
            ..m.cfg.clone()
        };
        assert!(Lfm::from_parts(bad, m.vocab.clone(), store).is_err());
    }

    #[test]
    #[should_panic(expected = "exceeds max_seq")]
    fn overlong_sequence_panics() {
        let m = model();
        let mut p = Prompt::new();
        let toks = vec![m.vocab.special(Special::Sep); m.cfg.max_seq + 1];
        p.push_tokens(&toks);
        let mut g = Graph::new();
        let _ = m.embed_sequence(&mut g, &p, &[]);
    }
}
