//! `lfm` — a trainable vision-language foundation-model simulator.
//!
//! The paper's method is built on Qwen-VL-7B: it instruction-tunes the
//! model to describe facial actions, assess stress, highlight rationales,
//! and refines it with Direct Preference Optimization.  None of that is
//! runnable at 7B scale here, so this crate provides a *miniature but
//! mechanistically complete* substitute:
//!
//! * a closed facial-description vocabulary and tokenizer ([`vocab`]);
//! * a causal transformer decoder with a patch-based visual encoder
//!   ([`model`]), supporting seeded sampling, greedy decoding, forced
//!   choice, and exact sequence log-probabilities;
//! * the paper's instruction templates I₁/I₂/I₃ plus reflection and
//!   self-verification prompts ([`instructions`]);
//! * instruction tuning and DPO ([`train`]);
//! * generic-capability pretraining with per-model noise profiles that
//!   stand in for the off-the-shelf GPT-4o / Claude-3.5 / Gemini-1.5
//!   baselines ([`pretrain`]).

pub mod grammar;
pub mod infer;
pub mod instructions;
pub mod model;
pub mod prefix;
pub mod pretrain;
pub mod train;
pub mod vocab;

pub use grammar::generate_description;
pub use infer::{InferSession, PrefixCache};
pub use model::{Lfm, ModelConfig, Prompt, Segment};
pub use prefix::RadixTree;
pub use pretrain::CapabilityProfile;
pub use tinynn::infer::{PageSlab, PagesExhausted};
pub use train::{dpo, sft, DpoPair, SftExample, TrainConfig};
pub use vocab::{Special, TokenId, Vocab};
