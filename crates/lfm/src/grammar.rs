//! Grammar-constrained decoding for the description language.
//!
//! A miniature decoder trained on a few hundred examples learns the
//! *content* of the description template long before it stops making
//! syntax slips (a phrase under the wrong region bullet, a repeated block).
//! Production LLM systems solve exactly this with grammar-masked sampling
//! (JSON-schema / CFG-constrained decoding); we do the same: an incremental
//! DFA over the canonical template of [`facs::describe`] exposes, for any
//! prefix, the set of tokens that can extend it to a valid description.
//! [`generate_description`] samples under that mask, so every generation
//! parses — the *choice* of action units remains entirely the model's.
//!
//! The canonical language: either the neutral sentence, or the header
//! followed by region blocks in anatomical order, each block listing that
//! region's action-unit phrases in AU-index order.

use facs::au::{ActionUnit, AuSet, ALL_AUS};
use facs::describe::{phrase, HEADER, NEUTRAL};
use facs::region::ALL_REGIONS;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::infer::InferSession;
use crate::model::{Lfm, Prompt};
use crate::vocab::{Special, TokenId, Vocab};

/// Token sequences of the fixed template parts, precomputed against a
/// vocabulary.
#[derive(Clone, Debug)]
pub struct DescriptionDfa {
    /// AUs that may be mentioned at all (FULL for plain descriptions).
    allowed: AuSet,
    header: Vec<TokenId>,
    neutral: Vec<TokenId>,
    /// Token sequence of each AU's phrase, AU-index order.
    phrases: Vec<Vec<TokenId>>,
    /// Token of each region name, region-index order.
    region_names: Vec<TokenId>,
    newline: TokenId,
    dash: TokenId,
    colon: TokenId,
    comma: TokenId,
    eos: TokenId,
}

/// Decoder state: how far into the template we are.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum State {
    /// Nothing emitted yet: header or neutral may start.
    Start {
        progress: usize,
        neutral_possible: bool,
        header_possible: bool,
    },
    /// Between blocks: a new block may start; `emitted` = AUs already said.
    BlockBoundary {
        last_region: Option<usize>,
        emitted: AuSet,
    },
    /// Saw `\n`, expect `-`.
    ExpectDash {
        last_region: Option<usize>,
        emitted: AuSet,
    },
    /// Saw `-`, expect a region name later than `last_region`.
    ExpectRegion {
        last_region: Option<usize>,
        emitted: AuSet,
    },
    /// Saw the region name, expect `:`.
    ExpectColon { region: usize, emitted: AuSet },
    /// Inside a phrase: `candidates` = AUs whose phrase starts with the
    /// consumed prefix; `progress` = tokens consumed of the phrase.
    InPhrase {
        region: usize,
        min_idx: usize,
        emitted: AuSet,
        candidates: Vec<ActionUnit>,
        progress: usize,
    },
    /// A phrase just ended: `,` continues the block, `\n` a new block, or
    /// `Eos` finishes.
    PhraseEnd {
        region: usize,
        last_au: ActionUnit,
        emitted: AuSet,
    },
    /// Terminal (after the neutral sentence completes nothing else may
    /// follow but `Eos`).
    Accept { emitted: AuSet },
}

impl DescriptionDfa {
    /// Precompute against a vocabulary; any AU set may be described.
    pub fn new(vocab: &Vocab) -> Self {
        Self::with_allowed(vocab, AuSet::FULL)
    }

    /// Precompute with the describable AUs restricted to `allowed` — used
    /// when generating a rationale, which must highlight a subset of the
    /// facial actions that the description already named (§III-D).
    pub fn with_allowed(vocab: &Vocab, allowed: AuSet) -> Self {
        let enc = |s: &str| vocab.encode(s).expect("template inside vocabulary");
        DescriptionDfa {
            allowed,
            header: enc(HEADER),
            neutral: enc(NEUTRAL),
            phrases: ALL_AUS.iter().map(|&au| enc(phrase(au))).collect(),
            region_names: ALL_REGIONS
                .iter()
                .map(|r| vocab.id_of(r.name()).expect("region name in vocabulary"))
                .collect(),
            newline: vocab.id_of("\n").expect("newline token"),
            dash: vocab.id_of("-").expect("dash token"),
            colon: vocab.id_of(":").expect("colon token"),
            comma: vocab.id_of(",").expect("comma token"),
            eos: vocab.special(Special::Eos),
        }
    }

    /// Initial state.  The header path is only offered if at least one AU
    /// is allowed (otherwise the only valid output is the neutral sentence).
    pub fn start(&self) -> State {
        State::Start {
            progress: 0,
            neutral_possible: true,
            header_possible: !self.open_regions(None, AuSet::EMPTY).is_empty(),
        }
    }

    /// AUs of `region` with index ≥ `min_idx` that are not yet emitted.
    fn region_aus(&self, region: usize, min_idx: usize, emitted: AuSet) -> Vec<ActionUnit> {
        ALL_AUS
            .iter()
            .copied()
            .filter(|au| {
                self.allowed.contains(*au)
                    && au.region().index() == region
                    && au.index() >= min_idx
                    && !emitted.contains(*au)
            })
            .collect()
    }

    /// Regions strictly after `last_region` that still have unemitted AUs.
    fn open_regions(&self, last_region: Option<usize>, emitted: AuSet) -> Vec<usize> {
        let from = last_region.map_or(0, |r| r + 1);
        (from..ALL_REGIONS.len())
            .filter(|&r| !self.region_aus(r, 0, emitted).is_empty())
            .collect()
    }

    /// Allowed next tokens in `state` (deduplicated, deterministic order).
    pub fn allowed(&self, state: &State) -> Vec<TokenId> {
        let mut out = Vec::new();
        match state {
            State::Start {
                progress,
                neutral_possible,
                header_possible,
            } => {
                if *header_possible {
                    out.push(self.header[*progress]);
                }
                if *neutral_possible {
                    let t = self.neutral[*progress];
                    if !out.contains(&t) {
                        out.push(t);
                    }
                }
            }
            State::BlockBoundary {
                last_region,
                emitted,
            } => {
                if !self.open_regions(*last_region, *emitted).is_empty() {
                    out.push(self.newline);
                }
                if !emitted.is_empty() {
                    out.push(self.eos);
                }
            }
            State::ExpectDash { .. } => out.push(self.dash),
            State::ExpectRegion {
                last_region,
                emitted,
            } => {
                for r in self.open_regions(*last_region, *emitted) {
                    out.push(self.region_names[r]);
                }
            }
            State::ExpectColon { .. } => out.push(self.colon),
            State::InPhrase {
                candidates,
                progress,
                ..
            } => {
                for au in candidates {
                    let t = self.phrases[au.index()][*progress];
                    if !out.contains(&t) {
                        out.push(t);
                    }
                }
            }
            State::PhraseEnd {
                region,
                last_au,
                emitted,
            } => {
                if !self
                    .region_aus(*region, last_au.index() + 1, *emitted)
                    .is_empty()
                {
                    out.push(self.comma);
                }
                if !self.open_regions(Some(*region), *emitted).is_empty() {
                    out.push(self.newline);
                }
                out.push(self.eos);
            }
            State::Accept { .. } => out.push(self.eos),
        }
        debug_assert!(!out.is_empty(), "dead DFA state: {state:?}");
        out
    }

    /// Advance by one (allowed) token.  Panics on a token outside
    /// [`DescriptionDfa::allowed`].
    pub fn advance(&self, state: State, tok: TokenId) -> State {
        match state {
            State::Start {
                progress,
                neutral_possible,
                header_possible,
            } => {
                let np = neutral_possible && self.neutral[progress] == tok;
                let hp = header_possible && self.header[progress] == tok;
                assert!(np || hp, "token {tok} not allowed at Start[{progress}]");
                let progress = progress + 1;
                if hp && progress == self.header.len() && (!np || progress >= self.neutral.len()) {
                    return State::BlockBoundary {
                        last_region: None,
                        emitted: AuSet::EMPTY,
                    };
                }
                if np && progress == self.neutral.len() && !hp {
                    return State::Accept {
                        emitted: AuSet::EMPTY,
                    };
                }
                State::Start {
                    progress,
                    neutral_possible: np && progress < self.neutral.len(),
                    header_possible: hp && progress < self.header.len(),
                }
            }
            State::BlockBoundary {
                last_region,
                emitted,
            } => {
                assert_eq!(tok, self.newline, "only a new block may follow");
                State::ExpectDash {
                    last_region,
                    emitted,
                }
            }
            State::ExpectDash {
                last_region,
                emitted,
            } => {
                assert_eq!(tok, self.dash);
                State::ExpectRegion {
                    last_region,
                    emitted,
                }
            }
            State::ExpectRegion { emitted, .. } => {
                let region = self
                    .region_names
                    .iter()
                    .position(|&r| r == tok)
                    .expect("token must be a region name");
                State::ExpectColon { region, emitted }
            }
            State::ExpectColon { region, emitted } => {
                assert_eq!(tok, self.colon);
                let candidates = self.region_aus(region, 0, emitted);
                State::InPhrase {
                    region,
                    min_idx: 0,
                    emitted,
                    candidates,
                    progress: 0,
                }
            }
            State::InPhrase {
                region,
                min_idx,
                emitted,
                candidates,
                progress,
            } => {
                let remaining: Vec<ActionUnit> = candidates
                    .into_iter()
                    .filter(|au| self.phrases[au.index()][progress] == tok)
                    .collect();
                assert!(!remaining.is_empty(), "token {tok} matches no phrase");
                let progress = progress + 1;
                // A phrase is complete when it has exactly `progress` tokens
                // and no longer candidate shares the prefix.
                let complete: Vec<&ActionUnit> = remaining
                    .iter()
                    .filter(|au| self.phrases[au.index()].len() == progress)
                    .collect();
                if let Some(&&done) = complete.first() {
                    let longer = remaining
                        .iter()
                        .any(|au| self.phrases[au.index()].len() > progress);
                    // In this language no phrase is a strict prefix of
                    // another within the same region, so completion is
                    // unambiguous.
                    assert!(!longer, "ambiguous phrase completion");
                    let mut emitted = emitted;
                    emitted.insert(done);
                    return State::PhraseEnd {
                        region,
                        last_au: done,
                        emitted,
                    };
                }
                State::InPhrase {
                    region,
                    min_idx,
                    emitted,
                    candidates: remaining,
                    progress,
                }
            }
            State::PhraseEnd {
                region,
                last_au,
                emitted,
            } => {
                if tok == self.comma {
                    let candidates = self.region_aus(region, last_au.index() + 1, emitted);
                    assert!(!candidates.is_empty(), "comma with no remaining AU");
                    State::InPhrase {
                        region,
                        min_idx: last_au.index() + 1,
                        emitted,
                        candidates,
                        progress: 0,
                    }
                } else if tok == self.newline {
                    State::ExpectDash {
                        last_region: Some(region),
                        emitted,
                    }
                } else {
                    panic!("token {tok} not allowed after a phrase");
                }
            }
            State::Accept { .. } => panic!("no token may follow an accepting state"),
        }
    }

    /// Whether `Eos` is allowed in `state`, and the AU set emitted so far.
    pub fn accepting(&self, state: &State) -> Option<AuSet> {
        match state {
            State::Accept { emitted } => Some(*emitted),
            State::PhraseEnd { emitted, .. } => Some(*emitted),
            State::BlockBoundary { emitted, .. } if !emitted.is_empty() => Some(*emitted),
            _ => None,
        }
    }
}

/// Sample a description under the grammar mask.  Returns the AU set the
/// model chose to describe; the surface string is `render_description` of
/// it by construction.
pub fn generate_description(model: &Lfm, prompt: &Prompt, temperature: f32, seed: u64) -> AuSet {
    generate_description_within(model, prompt, AuSet::FULL, temperature, seed)
}

/// Like [`generate_description`], but only AUs in `allowed` may be named —
/// the rationale-generation mode.
pub fn generate_description_within(
    model: &Lfm,
    prompt: &Prompt,
    allowed: AuSet,
    temperature: f32,
    seed: u64,
) -> AuSet {
    let mut session = InferSession::new(model);
    generate_description_within_session(model, &mut session, prompt, allowed, temperature, seed)
}

/// [`generate_description_within`] on a caller-owned [`InferSession`]: the
/// prompt is prefilled once (reusing any cached common prefix) and each
/// grammar-constrained step appends a single KV-cached row.  Token
/// decisions are identical to the full-recompute loop because the logits
/// at every step are bit-identical and the sampler consumes the rng
/// stream in the same order.
pub fn generate_description_within_session(
    model: &Lfm,
    session: &mut InferSession,
    prompt: &Prompt,
    allowed: AuSet,
    temperature: f32,
    seed: u64,
) -> AuSet {
    let mut sampler = DescriptionSampler::new(model, prompt.clone(), allowed, temperature, seed);
    loop {
        // Standalone sessions draw from an unbounded slab: never exhausts.
        match sampler
            .step(model, session)
            .expect("kv page slab exhausted")
        {
            SamplerStep::Emitted => {}
            SamplerStep::Done(set) => return set,
        }
    }
}

/// Outcome of one [`DescriptionSampler::step`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SamplerStep {
    /// One token was appended to the session; call `step` again.
    Emitted,
    /// Generation finished (Eos, budget, or forced stop): the AU set the
    /// model described.
    Done(AuSet),
}

/// [`generate_description_within_session`] broken into resumable
/// single-token steps — the unit the continuous-batching scheduler
/// interleaves across requests.
///
/// Each [`DescriptionSampler::step`] call performs exactly one iteration of
/// the original sampling loop (same DFA walk, same rng consumption order,
/// same lazy prefill, same budget accounting), so driving a sampler to
/// completion is bit-identical to the one-shot function — which is now
/// implemented as exactly that loop.
///
/// A step that returns [`PagesExhausted`](crate::PagesExhausted) may have
/// consumed rng state before failing; the sampler must not be resumed.
/// Restart the whole request on a fresh sampler+session (determinism makes
/// the replay identical).
#[derive(Clone, Debug)]
pub struct DescriptionSampler {
    dfa: DescriptionDfa,
    state: State,
    rng: StdRng,
    temperature: f32,
    prompt: Prompt,
    /// Max tokens this generation may push (`max_seq` minus prompt, minus
    /// one row of headroom).
    budget: usize,
    /// Tokens pushed so far: every earlier `Emitted` pushed exactly one.
    emitted: usize,
    /// Prefill lazily: a zero budget must not touch the model at all.
    primed: bool,
}

impl DescriptionSampler {
    /// A sampler for one grammar-constrained generation over `prompt`.
    pub fn new(model: &Lfm, prompt: Prompt, allowed: AuSet, temperature: f32, seed: u64) -> Self {
        let dfa = DescriptionDfa::with_allowed(&model.vocab, allowed);
        let state = dfa.start();
        let budget = model
            .cfg
            .max_seq
            .saturating_sub(prompt.seq_len(&model.cfg) + 1);
        DescriptionSampler {
            dfa,
            state,
            rng: StdRng::seed_from_u64(seed),
            temperature,
            prompt,
            budget,
            emitted: 0,
            primed: false,
        }
    }

    /// Whether the next `step` will prefill the prompt (the scheduler
    /// serializes those steps so shared prefixes are published before
    /// identical co-tenants would redo the work).
    pub fn will_prime(&self) -> bool {
        !self.primed
    }

    /// Run one sampling-loop iteration against `session`.
    pub fn step(
        &mut self,
        model: &Lfm,
        session: &mut InferSession,
    ) -> Result<SamplerStep, crate::PagesExhausted> {
        if self.emitted >= self.budget {
            // Budget exhausted: return whatever is emitted so far.
            return Ok(SamplerStep::Done(
                self.dfa.accepting(&self.state).unwrap_or(AuSet::EMPTY),
            ));
        }
        let mut allowed = self.dfa.allowed(&self.state);
        if let Some(set) = self.dfa.accepting(&self.state) {
            if !allowed.contains(&self.dfa.eos) {
                allowed.push(self.dfa.eos);
            }
            // Out of budget safety: if the next step would overflow, stop.
            if self.emitted + 1 >= self.budget {
                return Ok(SamplerStep::Done(set));
            }
        }
        if !self.primed {
            session.try_set_context(model, &self.prompt, &[])?;
            self.primed = true;
        }
        let last = session.last_logits();
        let sub: Vec<f32> = allowed.iter().map(|&t| last[t as usize]).collect();
        let pick = allowed[tinynn::rngutil::sample_logits(&mut self.rng, &sub, self.temperature)];
        if pick == self.dfa.eos {
            return Ok(SamplerStep::Done(
                self.dfa
                    .accepting(&self.state)
                    .expect("Eos only offered at accepting states"),
            ));
        }
        self.state = self.dfa.advance(self.state.clone(), pick);
        session.try_push_token(model, pick)?;
        self.emitted += 1;
        Ok(SamplerStep::Emitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instructions::describe_prompt;
    use crate::model::ModelConfig;
    use facs::describe::render_description;
    use rand::Rng;
    use videosynth::video::StressLabel;
    use videosynth::world::{sample_video, Subject, WorldConfig};

    fn dfa() -> (Vocab, DescriptionDfa) {
        let v = Vocab::build();
        let d = DescriptionDfa::new(&v);
        (v, d)
    }

    /// Walk a canonical rendering through the DFA; it must be accepted and
    /// reproduce the AU set.
    fn accepts(v: &Vocab, d: &DescriptionDfa, s: AuSet) -> bool {
        let toks = v.encode(&render_description(s)).unwrap();
        let mut state = d.start();
        for t in toks {
            if !d.allowed(&state).contains(&t) {
                return false;
            }
            state = d.advance(state, t);
        }
        d.accepting(&state) == Some(s)
    }

    #[test]
    fn dfa_accepts_every_canonical_description() {
        let (v, d) = dfa();
        for bits in 0u16..(1 << 12) {
            let s = AuSet::from_bits(bits);
            assert!(accepts(&v, &d, s), "rejected {s:?}");
        }
    }

    #[test]
    fn dfa_rejects_wrong_region_phrase() {
        let (v, d) = dfa();
        // "-jaw: upper lid raising" is invalid.
        let text = format!("{HEADER}\n-jaw: upper lid raising");
        let toks = v.encode(&text).unwrap();
        let mut state = d.start();
        let mut ok = true;
        for t in toks {
            if !d.allowed(&state).contains(&t) {
                ok = false;
                break;
            }
            state = d.advance(state, t);
        }
        assert!(!ok, "invalid description must be rejected");
    }

    #[test]
    fn dfa_random_walk_always_parses() {
        // Follow random allowed tokens; the result must be a canonical
        // description of the emitted set.
        let (v, d) = dfa();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let mut state = d.start();
            let mut toks = Vec::new();
            let set = loop {
                let mut allowed = d.allowed(&state);
                if let Some(s) = d.accepting(&state) {
                    // 30% chance to stop at an accepting state.
                    if rng.random::<f32>() < 0.3 {
                        break s;
                    }
                    allowed.retain(|&t| t != d.eos);
                    if allowed.is_empty() {
                        break s;
                    }
                }
                let t = allowed[rng.random_range(0..allowed.len())];
                state = d.advance(state, t);
                toks.push(t);
            };
            let text = v.decode(&toks);
            assert_eq!(
                facs::describe::parse_description(&text),
                Ok(set),
                "walk produced unparseable text: {text:?}"
            );
        }
    }

    #[test]
    fn generate_description_always_valid_even_untrained() {
        let m = Lfm::new(ModelConfig::tiny(), 1);
        let mut rng = StdRng::seed_from_u64(2);
        let s = Subject::generate(0, 0.3, &mut rng);
        let v = sample_video(&WorldConfig::uvsd_like(), &s, StressLabel::Stressed, 0, 3);
        let p = describe_prompt(&m, &v);
        for seed in 0..5 {
            // Must terminate and return *some* AU set without panicking.
            let _ = generate_description(&m, &p, 1.0, seed);
        }
    }

    #[test]
    fn subset_constrained_generation_stays_inside_allowed() {
        let m = Lfm::new(ModelConfig::tiny(), 1);
        let mut rng = StdRng::seed_from_u64(2);
        let s = Subject::generate(0, 0.3, &mut rng);
        let v = sample_video(&WorldConfig::uvsd_like(), &s, StressLabel::Stressed, 0, 3);
        let p = describe_prompt(&m, &v);
        let allowed = AuSet::from_bits(0b0000_0010_0100);
        for seed in 0..8 {
            let out = generate_description_within(&m, &p, allowed, 1.2, seed);
            assert!(
                out.difference(allowed).is_empty(),
                "{out:?} escapes {allowed:?}"
            );
        }
        // Empty allowed set can only produce the neutral description.
        assert_eq!(
            generate_description_within(&m, &p, AuSet::EMPTY, 1.0, 0),
            AuSet::EMPTY
        );
    }

    #[test]
    fn generate_description_is_deterministic_in_seed() {
        let m = Lfm::new(ModelConfig::tiny(), 1);
        let mut rng = StdRng::seed_from_u64(2);
        let s = Subject::generate(0, 0.3, &mut rng);
        let v = sample_video(&WorldConfig::uvsd_like(), &s, StressLabel::Unstressed, 1, 3);
        let p = describe_prompt(&m, &v);
        assert_eq!(
            generate_description(&m, &p, 0.8, 11),
            generate_description(&m, &p, 0.8, 11)
        );
    }
}
