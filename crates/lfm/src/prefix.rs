//! Compressed radix tree keyed by generic item sequences — the index behind
//! cross-request KV prefix sharing.
//!
//! [`super::InferSession`] already reuses the longest common prefix between
//! *consecutive* prompts of one session.  To share work *across* concurrent
//! requests, the serving scheduler needs, for an incoming prompt, the
//! longest prefix any cached sequence shares with it.  [`RadixTree`] answers
//! that in one edge-compressed walk: [`RadixTree::longest_match`] returns
//! the brute-force maximum `lcp(stored key, query)` over every stored entry
//! (property-tested against exactly that in `tests/prefix_tree.rs`),
//! together with a stored value whose key realizes the maximum.
//!
//! Values are opaque to the tree (in serving: paged-KV snapshots whose pages
//! are refcount-shared with the sessions that published them).  Eviction is
//! LRU over entries — both `insert` and a successful `longest_match` count
//! as a touch — so a bounded tree keeps hot prefixes pinned and releases
//! cold pages back to the slab.

/// Edge-compressed radix tree over `K` sequences with LRU-bounded entries.
#[derive(Debug)]
pub struct RadixTree<K, V> {
    root: Node<K, V>,
    /// Max stored entries (`0` = unbounded); past it, LRU entries go.
    cap: usize,
    len: usize,
    /// Monotonic touch clock for LRU.
    tick: u64,
}

#[derive(Debug)]
struct Node<K, V> {
    /// Edge label from the parent (empty only at the root).
    label: Vec<K>,
    value: Option<Entry<V>>,
    children: Vec<Node<K, V>>,
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    tick: u64,
}

fn lcp_len<K: PartialEq>(a: &[K], b: &[K]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

impl<K: Clone + PartialEq, V> RadixTree<K, V> {
    /// Empty tree holding at most `cap` entries (`0` = unbounded).
    pub fn new(cap: usize) -> Self {
        RadixTree {
            root: Node {
                label: Vec::new(),
                value: None,
                children: Vec::new(),
            },
            cap,
            len: 0,
            tick: 0,
        }
    }

    /// Stored entry count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop every entry.
    pub fn clear(&mut self) {
        self.root.value = None;
        self.root.children.clear();
        self.len = 0;
    }

    /// Store `value` under `key`, replacing any previous value for exactly
    /// `key`.  May evict the least-recently-touched entry past the cap.
    pub fn insert(&mut self, key: &[K], value: V) {
        self.tick += 1;
        let tick = self.tick;
        if Self::insert_into(&mut self.root, key, value, tick) {
            self.len += 1;
        }
        if self.cap > 0 {
            while self.len > self.cap {
                self.evict_lru();
            }
        }
    }

    /// Returns true if a brand-new entry was created.
    fn insert_into(node: &mut Node<K, V>, key: &[K], value: V, tick: u64) -> bool {
        if key.is_empty() {
            let fresh = node.value.is_none();
            node.value = Some(Entry { value, tick });
            return fresh;
        }
        for child in &mut node.children {
            let common = lcp_len(&child.label, key);
            if common == 0 {
                continue;
            }
            if common < child.label.len() {
                // Split the edge: `child` keeps the common prefix, the old
                // tail (with its value and children) becomes a grandchild.
                let tail = Node {
                    label: child.label.split_off(common),
                    value: child.value.take(),
                    children: std::mem::take(&mut child.children),
                };
                child.children.push(tail);
            }
            return Self::insert_into(child, &key[common..], value, tick);
        }
        // Radix invariant: children have pairwise-distinct first elements,
        // so no child shares anything with `key` — make a new leaf.
        node.children.push(Node {
            label: key.to_vec(),
            value: Some(Entry { value, tick }),
            children: Vec::new(),
        });
        true
    }

    /// The longest common prefix between `query` and any stored key, as
    /// `(match_len, value)` where `value` is stored under a key realizing
    /// that maximum.  `None` only when the tree is empty.  Counts as an LRU
    /// touch on the returned entry.
    pub fn longest_match(&mut self, query: &[K]) -> Option<(usize, &V)> {
        if self.len == 0 {
            return None;
        }
        self.tick += 1;
        let tick = self.tick;
        let (depth, entry) = Self::match_in(&mut self.root, query);
        let entry = entry.expect("non-empty tree holds an entry");
        entry.tick = tick;
        Some((depth, &entry.value))
    }

    /// Walk as deep as edge labels match `rest`; return the matched length
    /// below this node plus an entry realizing it.
    fn match_in<'a>(node: &'a mut Node<K, V>, rest: &[K]) -> (usize, Option<&'a mut Entry<V>>) {
        let pick = node
            .children
            .iter()
            .position(|c| !rest.is_empty() && c.label[0] == rest[0]);
        if let Some(i) = pick {
            let child = &mut node.children[i];
            let common = lcp_len(&child.label, rest);
            if common == child.label.len() {
                let (m, e) = Self::match_in(child, &rest[common..]);
                return (m + common, e);
            }
            // The match dies mid-edge: every entry in `child`'s subtree
            // extends the common prefix by the same `common` items, so any
            // of them realizes the max.
            return (common, Self::any_entry_mut(child));
        }
        // No child extends the match: the deepest entry at or below `node`
        // shares exactly the depth walked so far.
        (0, Self::entry_here_or_below(node))
    }

    /// Prefer the entry at `node` itself (its key IS the matched prefix),
    /// else any entry below.
    fn entry_here_or_below(node: &mut Node<K, V>) -> Option<&mut Entry<V>> {
        // Split borrow: checking `value` first keeps the borrow checker
        // happy without polonius.
        if node.value.is_some() {
            return node.value.as_mut();
        }
        Self::any_entry_mut(node)
    }

    fn any_entry_mut(node: &mut Node<K, V>) -> Option<&mut Entry<V>> {
        if node.value.is_some() {
            return node.value.as_mut();
        }
        for child in &mut node.children {
            if let Some(e) = Self::any_entry_mut(child) {
                return Some(e);
            }
        }
        None
    }

    /// Remove the value stored under exactly `key`, merging now-redundant
    /// edges on the way out.
    pub fn remove(&mut self, key: &[K]) -> Option<V> {
        let got = Self::remove_from(&mut self.root, key);
        if got.is_some() {
            self.len -= 1;
        }
        got
    }

    fn remove_from(node: &mut Node<K, V>, key: &[K]) -> Option<V> {
        if key.is_empty() {
            return node.value.take().map(|e| e.value);
        }
        let idx = node.children.iter().position(|c| {
            let common = lcp_len(&c.label, key);
            common == c.label.len() && common > 0
        })?;
        let consumed = node.children[idx].label.len();
        let got = Self::remove_from(&mut node.children[idx], &key[consumed..]);
        if got.is_some() {
            Self::prune_child(&mut node.children, idx);
        }
        got
    }

    /// After an unset at/below `children[idx]`: drop the child if it holds
    /// nothing, or splice out a valueless single-child link.
    fn prune_child(children: &mut Vec<Node<K, V>>, idx: usize) {
        let child = &mut children[idx];
        if child.value.is_none() && child.children.is_empty() {
            children.swap_remove(idx);
        } else if child.value.is_none() && child.children.len() == 1 {
            let mut only = child.children.pop().expect("len checked");
            child.label.append(&mut only.label);
            child.value = only.value.take();
            child.children = std::mem::take(&mut only.children);
        }
    }

    /// Evict the least-recently-touched entry.
    fn evict_lru(&mut self) {
        fn min_tick<K, V>(node: &Node<K, V>) -> Option<u64> {
            let mut best = node.value.as_ref().map(|e| e.tick);
            for c in &node.children {
                best = match (best, min_tick(c)) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            }
            best
        }
        fn remove_tick<K: Clone + PartialEq, V>(node: &mut Node<K, V>, tick: u64) -> bool {
            if node.value.as_ref().is_some_and(|e| e.tick == tick) {
                node.value = None;
                return true;
            }
            for i in 0..node.children.len() {
                if remove_tick(&mut node.children[i], tick) {
                    RadixTree::prune_child(&mut node.children, i);
                    return true;
                }
            }
            false
        }
        if let Some(t) = min_tick(&self.root) {
            if remove_tick(&mut self.root, t) {
                self.len -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_match_remove_roundtrip() {
        let mut t: RadixTree<u8, &str> = RadixTree::new(0);
        assert!(t.longest_match(&[1, 2]).is_none());
        t.insert(&[1, 2, 3], "abc");
        t.insert(&[1, 2, 9], "ab9");
        t.insert(&[7], "seven");
        assert_eq!(t.len(), 3);

        let (m, v) = t.longest_match(&[1, 2, 3, 4]).unwrap();
        assert_eq!((m, *v), (3, "abc"));
        let (m, _) = t.longest_match(&[1, 2]).unwrap();
        assert_eq!(m, 2); // dies mid-structure: both entries share [1,2]
        let (m, v) = t.longest_match(&[7, 7]).unwrap();
        assert_eq!((m, *v), (1, "seven"));
        let (m, _) = t.longest_match(&[5]).unwrap();
        assert_eq!(m, 0); // nothing shared, but the tree is non-empty

        assert_eq!(t.remove(&[1, 2, 3]), Some("abc"));
        assert_eq!(t.remove(&[1, 2, 3]), None);
        assert_eq!(t.len(), 2);
        let (m, v) = t.longest_match(&[1, 2, 3, 4]).unwrap();
        assert_eq!((m, *v), (2, "ab9"));
    }

    #[test]
    fn exact_key_preferred_over_extensions() {
        let mut t: RadixTree<u8, u32> = RadixTree::new(0);
        t.insert(&[1, 2], 20);
        t.insert(&[1, 2, 3, 4], 40);
        // Query == a stored key: the match length is the full query, and
        // the entry AT that depth must win over the longer extension.
        let (m, v) = t.longest_match(&[1, 2]).unwrap();
        assert_eq!((m, *v), (2, 20));
    }

    #[test]
    fn lru_cap_evicts_coldest() {
        let mut t: RadixTree<u8, u32> = RadixTree::new(2);
        t.insert(&[1], 1);
        t.insert(&[2], 2);
        t.longest_match(&[1]); // touch [1] — [2] is now coldest
        t.insert(&[3], 3);
        assert_eq!(t.len(), 2);
        assert_eq!(t.longest_match(&[2]).unwrap().0, 0, "[2] was evicted");
        assert_eq!(t.longest_match(&[1]).unwrap().0, 1);
        assert_eq!(t.longest_match(&[3]).unwrap().0, 1);
    }

    #[test]
    fn clear_empties_everything() {
        let mut t: RadixTree<u8, u32> = RadixTree::new(0);
        t.insert(&[1, 2], 1);
        t.insert(&[1, 3], 2);
        t.clear();
        assert!(t.is_empty());
        assert!(t.longest_match(&[1, 2]).is_none());
    }
}
