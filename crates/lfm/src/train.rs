//! Training procedures: instruction tuning (SFT) and Direct Preference
//! Optimization (DPO).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tinynn::graph::Graph;
use tinynn::loss::dpo_loss;
use tinynn::optim::{Adam, Optimizer};

use crate::model::{Lfm, Prompt};
use crate::vocab::TokenId;

/// One supervised instruction-tuning example.
#[derive(Clone, Debug)]
pub struct SftExample {
    /// The instruction prompt (ends with `Bos`).
    pub prompt: Prompt,
    /// Target answer tokens, terminated by `Eos`.
    pub answer: Vec<TokenId>,
}

/// Optimisation hyper-parameters shared by SFT and DPO.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Adam learning rate.
    pub lr: f32,
    /// Passes over the data.
    pub epochs: usize,
    /// Examples per optimizer step.
    pub batch_size: usize,
    /// Global gradient-norm clip.
    pub grad_clip: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            lr: 3e-3,
            epochs: 3,
            batch_size: 8,
            grad_clip: 5.0,
            seed: 0,
        }
    }
}

/// Instruction-tune the model on (prompt, answer) pairs with token-level
/// cross-entropy on the answer positions only (Eq. 2 / Eq. 4 of the paper).
/// Returns the mean loss of each epoch.
pub fn sft(model: &mut Lfm, data: &[SftExample], cfg: &TrainConfig) -> Vec<f32> {
    assert!(!data.is_empty(), "no training data");
    let mut opt = Adam::new(cfg.lr);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);

    for _ in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut total = 0.0f32;
        for chunk in order.chunks(cfg.batch_size) {
            for &i in chunk {
                let ex = &data[i];
                let mut g = Graph::new();
                let lp = model.seq_logprob_graph(&mut g, &ex.prompt, &ex.answer);
                // Mean over answer tokens keeps losses comparable across
                // answer lengths.
                let loss = g.scale(lp, -1.0 / ex.answer.len() as f32);
                total += g.value(loss).item();
                g.backward(loss);
                g.accumulate_grads(&mut model.store);
            }
            model.store.clip_grad_norm(cfg.grad_clip);
            opt.step(&mut model.store);
            model.store.zero_grads();
        }
        epoch_losses.push(total / data.len() as f32);
    }
    epoch_losses
}

/// A DPO preference pair: under `prompt`, `chosen` was judged better than
/// `rejected` by the self-refinement filters.
#[derive(Clone, Debug)]
pub struct DpoPair {
    /// Conditioning prompt.
    pub prompt: Prompt,
    /// Preferred answer (`E` after refinement / `R_b`), `Eos`-terminated.
    pub chosen: Vec<TokenId>,
    /// Dispreferred answer (`E_o` / `R_w`), `Eos`-terminated.
    pub rejected: Vec<TokenId>,
}

/// Optimise Eq. 3 / Eq. 5: shift probability mass toward the chosen answers
/// relative to a frozen `reference` model.  Returns mean loss per epoch.
pub fn dpo(
    model: &mut Lfm,
    reference: &Lfm,
    pairs: &[DpoPair],
    beta: f32,
    cfg: &TrainConfig,
) -> Vec<f32> {
    assert!(!pairs.is_empty(), "no preference pairs");
    // Reference log-probs never change: compute once.
    let refs: Vec<(f32, f32)> = pairs
        .iter()
        .map(|p| {
            (
                reference.seq_logprob(&p.prompt, &p.chosen),
                reference.seq_logprob(&p.prompt, &p.rejected),
            )
        })
        .collect();

    let mut opt = Adam::new(cfg.lr);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);

    for _ in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut total = 0.0f32;
        for chunk in order.chunks(cfg.batch_size) {
            for &i in chunk {
                let pair = &pairs[i];
                let (ref_w, ref_l) = refs[i];
                let mut g = Graph::new();
                let lp_w = model.seq_logprob_graph(&mut g, &pair.prompt, &pair.chosen);
                let lp_l = model.seq_logprob_graph(&mut g, &pair.prompt, &pair.rejected);
                let loss = dpo_loss(&mut g, lp_w, lp_l, ref_w, ref_l, beta);
                total += g.value(loss).item();
                g.backward(loss);
                g.accumulate_grads(&mut model.store);
            }
            model.store.clip_grad_norm(cfg.grad_clip);
            opt.step(&mut model.store);
            model.store.zero_grads();
        }
        epoch_losses.push(total / pairs.len() as f32);
    }
    epoch_losses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instructions::{assess_direct_prompt, label_answer, label_tokens};
    use crate::model::ModelConfig;
    use videosynth::video::StressLabel;
    use videosynth::world::{sample_video, Subject, WorldConfig};

    fn make_data(m: &Lfm, n: usize) -> Vec<SftExample> {
        let mut rng = StdRng::seed_from_u64(1);
        let wc = WorldConfig::uvsd_like();
        (0..n)
            .map(|i| {
                let s = Subject::generate(i, 0.3, &mut rng);
                let label = if i % 2 == 0 {
                    StressLabel::Stressed
                } else {
                    StressLabel::Unstressed
                };
                let v = sample_video(&wc, &s, label, i, 77);
                SftExample {
                    prompt: assess_direct_prompt(m, &v),
                    answer: label_answer(&m.vocab, label),
                }
            })
            .collect()
    }

    #[test]
    fn sft_reduces_loss() {
        let mut m = Lfm::new(ModelConfig::tiny(), 5);
        let data = make_data(&m, 12);
        let cfg = TrainConfig {
            epochs: 5,
            lr: 5e-3,
            ..Default::default()
        };
        let losses = sft(&mut m, &data, &cfg);
        assert_eq!(losses.len(), 5);
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.9),
            "loss should drop: {losses:?}"
        );
        assert!(losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn sft_learns_the_task_signal() {
        // Tiny model, tiny separable task: stressed faces look different
        // enough from unstressed that training accuracy should beat chance.
        // Init seed 5 converges under the vendored generator's stream (the
        // previous seed was tuned for the upstream rand stream).
        let mut m = Lfm::new(ModelConfig::tiny(), 5);
        let data = make_data(&m, 16);
        let cfg = TrainConfig {
            epochs: 10,
            lr: 5e-3,
            ..Default::default()
        };
        sft(&mut m, &data, &cfg);
        let [st, un] = label_tokens(&m.vocab);
        let mut correct = 0;
        for ex in &data {
            let mut rng = StdRng::seed_from_u64(0);
            let c = m.choose(&ex.prompt, &[st, un], 0.0, &mut rng);
            let want = ex.answer[0];
            if c == want {
                correct += 1;
            }
        }
        assert!(
            correct * 10 >= data.len() * 7,
            "train accuracy {correct}/{}",
            data.len()
        );
    }

    #[test]
    fn dpo_moves_mass_toward_chosen() {
        let m0 = Lfm::new(ModelConfig::tiny(), 7);
        let mut m = m0.snapshot();
        let reference = m0.snapshot();
        let data = make_data(&m, 6);
        let pairs: Vec<DpoPair> = data
            .iter()
            .map(|ex| {
                let chosen = ex.answer.clone();
                let mut rejected = ex.answer.clone();
                // Swap the label token for the wrong one.
                let [st, un] = label_tokens(&m.vocab);
                rejected[0] = if chosen[0] == st { un } else { st };
                DpoPair {
                    prompt: ex.prompt.clone(),
                    chosen,
                    rejected,
                }
            })
            .collect();

        let before: f32 = pairs
            .iter()
            .map(|p| m.seq_logprob(&p.prompt, &p.chosen) - m.seq_logprob(&p.prompt, &p.rejected))
            .sum();
        let cfg = TrainConfig {
            epochs: 6,
            lr: 3e-3,
            ..Default::default()
        };
        let losses = dpo(&mut m, &reference, &pairs, 0.1, &cfg);
        let after: f32 = pairs
            .iter()
            .map(|p| m.seq_logprob(&p.prompt, &p.chosen) - m.seq_logprob(&p.prompt, &p.rejected))
            .sum();
        assert!(after > before, "margin should grow: {before} -> {after}");
        assert!(losses.last().unwrap() < &losses[0], "{losses:?}");
    }

    #[test]
    #[should_panic(expected = "no training data")]
    fn sft_rejects_empty_data() {
        let mut m = Lfm::new(ModelConfig::tiny(), 5);
        let _ = sft(&mut m, &[], &TrainConfig::default());
    }
}
