//! Generic-capability pretraining and the "off-the-shelf model" proxies.
//!
//! The paper compares against GPT-4o, Claude-3.5 Sonnet and Gemini-1.5 Pro
//! used through their APIs, i.e. models whose *pretraining* already gave
//! them face-reading world knowledge but which are never fine-tuned on the
//! stress corpora.  We emulate that situation: a [`CapabilityProfile`]
//! describes how much generic instruction data a proxy was pretrained on
//! and how noisy its "world knowledge" is; [`pretrain`] instruction-tunes a
//! fresh model on a synthetic corpus of describe / assess / highlight /
//! reflect / verify tasks whose answers carry that profile's noise.
//!
//! The noise rates were calibrated once so the proxies' zero-shot accuracy
//! ordering matches Table I (GPT-4o > Gemini ≈ Claude on UVSD; Claude worst
//! on RSL); nothing downstream reads them.

use facs::au::{AuSet, ALL_AUS};
use facs::stress::stress_weight;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use videosynth::video::{StressLabel, VideoSample};
use videosynth::world::{sample_video, Subject, WorldConfig};

use crate::instructions::{
    assess_direct_prompt, assess_prompt, choice_answer, describe_prompt, description_answer,
    highlight_prompt, label_answer, reflect_description_prompt, reflect_rationale_prompt,
    verify_prompt,
};
use crate::model::Lfm;
use crate::train::{sft, SftExample, TrainConfig};

/// Pretraining recipe of one off-the-shelf proxy (or of the base model the
/// paper's method fine-tunes).
#[derive(Clone, Debug)]
pub struct CapabilityProfile {
    /// Display name, as used in Table I.
    pub name: &'static str,
    /// Number of synthetic instruction examples.
    pub corpus_size: usize,
    /// Probability of each AU flipping in a describe/reflect target.
    pub describe_noise: f32,
    /// Probability of an assess target carrying the wrong label.
    pub assess_noise: f32,
    /// Probability of a highlight/verify target being corrupted.
    pub rationale_noise: f32,
    /// Std-dev of the gaussian distortion applied to the model's internal
    /// AU→stress "world knowledge".  Pretraining assess targets come from
    /// this *distorted* rule applied to the face, not from the true label —
    /// so a proxy's zero-shot accuracy is capped by how wrong its knowledge
    /// is, exactly like an API model that was never tuned on the corpus.
    pub knowledge_distortion: f32,
    /// SFT passes over the corpus.
    pub epochs: usize,
    /// SFT learning rate.
    pub lr: f32,
}

impl CapabilityProfile {
    /// GPT-4o proxy: largest corpus, least noise — the strongest zero-shot
    /// model of Table I.
    pub fn gpt4o() -> Self {
        CapabilityProfile {
            name: "GPT-4o",
            corpus_size: 360,
            describe_noise: 0.10,
            assess_noise: 0.10,
            rationale_noise: 0.12,
            knowledge_distortion: 0.55,
            epochs: 3,
            lr: 3e-3,
        }
    }

    /// Claude-3.5 proxy.
    pub fn claude() -> Self {
        CapabilityProfile {
            name: "Claude-3.5",
            corpus_size: 300,
            describe_noise: 0.16,
            assess_noise: 0.14,
            rationale_noise: 0.18,
            knowledge_distortion: 0.75,
            epochs: 3,
            lr: 3e-3,
        }
    }

    /// Gemini-1.5 proxy.
    pub fn gemini() -> Self {
        CapabilityProfile {
            name: "Gemini-1.5",
            corpus_size: 300,
            describe_noise: 0.18,
            assess_noise: 0.12,
            rationale_noise: 0.20,
            knowledge_distortion: 0.70,
            epochs: 3,
            lr: 3e-3,
        }
    }

    /// The base model our method starts from (Qwen-VL-7B in the paper):
    /// decent generic instruction following, before any task fine-tuning.
    pub fn base() -> Self {
        CapabilityProfile {
            name: "base",
            corpus_size: 320,
            describe_noise: 0.14,
            assess_noise: 0.12,
            rationale_noise: 0.16,
            knowledge_distortion: 0.60,
            epochs: 3,
            lr: 3e-3,
        }
    }

    /// Shrink the corpus (for tests / smoke runs).
    pub fn scaled(mut self, factor: f32) -> Self {
        self.corpus_size = ((self.corpus_size as f32 * factor) as usize).max(16);
        self
    }
}

/// Build the synthetic pretraining corpus for a profile.
pub fn build_corpus(model: &Lfm, profile: &CapabilityProfile, seed: u64) -> Vec<SftExample> {
    let mut rng = StdRng::seed_from_u64(seed);
    let wc = WorldConfig::uvsd_like();
    let mut out = Vec::with_capacity(profile.corpus_size);

    // The proxy's (mis)knowledge of the AU→stress association: the true
    // weights perturbed once, deterministically per profile.
    let mut krng = StdRng::seed_from_u64(
        seed ^ profile
            .name
            .bytes()
            .fold(0u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64)),
    );
    let believed: Vec<f32> = ALL_AUS
        .iter()
        .map(|&au| {
            stress_weight(au) + tinynn::rngutil::normal(&mut krng) * profile.knowledge_distortion
        })
        .collect();

    // A pool of videos to draw from (also used as verify distractors).
    let pool_size = (profile.corpus_size / 2).clamp(8, 200);
    let videos: Vec<VideoSample> = (0..pool_size)
        .map(|i| {
            let s = Subject::generate(i, wc.subject_idiosyncrasy, &mut rng);
            let label = if rng.random::<f32>() < 0.5 {
                StressLabel::Stressed
            } else {
                StressLabel::Unstressed
            };
            sample_video(&wc, &s, label, i, seed ^ 0xABCD)
        })
        .collect();

    for k in 0..profile.corpus_size {
        let v = &videos[k % videos.len()];
        let noisy_desc = flip_aus(v.apex_aus(), profile.describe_noise, &mut rng);
        // The assess target comes from the distorted belief, not the true
        // label: wrong knowledge produces systematic zero-shot errors.
        let noisy_label = flip_label(
            believed_label(v.apex_aus(), &believed),
            profile.assess_noise,
            &mut rng,
        );
        match k % 6 {
            // Describe: video → (noisy) AU description.
            0 => out.push(SftExample {
                prompt: describe_prompt(model, v),
                answer: description_answer(&model.vocab, noisy_desc),
            }),
            // Assess with a description in context.
            1 => out.push(SftExample {
                prompt: assess_prompt(model, v, noisy_desc),
                answer: label_answer(&model.vocab, noisy_label),
            }),
            // Assess directly from pixels.
            2 => out.push(SftExample {
                prompt: assess_direct_prompt(model, v),
                answer: label_answer(&model.vocab, noisy_label),
            }),
            // Highlight: the stress-relevant subset of the description.
            3 => {
                let rationale = noisy_rationale(
                    noisy_desc,
                    noisy_label,
                    &believed,
                    profile.rationale_noise,
                    &mut rng,
                );
                out.push(SftExample {
                    prompt: highlight_prompt(model, v, noisy_desc, noisy_label),
                    answer: description_answer(&model.vocab, rationale),
                });
            }
            // Reflect: a noisier previous description is corrected toward
            // the truth — this is what gives the pretrained model its
            // ability to improve on reflection.
            4 => {
                let prev = flip_aus(v.apex_aus(), profile.describe_noise * 2.0, &mut rng);
                let improved = flip_aus(v.apex_aus(), profile.describe_noise * 0.5, &mut rng);
                out.push(SftExample {
                    prompt: reflect_description_prompt(model, v, prev, v.label),
                    answer: description_answer(&model.vocab, improved),
                });
            }
            // Verify: pick the video a description belongs to.
            _ => {
                let mut others: Vec<&VideoSample> = Vec::with_capacity(3);
                while others.len() < 3 {
                    let c = &videos[rng.random_range(0..videos.len())];
                    if c.id != v.id {
                        others.push(c);
                    }
                }
                let correct = rng.random_range(0..4usize);
                let mut slots: Vec<&VideoSample> = Vec::with_capacity(4);
                let mut oi = 0;
                for slot in 0..4 {
                    if slot == correct {
                        slots.push(v);
                    } else {
                        slots.push(others[oi]);
                        oi += 1;
                    }
                }
                let answer_idx = if rng.random::<f32>() < profile.rationale_noise {
                    rng.random_range(0..4usize)
                } else {
                    correct
                };
                out.push(SftExample {
                    prompt: verify_prompt(
                        model,
                        [slots[0], slots[1], slots[2], slots[3]],
                        noisy_desc,
                    ),
                    answer: choice_answer(&model.vocab, answer_idx),
                });
            }
        }
        // Occasionally include a rationale-reflection example so the
        // instruction format is known at fine-tuning time.
        if k % 17 == 0 {
            let rat = noisy_rationale(
                noisy_desc,
                noisy_label,
                &believed,
                profile.rationale_noise,
                &mut rng,
            );
            out.push(SftExample {
                prompt: reflect_rationale_prompt(model, v, noisy_desc, noisy_label, rat),
                answer: description_answer(&model.vocab, rat),
            });
        }
    }
    out
}

/// Pretrain a model in place on a profile's corpus.  Returns per-epoch loss.
pub fn pretrain(model: &mut Lfm, profile: &CapabilityProfile, seed: u64) -> Vec<f32> {
    let corpus = build_corpus(model, profile, seed);
    let cfg = TrainConfig {
        lr: profile.lr,
        epochs: profile.epochs,
        batch_size: 8,
        grad_clip: 5.0,
        seed,
    };
    sft(model, &corpus, &cfg)
}

/// Flip each AU membership independently with probability `p`.
fn flip_aus<R: Rng>(aus: AuSet, p: f32, rng: &mut R) -> AuSet {
    let mut out = aus;
    for au in ALL_AUS {
        if rng.random::<f32>() < p {
            out.toggle(au);
        }
    }
    out
}

/// Flip a stress label with probability `p`.
fn flip_label<R: Rng>(label: StressLabel, p: f32, rng: &mut R) -> StressLabel {
    if rng.random::<f32>() < p {
        label.flipped()
    } else {
        label
    }
}

/// Stress label the distorted belief assigns to an AU set.
fn believed_label(aus: AuSet, believed: &[f32]) -> StressLabel {
    let mut z = facs::stress::STRESS_BIAS;
    for au in aus.iter() {
        z += believed[au.index()];
    }
    if z > 0.0 {
        StressLabel::Stressed
    } else {
        StressLabel::Unstressed
    }
}

/// The "world-knowledge" rationale: the 1–2 described AUs the belief deems
/// most aligned with the assessed label, or a random subset under noise.
fn noisy_rationale<R: Rng>(
    desc: AuSet,
    label: StressLabel,
    believed: &[f32],
    noise: f32,
    rng: &mut R,
) -> AuSet {
    let mut aus: Vec<_> = desc.iter().collect();
    if aus.is_empty() {
        return AuSet::EMPTY;
    }
    if rng.random::<f32>() < noise {
        // Corrupted: random described AU.
        let pick = aus[rng.random_range(0..aus.len())];
        return AuSet::from_aus([pick]);
    }
    let sign = match label {
        StressLabel::Stressed => 1.0f32,
        StressLabel::Unstressed => -1.0,
    };
    aus.sort_by(|a, b| {
        (sign * believed[b.index()])
            .partial_cmp(&(sign * believed[a.index()]))
            .expect("weights are finite")
    });
    AuSet::from_aus(aus.into_iter().take(2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;

    #[test]
    fn corpus_covers_all_task_kinds() {
        let m = Lfm::new(ModelConfig::tiny(), 1);
        let profile = CapabilityProfile::base().scaled(0.2);
        let corpus = build_corpus(&m, &profile, 9);
        assert!(corpus.len() >= profile.corpus_size);
        // Answers are all Eos-terminated.
        let eos = m.vocab.special(crate::vocab::Special::Eos);
        assert!(corpus.iter().all(|ex| *ex.answer.last().unwrap() == eos));
    }

    #[test]
    fn profiles_are_ordered_by_noise() {
        let g = CapabilityProfile::gpt4o();
        let c = CapabilityProfile::claude();
        assert!(g.describe_noise < c.describe_noise);
        assert!(g.assess_noise < c.assess_noise);
    }

    #[test]
    fn scaled_shrinks_corpus_with_floor() {
        let p = CapabilityProfile::gpt4o().scaled(0.01);
        assert_eq!(p.corpus_size, 16);
    }

    #[test]
    fn flip_aus_zero_p_is_identity() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = AuSet::from_bits(0b1010_1010_1010);
        assert_eq!(flip_aus(s, 0.0, &mut rng), s);
    }

    #[test]
    fn noisy_rationale_subsets_description() {
        let mut rng = StdRng::seed_from_u64(4);
        let believed: Vec<f32> = ALL_AUS.iter().map(|&au| stress_weight(au)).collect();
        let desc = AuSet::from_bits(0b0000_1111_0000);
        for _ in 0..20 {
            let r = noisy_rationale(desc, StressLabel::Stressed, &believed, 0.3, &mut rng);
            assert!(r.difference(desc).is_empty(), "rationale must be a subset");
            assert!(r.len() <= 2);
        }
        assert_eq!(
            noisy_rationale(
                AuSet::EMPTY,
                StressLabel::Stressed,
                &believed,
                0.0,
                &mut rng
            ),
            AuSet::EMPTY
        );
    }

    #[test]
    fn pretraining_reduces_loss() {
        let mut m = Lfm::new(ModelConfig::tiny(), 2);
        let profile = CapabilityProfile::base().scaled(0.08);
        let losses = pretrain(&mut m, &profile, 5);
        assert_eq!(losses.len(), profile.epochs);
        assert!(losses.last().unwrap() < &losses[0], "{losses:?}");
    }
}
