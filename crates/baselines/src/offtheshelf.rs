//! The three off-the-shelf large foundation models of Table I, used
//! zero-shot: GPT-4o, Claude-3.5 Sonnet and Gemini-1.5 Pro.
//!
//! Each proxy is an [`lfm`] model pretrained with that provider's
//! capability profile ([`lfm::pretrain::CapabilityProfile`]) and *never*
//! fine-tuned on the stress corpora — exactly the API-only usage of the
//! paper ("we only use API to let them perform stress detection without
//! training").

use lfm::instructions::{assess_direct_prompt, label_tokens};
use lfm::pretrain::{pretrain, CapabilityProfile};
use lfm::{Lfm, ModelConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use videosynth::video::{StressLabel, VideoSample};

use crate::common::StressDetector;

/// A frozen, zero-shot foundation-model detector.
#[derive(Clone, Debug)]
pub struct OffTheShelf {
    model: Lfm,
    name: &'static str,
}

impl OffTheShelf {
    /// Instantiate a proxy from its capability profile.  `seed` fixes the
    /// pretraining draw; the stress corpora are never seen.
    pub fn build(profile: CapabilityProfile, seed: u64) -> Self {
        let mut model = Lfm::new(ModelConfig::small(), seed);
        pretrain(&mut model, &profile, seed ^ 0x0FF);
        OffTheShelf {
            model,
            name: profile.name,
        }
    }

    /// The GPT-4o proxy.
    pub fn gpt4o(seed: u64) -> Self {
        Self::build(CapabilityProfile::gpt4o(), seed)
    }

    /// The Claude-3.5 proxy.
    pub fn claude(seed: u64) -> Self {
        Self::build(CapabilityProfile::claude(), seed)
    }

    /// The Gemini-1.5 proxy.
    pub fn gemini(seed: u64) -> Self {
        Self::build(CapabilityProfile::gemini(), seed)
    }

    /// Borrow the underlying frozen model (used by the §IV-G test-time
    /// refinement experiment).
    pub fn model(&self) -> &Lfm {
        &self.model
    }

    /// Consume into the underlying model.
    pub fn into_model(self) -> Lfm {
        self.model
    }
}

impl StressDetector for OffTheShelf {
    fn name(&self) -> &'static str {
        self.name
    }

    fn predict(&self, video: &VideoSample) -> StressLabel {
        let p = assess_direct_prompt(&self.model, video);
        let [st, un] = label_tokens(&self.model.vocab);
        let mut rng = StdRng::seed_from_u64(video.id as u64);
        if self.model.choose(&p, &[st, un], 0.0, &mut rng) == st {
            StressLabel::Stressed
        } else {
            StressLabel::Unstressed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use videosynth::dataset::{Dataset, DatasetProfile, Scale};

    #[test]
    fn proxies_have_their_table_names() {
        // Use a minuscule pretraining corpus: this test only checks wiring.
        let p = OffTheShelf::build(CapabilityProfile::gpt4o().scaled(0.05), 1);
        assert_eq!(p.name(), "GPT-4o");
    }

    #[test]
    fn zero_shot_predicts_something_reasonable() {
        let proxy = OffTheShelf::build(CapabilityProfile::gpt4o().scaled(0.3), 2);
        let ds = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), 14);
        let correct = ds
            .samples
            .iter()
            .filter(|v| proxy.predict(v) == v.label)
            .count();
        // Better than always-wrong; not required to be great.
        assert!(correct * 10 >= ds.len() * 4, "{correct}/{}", ds.len());
    }
}
