//! Zhang, Mei, Liu, Yuan & Qian (ICSIP 2019): a CNN detects the emotion of
//! every frame; the video is flagged stressed when at least two thirds of
//! its frames show a negative emotion.
//!
//! The per-frame CNN is trained for real (weak frame labels from the video
//! label, as in the original's emotion-pretraining + rule design); the
//! ⅔-majority rule is kept verbatim.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tinynn::layers::Linear;
use tinynn::loss::cross_entropy;
use tinynn::optim::{Adam, Optimizer};
use tinynn::{Graph, ParamStore};
use videosynth::video::{StressLabel, VideoSample};

use crate::common::{class_of, sampled_frames, CnnTrunk, StressDetector};

/// Frames sampled per video for the rule.
const FRAMES: usize = 6;
/// The paper's decision rule: stressed iff ≥ 2/3 of frames are negative.
const RULE_FRACTION: f32 = 2.0 / 3.0;

/// The fitted detector.
#[derive(Clone, Debug)]
pub struct Zhang {
    store: ParamStore,
    trunk: CnnTrunk,
    head: Linear,
}

impl Zhang {
    /// Fit the frame-level emotion CNN.
    pub fn fit(train: &[VideoSample], seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let trunk = CnnTrunk::new(&mut store, "zhang", 4, 8, &mut rng);
        let head = Linear::new(&mut store, "zhang.head", trunk.out_dim, 2, &mut rng);
        let mut opt = Adam::new(2e-3);

        for epoch in 0..3 {
            for v in train {
                // Train on a subset of frames each epoch to bound cost.
                for &t in sampled_frames(v, 3).iter().skip(epoch % 2) {
                    let mut g = Graph::new();
                    let x = CnnTrunk::frame_leaf(&mut g, v, t);
                    let feat = trunk.forward(&mut g, &store, x);
                    let logits = head.forward(&mut g, &store, feat);
                    let loss = cross_entropy(&mut g, logits, &[class_of(v.label)]);
                    g.backward(loss);
                    g.accumulate_grads(&mut store);
                    store.clip_grad_norm(5.0);
                    opt.step(&mut store);
                    store.zero_grads();
                }
            }
        }
        Zhang { store, trunk, head }
    }

    /// Whether one frame is classified as a negative emotion.
    fn frame_negative(&self, video: &VideoSample, t: usize) -> bool {
        let mut g = Graph::new();
        let x = CnnTrunk::frame_leaf(&mut g, video, t);
        let feat = self.trunk.forward(&mut g, &self.store, x);
        let logits = self.head.forward(&mut g, &self.store, feat);
        let row = g.value(logits).row(0).to_vec();
        tinynn::tensor::argmax(&row) == 1
    }
}

impl StressDetector for Zhang {
    fn name(&self) -> &'static str {
        "Zhang et al."
    }

    fn predict(&self, video: &VideoSample) -> StressLabel {
        let frames = sampled_frames(video, FRAMES);
        let negative = frames
            .iter()
            .filter(|&&t| self.frame_negative(video, t))
            .count();
        if (negative as f32) >= RULE_FRACTION * frames.len() as f32 {
            StressLabel::Stressed
        } else {
            StressLabel::Unstressed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use videosynth::dataset::{Dataset, DatasetProfile, Scale};

    #[test]
    fn learns_better_than_chance() {
        let ds = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), 6);
        let (train_i, test_i) = ds.train_test_split(0.8, 2);
        let train: Vec<VideoSample> = train_i.iter().map(|&i| ds.samples[i].clone()).collect();
        let model = Zhang::fit(&train, 3);
        let correct = test_i
            .iter()
            .filter(|&&i| model.predict(&ds.samples[i]) == ds.samples[i].label)
            .count();
        assert!(
            correct * 10 >= test_i.len() * 5,
            "{correct}/{}",
            test_i.len()
        );
    }
}
