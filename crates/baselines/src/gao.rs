//! Gao, Yüce & Thiran (ICIP 2014): 49 facial feature points per frame, an
//! SVM classifies each frame as showing negative emotion, and the video is
//! stressed when the negative-frame ratio exceeds a threshold.
//!
//! The landmark tracker is simulated
//! ([`videosynth::features::observed_landmarks`]); the linear SVM (hinge
//! loss) and the threshold sweep are trained for real.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tinynn::layers::Linear;
use tinynn::loss::hinge;
use tinynn::optim::{Optimizer, Sgd};
use tinynn::{Graph, ParamStore, Tensor};
use videosynth::features::{landmark_feature_vector, observed_landmarks};
use videosynth::video::{StressLabel, VideoSample};

use crate::common::{sampled_frames, StressDetector};

/// Landmark tracker jitter in pixels.
const TRACKER_NOISE: f32 = 1.1;
/// Frames sampled per video.
const FRAMES: usize = 6;

/// The fitted detector.
#[derive(Debug)]
pub struct Gao {
    store: ParamStore,
    svm: Linear,
    threshold: f32,
    seed: u64,
}

impl Gao {
    /// Fit: frame-level linear SVM with the video label as weak frame
    /// label, then sweep the negative-ratio threshold on the training set.
    pub fn fit(train: &[VideoSample], seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let svm = Linear::new(&mut store, "svm", 98, 1, &mut rng);
        let mut opt = Sgd::new(0.05, 0.9);

        // Assemble frame-level dataset.
        let mut xs: Vec<Vec<f32>> = Vec::new();
        let mut ys: Vec<f32> = Vec::new();
        for v in train {
            for t in sampled_frames(v, FRAMES) {
                xs.push(landmark_feature_vector(&observed_landmarks(
                    v,
                    t,
                    TRACKER_NOISE,
                    seed,
                )));
                ys.push(if v.label == StressLabel::Stressed {
                    1.0
                } else {
                    -1.0
                });
            }
        }
        for _ in 0..20 {
            for chunk in (0..xs.len()).collect::<Vec<_>>().chunks(32) {
                let mut g = Graph::new();
                let mut flat = Vec::with_capacity(chunk.len() * 98);
                let mut lbl = Vec::with_capacity(chunk.len());
                for &i in chunk {
                    flat.extend_from_slice(&xs[i]);
                    lbl.push(ys[i]);
                }
                let x = g.leaf(Tensor::from_vec(flat, vec![chunk.len(), 98]));
                let scores = svm.forward(&mut g, &store, x);
                let loss = hinge(&mut g, scores, &lbl);
                g.backward(loss);
                g.accumulate_grads(&mut store);
                opt.step(&mut store);
                store.zero_grads();
            }
        }

        // Threshold sweep.
        let mut model = Gao {
            store,
            svm,
            threshold: 0.5,
            seed,
        };
        let mut best = (0usize, 0.5f32);
        for k in 1..10 {
            let th = k as f32 / 10.0;
            model.threshold = th;
            let correct = train.iter().filter(|v| model.predict(v) == v.label).count();
            if correct > best.0 {
                best = (correct, th);
            }
        }
        model.threshold = best.1;
        model
    }

    /// Fraction of sampled frames classified as negative emotion.
    pub fn negative_ratio(&self, video: &VideoSample) -> f32 {
        let frames = sampled_frames(video, FRAMES);
        let mut neg = 0usize;
        for &t in &frames {
            let f =
                landmark_feature_vector(&observed_landmarks(video, t, TRACKER_NOISE, self.seed));
            let mut g = Graph::new();
            let x = g.leaf(Tensor::from_vec(f, vec![1, 98]));
            let s = self.svm.forward(&mut g, &self.store, x);
            if g.value(s).item() > 0.0 {
                neg += 1;
            }
        }
        neg as f32 / frames.len() as f32
    }
}

impl StressDetector for Gao {
    fn name(&self) -> &'static str {
        "Gao et al."
    }

    fn predict(&self, video: &VideoSample) -> StressLabel {
        if self.negative_ratio(video) >= self.threshold {
            StressLabel::Stressed
        } else {
            StressLabel::Unstressed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use videosynth::dataset::{Dataset, DatasetProfile, Scale};

    #[test]
    fn learns_better_than_chance() {
        let ds = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), 4);
        let (train_i, test_i) = ds.train_test_split(0.8, 1);
        let train: Vec<VideoSample> = train_i.iter().map(|&i| ds.samples[i].clone()).collect();
        let model = Gao::fit(&train, 5);
        let correct = test_i
            .iter()
            .filter(|&&i| model.predict(&ds.samples[i]) == ds.samples[i].label)
            .count();
        assert!(
            correct * 10 >= test_i.len() * 5,
            "{correct}/{}",
            test_i.len()
        );
    }

    #[test]
    fn threshold_is_in_unit_interval() {
        let ds = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), 5);
        let model = Gao::fit(&ds.samples[..24], 2);
        assert!((0.0..=1.0).contains(&model.threshold));
        let r = model.negative_ratio(&ds.samples[0]);
        assert!((0.0..=1.0).contains(&r));
    }
}
