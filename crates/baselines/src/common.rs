//! Shared infrastructure for the baseline detectors.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tinynn::layers::{Activation, Mlp};
use tinynn::loss::cross_entropy;
use tinynn::optim::{Adam, Optimizer};
use tinynn::{Graph, ParamStore, Tensor};
use videosynth::image::Image;
use videosynth::video::{StressLabel, VideoSample};

/// A fitted video-level stress detector.
pub trait StressDetector {
    /// Method name as it appears in Table I.
    fn name(&self) -> &'static str;

    /// Predict the stress label of a video.
    fn predict(&self, video: &VideoSample) -> StressLabel;
}

/// Frame indices used when a baseline samples frames from a clip: start,
/// apex and end, plus evenly spaced extras up to `n`.
pub fn sampled_frames(video: &VideoSample, n: usize) -> Vec<usize> {
    assert!(n >= 1);
    let len = video.num_frames();
    let apex = video.most_expressive_frame();
    let mut out = vec![0, apex, len - 1];
    let mut k = 1;
    while out.len() < n {
        out.push((k * len / (n + 1)).min(len - 1));
        k += 1;
    }
    out.truncate(n.max(3).min(len));
    out.sort_unstable();
    out.dedup();
    out
}

/// Downsampled (48×48) pixel vector of one frame — the generic CNN input.
pub fn frame_pixels_48(img: &Image) -> Vec<f32> {
    img.downsample(2).pixels().to_vec()
}

/// A generic softmax classifier head trained with Adam + cross-entropy.
///
/// Several baselines share this: they differ in *which features* they feed
/// it, which is where their real differences lie.
#[derive(Clone, Debug)]
pub struct MlpClassifier {
    store: ParamStore,
    mlp: Mlp,
}

impl MlpClassifier {
    /// Fit on `(feature, class)` pairs; `dims` = `[in, hidden.., 2]`.
    pub fn fit(
        features: &[Vec<f32>],
        labels: &[usize],
        dims: &[usize],
        epochs: usize,
        lr: f32,
        seed: u64,
    ) -> Self {
        assert_eq!(features.len(), labels.len());
        assert!(!features.is_empty(), "no training data");
        assert_eq!(*dims.last().expect("dims"), 2, "binary head");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "clf", dims, Activation::Relu, &mut rng);
        let mut opt = Adam::new(lr);

        let n = features.len();
        let d = dims[0];
        let batch = 16usize;
        for epoch in 0..epochs {
            // Simple deterministic rotation instead of reshuffling: the
            // corpora are already label-shuffled.
            let offset = (epoch * 7) % n;
            for start in (0..n).step_by(batch) {
                let mut g = Graph::new();
                let idx: Vec<usize> = (start..(start + batch).min(n))
                    .map(|i| (i + offset) % n)
                    .collect();
                let mut x = Vec::with_capacity(idx.len() * d);
                let mut t = Vec::with_capacity(idx.len());
                for &i in &idx {
                    assert_eq!(features[i].len(), d, "feature width mismatch");
                    x.extend_from_slice(&features[i]);
                    t.push(labels[i]);
                }
                let xv = g.leaf(Tensor::from_vec(x, vec![idx.len(), d]));
                let logits = mlp.forward(&mut g, &store, xv);
                let loss = cross_entropy(&mut g, logits, &t);
                g.backward(loss);
                g.accumulate_grads(&mut store);
                store.clip_grad_norm(5.0);
                opt.step(&mut store);
                store.zero_grads();
            }
        }
        MlpClassifier { store, mlp }
    }

    /// Class scores (logits) for one feature vector.
    pub fn logits(&self, feature: &[f32]) -> Vec<f32> {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(feature.to_vec(), vec![1, feature.len()]));
        let out = self.mlp.forward(&mut g, &self.store, x);
        g.value(out).row(0).to_vec()
    }

    /// Predicted class index.
    pub fn predict_class(&self, feature: &[f32]) -> usize {
        tinynn::tensor::argmax(&self.logits(feature))
    }
}

/// A small convolutional trunk shared by the CNN-based baselines: the
/// ResNet/VGG stand-in at 48×48 input.
///
/// The input has **two channels**: the frame itself and the frame minus the
/// clip's least-expressive frame.  Production face pipelines normalise away
/// identity (alignment, identity-invariant embeddings); without the
/// baseline-subtraction channel every pixel CNN collapses to the majority
/// class under per-subject appearance variation.
///
/// `conv(2→c1, k5, s2) → relu → pool2 → conv(c1→c2, k3, s1) → relu → pool2`
/// then flatten: output feature width `c2 × 4 × 4`.
#[derive(Clone, Debug)]
pub struct CnnTrunk {
    conv1: tinynn::layers::Conv2dLayer,
    conv2: tinynn::layers::Conv2dLayer,
    /// Output feature width.
    pub out_dim: usize,
}

impl CnnTrunk {
    /// Register the trunk with channel widths `(c1, c2)`.
    pub fn new(store: &mut ParamStore, name: &str, c1: usize, c2: usize, rng: &mut StdRng) -> Self {
        CnnTrunk {
            conv1: tinynn::layers::Conv2dLayer::new(store, &format!("{name}.c1"), 2, c1, 5, 2, rng),
            conv2: tinynn::layers::Conv2dLayer::new(
                store,
                &format!("{name}.c2"),
                c1,
                c2,
                3,
                1,
                rng,
            ),
            out_dim: c2 * 4 * 4,
        }
    }

    /// Encode a 48×48 two-channel leaf (`[2, 48, 48]`) into `[1, out_dim]`.
    pub fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        img: tinynn::graph::Var,
    ) -> tinynn::graph::Var {
        let h = self.conv1.forward(g, store, img); // [c1, 22, 22]
        let h = g.relu(h);
        let h = g.max_pool2d(h, 2); // [c1, 11, 11]
        let h = self.conv2.forward(g, store, h); // [c2, 9, 9]
        let h = g.relu(h);
        let h = g.max_pool2d(h, 2); // [c2, 4, 4]
        g.reshape(h, vec![1, self.out_dim])
    }

    /// Leaf for one frame of a video: `[2, 48, 48]` — the frame and its
    /// difference from the clip's least-expressive (near-neutral) frame.
    pub fn frame_leaf(g: &mut Graph, video: &VideoSample, t: usize) -> tinynn::graph::Var {
        let frame = video.render_frame(t);
        let baseline = video.render_frame(video.least_expressive_frame());
        Self::pair_leaf(g, &frame, &baseline)
    }

    /// Leaf from explicit frame + baseline images.  Channels are normalised
    /// (centred / amplified) — the input-standardisation every production
    /// vision pipeline applies; without it the sub-0.1 pixel contrasts give
    /// gradients too small for the small trunks to escape the majority
    /// classifier.
    pub fn pair_leaf(g: &mut Graph, frame: &Image, baseline: &Image) -> tinynn::graph::Var {
        let a = frame_pixels_48(frame);
        let b = frame_pixels_48(baseline);
        let mut px = Vec::with_capacity(a.len() * 2);
        px.extend(a.iter().map(|x| (x - 0.5) * 2.0));
        px.extend(a.iter().zip(&b).map(|(x, y)| (x - y) * 4.0));
        g.leaf(Tensor::from_vec(px, vec![2, 48, 48]))
    }

    /// First convolution only (for deeper variants that extend the trunk).
    pub fn conv1_forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        x: tinynn::graph::Var,
    ) -> tinynn::graph::Var {
        self.conv1.forward(g, store, x)
    }

    /// Second convolution only.
    pub fn conv2_forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        x: tinynn::graph::Var,
    ) -> tinynn::graph::Var {
        self.conv2.forward(g, store, x)
    }
}

/// Convert label ↔ class index (stressed = 1).
pub fn class_of(label: StressLabel) -> usize {
    label.as_index()
}

/// Inverse of [`class_of`].
pub fn label_of(class: usize) -> StressLabel {
    StressLabel::from_index(class)
}

#[cfg(test)]
mod tests {
    use super::*;
    use videosynth::dataset::{Dataset, DatasetProfile, Scale};

    #[test]
    fn sampled_frames_are_valid_and_sorted() {
        let ds = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), 1);
        let v = &ds.samples[0];
        let f = sampled_frames(v, 6);
        assert!(f.len() >= 3);
        assert!(f.windows(2).all(|w| w[0] < w[1]));
        assert!(f.iter().all(|&t| t < v.num_frames()));
    }

    #[test]
    fn mlp_classifier_learns_a_linear_rule() {
        // Class = 1 iff x0 > x1.
        let mut feats = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let a = (i % 10) as f32 / 10.0;
            let b = ((i * 7) % 10) as f32 / 10.0;
            feats.push(vec![a, b]);
            labels.push(usize::from(a > b));
        }
        let clf = MlpClassifier::fit(&feats, &labels, &[2, 8, 2], 40, 0.01, 0);
        let correct = feats
            .iter()
            .zip(&labels)
            .filter(|(f, &l)| clf.predict_class(f) == l)
            .count();
        assert!(correct >= 55, "{correct}/60");
    }

    #[test]
    fn frame_pixels_48_size() {
        let ds = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), 2);
        let img = ds.samples[0].render_frame(0);
        assert_eq!(frame_pixels_48(&img).len(), 48 * 48);
    }

    #[test]
    fn class_round_trip() {
        assert_eq!(
            label_of(class_of(StressLabel::Stressed)),
            StressLabel::Stressed
        );
        assert_eq!(
            label_of(class_of(StressLabel::Unstressed)),
            StressLabel::Unstressed
        );
    }
}
