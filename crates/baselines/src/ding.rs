//! Ding, Dai, Wang, Feng, Cao & Zhang (ACM MM 2024): exploit a large
//! foundation model's world knowledge to *describe* facial actions, then
//! detect stress from the descriptions together with the visual input —
//! the strongest supervised baseline of Table I and the direct precursor of
//! the paper's method (same authors).
//!
//! Here: a pretrained (but not stress-tuned) [`lfm`] proxy generates the
//! facial-action description of each video; a classifier is trained on the
//! concatenation of the description's AU indicator vector and pixel region
//! features.  Unlike the paper's method there is no reasoning chain, no
//! description tuning on expert AU data, and no self-refinement.

use facs::au::NUM_AUS;
use lfm::grammar::generate_description;
use lfm::instructions::describe_prompt;
use lfm::pretrain::{pretrain, CapabilityProfile};
use lfm::{Lfm, ModelConfig};
use videosynth::features::region_features;
use videosynth::video::{StressLabel, VideoSample};

use crate::common::{class_of, label_of, MlpClassifier, StressDetector};

/// Feature width: 12 AU indicators + 6 region means (f_e) + 6 (f_l).
const FEAT: usize = NUM_AUS + 12;

/// The fitted detector.
#[derive(Clone, Debug)]
pub struct Ding {
    describer: Lfm,
    clf: MlpClassifier,
}

impl Ding {
    /// Pretrain the description model, generate descriptions for the
    /// training videos, and fit the fusion classifier.
    pub fn fit(train: &[VideoSample], seed: u64) -> Self {
        let mut describer = Lfm::new(ModelConfig::small(), seed ^ 0xD1);
        // Ding et al. lean on a GPT-4-class model's facial world knowledge
        // for the descriptions; use the strongest capability profile with
        // extra describe-heavy pretraining volume.
        let mut profile = CapabilityProfile::gpt4o();
        profile.corpus_size = (profile.corpus_size as f32 * 1.5) as usize;
        profile.describe_noise = 0.06;
        pretrain(&mut describer, &profile, seed ^ 0xD2);
        let feats: Vec<Vec<f32>> = train
            .iter()
            .map(|v| Self::features(&describer, v))
            .collect();
        let labels: Vec<usize> = train.iter().map(|v| class_of(v.label)).collect();
        let clf = MlpClassifier::fit(&feats, &labels, &[FEAT, 24, 2], 30, 5e-3, seed);
        Ding { describer, clf }
    }

    fn features(describer: &Lfm, video: &VideoSample) -> Vec<f32> {
        let p = describe_prompt(describer, video);
        let desc = generate_description(describer, &p, 0.0, video.id as u64);
        let mut out = Vec::with_capacity(FEAT);
        out.extend_from_slice(&desc.to_dense());
        let (fe, fl) = video.expressive_pair();
        out.extend(region_features(&fe));
        out.extend(region_features(&fl));
        out
    }
}

impl StressDetector for Ding {
    fn name(&self) -> &'static str {
        "Ding et al."
    }

    fn predict(&self, video: &VideoSample) -> StressLabel {
        label_of(
            self.clf
                .predict_class(&Self::features(&self.describer, video)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use videosynth::dataset::{Dataset, DatasetProfile, Scale};

    #[test]
    fn learns_better_than_chance() {
        let ds = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), 13);
        let (train_i, test_i) = ds.train_test_split(0.8, 7);
        let train: Vec<VideoSample> = train_i.iter().map(|&i| ds.samples[i].clone()).collect();
        let model = Ding::fit(&train, 8);
        let correct = test_i
            .iter()
            .filter(|&&i| model.predict(&ds.samples[i]) == ds.samples[i].label)
            .count();
        assert!(
            correct * 10 >= test_i.len() * 5,
            "{correct}/{}",
            test_i.len()
        );
    }
}
