//! FDASSNN (Gavrilescu & Vizireanu, Sensors 2019): an Active Appearance
//! Model estimates per-AU intensities; a multi-layer perceptron maps the
//! intensities to the stress decision.
//!
//! The AAM is a solved upstream component we simulate as a noisy AU
//! intensity observation ([`videosynth::features::observed_au_intensities`]);
//! the MLP is trained for real.

use facs::au::NUM_AUS;
use videosynth::features::observed_au_intensities;
use videosynth::video::{StressLabel, VideoSample};

use crate::common::{class_of, label_of, MlpClassifier, StressDetector};

/// Observation noise of the simulated AAM (σ of the AU intensity error).
/// Classical AAM-based AU intensity estimation is the weakest link of the
/// original system (Table I puts FDASSNN near the zero-shot LFMs), so the
/// simulated detector is correspondingly coarse.
const AAM_NOISE: f32 = 0.42;

/// The fitted detector.
#[derive(Clone, Debug)]
pub struct Fdassnn {
    clf: MlpClassifier,
    seed: u64,
}

impl Fdassnn {
    /// Fit the MLP on AAM-observed AU intensities at the apex frame.
    pub fn fit(train: &[VideoSample], seed: u64) -> Self {
        let feats: Vec<Vec<f32>> = train.iter().map(|v| Self::features(v, seed)).collect();
        let labels: Vec<usize> = train.iter().map(|v| class_of(v.label)).collect();
        let clf = MlpClassifier::fit(&feats, &labels, &[NUM_AUS, 24, 2], 30, 5e-3, seed);
        Fdassnn { clf, seed }
    }

    fn features(video: &VideoSample, seed: u64) -> Vec<f32> {
        observed_au_intensities(video, video.most_expressive_frame(), AAM_NOISE, seed).to_vec()
    }
}

impl StressDetector for Fdassnn {
    fn name(&self) -> &'static str {
        "FDASSNN"
    }

    fn predict(&self, video: &VideoSample) -> StressLabel {
        label_of(self.clf.predict_class(&Self::features(video, self.seed)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use videosynth::dataset::{Dataset, DatasetProfile, Scale};

    #[test]
    fn learns_better_than_chance() {
        let ds = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), 1);
        let (train, test) = ds.train_test_split(0.8, 3);
        let train: Vec<VideoSample> = train.iter().map(|&i| ds.samples[i].clone()).collect();
        let model = Fdassnn::fit(&train, 7);
        let correct = test
            .iter()
            .filter(|&&i| model.predict(&ds.samples[i]) == ds.samples[i].label)
            .count();
        assert!(
            correct * 10 >= test.len() * 6,
            "accuracy too low: {correct}/{}",
            test.len()
        );
    }

    #[test]
    fn deterministic_predictions() {
        let ds = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), 2);
        let model = Fdassnn::fit(&ds.samples[..20], 1);
        assert_eq!(
            model.predict(&ds.samples[21]),
            model.predict(&ds.samples[21])
        );
    }
}
