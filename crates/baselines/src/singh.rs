//! Singh et al. (Microprocessors & Microsystems 2022): stress detection
//! from surveillance video with a ResNet-101 backbone — here, the deepest
//! pure-pixel CNN in the suite, applied to the expressive frame.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tinynn::layers::{Conv2dLayer, Linear};
use tinynn::loss::cross_entropy;
use tinynn::optim::{Adam, Optimizer};
use tinynn::{Graph, ParamStore};
use videosynth::video::{StressLabel, VideoSample};

use crate::common::{class_of, label_of, CnnTrunk, StressDetector};

/// The fitted detector.
#[derive(Clone, Debug)]
pub struct Singh {
    store: ParamStore,
    trunk: CnnTrunk,
    conv3: Conv2dLayer,
    head: Linear,
}

impl Singh {
    /// Fit the deep CNN on the expressive frames.
    pub fn fit(train: &[VideoSample], seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        // Wider trunk + an extra conv stage = the "deep" backbone stand-in.
        let trunk = CnnTrunk::new(&mut store, "singh", 6, 12, &mut rng);
        let conv3 = Conv2dLayer::new(&mut store, "singh.c3", 12, 16, 3, 1, &mut rng);
        let head = Linear::new(&mut store, "singh.head", 16 * 2 * 2, 2, &mut rng);
        let mut model = Singh {
            store,
            trunk,
            conv3,
            head,
        };
        let mut opt = Adam::new(2e-3);

        for _ in 0..4 {
            for v in train {
                let mut g = Graph::new();
                let logits = model.logits(&mut g, v);
                let loss = cross_entropy(&mut g, logits, &[class_of(v.label)]);
                g.backward(loss);
                g.accumulate_grads(&mut model.store);
                model.store.clip_grad_norm(5.0);
                opt.step(&mut model.store);
                model.store.zero_grads();
            }
        }
        model
    }

    fn logits(&self, g: &mut Graph, video: &VideoSample) -> tinynn::graph::Var {
        let x = CnnTrunk::frame_leaf(g, video, video.most_expressive_frame());
        // Trunk up to its second pool, then the extra stage.
        let h = self.trunk.conv1_forward(g, &self.store, x); // [6, 22, 22]
        let h = g.relu(h);
        let h = g.max_pool2d(h, 2); // [6, 11, 11]
        let h = self.trunk.conv2_forward(g, &self.store, h); // [12, 9, 9]
        let h = g.relu(h);
        let h = g.max_pool2d(h, 2); // [12, 4, 4]
        let h = self.conv3.forward(g, &self.store, h); // [16, 2, 2]
        let h = g.relu(h);
        let h = g.reshape(h, vec![1, 16 * 2 * 2]);
        self.head.forward(g, &self.store, h)
    }
}

impl StressDetector for Singh {
    fn name(&self) -> &'static str {
        "Singh et al."
    }

    fn predict(&self, video: &VideoSample) -> StressLabel {
        let mut g = Graph::new();
        let logits = self.logits(&mut g, video);
        label_of(tinynn::tensor::argmax(g.value(logits).row(0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use videosynth::dataset::{Dataset, DatasetProfile, Scale};

    #[test]
    fn learns_better_than_chance() {
        let ds = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), 10);
        let (train_i, test_i) = ds.train_test_split(0.8, 5);
        let train: Vec<VideoSample> = train_i.iter().map(|&i| ds.samples[i].clone()).collect();
        let model = Singh::fit(&train, 6);
        let correct = test_i
            .iter()
            .filter(|&&i| model.predict(&ds.samples[i]) == ds.samples[i].label)
            .count();
        assert!(
            correct * 10 >= test_i.len() * 5,
            "{correct}/{}",
            test_i.len()
        );
    }
}
