//! Jeon, Bae, Lee, Jang & Lee (Sensors 2021): frame-level features from a
//! ResNet-18-style image encoder are fused with a Facial Landmark Feature
//! Network, and a temporal-attention module pools the frame representations
//! into the video-level stress decision.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tinynn::layers::{Activation, Linear, Mlp};
use tinynn::loss::cross_entropy;
use tinynn::optim::{Adam, Optimizer};
use tinynn::{Graph, ParamStore, Tensor};
use videosynth::features::{landmark_feature_vector, observed_landmarks};
use videosynth::video::{StressLabel, VideoSample};

use crate::common::{class_of, label_of, sampled_frames, CnnTrunk, StressDetector};

/// Landmark tracker jitter in pixels.
const TRACKER_NOISE: f32 = 0.8;
/// Frames per video.
const FRAMES: usize = 5;
/// Fused frame-representation width.
const FRAME_DIM: usize = 24;

/// The fitted detector.
#[derive(Clone, Debug)]
pub struct Jeon {
    store: ParamStore,
    trunk: CnnTrunk,
    lmk_net: Mlp,
    fuse: Linear,
    attn_query: Linear,
    head: Linear,
    seed: u64,
}

impl Jeon {
    /// Fit end-to-end: CNN + landmark net → fused frame features →
    /// temporal attention → classifier.
    pub fn fit(train: &[VideoSample], seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let trunk = CnnTrunk::new(&mut store, "jeon.cnn", 4, 8, &mut rng);
        let lmk_net = Mlp::new(
            &mut store,
            "jeon.lmk",
            &[98, 32, 16],
            Activation::Relu,
            &mut rng,
        );
        let fuse = Linear::new(
            &mut store,
            "jeon.fuse",
            trunk.out_dim + 16,
            FRAME_DIM,
            &mut rng,
        );
        let attn_query = Linear::new(&mut store, "jeon.attnq", FRAME_DIM, 1, &mut rng);
        let head = Linear::new(&mut store, "jeon.head", FRAME_DIM, 2, &mut rng);
        let mut model = Jeon {
            store,
            trunk,
            lmk_net,
            fuse,
            attn_query,
            head,
            seed,
        };
        let mut opt = Adam::new(2e-3);

        for _ in 0..3 {
            for v in train {
                let mut g = Graph::new();
                let logits = model.video_logits(&mut g, v);
                let loss = cross_entropy(&mut g, logits, &[class_of(v.label)]);
                g.backward(loss);
                g.accumulate_grads(&mut model.store);
                model.store.clip_grad_norm(5.0);
                opt.step(&mut model.store);
                model.store.zero_grads();
            }
        }
        model
    }

    /// Build the video-level logits graph: per-frame fused features, a
    /// learned attention weight per frame, attention-pooled representation,
    /// classification head.
    fn video_logits(&self, g: &mut Graph, video: &VideoSample) -> tinynn::graph::Var {
        let frames = sampled_frames(video, FRAMES);
        let mut reps = Vec::with_capacity(frames.len());
        for &t in &frames {
            let x = CnnTrunk::frame_leaf(g, video, t);
            let cnn_feat = self.trunk.forward(g, &self.store, x);
            let lmk =
                landmark_feature_vector(&observed_landmarks(video, t, TRACKER_NOISE, self.seed));
            let lv = g.leaf(Tensor::from_vec(lmk, vec![1, 98]));
            let lmk_feat = self.lmk_net.forward(g, &self.store, lv);
            let cat = g.concat_cols(&[cnn_feat, lmk_feat]);
            let fused = self.fuse.forward(g, &self.store, cat);
            reps.push(g.tanh(fused));
        }
        // Stack frame reps into [T, FRAME_DIM].
        let mut stack = reps[0];
        for r in &reps[1..] {
            stack = g.concat_rows(stack, *r);
        }
        // Temporal attention: scores [T, 1] → softmax over frames → pooled.
        let scores = self.attn_query.forward(g, &self.store, stack);
        let scores_t = g.reshape(scores, vec![1, frames.len()]);
        let attn = g.softmax(scores_t); // [1, T]
        let pooled = g.matmul(attn, stack); // [1, FRAME_DIM]
        self.head.forward(g, &self.store, pooled)
    }
}

impl StressDetector for Jeon {
    fn name(&self) -> &'static str {
        "Jeon et al."
    }

    fn predict(&self, video: &VideoSample) -> StressLabel {
        let mut g = Graph::new();
        let logits = self.video_logits(&mut g, video);
        label_of(tinynn::tensor::argmax(g.value(logits).row(0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use videosynth::dataset::{Dataset, DatasetProfile, Scale};

    #[test]
    fn learns_better_than_chance() {
        let ds = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), 7);
        let (train_i, test_i) = ds.train_test_split(0.8, 3);
        let train: Vec<VideoSample> = train_i.iter().map(|&i| ds.samples[i].clone()).collect();
        let model = Jeon::fit(&train, 4);
        let correct = test_i
            .iter()
            .filter(|&&i| model.predict(&ds.samples[i]) == ds.samples[i].label)
            .count();
        assert!(
            correct * 10 >= test_i.len() * 5,
            "{correct}/{}",
            test_i.len()
        );
    }

    #[test]
    fn attention_weights_are_normalised() {
        // Indirectly: the pooled representation is a convex combination, so
        // predictions are stable (deterministic) across calls.
        let ds = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), 8);
        let model = Jeon::fit(&ds.samples[..16], 1);
        let v = &ds.samples[17];
        assert_eq!(model.predict(v), model.predict(v));
    }
}
