//! TSDNet (Zhang, Feng, Li, Jin & Cao, Sensors 2020): a two-level network
//! with a face-level stream (the most/least expressive frame pair) and an
//! action-level stream (facial movement dynamics), fused by a
//! stream-weighted integrator with attention.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tinynn::layers::{Activation, Linear, Mlp};
use tinynn::loss::cross_entropy;
use tinynn::optim::{Adam, Optimizer};
use tinynn::{Graph, ParamStore, Tensor};
use videosynth::features::{landmark_feature_vector, observed_landmarks};
use videosynth::video::{StressLabel, VideoSample};

use crate::common::{class_of, label_of, CnnTrunk, StressDetector};

/// Landmark tracker jitter.
const TRACKER_NOISE: f32 = 0.8;
/// Width of each stream representation.
const STREAM_DIM: usize = 24;

/// The fitted detector.
#[derive(Clone, Debug)]
pub struct Tsdnet {
    store: ParamStore,
    face_trunk: CnnTrunk,
    face_proj: Linear,
    action_net: Mlp,
    gate: Linear,
    head: Linear,
    seed: u64,
}

impl Tsdnet {
    /// Fit end-to-end.
    pub fn fit(train: &[VideoSample], seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let face_trunk = CnnTrunk::new(&mut store, "tsd.face", 4, 8, &mut rng);
        let face_proj = Linear::new(&mut store, "tsd.fproj", 128, STREAM_DIM, &mut rng);
        let action_net = Mlp::new(
            &mut store,
            "tsd.action",
            &[196, 48, STREAM_DIM],
            Activation::Relu,
            &mut rng,
        );
        let gate = Linear::new(&mut store, "tsd.gate", 2 * STREAM_DIM, 2, &mut rng);
        let head = Linear::new(&mut store, "tsd.head", STREAM_DIM, 2, &mut rng);
        let mut model = Tsdnet {
            store,
            face_trunk,
            face_proj,
            action_net,
            gate,
            head,
            seed,
        };
        let mut opt = Adam::new(2e-3);

        for _ in 0..3 {
            for v in train {
                let mut g = Graph::new();
                let logits = model.video_logits(&mut g, v);
                let loss = cross_entropy(&mut g, logits, &[class_of(v.label)]);
                g.backward(loss);
                g.accumulate_grads(&mut model.store);
                model.store.clip_grad_norm(5.0);
                opt.step(&mut model.store);
                model.store.zero_grads();
            }
        }
        model
    }

    fn video_logits(&self, g: &mut Graph, video: &VideoSample) -> tinynn::graph::Var {
        // Face-level stream: the (f_e, f_e − f_l) pair through the CNN.
        let (fe, fl) = video.expressive_pair();
        let xe = CnnTrunk::pair_leaf(g, &fe, &fl);
        let fe_feat = self.face_trunk.forward(g, &self.store, xe);
        let face = self.face_proj.forward(g, &self.store, fe_feat);
        let face = g.tanh(face);

        // Action-level stream: landmark displacement between the least and
        // most expressive frames (the facial movement signature).
        let le = observed_landmarks(
            video,
            video.most_expressive_frame(),
            TRACKER_NOISE,
            self.seed,
        );
        let ll = observed_landmarks(
            video,
            video.least_expressive_frame(),
            TRACKER_NOISE,
            self.seed,
        );
        let ve = landmark_feature_vector(&le);
        let vl = landmark_feature_vector(&ll);
        let mut motion = Vec::with_capacity(196);
        motion.extend(ve.iter().zip(&vl).map(|(a, b)| a - b));
        motion.extend_from_slice(&ve);
        let mv = g.leaf(Tensor::from_vec(motion, vec![1, 196]));
        let action = self.action_net.forward(g, &self.store, mv);
        let action = g.tanh(action);

        // Stream-weighted integrator: softmax gate over the two streams.
        let both = g.concat_cols(&[face, action]);
        let gate_logits = self.gate.forward(g, &self.store, both);
        let weights = g.softmax(gate_logits); // [1, 2]
        let wf = g.slice_cols(weights, 0, 1);
        let wa = g.slice_cols(weights, 1, 1);
        // Broadcast scalar weights over the stream vectors.
        let ones = g.leaf(Tensor::from_vec(vec![1.0; STREAM_DIM], vec![1, STREAM_DIM]));
        // Broadcast the scalar gate weights across the stream width:
        // [1,1] × [1,D] → [1,D].
        let wf_b = g.matmul(wf, ones);
        let wa_b = g.matmul(wa, ones);
        let face_w = g.mul(face, wf_b);
        let action_w = g.mul(action, wa_b);
        let fused = g.add(face_w, action_w);
        self.head.forward(g, &self.store, fused)
    }
}

impl StressDetector for Tsdnet {
    fn name(&self) -> &'static str {
        "TSDNet"
    }

    fn predict(&self, video: &VideoSample) -> StressLabel {
        let mut g = Graph::new();
        let logits = self.video_logits(&mut g, video);
        label_of(tinynn::tensor::argmax(g.value(logits).row(0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use videosynth::dataset::{Dataset, DatasetProfile, Scale};

    #[test]
    fn learns_better_than_chance() {
        let ds = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), 9);
        let (train_i, test_i) = ds.train_test_split(0.8, 4);
        let train: Vec<VideoSample> = train_i.iter().map(|&i| ds.samples[i].clone()).collect();
        let model = Tsdnet::fit(&train, 5);
        let correct = test_i
            .iter()
            .filter(|&&i| model.predict(&ds.samples[i]) == ds.samples[i].label)
            .count();
        assert!(
            correct * 10 >= test_i.len() * 5,
            "{correct}/{}",
            test_i.len()
        );
    }
}
