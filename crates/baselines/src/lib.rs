//! `baselines` — the competitive methods of Table I, §IV-B.
//!
//! Every published baseline is rebuilt as an *architectural sketch*: the
//! mechanism the original paper credits for its performance is kept (AU
//! intensities for FDASSNN, per-frame emotion + ratio rules for Gao/Zhang,
//! temporal attention for Jeon, two streams for TSDNet, masked-autoencoder
//! pretraining for MARLIN, a deep CNN for Singh, foundation-model
//! descriptions for Ding), trained for real on the synthetic corpora with
//! `tinynn`.  Where the original depended on an off-the-shelf component we
//! cannot run (an AAM, a landmark tracker), the simulated detectors of
//! [`videosynth::features`] stand in.
//!
//! The three off-the-shelf foundation models (GPT-4o / Claude-3.5 /
//! Gemini-1.5) are zero-shot [`lfm`] proxies pretrained with per-model
//! capability profiles ([`offtheshelf`]).

pub mod common;
pub mod ding;
pub mod fdassnn;
pub mod gao;
pub mod jeon;
pub mod marlin;
pub mod offtheshelf;
pub mod singh;
pub mod tsdnet;
pub mod zhang;

pub use common::StressDetector;
