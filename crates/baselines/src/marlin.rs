//! MARLIN (Cai et al., CVPR 2023): self-supervised facial representation
//! learning with a masked autoencoder over face regions, followed by a
//! linear probe for the downstream task.
//!
//! The MAE here is real: 8×8 patches of the 48×48 expressive frame are
//! masked at a 50% ratio, an encoder MLP embeds the visible patches, a
//! decoder MLP reconstructs the masked ones, trained with MSE on *all*
//! training frames (no labels).  The frozen encoder's mean-pooled embedding
//! then feeds a supervised linear probe.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tinynn::layers::{Activation, Mlp};
use tinynn::loss::mse;
use tinynn::optim::{Adam, Optimizer};
use tinynn::{Graph, ParamStore, Tensor};
use videosynth::video::{StressLabel, VideoSample};

use crate::common::{class_of, frame_pixels_48, label_of, MlpClassifier, StressDetector};

/// Patch side on the 48×48 input (→ 36 patches of 64 px).
const PATCH: usize = 8;
/// Number of patches.
const NUM_PATCHES: usize = (48 / PATCH) * (48 / PATCH);
/// Patch feature width: frame channel + baseline-difference channel.
const PATCH_PIXELS: usize = PATCH * PATCH * 2;
/// Masking ratio.
const MASK_RATIO: f32 = 0.5;
/// Encoder embedding width.
const EMBED: usize = 16;

/// The fitted detector: frozen MAE encoder + linear probe.
#[derive(Clone, Debug)]
pub struct Marlin {
    store: ParamStore,
    encoder: Mlp,
    probe: MlpClassifier,
}

impl Marlin {
    /// Pretrain the MAE on unlabeled frames, then fit the probe.
    pub fn fit(train: &[VideoSample], seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let encoder = Mlp::new(
            &mut store,
            "mae.enc",
            &[PATCH_PIXELS, 32, EMBED],
            Activation::Gelu,
            &mut rng,
        );
        let decoder = Mlp::new(
            &mut store,
            "mae.dec",
            &[EMBED, 32, PATCH_PIXELS],
            Activation::Gelu,
            &mut rng,
        );
        let mut opt = Adam::new(2e-3);

        // --- Self-supervised stage: reconstruct masked patches. ---
        for _ in 0..3 {
            for v in train {
                let patches = patchify_video(v);
                let mut g = Graph::new();
                // Pick masked patch indices.
                let masked: Vec<usize> = (0..NUM_PATCHES)
                    .filter(|_| rng.random::<f32>() < MASK_RATIO)
                    .collect();
                if masked.is_empty() {
                    continue;
                }
                // Mean of visible embeddings is the context; the decoder
                // reconstructs each masked patch from it.
                let visible: Vec<usize> =
                    (0..NUM_PATCHES).filter(|i| !masked.contains(i)).collect();
                if visible.is_empty() {
                    continue;
                }
                let mut vis_flat = Vec::with_capacity(visible.len() * PATCH_PIXELS);
                for &i in &visible {
                    vis_flat.extend_from_slice(&patches[i]);
                }
                let vx = g.leaf(Tensor::from_vec(
                    vis_flat,
                    vec![visible.len(), PATCH_PIXELS],
                ));
                let emb = encoder.forward(&mut g, &store, vx);
                let ctx = g.row_mean(emb); // [1, EMBED]
                let recon = decoder.forward(&mut g, &store, ctx); // [1, PATCH_PIXELS]
                                                                  // Target: the mean of the masked patches (context-level MAE).
                let mut target = vec![0.0f32; PATCH_PIXELS];
                for &i in &masked {
                    for (t, &p) in target.iter_mut().zip(&patches[i]) {
                        *t += p;
                    }
                }
                target.iter_mut().for_each(|t| *t /= masked.len() as f32);
                let tv = g.leaf(Tensor::from_vec(target, vec![1, PATCH_PIXELS]));
                let loss = mse(&mut g, recon, tv);
                g.backward(loss);
                g.accumulate_grads(&mut store);
                store.clip_grad_norm(5.0);
                opt.step(&mut store);
                store.zero_grads();
            }
        }

        // --- Supervised probe on the frozen encoder. ---
        let embed_of = |v: &VideoSample, enc: &Mlp, st: &ParamStore| -> Vec<f32> {
            let patches = patchify_video(v);
            let mut flat = Vec::with_capacity(NUM_PATCHES * PATCH_PIXELS);
            for p in &patches {
                flat.extend_from_slice(p);
            }
            let mut g = Graph::new();
            let x = g.leaf(Tensor::from_vec(flat, vec![NUM_PATCHES, PATCH_PIXELS]));
            let emb = enc.forward(&mut g, st, x);
            let pooled = g.row_mean(emb);
            g.value(pooled).row(0).to_vec()
        };
        let feats: Vec<Vec<f32>> = train
            .iter()
            .map(|v| embed_of(v, &encoder, &store))
            .collect();
        let labels: Vec<usize> = train.iter().map(|v| class_of(v.label)).collect();
        let probe = MlpClassifier::fit(&feats, &labels, &[EMBED, 16, 2], 40, 5e-3, seed ^ 1);

        Marlin {
            store,
            encoder,
            probe,
        }
    }

    fn embed(&self, video: &VideoSample) -> Vec<f32> {
        let patches = patchify_video(video);
        let mut flat = Vec::with_capacity(NUM_PATCHES * PATCH_PIXELS);
        for p in &patches {
            flat.extend_from_slice(p);
        }
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(flat, vec![NUM_PATCHES, PATCH_PIXELS]));
        let emb = self.encoder.forward(&mut g, &self.store, x);
        let pooled = g.row_mean(emb);
        g.value(pooled).row(0).to_vec()
    }
}

/// Split the expressive frame + baseline difference into two-channel 8×8
/// patches, row-major.
fn patchify_video(video: &VideoSample) -> Vec<Vec<f32>> {
    let frame = video.render_frame(video.most_expressive_frame());
    let baseline = video.render_frame(video.least_expressive_frame());
    let a = frame_pixels_48(&frame);
    let b = frame_pixels_48(&baseline);
    let side = 48 / PATCH;
    let mut out = Vec::with_capacity(NUM_PATCHES);
    for py in 0..side {
        for px_i in 0..side {
            let mut patch = Vec::with_capacity(PATCH_PIXELS);
            for y in 0..PATCH {
                for x in 0..PATCH {
                    patch.push(a[(py * PATCH + y) * 48 + px_i * PATCH + x]);
                }
            }
            for y in 0..PATCH {
                for x in 0..PATCH {
                    let i = (py * PATCH + y) * 48 + px_i * PATCH + x;
                    patch.push(a[i] - b[i]);
                }
            }
            out.push(patch);
        }
    }
    out
}

impl StressDetector for Marlin {
    fn name(&self) -> &'static str {
        "MARLIN"
    }

    fn predict(&self, video: &VideoSample) -> StressLabel {
        label_of(self.probe.predict_class(&self.embed(video)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use videosynth::dataset::{Dataset, DatasetProfile, Scale};

    #[test]
    fn patchify_covers_both_channels() {
        let ds = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), 11);
        let v = &ds.samples[0];
        let patches = patchify_video(v);
        assert_eq!(patches.len(), NUM_PATCHES);
        assert!(patches.iter().all(|p| p.len() == PATCH_PIXELS));
        // Channel 0 sums to the frame's pixel sum.
        let total: f32 = patches.iter().flat_map(|p| &p[..PATCH * PATCH]).sum();
        let direct: f32 = frame_pixels_48(&v.render_frame(v.most_expressive_frame()))
            .iter()
            .sum();
        assert!((total - direct).abs() / direct.abs().max(1.0) < 1e-3);
    }

    #[test]
    fn learns_better_than_chance() {
        let ds = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), 12);
        let (train_i, test_i) = ds.train_test_split(0.8, 6);
        let train: Vec<VideoSample> = train_i.iter().map(|&i| ds.samples[i].clone()).collect();
        let model = Marlin::fit(&train, 7);
        let correct = test_i
            .iter()
            .filter(|&&i| model.predict(&ds.samples[i]) == ds.samples[i].label)
            .count();
        assert!(
            correct * 10 >= test_i.len() * 5,
            "{correct}/{}",
            test_i.len()
        );
    }
}
