//! Video samples: AU trajectories plus on-demand pixel rendering.

use std::fmt;

use facs::au::{AuSet, AuVector};

use crate::image::Image;
use crate::render::{render_face_of, Identity};

/// Binary stress annotation of a video clip.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StressLabel {
    /// The subject was recorded under a stress-inducing condition.
    Stressed,
    /// The subject was recorded in a relaxed condition.
    Unstressed,
}

impl StressLabel {
    /// 1 for stressed, 0 for unstressed (the positive class of the metrics).
    pub fn as_index(self) -> usize {
        match self {
            StressLabel::Stressed => 1,
            StressLabel::Unstressed => 0,
        }
    }

    /// Inverse of [`StressLabel::as_index`]; any non-zero value is stressed.
    pub fn from_index(i: usize) -> Self {
        if i == 0 {
            StressLabel::Unstressed
        } else {
            StressLabel::Stressed
        }
    }

    /// The opposite label.
    pub fn flipped(self) -> Self {
        match self {
            StressLabel::Stressed => StressLabel::Unstressed,
            StressLabel::Unstressed => StressLabel::Stressed,
        }
    }
}

impl fmt::Display for StressLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StressLabel::Stressed => "Stressed",
            StressLabel::Unstressed => "Unstressed",
        })
    }
}

/// One video clip: the latent AU trajectory, its annotations, and enough
/// state to re-render any frame deterministically.
///
/// Frames are rendered on demand — a full UVSD-scale corpus of raw pixels
/// would not fit in memory, and the paper's pipeline only consumes the
/// most- and least-expressive frames anyway (§IV-H, following Zhang et al.).
#[derive(Clone, Debug)]
pub struct VideoSample {
    /// Sample id, unique within its dataset.
    pub id: usize,
    /// Id of the recorded subject.
    pub subject: usize,
    /// Ground-truth stress condition.
    pub label: StressLabel,
    apex_aus: AuSet,
    trajectory: Vec<AuVector>,
    pixel_noise: f32,
    texture_gain: f32,
    identity_seed: u64,
    identity_strength: f32,
    seed: u64,
}

impl VideoSample {
    /// Assemble a sample (used by [`crate::world::sample_video`]).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: usize,
        subject: usize,
        label: StressLabel,
        apex_aus: AuSet,
        trajectory: Vec<AuVector>,
        pixel_noise: f32,
        texture_gain: f32,
        identity_seed: u64,
        identity_strength: f32,
        seed: u64,
    ) -> Self {
        assert!(!trajectory.is_empty(), "a video needs at least one frame");
        VideoSample {
            id,
            subject,
            label,
            apex_aus,
            trajectory,
            pixel_noise,
            texture_gain,
            identity_seed,
            identity_strength,
            seed,
        }
    }

    /// The subject's stable visual identity.
    pub fn identity(&self) -> Identity {
        Identity::from_seed(self.identity_seed, self.identity_strength)
    }

    /// Ground-truth AU occurrence at the apex — the expert annotation used
    /// for instruction tuning on the DISFA-like corpus.
    pub fn apex_aus(&self) -> AuSet {
        self.apex_aus
    }

    /// Number of frames.
    pub fn num_frames(&self) -> usize {
        self.trajectory.len()
    }

    /// Latent AU intensities at frame `t`.
    pub fn au_at(&self, t: usize) -> &AuVector {
        &self.trajectory[t]
    }

    /// Index of the most expressive frame (maximum total AU activation),
    /// following Zhang et al.'s facial-expression-based frame selection.
    pub fn most_expressive_frame(&self) -> usize {
        let mut best = 0;
        for (t, v) in self.trajectory.iter().enumerate() {
            if v.expressiveness() > self.trajectory[best].expressiveness() {
                best = t;
            }
        }
        best
    }

    /// Index of the least expressive frame.
    pub fn least_expressive_frame(&self) -> usize {
        let mut best = 0;
        for (t, v) in self.trajectory.iter().enumerate() {
            if v.expressiveness() < self.trajectory[best].expressiveness() {
                best = t;
            }
        }
        best
    }

    /// Render frame `t` to pixels (deterministic per `(sample, t)`).
    pub fn render_frame(&self, t: usize) -> Image {
        render_face_of(
            &self.trajectory[t],
            &self.identity(),
            self.pixel_noise,
            self.texture_gain,
            self.seed ^ (t as u64).wrapping_mul(0x51_7C_C1_B7),
        )
    }

    /// The `(most expressive, least expressive)` frame pair `(f_e, f_l)`
    /// that §IV-H feeds to the model as the video input `V`.
    pub fn expressive_pair(&self) -> (Image, Image) {
        (
            self.render_frame(self.most_expressive_frame()),
            self.render_frame(self.least_expressive_frame()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facs::ActionUnit;

    fn make_sample() -> VideoSample {
        let mut frames = Vec::new();
        for t in 0..8 {
            let mut v = AuVector::zeros();
            // Expressiveness rises then falls, peaking at t = 5.
            let e = 1.0 - ((t as f32) - 5.0).abs() / 5.0;
            v.set(ActionUnit::BrowLowerer, e);
            frames.push(v);
        }
        VideoSample::new(
            3,
            1,
            StressLabel::Stressed,
            AuSet::from_aus([ActionUnit::BrowLowerer]),
            frames,
            0.02,
            1.0,
            7,
            1.0,
            99,
        )
    }

    #[test]
    fn label_round_trip_and_flip() {
        assert_eq!(
            StressLabel::from_index(StressLabel::Stressed.as_index()),
            StressLabel::Stressed
        );
        assert_eq!(StressLabel::from_index(0), StressLabel::Unstressed);
        assert_eq!(StressLabel::Stressed.flipped(), StressLabel::Unstressed);
        assert_eq!(StressLabel::Unstressed.flipped(), StressLabel::Stressed);
    }

    #[test]
    fn expressive_frame_selection() {
        let s = make_sample();
        assert_eq!(s.most_expressive_frame(), 5);
        assert_eq!(s.least_expressive_frame(), 0);
    }

    #[test]
    fn render_is_deterministic_per_frame() {
        let s = make_sample();
        let a = s.render_frame(5);
        let b = s.render_frame(5);
        assert_eq!(a, b);
        let c = s.render_frame(0);
        assert!(
            a.l1_distance(&c) > 0.0,
            "different frames should render differently"
        );
    }

    #[test]
    fn expressive_pair_matches_individual_renders() {
        let s = make_sample();
        let (fe, fl) = s.expressive_pair();
        assert_eq!(fe, s.render_frame(5));
        assert_eq!(fl, s.render_frame(0));
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn empty_trajectory_rejected() {
        let _ = VideoSample::new(
            0,
            0,
            StressLabel::Unstressed,
            AuSet::EMPTY,
            vec![],
            0.0,
            1.0,
            0,
            1.0,
            0,
        );
    }
}
