//! SLIC superpixel segmentation (Achanta et al. 2012), grayscale variant.
//!
//! §IV-H: "we employ the SLIC algorithm to segment f_e into 64 segments".
//! The faithfulness protocol and all three explainer baselines operate on
//! this segmentation.

use crate::image::Image;

/// A superpixel segmentation of one image.
#[derive(Clone, Debug)]
pub struct Segmentation {
    labels: Vec<usize>,
    num_segments: usize,
    width: usize,
    height: usize,
}

impl Segmentation {
    /// Number of segments (labels are `0..num_segments`).
    pub fn num_segments(&self) -> usize {
        self.num_segments
    }

    /// Segment label of pixel `(x, y)`.
    #[inline]
    pub fn segment_of(&self, x: usize, y: usize) -> usize {
        self.labels[y * self.width + x]
    }

    /// Row-major label buffer.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// All pixels of a segment.
    pub fn pixels_of(&self, segment: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for y in 0..self.height {
            for x in 0..self.width {
                if self.segment_of(x, y) == segment {
                    out.push((x, y));
                }
            }
        }
        out
    }

    /// Pixel count per segment.
    pub fn segment_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_segments];
        for &l in &self.labels {
            sizes[l] += 1;
        }
        sizes
    }

    /// Centroid `(x, y)` of each segment.
    pub fn centroids(&self) -> Vec<(f32, f32)> {
        let mut sx = vec![0.0f32; self.num_segments];
        let mut sy = vec![0.0f32; self.num_segments];
        let mut n = vec![0usize; self.num_segments];
        for y in 0..self.height {
            for x in 0..self.width {
                let l = self.segment_of(x, y);
                sx[l] += x as f32;
                sy[l] += y as f32;
                n[l] += 1;
            }
        }
        (0..self.num_segments)
            .map(|l| (sx[l] / n[l].max(1) as f32, sy[l] / n[l].max(1) as f32))
            .collect()
    }
}

/// Run SLIC with `k` requested superpixels and compactness `m`
/// (`m ≈ 0.05–0.2` for intensities in `[0, 1]`).  Returns at most `k`
/// segments; small orphaned components are merged into neighbours, and
/// labels are re-compacted to be contiguous.
pub fn slic(img: &Image, k: usize, m: f32, iterations: usize) -> Segmentation {
    let (w, h) = (img.width(), img.height());
    let n = w * h;
    assert!(k >= 1 && k <= n, "k out of range");
    let s = ((n as f32 / k as f32).sqrt()).max(1.0);

    // Initialise cluster centres on a regular grid: (x, y, intensity).
    let grid = (k as f32).sqrt().round() as usize;
    let grid = grid.max(1);
    let mut centers: Vec<(f32, f32, f32)> = Vec::with_capacity(k);
    'outer: for gy in 0..grid {
        for gx in 0..grid {
            if centers.len() == k {
                break 'outer;
            }
            let cx = ((gx as f32 + 0.5) * w as f32 / grid as f32).min(w as f32 - 1.0);
            let cy = ((gy as f32 + 0.5) * h as f32 / grid as f32).min(h as f32 - 1.0);
            centers.push((cx, cy, img.get(cx as usize, cy as usize)));
        }
    }
    // If the grid under-filled (k not a perfect square), pad along a diagonal.
    let mut pad = 0usize;
    while centers.len() < k {
        let t = (pad as f32 + 0.5) / k as f32;
        let cx = t * (w as f32 - 1.0);
        let cy = t * (h as f32 - 1.0);
        centers.push((cx, cy, img.get(cx as usize, cy as usize)));
        pad += 1;
    }

    let mut labels = vec![0usize; n];
    let mut dists = vec![f32::INFINITY; n];
    let inv_s = 1.0 / s;

    for _ in 0..iterations {
        dists.iter_mut().for_each(|d| *d = f32::INFINITY);
        for (ci, &(cx, cy, cl)) in centers.iter().enumerate() {
            let x0 = (cx - 2.0 * s).max(0.0) as usize;
            let x1 = ((cx + 2.0 * s) as usize).min(w - 1);
            let y0 = (cy - 2.0 * s).max(0.0) as usize;
            let y1 = ((cy + 2.0 * s) as usize).min(h - 1);
            for y in y0..=y1 {
                for x in x0..=x1 {
                    let dc = img.get(x, y) - cl;
                    let dx = (x as f32 - cx) * inv_s;
                    let dy = (y as f32 - cy) * inv_s;
                    let d = dc * dc + m * m * (dx * dx + dy * dy);
                    let idx = y * w + x;
                    if d < dists[idx] {
                        dists[idx] = d;
                        labels[idx] = ci;
                    }
                }
            }
        }
        // Update centres.
        let mut acc = vec![(0.0f32, 0.0f32, 0.0f32, 0usize); centers.len()];
        for y in 0..h {
            for x in 0..w {
                let l = labels[y * w + x];
                let a = &mut acc[l];
                a.0 += x as f32;
                a.1 += y as f32;
                a.2 += img.get(x, y);
                a.3 += 1;
            }
        }
        for (ci, a) in acc.iter().enumerate() {
            if a.3 > 0 {
                let inv = 1.0 / a.3 as f32;
                centers[ci] = (a.0 * inv, a.1 * inv, a.2 * inv);
            }
        }
    }

    // Enforce connectivity: keep the largest connected component per label,
    // merge the rest into an adjacent component's label.
    enforce_connectivity(&mut labels, w, h);

    // Compact labels to 0..num_segments.
    let mut remap = vec![usize::MAX; centers.len()];
    let mut next = 0usize;
    for l in &mut labels {
        if remap[*l] == usize::MAX {
            remap[*l] = next;
            next += 1;
        }
        *l = remap[*l];
    }

    Segmentation {
        labels,
        num_segments: next,
        width: w,
        height: h,
    }
}

/// Relabel stray components: any connected component that is not the largest
/// component of its label gets absorbed by a neighbouring label.
fn enforce_connectivity(labels: &mut [usize], w: usize, h: usize) {
    let n = w * h;
    let mut comp = vec![usize::MAX; n];
    let mut comps: Vec<(usize, Vec<usize>)> = Vec::new(); // (label, pixels)

    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let label = labels[start];
        let cid = comps.len();
        let mut pixels = vec![start];
        comp[start] = cid;
        let mut stack = vec![start];
        while let Some(p) = stack.pop() {
            let (x, y) = (p % w, p / w);
            let mut push = |q: usize| {
                if comp[q] == usize::MAX && labels[q] == label {
                    comp[q] = cid;
                    pixels.push(q);
                    stack.push(q);
                }
            };
            if x > 0 {
                push(p - 1);
            }
            if x + 1 < w {
                push(p + 1);
            }
            if y > 0 {
                push(p - w);
            }
            if y + 1 < h {
                push(p + w);
            }
        }
        comps.push((label, pixels));
    }

    // Largest component per label survives.
    let max_label = labels.iter().copied().max().unwrap_or(0);
    let mut best_comp = vec![usize::MAX; max_label + 1];
    for (cid, (label, pixels)) in comps.iter().enumerate() {
        if best_comp[*label] == usize::MAX || pixels.len() > comps[best_comp[*label]].1.len() {
            best_comp[*label] = cid;
        }
    }

    // Orphans adopt the label of any 4-neighbour outside the component.
    for (cid, (label, pixels)) in comps.iter().enumerate() {
        if best_comp[*label] == cid {
            continue;
        }
        let mut adopt = None;
        'search: for &p in pixels {
            let (x, y) = (p % w, p / w);
            for q in neighbours(p, x, y, w, h) {
                if comp[q] != cid {
                    adopt = Some(labels[q]);
                    break 'search;
                }
            }
        }
        if let Some(new_label) = adopt {
            for &p in pixels {
                labels[p] = new_label;
            }
        }
    }
}

fn neighbours(p: usize, x: usize, y: usize, w: usize, h: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(4);
    if x > 0 {
        out.push(p - 1);
    }
    if x + 1 < w {
        out.push(p + 1);
    }
    if y > 0 {
        out.push(p - w);
    }
    if y + 1 < h {
        out.push(p + w);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::render_face;
    use facs::au::AuVector;

    fn test_image() -> Image {
        render_face(&AuVector::zeros(), 0.0, 0)
    }

    #[test]
    fn covers_all_pixels_with_compact_labels() {
        let img = test_image();
        let seg = slic(&img, 64, 0.1, 5);
        assert!(seg.num_segments() >= 32, "got {}", seg.num_segments());
        assert!(seg.num_segments() <= 64);
        for &l in seg.labels() {
            assert!(l < seg.num_segments());
        }
        let sizes = seg.segment_sizes();
        assert!(sizes.iter().all(|&s| s > 0), "no empty segments");
        assert_eq!(sizes.iter().sum::<usize>(), img.len());
    }

    #[test]
    fn segments_are_connected() {
        let img = test_image();
        let seg = slic(&img, 64, 0.1, 5);
        let (w, h) = (img.width(), img.height());
        for s in 0..seg.num_segments() {
            let pixels = seg.pixels_of(s);
            // BFS from first pixel should reach all pixels of the segment.
            let mut visited = std::collections::HashSet::new();
            let mut stack = vec![pixels[0]];
            visited.insert(pixels[0]);
            while let Some((x, y)) = stack.pop() {
                let mut push = |nx: usize, ny: usize| {
                    if seg.segment_of(nx, ny) == s && visited.insert((nx, ny)) {
                        stack.push((nx, ny));
                    }
                };
                if x > 0 {
                    push(x - 1, y);
                }
                if x + 1 < w {
                    push(x + 1, y);
                }
                if y > 0 {
                    push(x, y - 1);
                }
                if y + 1 < h {
                    push(x, y + 1);
                }
            }
            assert_eq!(visited.len(), pixels.len(), "segment {s} disconnected");
        }
    }

    #[test]
    fn uniform_image_gives_grid_like_segments() {
        let img = Image::filled(32, 32, 0.5);
        let seg = slic(&img, 16, 0.1, 5);
        assert!(seg.num_segments() >= 8);
        let sizes = seg.segment_sizes();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(
            max <= min * 6,
            "uniform image should give balanced sizes, {min}..{max}"
        );
    }

    #[test]
    fn centroids_are_inside_the_image() {
        let img = test_image();
        let seg = slic(&img, 64, 0.1, 5);
        for (cx, cy) in seg.centroids() {
            assert!(cx >= 0.0 && cx < img.width() as f32);
            assert!(cy >= 0.0 && cy < img.height() as f32);
        }
    }

    #[test]
    fn single_segment_degenerate_case() {
        let img = Image::filled(8, 8, 0.3);
        let seg = slic(&img, 1, 0.1, 3);
        assert_eq!(seg.num_segments(), 1);
        assert!(seg.labels().iter().all(|&l| l == 0));
    }

    #[test]
    fn determinism() {
        let img = test_image();
        let a = slic(&img, 64, 0.1, 5);
        let b = slic(&img, 64, 0.1, 5);
        assert_eq!(a.labels(), b.labels());
    }
}
