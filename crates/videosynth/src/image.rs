//! Grayscale image buffer.

use std::io::{self, Write};

use facs::region::RegionRect;

/// A dense grayscale image with values in `[0, 1]`, row-major.
#[derive(Clone, Debug, PartialEq)]
pub struct Image {
    data: Vec<f32>,
    width: usize,
    height: usize,
}

impl Image {
    /// Uniform image of the given fill value.
    pub fn filled(width: usize, height: usize, value: f32) -> Self {
        Image {
            data: vec![value.clamp(0.0, 1.0); width * height],
            width,
            height,
        }
    }

    /// Build from raw data (clamped to `[0, 1]`).
    pub fn from_data(data: Vec<f32>, width: usize, height: usize) -> Self {
        assert_eq!(data.len(), width * height, "image data size mismatch");
        let data = data.into_iter().map(|v| v.clamp(0.0, 1.0)).collect();
        Image {
            data,
            width,
            height,
        }
    }

    /// Width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total pixel count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the image has zero pixels.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major pixel slice.
    pub fn pixels(&self) -> &[f32] {
        &self.data
    }

    /// Pixel at `(x, y)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f32 {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x]
    }

    /// Set pixel at `(x, y)`, clamped to `[0, 1]`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: f32) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x] = v.clamp(0.0, 1.0);
    }

    /// Add `dv` to pixel `(x, y)`, clamping.
    #[inline]
    pub fn add(&mut self, x: usize, y: usize, dv: f32) {
        let v = self.get(x, y) + dv;
        self.set(x, y, v);
    }

    /// Mean intensity.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Mean intensity within a rectangle.
    pub fn mean_in(&self, rect: &RegionRect) -> f32 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (x, y) in rect.pixels() {
            if x < self.width && y < self.height {
                sum += self.get(x, y);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f32
        }
    }

    /// Mean absolute difference against another image of the same size.
    pub fn l1_distance(&self, other: &Image) -> f32 {
        assert_eq!(self.data.len(), other.data.len(), "image size mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / self.data.len() as f32
    }

    /// Box-downsample by an integer factor, averaging each block.
    pub fn downsample(&self, factor: usize) -> Image {
        assert!(
            factor >= 1 && self.width.is_multiple_of(factor) && self.height.is_multiple_of(factor)
        );
        let (ow, oh) = (self.width / factor, self.height / factor);
        let mut out = vec![0.0f32; ow * oh];
        let inv = 1.0 / (factor * factor) as f32;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0;
                for ky in 0..factor {
                    for kx in 0..factor {
                        acc += self.get(ox * factor + kx, oy * factor + ky);
                    }
                }
                out[oy * ow + ox] = acc * inv;
            }
        }
        Image {
            data: out,
            width: ow,
            height: oh,
        }
    }

    /// Write as a binary PGM (P5) file — handy for eyeballing renders.
    pub fn write_pgm<W: Write>(&self, w: &mut W) -> io::Result<()> {
        writeln!(w, "P5\n{} {}\n255", self.width, self.height)?;
        let bytes: Vec<u8> = self
            .data
            .iter()
            .map(|&v| (v * 255.0).round().clamp(0.0, 255.0) as u8)
            .collect();
        w.write_all(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_and_get_set() {
        let mut img = Image::filled(4, 3, 0.5);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert_eq!(img.get(2, 1), 0.5);
        img.set(2, 1, 0.9);
        assert_eq!(img.get(2, 1), 0.9);
        img.set(0, 0, 2.0);
        assert_eq!(img.get(0, 0), 1.0, "values clamp to [0, 1]");
    }

    #[test]
    fn add_clamps() {
        let mut img = Image::filled(2, 2, 0.9);
        img.add(0, 0, 0.5);
        assert_eq!(img.get(0, 0), 1.0);
        img.add(1, 1, -2.0);
        assert_eq!(img.get(1, 1), 0.0);
    }

    #[test]
    fn mean_and_mean_in() {
        let img = Image::from_data(vec![0.0, 1.0, 1.0, 0.0], 2, 2);
        assert!((img.mean() - 0.5).abs() < 1e-6);
        let rect = RegionRect {
            x0: 0,
            y0: 0,
            x1: 2,
            y1: 1,
        };
        assert!((img.mean_in(&rect) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn l1_distance_zero_on_self() {
        let img = Image::filled(3, 3, 0.3);
        assert_eq!(img.l1_distance(&img), 0.0);
        let other = Image::filled(3, 3, 0.8);
        assert!((img.l1_distance(&other) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn downsample_averages_blocks() {
        let img = Image::from_data(vec![0.0, 1.0, 1.0, 0.0], 2, 2);
        let d = img.downsample(2);
        assert_eq!(d.width(), 1);
        assert_eq!(d.height(), 1);
        assert!((d.get(0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn pgm_header_is_valid() {
        let img = Image::filled(2, 2, 1.0);
        let mut buf = Vec::new();
        img.write_pgm(&mut buf).unwrap();
        assert!(buf.starts_with(b"P5\n2 2\n255\n"));
        assert_eq!(buf.len(), b"P5\n2 2\n255\n".len() + 4);
        assert_eq!(&buf[buf.len() - 4..], &[255u8; 4]);
    }
}
