//! `videosynth` — a synthetic facial-video world model.
//!
//! The paper evaluates on two proprietary video corpora (UVSD and RSL) plus
//! the DISFA+ facial-expression dataset, none of which are redistributable.
//! This crate replaces them with a *generative world model* that produces the
//! same statistical structure the paper's method exploits:
//!
//! * a latent binary stress state per video ([`StressLabel`]) that modulates
//!   which facial Action Units activate (through the priors in
//!   [`facs::stress`]), with per-subject idiosyncrasy and observation noise;
//! * temporally coherent AU trajectories (onset → apex → offset envelopes);
//! * real 96×96 grayscale pixel renderings of every frame ([`render`]),
//!   where the pixel evidence of each AU is localised in that AU's facial
//!   region — so masking a region really removes the evidence;
//! * dataset profiles matching the papers' corpus sizes and class ratios
//!   ([`dataset`]): `uvsd_sim` (2 092 videos / 112 subjects),
//!   `rsl_sim` (706 / 60, noisier) and `disfa_sim` (645 AU-annotated);
//! * the most-/least-expressive frame extraction of Zhang et al. (§IV-H);
//! * SLIC superpixel segmentation into 64 segments ([`slic`]) and the
//!   gaussian-disturb / region-mosaic perturbation operators ([`perturb`])
//!   used by the faithfulness protocol;
//! * simulated commodity detectors ([`features`]) — noisy landmark and AU
//!   intensity observations — standing in for the AAM / landmark trackers
//!   that the supervised baselines depended on.

pub mod dataset;
pub mod features;
pub mod image;
pub mod perturb;
pub mod render;
pub mod slic;
pub mod video;
pub mod world;

pub use dataset::{Dataset, DatasetProfile, Scale};
pub use image::Image;
pub use slic::Segmentation;
pub use video::{StressLabel, VideoSample};
pub use world::WorldConfig;
