//! Simulated commodity detectors and shared feature extraction.
//!
//! Several published baselines consume the output of off-the-shelf
//! components we cannot run here: FDASSNN fits an Active Appearance Model
//! to estimate AU intensities, Gao et al. track 49 facial feature points,
//! Jeon et al. use a landmark feature network.  We simulate those detectors
//! as *noisy observations of the generator's latent state* — the standard
//! substitution when the upstream detector is a solved problem and only its
//! error level matters downstream.  Pixel-level features ([`patch_features`],
//! [`region_features`]) come straight from the rendered image.

use facs::au::NUM_AUS;
use facs::landmarks::landmark_layout;
use facs::region::ALL_REGIONS;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tinynn::rngutil::normal;

use crate::image::Image;
use crate::video::VideoSample;

/// Simulated AAM-style AU intensity detector: the latent AU vector of frame
/// `t` plus zero-mean gaussian observation noise, clamped to `[0, 1]`.
pub fn observed_au_intensities(
    sample: &VideoSample,
    t: usize,
    noise_std: f32,
    seed: u64,
) -> [f32; NUM_AUS] {
    let mut rng = StdRng::seed_from_u64(seed ^ (sample.id as u64) << 17 ^ t as u64);
    let mut out = [0.0f32; NUM_AUS];
    let latent = sample.au_at(t);
    for (i, o) in out.iter_mut().enumerate() {
        *o = (latent.0[i] + normal(&mut rng) * noise_std).clamp(0.0, 1.0);
    }
    out
}

/// Simulated landmark tracker: the 49 AU-displaced landmark positions of
/// frame `t` with gaussian jitter (pixels).
pub fn observed_landmarks(
    sample: &VideoSample,
    t: usize,
    noise_std: f32,
    seed: u64,
) -> Vec<(f32, f32)> {
    let mut rng = StdRng::seed_from_u64(seed ^ (sample.id as u64) << 21 ^ t as u64);
    let layout = landmark_layout();
    let aus = sample.au_at(t);
    layout
        .iter()
        .map(|l| {
            let (x, y) = l.displaced(aus);
            (
                x + normal(&mut rng) * noise_std,
                y + normal(&mut rng) * noise_std,
            )
        })
        .collect()
}

/// Flatten landmarks into the `[x0, y0, x1, y1, …]` feature vector used by
/// the landmark-based baselines, normalised to `[0, 1]`.
pub fn landmark_feature_vector(landmarks: &[(f32, f32)]) -> Vec<f32> {
    let s = facs::region::FACE_SIZE as f32;
    let mut out = Vec::with_capacity(landmarks.len() * 2);
    for &(x, y) in landmarks {
        out.push(x / s);
        out.push(y / s);
    }
    out
}

/// Mean intensity of each `patch × patch` tile, row-major — the generic
/// pixel feature used by classical classifiers (image side must divide).
pub fn patch_features(img: &Image, patch: usize) -> Vec<f32> {
    assert!(patch >= 1 && img.width().is_multiple_of(patch) && img.height().is_multiple_of(patch));
    let d = img.downsample(patch);
    d.pixels().to_vec()
}

/// Mean intensity per facial region (6 values, bilateral regions averaged
/// over both rectangles).
pub fn region_features(img: &Image) -> Vec<f32> {
    ALL_REGIONS
        .iter()
        .map(|r| {
            let rects = r.rects();
            rects.iter().map(|rect| img.mean_in(rect)).sum::<f32>() / rects.len() as f32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::video::StressLabel;
    use crate::world::{sample_video, Subject, WorldConfig};

    fn sample() -> VideoSample {
        let mut rng = StdRng::seed_from_u64(0);
        let s = Subject::generate(0, 0.3, &mut rng);
        sample_video(&WorldConfig::uvsd_like(), &s, StressLabel::Stressed, 1, 5)
    }

    #[test]
    fn au_observation_is_noisy_but_centred() {
        let v = sample();
        let t = v.most_expressive_frame();
        let clean = v.au_at(t);
        let mut total_err = 0.0;
        let n = 50;
        for k in 0..n {
            let obs = observed_au_intensities(&v, t, 0.08, k);
            for (o, c) in obs.iter().zip(&clean.0) {
                total_err += (o - c.clamp(0.0, 1.0)).abs();
            }
        }
        let mean_err = total_err / (n * NUM_AUS as u64) as f32;
        assert!(mean_err > 0.0, "noise must be present");
        assert!(mean_err < 0.12, "mean error too large: {mean_err}");
    }

    #[test]
    fn zero_noise_observation_is_exact() {
        let v = sample();
        let obs = observed_au_intensities(&v, 3, 0.0, 9);
        for (o, c) in obs.iter().zip(&v.au_at(3).0) {
            assert!((o - c.clamp(0.0, 1.0)).abs() < 1e-6);
        }
    }

    #[test]
    fn landmarks_count_and_jitter() {
        let v = sample();
        let lm = observed_landmarks(&v, 0, 0.5, 2);
        assert_eq!(lm.len(), 49);
        let clean = observed_landmarks(&v, 0, 0.0, 2);
        let moved = lm
            .iter()
            .zip(&clean)
            .filter(|(a, b)| (a.0 - b.0).abs() > 1e-6 || (a.1 - b.1).abs() > 1e-6)
            .count();
        assert!(moved > 40, "jitter should move most landmarks");
    }

    #[test]
    fn landmark_feature_vector_is_normalised() {
        let v = sample();
        let lm = observed_landmarks(&v, 0, 0.0, 2);
        let f = landmark_feature_vector(&lm);
        assert_eq!(f.len(), 98);
        assert!(f.iter().all(|&x| (-0.1..=1.1).contains(&x)));
    }

    #[test]
    fn patch_features_grid_size() {
        let v = sample();
        let img = v.render_frame(0);
        let f = patch_features(&img, 8);
        assert_eq!(f.len(), (96 / 8) * (96 / 8));
        assert!(f.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn region_features_are_six_values() {
        let v = sample();
        let img = v.render_frame(v.most_expressive_frame());
        let f = region_features(&img);
        assert_eq!(f.len(), 6);
        assert!(f.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }
}
