//! Procedural face renderer.
//!
//! Produces a 96×96 grayscale frame from an AU intensity vector.  Two kinds
//! of pixel evidence are laid down, both localised in the acting AU's
//! facial region (see [`facs::region`]):
//!
//! 1. **geometry** — facial features are drawn through the AU-displaced
//!    landmark positions, so raised brows really sit higher on the image;
//! 2. **texture** — each AU adds a characteristic wrinkle/shading pattern
//!    inside its region (glabella furrows for AU4, crow's-feet brightening
//!    for AU6, nasolabial wrinkles for AU9, …), scaled by intensity.
//!
//! Because all evidence for an AU lives inside its region rectangle,
//! mosaicing that rectangle (the §III-D faithfulness check) removes the
//! evidence, and SLIC superpixels overlapping it carry the discriminative
//! signal for the explainer baselines.

use facs::au::{ActionUnit, AuVector, ALL_AUS};
use facs::landmarks::landmark_layout;
use facs::region::FACE_SIZE;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tinynn::rngutil::normal;

use crate::image::Image;

/// Stable per-subject appearance: real corpora vary far more by identity
/// than by expression, and that variance is the main obstacle for
/// pixel-level classifiers.  Identity is deterministic in the subject's
/// identity seed and constant across all of a subject's videos.
#[derive(Clone, Debug)]
pub struct Identity {
    /// Additive skin-tone offset.
    pub skin_offset: f32,
    /// Head-ellipse radius jitter (x, y).
    pub head_jitter: (f32, f32),
    /// Permanent skin marks: `(x, y, radius, delta)`.
    pub spots: Vec<(f32, f32, f32, f32)>,
    /// Feature line darkness jitter.
    pub feature_jitter: f32,
}

impl Identity {
    /// Derive an identity from a subject's identity seed.  `strength`
    /// scales every appearance deviation (1.0 = nominal).
    pub fn from_seed(seed: u64, strength: f32) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1DE2_1717);
        let n_spots = 8 + (rng.random::<u32>() % 7) as usize;
        let spots = (0..n_spots)
            .map(|_| {
                // Keep spots on the face: polar sample inside the head.
                let a = rng.random::<f32>() * std::f32::consts::TAU;
                let r = rng.random::<f32>().sqrt();
                let x = 48.0 + a.cos() * r * 33.0;
                let y = 50.0 + a.sin() * r * 39.0;
                let radius = 1.0 + rng.random::<f32>() * 2.2;
                let delta = (rng.random::<f32>() - 0.5) * 0.22 * strength;
                (x, y, radius, delta)
            })
            .collect();
        Identity {
            skin_offset: normal(&mut rng) * 0.045 * strength,
            head_jitter: (
                normal(&mut rng) * 2.0 * strength,
                normal(&mut rng) * 2.0 * strength,
            ),
            spots,
            feature_jitter: normal(&mut rng) * 0.04 * strength,
        }
    }

    /// The identity-free reference appearance.
    pub fn neutral() -> Self {
        Identity {
            skin_offset: 0.0,
            head_jitter: (0.0, 0.0),
            spots: Vec::new(),
            feature_jitter: 0.0,
        }
    }
}

const BACKGROUND: f32 = 0.86;
const SKIN: f32 = 0.64;
const FEATURE_DARK: f32 = 0.18;

/// Render one frame of the identity-free face.  `noise_seed` makes the
/// camera noise reproducible.
pub fn render_face(aus: &AuVector, pixel_noise: f32, noise_seed: u64) -> Image {
    render_face_styled(aus, pixel_noise, 1.0, noise_seed)
}

/// Render the identity-free face with an explicit texture gain.
pub fn render_face_styled(
    aus: &AuVector,
    pixel_noise: f32,
    texture_gain: f32,
    noise_seed: u64,
) -> Image {
    render_face_of(
        aus,
        &Identity::neutral(),
        pixel_noise,
        texture_gain,
        noise_seed,
    )
}

/// Render a specific subject's face.  `texture_gain` controls how strongly
/// AU skin-texture cues are written to pixels — the dataset profiles use it
/// to set how hard the pixel channel is relative to the AU channel.
pub fn render_face_of(
    aus: &AuVector,
    identity: &Identity,
    pixel_noise: f32,
    texture_gain: f32,
    noise_seed: u64,
) -> Image {
    let s = FACE_SIZE;
    let mut img = Image::filled(s, s, BACKGROUND);

    // Head: filled ellipse with identity geometry and tone.
    let skin = (SKIN + identity.skin_offset).clamp(0.4, 0.85);
    fill_ellipse(
        &mut img,
        48.0,
        50.0,
        38.0 + identity.head_jitter.0,
        44.0 + identity.head_jitter.1,
        skin,
    );

    // Permanent identity marks (drawn under the feature lines).
    for &(cx, cy, r, delta) in &identity.spots {
        let v = (skin + delta).clamp(0.0, 1.0);
        fill_ellipse(&mut img, cx, cy, r, r, v);
    }

    let landmarks = landmark_layout();
    let pos: Vec<(f32, f32)> = landmarks.iter().map(|l| l.displaced(aus)).collect();

    // Brows: polylines through landmarks 0..5 and 5..10.
    let feature_dark = (FEATURE_DARK + identity.feature_jitter).clamp(0.05, 0.4);
    for brow in [&pos[0..5], &pos[5..10]] {
        for w in brow.windows(2) {
            draw_line(&mut img, w[0], w[1], feature_dark, 2);
        }
    }

    // Eyes: hexagon outline through landmarks 10..16 and 16..22, darker
    // aperture filled when the lids are wide (AU5).
    for eye in [&pos[10..16], &pos[16..22]] {
        for i in 0..6 {
            draw_line(&mut img, eye[i], eye[(i + 1) % 6], 0.30, 1);
        }
        let cx = eye.iter().map(|p| p.0).sum::<f32>() / 6.0;
        let cy = eye.iter().map(|p| p.1).sum::<f32>() / 6.0;
        let openness = 1.5 + 2.0 * aus.get(ActionUnit::UpperLidRaiser);
        fill_ellipse(&mut img, cx, cy, 2.0, openness, 0.12);
    }

    // Nose: ridge and base through landmarks 22..31.
    for w in pos[22..26].windows(2) {
        draw_line(&mut img, w[0], w[1], 0.45, 1);
    }
    for w in pos[26..31].windows(2) {
        draw_line(&mut img, w[0], w[1], 0.40, 1);
    }

    // Mouth: outer ellipse polyline 31..43, inner 43..49; darker interior
    // when the mouth opens (AU25/AU26).
    for i in 0..12 {
        draw_line(&mut img, pos[31 + i], pos[31 + (i + 1) % 12], 0.22, 2);
    }
    let open = aus.get(ActionUnit::LipsPart) * 0.5 + aus.get(ActionUnit::JawDrop);
    if open > 0.05 {
        let cx = pos[31..43].iter().map(|p| p.0).sum::<f32>() / 12.0;
        let cy = pos[31..43].iter().map(|p| p.1).sum::<f32>() / 12.0;
        fill_ellipse(&mut img, cx, cy, 8.0, 1.5 + 4.0 * open, 0.10);
    }

    // Texture cues per AU.
    for au in ALL_AUS {
        let x = aus.get(au) * texture_gain;
        if x > 0.02 {
            draw_au_texture(&mut img, au, x);
        }
    }

    // Camera noise.
    if pixel_noise > 0.0 {
        let mut rng = StdRng::seed_from_u64(noise_seed);
        for y in 0..s {
            for x in 0..s {
                img.add(x, y, normal(&mut rng) * pixel_noise);
            }
        }
    }
    img
}

/// Characteristic shading pattern of one AU inside its region.
fn draw_au_texture(img: &mut Image, au: ActionUnit, intensity: f32) {
    let region = au.region();
    let delta = match au {
        // Brightening cues (bulging cheeks, stretched skin).
        ActionUnit::CheekRaiser | ActionUnit::LipCornerPuller => 0.16 * intensity,
        // Everything else darkens (furrows, wrinkles, shadows).
        _ => -0.14 * intensity,
    };
    // Distinct stripe phase/orientation per AU, so co-located AUs (e.g. the
    // three brow AUs) remain distinguishable in pixel space.
    let phase = au.index();
    let vertical = phase.is_multiple_of(2);
    for rect in region.rects() {
        for (x, y) in rect.pixels() {
            let k = if vertical { x } else { y };
            if (k + phase).is_multiple_of(3) {
                img.add(x, y, delta);
            }
        }
    }
    // A couple of AU-specific accents outside the stripe raster.
    match au {
        ActionUnit::BrowLowerer => {
            // Glabella furrows between the brows.
            for dy in 0..10 {
                img.add(46, 22 + dy, -0.22 * intensity);
                img.add(50, 22 + dy, -0.22 * intensity);
            }
        }
        ActionUnit::NoseWrinkler => {
            for dx in 0..8 {
                img.add(44 + dx, 42, -0.2 * intensity);
                img.add(44 + dx, 46, -0.2 * intensity);
            }
        }
        ActionUnit::ChinRaiser => {
            for dx in 0..14 {
                img.add(41 + dx, 88, -0.2 * intensity);
            }
        }
        _ => {}
    }
}

/// Thick line via sampled interpolation.
fn draw_line(img: &mut Image, a: (f32, f32), b: (f32, f32), value: f32, thickness: usize) {
    let steps = ((b.0 - a.0).abs().max((b.1 - a.1).abs()) as usize).max(1) * 2;
    let r = thickness as i32 / 2;
    for i in 0..=steps {
        let t = i as f32 / steps as f32;
        let x = a.0 + (b.0 - a.0) * t;
        let y = a.1 + (b.1 - a.1) * t;
        for dy in -r..=r {
            for dx in -r..=r {
                let px = (x as i32 + dx).clamp(0, FACE_SIZE as i32 - 1) as usize;
                let py = (y as i32 + dy).clamp(0, FACE_SIZE as i32 - 1) as usize;
                img.set(px, py, value);
            }
        }
    }
}

/// Filled ellipse.
fn fill_ellipse(img: &mut Image, cx: f32, cy: f32, rx: f32, ry: f32, value: f32) {
    let (w, h) = (img.width() as i32, img.height() as i32);
    let x0 = ((cx - rx).floor() as i32).clamp(0, w - 1);
    let x1 = ((cx + rx).ceil() as i32).clamp(0, w - 1);
    let y0 = ((cy - ry).floor() as i32).clamp(0, h - 1);
    let y1 = ((cy + ry).ceil() as i32).clamp(0, h - 1);
    for y in y0..=y1 {
        for x in x0..=x1 {
            let nx = (x as f32 - cx) / rx.max(1e-3);
            let ny = (y as f32 - cy) / ry.max(1e-3);
            if nx * nx + ny * ny <= 1.0 {
                img.set(x as usize, y as usize, value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facs::region::{FacialRegion, ALL_REGIONS};

    #[test]
    fn neutral_face_renders_head_on_background() {
        let img = render_face(&AuVector::zeros(), 0.0, 0);
        assert_eq!(img.width(), FACE_SIZE);
        assert_eq!(img.get(0, 0), BACKGROUND, "corner is background");
        assert_eq!(img.get(30, 58), SKIN, "cheek is skin");
    }

    #[test]
    fn au_intensity_changes_pixels_in_its_region_only_mostly() {
        let neutral = render_face(&AuVector::zeros(), 0.0, 0);
        let mut v = AuVector::zeros();
        v.set(ActionUnit::NoseWrinkler, 1.0);
        let wrinkled = render_face(&v, 0.0, 0);
        let rect = FacialRegion::Nose.rect();
        let d_in = (neutral.mean_in(&rect) - wrinkled.mean_in(&rect)).abs();
        assert!(d_in > 0.02, "nose region must change, got {d_in}");
        // A far-away region (jaw) should be nearly untouched.
        let jaw = FacialRegion::Jaw.rect();
        let d_out = (neutral.mean_in(&jaw) - wrinkled.mean_in(&jaw)).abs();
        assert!(
            d_out < d_in / 4.0,
            "jaw changed too much: {d_out} vs {d_in}"
        );
    }

    #[test]
    fn every_au_leaves_pixel_evidence() {
        let neutral = render_face(&AuVector::zeros(), 0.0, 0);
        for au in ALL_AUS {
            let mut v = AuVector::zeros();
            v.set(au, 1.0);
            let img = render_face(&v, 0.0, 0);
            assert!(
                img.l1_distance(&neutral) > 1e-4,
                "{au} produces no visible change"
            );
        }
    }

    #[test]
    fn higher_intensity_means_bigger_change() {
        let neutral = render_face(&AuVector::zeros(), 0.0, 0);
        let mut weak = AuVector::zeros();
        weak.set(ActionUnit::BrowLowerer, 0.3);
        let mut strong = AuVector::zeros();
        strong.set(ActionUnit::BrowLowerer, 1.0);
        let dw = render_face(&weak, 0.0, 0).l1_distance(&neutral);
        let ds = render_face(&strong, 0.0, 0).l1_distance(&neutral);
        assert!(ds > dw, "strong {ds} should exceed weak {dw}");
    }

    #[test]
    fn noise_seed_controls_noise() {
        let v = AuVector::zeros();
        let a = render_face(&v, 0.05, 1);
        let b = render_face(&v, 0.05, 1);
        let c = render_face(&v, 0.05, 2);
        assert_eq!(a, b);
        assert!(a.l1_distance(&c) > 0.0);
    }

    #[test]
    fn regions_cover_their_aus_texture() {
        // Texture for each AU must stay inside the image and not panic even
        // at extreme intensity.
        for au in ALL_AUS {
            let mut v = AuVector::zeros();
            v.set(au, 1.0);
            let img = render_face(&v, 0.0, 3);
            assert!(img.pixels().iter().all(|p| (0.0..=1.0).contains(p)));
        }
        let _ = ALL_REGIONS; // silence unused import in some cfg combinations
    }
}
