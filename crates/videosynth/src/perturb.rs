//! Perturbation operators used by the faithfulness protocol and explainers.
//!
//! * [`gaussian_disturb`] — §IV-H places gaussian noise on the top-scoring
//!   segments spotted by each explanation method;
//! * [`mask_segments`] — LIME/SHAP/SOBOL replace masked-out segments with a
//!   reference value (mean gray);
//! * [`mosaic_region`] — §III-D places a mosaic on the facial region named
//!   by a rationale to test whether the decision flips.

use facs::region::{FacialRegion, RegionRect};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tinynn::rngutil::normal;

use crate::image::Image;
use crate::slic::Segmentation;

/// Add zero-mean gaussian noise (std `sigma`) to every pixel of the listed
/// segments.  Deterministic in `seed`.
pub fn gaussian_disturb(
    img: &Image,
    seg: &Segmentation,
    segments: &[usize],
    sigma: f32,
    seed: u64,
) -> Image {
    let mut out = img.clone();
    let mut rng = StdRng::seed_from_u64(seed);
    let wanted: Vec<bool> = {
        let mut v = vec![false; seg.num_segments()];
        for &s in segments {
            assert!(s < seg.num_segments(), "segment {s} out of range");
            v[s] = true;
        }
        v
    };
    for y in 0..img.height() {
        for x in 0..img.width() {
            if wanted[seg.segment_of(x, y)] {
                out.add(x, y, normal(&mut rng) * sigma);
            }
        }
    }
    out
}

/// Replace every pixel of the listed segments with `fill` (typically the
/// image mean) — the reference-removal perturbation of LIME/SHAP.
pub fn mask_segments(img: &Image, seg: &Segmentation, segments: &[usize], fill: f32) -> Image {
    let mut out = img.clone();
    let wanted: Vec<bool> = {
        let mut v = vec![false; seg.num_segments()];
        for &s in segments {
            assert!(s < seg.num_segments(), "segment {s} out of range");
            v[s] = true;
        }
        v
    };
    for y in 0..img.height() {
        for x in 0..img.width() {
            if wanted[seg.segment_of(x, y)] {
                out.set(x, y, fill);
            }
        }
    }
    out
}

/// Apply a mask vector over all segments at once: `keep[s] == false`
/// segments get replaced with `fill`.  Convenience for the explainers'
/// binary-mask sampling loops.
pub fn apply_mask(img: &Image, seg: &Segmentation, keep: &[bool], fill: f32) -> Image {
    assert_eq!(keep.len(), seg.num_segments(), "one flag per segment");
    let dropped: Vec<usize> = keep
        .iter()
        .enumerate()
        .filter_map(|(s, &k)| (!k).then_some(s))
        .collect();
    mask_segments(img, seg, &dropped, fill)
}

/// Pixelate a rectangle with `block × block` mosaic cells (each cell
/// replaced by its mean).
pub fn mosaic_rect(img: &Image, rect: &RegionRect, block: usize) -> Image {
    assert!(block >= 1);
    let mut out = img.clone();
    let mut by = rect.y0;
    while by < rect.y1 {
        let mut bx = rect.x0;
        let y_end = (by + block).min(rect.y1).min(img.height());
        while bx < rect.x1 {
            let x_end = (bx + block).min(rect.x1).min(img.width());
            let mut sum = 0.0;
            let mut n = 0usize;
            for y in by..y_end {
                for x in bx..x_end {
                    sum += img.get(x, y);
                    n += 1;
                }
            }
            if n > 0 {
                let mean = sum / n as f32;
                for y in by..y_end {
                    for x in bx..x_end {
                        out.set(x, y, mean);
                    }
                }
            }
            bx += block;
        }
        by += block;
    }
    out
}

/// Mosaic an entire facial region (both rectangles for bilateral regions) —
/// the §III-D rationale-removal operation.  The 16-pixel cells are coarse
/// enough to destroy feature-position evidence inside the region while
/// preserving its average appearance.
pub fn mosaic_region(img: &Image, region: FacialRegion) -> Image {
    let mut out = img.clone();
    for rect in region.rects() {
        out = mosaic_rect(&out, &rect, 16);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::render_face;
    use crate::slic::slic;
    use facs::au::AuVector;
    use facs::ActionUnit;

    fn face() -> Image {
        let mut v = AuVector::zeros();
        v.set(ActionUnit::BrowLowerer, 0.8);
        render_face(&v, 0.0, 0)
    }

    #[test]
    fn gaussian_disturb_touches_only_selected_segments() {
        let img = face();
        let seg = slic(&img, 16, 0.1, 4);
        let out = gaussian_disturb(&img, &seg, &[0], 0.3, 7);
        let mut changed_outside = 0usize;
        let mut changed_inside = 0usize;
        for y in 0..img.height() {
            for x in 0..img.width() {
                if (img.get(x, y) - out.get(x, y)).abs() > 1e-6 {
                    if seg.segment_of(x, y) == 0 {
                        changed_inside += 1;
                    } else {
                        changed_outside += 1;
                    }
                }
            }
        }
        assert_eq!(changed_outside, 0);
        assert!(changed_inside > 0);
    }

    #[test]
    fn gaussian_disturb_is_deterministic() {
        let img = face();
        let seg = slic(&img, 16, 0.1, 4);
        let a = gaussian_disturb(&img, &seg, &[1, 2], 0.2, 5);
        let b = gaussian_disturb(&img, &seg, &[1, 2], 0.2, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn mask_segments_sets_fill_value() {
        let img = face();
        let seg = slic(&img, 16, 0.1, 4);
        let out = mask_segments(&img, &seg, &[3], 0.5);
        for (x, y) in seg.pixels_of(3) {
            assert_eq!(out.get(x, y), 0.5);
        }
    }

    #[test]
    fn apply_mask_full_keep_is_identity() {
        let img = face();
        let seg = slic(&img, 16, 0.1, 4);
        let keep = vec![true; seg.num_segments()];
        assert_eq!(apply_mask(&img, &seg, &keep, 0.5), img);
    }

    #[test]
    fn apply_mask_none_keep_is_flat() {
        let img = face();
        let seg = slic(&img, 16, 0.1, 4);
        let keep = vec![false; seg.num_segments()];
        let out = apply_mask(&img, &seg, &keep, 0.5);
        assert!(out.pixels().iter().all(|&p| (p - 0.5).abs() < 1e-6));
    }

    #[test]
    fn mosaic_region_destroys_au_evidence() {
        // A brow-lowered face mosaiced over the eyebrow region should look
        // like a neutral face mosaiced there too (evidence removed).
        let mut v = AuVector::zeros();
        v.set(ActionUnit::BrowLowerer, 1.0);
        let active = render_face(&v, 0.0, 0);
        let neutral = render_face(&AuVector::zeros(), 0.0, 0);
        let d_before = active.l1_distance(&neutral);
        let a = mosaic_region(&active, FacialRegion::Eyebrow);
        let n = mosaic_region(&neutral, FacialRegion::Eyebrow);
        let d_after = a.l1_distance(&n);
        assert!(
            d_after < d_before * 0.45,
            "mosaic should remove most evidence: {d_after} vs {d_before}"
        );
    }

    #[test]
    fn mosaic_rect_preserves_mean() {
        let img = face();
        let rect = facs::region::RegionRect {
            x0: 10,
            y0: 10,
            x1: 30,
            y1: 30,
        };
        let out = mosaic_rect(&img, &rect, 5);
        let before = img.mean_in(&rect);
        let after = out.mean_in(&rect);
        assert!((before - after).abs() < 1e-3, "{before} vs {after}");
        // Pixels outside unchanged.
        assert_eq!(img.get(0, 0), out.get(0, 0));
    }
}
