//! The generative world model: subjects, stress-conditioned AU sampling and
//! temporal dynamics.
//!
//! The causal structure mirrors the data-collection protocols of UVSD
//! (stress induced by a knowledge test) and RSL (stress from lying under
//! questioning): an experimental condition determines the latent stress
//! state, the stress state modulates which facial Action Units fire (via
//! the priors in [`facs::stress`]), the AUs drive the face over time, and a
//! camera observes noisy pixels.  Detectors only ever see the pixels (plus,
//! where a published baseline used one, a simulated commodity detector).

use facs::au::{AuSet, AuVector, ALL_AUS, NUM_AUS};
use facs::stress::stress_weight;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tinynn::rngutil::normal;

use crate::video::{StressLabel, VideoSample};

/// Tunable parameters of the generative process.
///
/// The two dataset profiles differ mainly in `au_label_coupling` (how
/// cleanly stress shows on the face) and the noise terms — RSL, curated
/// from a TV show with concealment incentives, is the noisier corpus, which
/// is why every method in Table I scores lower on it.
#[derive(Clone, Debug, PartialEq)]
pub struct WorldConfig {
    /// Frames per video clip.
    pub num_frames: usize,
    /// Strength of the stress→AU coupling (log-odds scale).
    pub au_label_coupling: f32,
    /// Base log-odds of an AU activating regardless of state.
    pub au_base_rate: f32,
    /// Std-dev of per-subject AU biases (idiosyncratic resting faces).
    pub subject_idiosyncrasy: f32,
    /// Std-dev of frame-level AU intensity noise.
    pub intensity_noise: f32,
    /// Std-dev of per-pixel camera noise at render time.
    pub pixel_noise: f32,
    /// Probability that an unrelated AU flickers briefly (distractor).
    pub distractor_rate: f32,
    /// Strength of AU texture cues written to pixels (1.0 = nominal).
    pub texture_gain: f32,
    /// Strength of per-subject identity appearance variation.
    pub identity_strength: f32,
}

impl WorldConfig {
    /// UVSD-like: lab recording, fairly clean signal.
    pub fn uvsd_like() -> Self {
        WorldConfig {
            num_frames: 16,
            au_label_coupling: 1.6,
            au_base_rate: -1.1,
            subject_idiosyncrasy: 0.35,
            intensity_noise: 0.06,
            pixel_noise: 0.05,
            distractor_rate: 0.10,
            texture_gain: 0.8,
            identity_strength: 0.55,
        }
    }

    /// RSL-like: TV footage, concealment, noisier everything.
    pub fn rsl_like() -> Self {
        WorldConfig {
            num_frames: 16,
            au_label_coupling: 1.05,
            au_base_rate: -1.0,
            subject_idiosyncrasy: 0.55,
            intensity_noise: 0.10,
            pixel_noise: 0.07,
            distractor_rate: 0.18,
            texture_gain: 0.65,
            identity_strength: 0.7,
        }
    }

    /// DISFA+-like: posed/spontaneous expressions with clean AU annotation;
    /// stress labels are irrelevant here, AU variety is maximised.
    pub fn disfa_like() -> Self {
        WorldConfig {
            num_frames: 16,
            au_label_coupling: 0.0, // AUs drawn independent of any stress state
            au_base_rate: -0.75,
            subject_idiosyncrasy: 0.25,
            intensity_noise: 0.05,
            pixel_noise: 0.025,
            distractor_rate: 0.0,
            texture_gain: 1.0,
            identity_strength: 0.55,
        }
    }
}

/// A recorded participant with an idiosyncratic resting face.
#[derive(Clone, Debug)]
pub struct Subject {
    /// Subject identifier, unique within a dataset.
    pub id: usize,
    /// Per-AU activation bias (log-odds offsets).
    pub au_bias: [f32; NUM_AUS],
    /// Multiplier on apex intensities (how expressive the face is).
    pub expressivity: f32,
    /// Seed of the subject's stable visual identity (see
    /// [`crate::render::Identity`]).
    pub identity_seed: u64,
}

impl Subject {
    /// Sample a subject's idiosyncrasies.
    pub fn generate<R: Rng>(id: usize, idiosyncrasy: f32, rng: &mut R) -> Self {
        let mut au_bias = [0.0f32; NUM_AUS];
        for b in &mut au_bias {
            *b = normal(rng) * idiosyncrasy;
        }
        let expressivity = (1.0 + normal(rng) * 0.18).clamp(0.55, 1.45);
        let identity_seed = rng.random::<u64>();
        Subject {
            id,
            au_bias,
            expressivity,
            identity_seed,
        }
    }
}

/// Probability that `au` is active at the apex given the stress state.
pub fn au_activation_probability(
    cfg: &WorldConfig,
    subject: &Subject,
    au: facs::ActionUnit,
    label: StressLabel,
) -> f32 {
    let sign = match label {
        StressLabel::Stressed => 1.0,
        StressLabel::Unstressed => -1.0,
    };
    let z = cfg.au_base_rate
        + sign * cfg.au_label_coupling * stress_weight(au)
        + subject.au_bias[au.index()];
    facs::stress::sigmoid(z)
}

/// Onset–apex–offset intensity envelope over `n` frames, peaking at
/// `apex_frame` with value 1.
fn envelope(t: usize, apex_frame: usize, n: usize) -> f32 {
    debug_assert!(apex_frame < n);
    if t <= apex_frame {
        if apex_frame == 0 {
            1.0
        } else {
            t as f32 / apex_frame as f32
        }
    } else {
        let tail = (n - 1 - apex_frame).max(1);
        1.0 - 0.65 * (t - apex_frame) as f32 / tail as f32
    }
}

/// Sample one video clip for a subject under a given stress condition.
///
/// `sample_id` seeds both the AU process and the render noise so every
/// sample is exactly reproducible.
pub fn sample_video(
    cfg: &WorldConfig,
    subject: &Subject,
    label: StressLabel,
    sample_id: usize,
    dataset_seed: u64,
) -> VideoSample {
    let seed = dataset_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(sample_id as u64);
    let mut rng = StdRng::seed_from_u64(seed);

    // Which AUs fire at the apex.
    let mut apex = AuSet::EMPTY;
    let mut targets = AuVector::zeros();
    for au in ALL_AUS {
        let p = au_activation_probability(cfg, subject, au, label);
        if rng.random::<f32>() < p {
            apex.insert(au);
            let target = (0.55 + 0.45 * rng.random::<f32>()) * subject.expressivity;
            targets.set(au, target);
        }
    }

    // Temporal trajectory.
    let n = cfg.num_frames;
    let apex_frame = n / 3 + (rng.random::<u32>() as usize) % (n / 3).max(1);
    let mut trajectory = Vec::with_capacity(n);
    for t in 0..n {
        let env = envelope(t, apex_frame, n);
        let mut v = AuVector::zeros();
        for au in ALL_AUS {
            let mut x = targets.get(au) * env;
            // Distractor flicker on inactive AUs.
            if !apex.contains(au)
                && cfg.distractor_rate > 0.0
                && rng.random::<f32>() < cfg.distractor_rate / n as f32
            {
                x += 0.25 + 0.2 * rng.random::<f32>();
            }
            x += normal(&mut rng) * cfg.intensity_noise;
            v.set(au, x);
        }
        trajectory.push(v);
    }

    VideoSample::new(
        sample_id,
        subject.id,
        label,
        apex,
        trajectory,
        cfg.pixel_noise,
        cfg.texture_gain,
        subject.identity_seed,
        cfg.identity_strength,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use facs::ActionUnit;

    fn subj(seed: u64) -> Subject {
        let mut rng = StdRng::seed_from_u64(seed);
        Subject::generate(0, 0.3, &mut rng)
    }

    #[test]
    fn stress_raises_marker_au_probability() {
        let cfg = WorldConfig::uvsd_like();
        let s = Subject {
            id: 0,
            au_bias: [0.0; NUM_AUS],
            expressivity: 1.0,
            identity_seed: 0,
        };
        let p_stressed =
            au_activation_probability(&cfg, &s, ActionUnit::BrowLowerer, StressLabel::Stressed);
        let p_unstressed =
            au_activation_probability(&cfg, &s, ActionUnit::BrowLowerer, StressLabel::Unstressed);
        assert!(p_stressed > 0.6, "p_stressed = {p_stressed}");
        assert!(p_unstressed < 0.1, "p_unstressed = {p_unstressed}");
    }

    #[test]
    fn unstressed_raises_smile_probability() {
        let cfg = WorldConfig::uvsd_like();
        let s = Subject {
            id: 0,
            au_bias: [0.0; NUM_AUS],
            expressivity: 1.0,
            identity_seed: 0,
        };
        let p_u = au_activation_probability(
            &cfg,
            &s,
            ActionUnit::LipCornerPuller,
            StressLabel::Unstressed,
        );
        let p_s =
            au_activation_probability(&cfg, &s, ActionUnit::LipCornerPuller, StressLabel::Stressed);
        assert!(p_u > p_s);
    }

    #[test]
    fn disfa_profile_is_label_independent() {
        let cfg = WorldConfig::disfa_like();
        let s = Subject {
            id: 0,
            au_bias: [0.0; NUM_AUS],
            expressivity: 1.0,
            identity_seed: 0,
        };
        for au in ALL_AUS {
            let a = au_activation_probability(&cfg, &s, au, StressLabel::Stressed);
            let b = au_activation_probability(&cfg, &s, au, StressLabel::Unstressed);
            assert!((a - b).abs() < 1e-6, "{au}");
        }
    }

    #[test]
    fn envelope_peaks_at_apex() {
        let n = 16;
        let apex = 6;
        for t in 0..n {
            let e = envelope(t, apex, n);
            assert!(e <= 1.0 + 1e-6);
            assert!(e >= 0.0);
        }
        assert!((envelope(apex, apex, n) - 1.0).abs() < 1e-6);
        assert!(envelope(0, apex, n) < envelope(apex, apex, n));
        assert!(envelope(n - 1, apex, n) < envelope(apex, apex, n));
    }

    #[test]
    fn sample_video_is_deterministic() {
        let cfg = WorldConfig::uvsd_like();
        let s = subj(1);
        let a = sample_video(&cfg, &s, StressLabel::Stressed, 7, 42);
        let b = sample_video(&cfg, &s, StressLabel::Stressed, 7, 42);
        assert_eq!(a.apex_aus(), b.apex_aus());
        assert_eq!(a.au_at(5).0, b.au_at(5).0);
    }

    #[test]
    fn different_sample_ids_differ() {
        let cfg = WorldConfig::uvsd_like();
        let s = subj(1);
        let a = sample_video(&cfg, &s, StressLabel::Stressed, 7, 42);
        let b = sample_video(&cfg, &s, StressLabel::Stressed, 8, 42);
        // Trajectories should differ (same subject, different episode).
        let same = (0..a.num_frames()).all(|t| a.au_at(t).0 == b.au_at(t).0);
        assert!(!same);
    }

    #[test]
    fn stressed_videos_show_more_stress_aus_in_aggregate() {
        let cfg = WorldConfig::uvsd_like();
        let mut rng = StdRng::seed_from_u64(5);
        let mut stressed_marker = 0usize;
        let mut unstressed_marker = 0usize;
        for i in 0..200 {
            let s = Subject::generate(i, cfg.subject_idiosyncrasy, &mut rng);
            let vs = sample_video(&cfg, &s, StressLabel::Stressed, i * 2, 9);
            let vu = sample_video(&cfg, &s, StressLabel::Unstressed, i * 2 + 1, 9);
            for au in [
                ActionUnit::BrowLowerer,
                ActionUnit::LipStretcher,
                ActionUnit::UpperLidRaiser,
            ] {
                stressed_marker += usize::from(vs.apex_aus().contains(au));
                unstressed_marker += usize::from(vu.apex_aus().contains(au));
            }
        }
        assert!(
            stressed_marker > unstressed_marker * 3,
            "stressed {stressed_marker} vs unstressed {unstressed_marker}"
        );
    }

    #[test]
    fn subject_expressivity_is_bounded() {
        let mut rng = StdRng::seed_from_u64(11);
        for i in 0..100 {
            let s = Subject::generate(i, 0.4, &mut rng);
            assert!((0.55..=1.45).contains(&s.expressivity));
        }
    }
}
