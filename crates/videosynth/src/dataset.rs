//! Dataset profiles and corpus generation.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::video::{StressLabel, VideoSample};
use crate::world::{sample_video, Subject, WorldConfig};

/// How large to instantiate a corpus.
///
/// `Full` matches the paper's corpus sizes exactly; `Default` keeps the
/// class ratios but shrinks counts ~5× so table binaries finish in minutes
/// on a laptop; `Smoke` is for tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    Smoke,
    Default,
    Full,
}

impl Scale {
    /// Parse from a CLI string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "smoke" => Some(Scale::Smoke),
            "default" => Some(Scale::Default),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

/// Static description of a corpus to generate.
#[derive(Clone, Debug)]
pub struct DatasetProfile {
    /// Corpus name (used in reports).
    pub name: &'static str,
    /// Generative parameters.
    pub world: WorldConfig,
    /// Total number of video samples.
    pub num_samples: usize,
    /// Number of distinct subjects.
    pub num_subjects: usize,
    /// Number of samples labelled Stressed.
    pub num_stressed: usize,
}

impl DatasetProfile {
    /// UVSD (Zhang et al. 2020): 2 092 videos, 112 college students,
    /// 920 stressed / 1 172 unstressed.
    pub fn uvsd(scale: Scale) -> Self {
        Self::scaled("uvsd_sim", WorldConfig::uvsd_like(), 2092, 112, 920, scale)
    }

    /// RSL ("Odd Man Out" footage): 706 videos, 60 subjects,
    /// 209 stressed / 497 unstressed.
    pub fn rsl(scale: Scale) -> Self {
        Self::scaled("rsl_sim", WorldConfig::rsl_like(), 706, 60, 209, scale)
    }

    /// DISFA+-like facial-expression corpus: 645 videos with 12-AU
    /// annotations, used only for instruction tuning the Describe step.
    pub fn disfa(scale: Scale) -> Self {
        Self::scaled("disfa_sim", WorldConfig::disfa_like(), 645, 27, 322, scale)
    }

    fn scaled(
        name: &'static str,
        world: WorldConfig,
        samples: usize,
        subjects: usize,
        stressed: usize,
        scale: Scale,
    ) -> Self {
        let factor = match scale {
            Scale::Full => 1.0,
            Scale::Default => 0.2,
            Scale::Smoke => 0.03,
        };
        let num_samples = ((samples as f32 * factor) as usize).max(24);
        // Subjects shrink more slowly than samples so the per-subject clip
        // count — the quantity that controls how well a pixel model can
        // adapt to identities — stays in the paper's regime (≈ 6–19).
        let num_subjects = ((subjects as f32 * factor.powf(0.55)) as usize).max(6);
        let num_stressed =
            ((stressed as f32 / samples as f32) * num_samples as f32).round() as usize;
        DatasetProfile {
            name,
            world,
            num_samples,
            num_subjects,
            num_stressed,
        }
    }
}

/// A generated corpus of video samples.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Corpus name.
    pub name: &'static str,
    /// All samples, ids matching their index.
    pub samples: Vec<VideoSample>,
    /// The profile this corpus was generated from.
    pub profile: DatasetProfile,
}

impl Dataset {
    /// Generate a corpus deterministically from a seed.
    ///
    /// Per-sample rendering runs on the globally configured
    /// [`runtime::Pool`]; each sample's stream derives purely from
    /// `(seed, id)` inside [`sample_video`], so the corpus is bit-identical
    /// for any thread count.
    pub fn generate(profile: DatasetProfile, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let subjects: Vec<Subject> = (0..profile.num_subjects)
            .map(|i| Subject::generate(i, profile.world.subject_idiosyncrasy, &mut rng))
            .collect();

        // Exact class counts, randomly distributed over samples.
        let mut labels = vec![StressLabel::Unstressed; profile.num_samples];
        labels[..profile.num_stressed].fill(StressLabel::Stressed);
        labels.shuffle(&mut rng);

        let samples = runtime::Pool::global().par_map(&labels, |id, &label| {
            let subject = &subjects[id % subjects.len()];
            sample_video(&profile.world, subject, label, id, seed)
        });

        Dataset {
            name: profile.name,
            samples,
            profile,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// `(stressed, unstressed)` counts.
    pub fn label_counts(&self) -> (usize, usize) {
        let s = self
            .samples
            .iter()
            .filter(|v| v.label == StressLabel::Stressed)
            .count();
        (s, self.len() - s)
    }

    /// Stratified `k`-fold split: returns `(train_indices, test_indices)`
    /// per fold, each class split proportionally, deterministic in `seed`.
    pub fn k_folds(&self, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
        assert!(k >= 2, "need at least 2 folds");
        assert!(k <= self.len(), "more folds than samples");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stressed: Vec<usize> = Vec::new();
        let mut unstressed: Vec<usize> = Vec::new();
        for (i, s) in self.samples.iter().enumerate() {
            match s.label {
                StressLabel::Stressed => stressed.push(i),
                StressLabel::Unstressed => unstressed.push(i),
            }
        }
        stressed.shuffle(&mut rng);
        unstressed.shuffle(&mut rng);

        let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (j, &i) in stressed.iter().enumerate() {
            folds[j % k].push(i);
        }
        for (j, &i) in unstressed.iter().enumerate() {
            folds[j % k].push(i);
        }

        (0..k)
            .map(|f| {
                let test = folds[f].clone();
                let train = (0..k)
                    .filter(|&g| g != f)
                    .flat_map(|g| folds[g].iter().copied())
                    .collect();
                (train, test)
            })
            .collect()
    }

    /// Simple stratified train/test split with the given train fraction.
    pub fn train_test_split(&self, train_frac: f32, seed: u64) -> (Vec<usize>, Vec<usize>) {
        assert!((0.0..1.0).contains(&train_frac) && train_frac > 0.0);
        let folds = self.k_folds(((1.0 / (1.0 - train_frac)).round() as usize).max(2), seed);
        folds.into_iter().next().expect("at least one fold")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parse() {
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("default"), Some(Scale::Default));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("big"), None);
    }

    #[test]
    fn full_profiles_match_paper_sizes() {
        let u = DatasetProfile::uvsd(Scale::Full);
        assert_eq!(
            (u.num_samples, u.num_subjects, u.num_stressed),
            (2092, 112, 920)
        );
        let r = DatasetProfile::rsl(Scale::Full);
        assert_eq!(
            (r.num_samples, r.num_subjects, r.num_stressed),
            (706, 60, 209)
        );
        let d = DatasetProfile::disfa(Scale::Full);
        assert_eq!(d.num_samples, 645);
    }

    #[test]
    fn scaled_profiles_keep_class_ratio() {
        let full = DatasetProfile::uvsd(Scale::Full);
        let small = DatasetProfile::uvsd(Scale::Default);
        let rf = full.num_stressed as f32 / full.num_samples as f32;
        let rs = small.num_stressed as f32 / small.num_samples as f32;
        assert!((rf - rs).abs() < 0.02, "{rf} vs {rs}");
        assert!(small.num_samples < full.num_samples);
    }

    #[test]
    fn generation_is_deterministic_and_counts_match() {
        let p = DatasetProfile::uvsd(Scale::Smoke);
        let a = Dataset::generate(p.clone(), 1);
        let b = Dataset::generate(p.clone(), 1);
        assert_eq!(a.len(), p.num_samples);
        assert_eq!(a.label_counts().0, p.num_stressed);
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.apex_aus(), y.apex_aus());
        }
        let c = Dataset::generate(p, 2);
        let same_labels = a
            .samples
            .iter()
            .zip(&c.samples)
            .all(|(x, y)| x.label == y.label);
        assert!(
            !same_labels,
            "different seeds should shuffle labels differently"
        );
    }

    #[test]
    fn k_folds_partition_and_stratify() {
        let ds = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), 3);
        let k = 5;
        let folds = ds.k_folds(k, 7);
        assert_eq!(folds.len(), k);
        let mut seen = vec![0usize; ds.len()];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), ds.len());
            for &i in test {
                seen[i] += 1;
            }
            // No overlap between train and test.
            for &i in test {
                assert!(!train.contains(&i));
            }
            // Stratification: test stress ratio close to global.
            let (gs, _) = ds.label_counts();
            let global = gs as f32 / ds.len() as f32;
            let ts = test
                .iter()
                .filter(|&&i| ds.samples[i].label == StressLabel::Stressed)
                .count() as f32
                / test.len() as f32;
            assert!(
                (ts - global).abs() < 0.25,
                "fold ratio {ts} vs global {global}"
            );
        }
        // Every sample appears in exactly one test fold.
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn train_test_split_is_disjoint_and_complete() {
        let ds = Dataset::generate(DatasetProfile::rsl(Scale::Smoke), 4);
        let (train, test) = ds.train_test_split(0.8, 9);
        assert_eq!(train.len() + test.len(), ds.len());
        for i in &test {
            assert!(!train.contains(i));
        }
    }
}
