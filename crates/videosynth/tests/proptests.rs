//! Property-based tests for the synthetic world.

use facs::au::{AuVector, NUM_AUS};
use proptest::prelude::*;
use videosynth::dataset::{Dataset, DatasetProfile, Scale};
use videosynth::render::render_face;
use videosynth::slic::slic;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Rendering any AU vector yields an in-range image of the right size.
    #[test]
    fn render_is_total(vals in proptest::collection::vec(0.0f32..=1.0, NUM_AUS), noise in 0.0f32..0.1) {
        let mut v = AuVector::zeros();
        for (i, x) in vals.iter().enumerate() {
            v.0[i] = *x;
        }
        let img = render_face(&v, noise, 7);
        prop_assert_eq!(img.width(), 96);
        prop_assert_eq!(img.height(), 96);
        prop_assert!(img.pixels().iter().all(|p| (0.0..=1.0).contains(p)));
    }

    /// SLIC always partitions: labels compact, no empty segments, full cover.
    #[test]
    fn slic_partitions(k in 4usize..40, m in 0.02f32..0.3) {
        let img = render_face(&AuVector::zeros(), 0.02, 3);
        let seg = slic(&img, k, m, 4);
        prop_assert!(seg.num_segments() <= k);
        prop_assert!(seg.num_segments() >= 1);
        let sizes = seg.segment_sizes();
        prop_assert!(sizes.iter().all(|&s| s > 0));
        prop_assert_eq!(sizes.iter().sum::<usize>(), img.len());
    }

    /// Dataset generation respects exact class counts for any seed.
    #[test]
    fn dataset_class_counts_hold(seed in 0u64..1000) {
        let p = DatasetProfile::rsl(Scale::Smoke);
        let expect = p.num_stressed;
        let ds = Dataset::generate(p, seed);
        prop_assert_eq!(ds.label_counts().0, expect);
    }

    /// Fold splits partition the dataset for any fold count and seed.
    #[test]
    fn folds_partition(seed in 0u64..100, k in 2usize..6) {
        let ds = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), 11);
        let folds = ds.k_folds(k, seed);
        let mut seen = vec![false; ds.len()];
        for (_, test) in &folds {
            for &i in test {
                prop_assert!(!seen[i], "sample {} in two test folds", i);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}
