//! The TCP server: accept loop, request routing, hot-swap, graceful drain.
//!
//! Thread-per-connection with keep-alive.  The accept loop runs
//! non-blocking with a short poll so a shutdown flag can stop it without
//! platform-specific tricks; connection handlers use read timeouts for the
//! same reason — an idle keep-alive peer never pins a handler past drain.
//!
//! The registry is held behind an `RwLock<Arc<Registry>>`: every request
//! clones the current `Arc` once up front, and batched jobs pin that
//! snapshot, so `POST /admin/reload` swaps registries without touching
//! in-flight work — admitted requests drain on the old registry, new
//! requests see the new one.
//!
//! Every non-2xx response, including HTTP parse failures, carries the one
//! machine-readable body `{"error":{"code","message","retry_after"?}}`.
//!
//! Failure model (see DESIGN.md): per-request deadlines answer `503
//! deadline_exceeded` instead of computing for a client that gave up;
//! slow-loris peers get `408` at the parse deadline; oversized bodies
//! `413`; overloaded explain degrades to cached-or-`429` while predict
//! stays live; `/admin/reload` sits behind a circuit breaker and rolls
//! back to the last-good registry if a swap fails midway; KV page-slab
//! exhaustion preempts and retries before answering `503 kv_exhausted`.
//! Socket reads, socket writes, reloads, worker execution and scheduler
//! rounds are chaos points — see `runtime::faults`.
//!
//! Graceful drain order (see [`Server::shutdown`]): flip the shutdown
//! flag, drain the scheduler (everything already admitted completes; new
//! submissions answer `503`), join the accept thread, join the handlers.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use runtime::faults::{self, FaultyRead, FaultyWrite};

use crate::api;
use crate::http::{parse_request_limited, HttpError, ParseLimits, Request, Response};
use crate::json::{obj, Json};
use crate::metrics::Metrics;
use crate::registry::{ModelProvider, Registry};
use crate::sched::{JobError, SchedConfig, Scheduler, SubmitError};

/// How long the accept loop sleeps between polls.
const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// Read timeout on connection sockets — the cadence at which idle
/// keep-alive handlers re-check the shutdown flag and slow parses
/// re-check their deadline.
const READ_TIMEOUT: Duration = Duration::from_millis(100);

/// Fault-injection point on every socket read.
pub const FAULT_SOCKET_READ: &str = "socket.read";
/// Fault-injection point on every socket write.
pub const FAULT_SOCKET_WRITE: &str = "socket.write";
/// Fault-injection point between registry build and swap in
/// `POST /admin/reload` — forces the mid-swap failure the rollback path
/// exists for.
pub const FAULT_RELOAD_SWAP: &str = "reload.swap";

/// Consecutive reload failures that open the circuit breaker.
const RELOAD_BREAKER_THRESHOLD: u32 = 3;
/// How long an open breaker short-circuits reload attempts.
const RELOAD_BREAKER_COOLDOWN: Duration = Duration::from_secs(2);
/// Bounded explain response cache used by the degraded (shedding) path.
const EXPLAIN_CACHE_CAP: usize = 64;

/// Server construction options.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address ("127.0.0.1:0" picks an ephemeral port).
    pub addr: String,
    /// Continuous-batching scheduler knobs.
    pub sched: SchedConfig,
    /// Worker threads for scheduler dispatch (0 = all cores /
    /// `SRCR_THREADS`).
    pub threads: usize,
    /// Per-request deadline from admission to response body, checked at
    /// admission, first step and every decode-stage boundary.
    /// `None` disables the bound.
    pub deadline: Option<Duration>,
    /// How long one request may take to *arrive* in full (slow-loris
    /// bound; `408` past it).  Also the socket write timeout.
    pub io_timeout: Duration,
    /// Largest accepted request body (`413` beyond it).
    pub max_body: usize,
    /// Explain requests running concurrently before the route degrades to
    /// cached-or-`429`.
    pub max_inflight_explain: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            sched: SchedConfig::default(),
            threads: 0,
            deadline: None,
            io_timeout: Duration::from_secs(5),
            max_body: crate::http::MAX_BODY,
            max_inflight_explain: 4,
        }
    }
}

/// Reload circuit breaker: opens after consecutive failures, then
/// short-circuits attempts until the cooldown passes (half-open retry).
#[derive(Default)]
struct ReloadBreaker {
    consecutive_failures: u32,
    open_until: Option<Instant>,
}

/// Everything a connection handler needs.
struct State {
    /// The live registry snapshot; swapped whole on reload.
    registry: RwLock<Arc<Registry>>,
    /// Builds registries — the boot source, re-invoked by `/admin/reload`.
    provider: Arc<dyn ModelProvider>,
    scheduler: Scheduler,
    metrics: Arc<Metrics>,
    /// Serialises reloads so concurrent `/admin/reload`s can't interleave,
    /// and tracks the breaker state across them.
    reload: Mutex<ReloadBreaker>,
    /// Explain requests currently computing (load-shedding gauge).
    explain_inflight: AtomicUsize,
    /// Bounded `(request fingerprint, body)` cache feeding the degraded
    /// explain path; FIFO eviction at [`EXPLAIN_CACHE_CAP`].
    explain_cache: Mutex<std::collections::VecDeque<(u64, String)>>,
    /// Robustness knobs copied from [`ServerConfig`].
    deadline: Option<Duration>,
    io_timeout: Duration,
    max_body: usize,
    max_inflight_explain: usize,
    /// Set once drain starts; handlers and the accept loop wind down.
    shutdown: AtomicBool,
    /// Set by `POST /admin/shutdown`; the serve binary polls it.
    shutdown_requested: AtomicBool,
}

impl State {
    /// The current registry snapshot (one `Arc` clone).
    fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry.read().expect("registry lock"))
    }
}

/// A running server.
pub struct Server {
    addr: SocketAddr,
    state: Arc<State>,
    accept: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Build the initial registry through `provider`, bind, and serve.
    /// The provider is retained for `POST /admin/reload`.
    pub fn start<P: ModelProvider + 'static>(
        provider: P,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        Self::start_dyn(Arc::new(provider), cfg)
    }

    /// [`start`](Self::start) with an already-erased provider.
    pub fn start_dyn(
        provider: Arc<dyn ModelProvider>,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let registry = provider
            .provide()
            .map(Arc::new)
            .map_err(std::io::Error::other)?;
        let listener = TcpListener::bind(
            cfg.addr
                .to_socket_addrs()?
                .next()
                .ok_or_else(|| std::io::Error::other("unresolvable bind address"))?,
        )?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let metrics = Arc::new(Metrics::new());
        let pool = Arc::new(runtime::Pool::new(cfg.threads));
        let scheduler = Scheduler::start(pool, Arc::clone(&metrics), cfg.sched);
        let state = Arc::new(State {
            registry: RwLock::new(registry),
            provider,
            scheduler,
            metrics,
            reload: Mutex::new(ReloadBreaker::default()),
            explain_inflight: AtomicUsize::new(0),
            explain_cache: Mutex::new(std::collections::VecDeque::new()),
            deadline: cfg.deadline,
            io_timeout: cfg.io_timeout,
            max_body: cfg.max_body,
            max_inflight_explain: cfg.max_inflight_explain.max(1),
            shutdown: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
        });
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept = {
            let state = Arc::clone(&state);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(&listener, &state, &handlers))
                .expect("spawn accept loop")
        };

        Ok(Server {
            addr,
            state,
            accept: Some(accept),
            handlers,
        })
    }

    /// The bound address (with the concrete ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared metrics (for tests and the binary's exit summary).
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.state.metrics)
    }

    /// Names of the currently served models.
    pub fn model_names(&self) -> Vec<String> {
        self.state
            .registry()
            .names()
            .into_iter()
            .map(str::to_owned)
            .collect()
    }

    /// Whether a client asked the server to stop via `POST /admin/shutdown`.
    pub fn shutdown_requested(&self) -> bool {
        self.state.shutdown_requested.load(Ordering::Acquire)
    }

    /// Graceful drain: stop accepting, finish all admitted work, join every
    /// thread.  Idempotent.
    pub fn shutdown(&mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        self.state.scheduler.drain();
        if let Some(h) = self.accept.take() {
            h.join().expect("accept loop panicked");
        }
        let drained: Vec<_> = self
            .handlers
            .lock()
            .expect("handler registry")
            .drain(..)
            .collect();
        for h in drained {
            h.join().expect("connection handler panicked");
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<State>, handlers: &Mutex<Vec<JoinHandle<()>>>) {
    while !state.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let state = Arc::clone(state);
                let handle = std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || handle_connection(stream, &state))
                    .expect("spawn connection handler");
                handlers.lock().expect("handler registry").push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Standard reason phrase for the statuses this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Error",
    }
}

/// Build a non-2xx response carrying the unified error schema.
fn error_response(status: u16, code: &str, message: &str, retry_after: Option<u64>) -> Response {
    let resp = Response::json(
        status,
        reason(status),
        &api::error_body(code, message, retry_after),
    );
    match retry_after {
        Some(secs) => resp.with_header("Retry-After", secs.to_string()),
        None => resp,
    }
}

fn handle_connection(stream: TcpStream, state: &State) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_write_timeout(Some(state.io_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => FaultyWrite::new(w, FAULT_SOCKET_WRITE),
        Err(_) => return,
    };
    let mut reader = BufReader::new(FaultyRead::new(stream, FAULT_SOCKET_READ));
    let limits = ParseLimits {
        max_body: state.max_body,
        io_deadline: Some(state.io_timeout),
    };
    loop {
        match parse_request_limited(&mut reader, limits) {
            Ok(Some(req)) => {
                let keep_alive = req.keep_alive() && !state.shutdown.load(Ordering::Acquire);
                let resp = route(&req, state);
                state.metrics.record_status(resp.status);
                if resp.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            // Clean end of a keep-alive session.
            Ok(None) => return,
            Err(HttpError::Idle) => {
                if state.shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(e) => {
                if let Some((status, reason)) = e.status() {
                    let code = match status {
                        408 => "request_timeout",
                        411 => "length_required",
                        413 => "payload_too_large",
                        431 => "headers_too_large",
                        _ => "bad_request",
                    };
                    let resp = error_response(status, code, reason, None);
                    state.metrics.record_status(status);
                    let _ = resp.write_to(&mut writer, false);
                }
                // Malformed, truncated or dead peer: drop the connection.
                return;
            }
        }
    }
}

fn route(req: &Request, state: &State) -> Response {
    const ROUTES: &[&str] = &[
        "/healthz",
        "/readyz",
        "/metrics",
        "/v1/models",
        "/v1/predict",
        "/v1/explain",
        "/admin/reload",
        "/admin/shutdown",
    ];
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "OK", "ok\n"),
        ("GET", "/readyz") => readyz(state),
        ("GET", "/metrics") => Response::text(200, "OK", state.metrics.render()),
        ("GET", "/v1/models") => models(state),
        ("POST", "/v1/predict") => predict(req, state),
        ("POST", "/v1/explain") => explain(req, state),
        ("POST", "/admin/reload") => reload(state),
        ("POST", "/admin/shutdown") => {
            state.shutdown_requested.store(true, Ordering::Release);
            Response::json(200, "OK", &obj(vec![("draining", Json::Bool(true))]))
        }
        (_, path) if ROUTES.contains(&path) => {
            error_response(405, "method_not_allowed", "method not allowed", None)
        }
        _ => error_response(404, "not_found", "no such route", None),
    }
}

fn readyz(state: &State) -> Response {
    if state.shutdown.load(Ordering::Acquire) {
        return error_response(503, "draining", "server is draining", None);
    }
    let registry = state.registry();
    let models = registry
        .names()
        .into_iter()
        .map(|n| Json::String(n.to_owned()))
        .collect();
    Response::json(
        200,
        "OK",
        &obj(vec![
            ("ready", Json::Bool(true)),
            ("queue_depth", Json::Number(state.scheduler.depth() as f64)),
            ("models", Json::Array(models)),
        ]),
    )
}

/// `GET /v1/models`: every served model with its provenance.
fn models(state: &State) -> Response {
    let registry = state.registry();
    let entries = registry
        .entries()
        .iter()
        .map(|e| {
            obj(vec![
                ("name", Json::String(e.name.clone())),
                ("version", Json::Number(e.version as f64)),
                (
                    "content_hash",
                    Json::String(format!("{:08x}", e.content_hash)),
                ),
                ("source", Json::String(e.source.clone())),
            ])
        })
        .collect();
    Response::json(
        200,
        "OK",
        &obj(vec![
            ("models", Json::Array(entries)),
            (
                "kernel_tier",
                Json::String(tinynn::kernels::kernel_tier().name().to_string()),
            ),
        ]),
    )
}

/// `POST /admin/reload`: build a fresh registry through the boot provider
/// and swap it in, behind a circuit breaker.
///
/// In-flight requests finish on the snapshot they pinned.  A failed
/// provide leaves the current registry untouched; a failure *mid-swap*
/// (the `reload.swap` chaos point) rolls the slot back to the last-good
/// snapshot, so the server keeps answering on the registry it had.  After
/// [`RELOAD_BREAKER_THRESHOLD`] consecutive failures the breaker opens:
/// reload attempts short-circuit to `503` until the cooldown passes, then
/// one half-open attempt decides whether it closes again.
fn reload(state: &State) -> Response {
    let mut breaker = state.reload.lock().expect("reload lock");
    if let Some(until) = breaker.open_until {
        let now = Instant::now();
        if now < until {
            let secs = (until - now).as_secs().max(1);
            return error_response(
                503,
                "reload_circuit_open",
                "reload breaker is open after repeated failures",
                Some(secs),
            );
        }
        // Cooldown over: half-open — this attempt decides.
        breaker.open_until = None;
    }
    let fail = |breaker: &mut ReloadBreaker| {
        breaker.consecutive_failures += 1;
        if breaker.consecutive_failures >= RELOAD_BREAKER_THRESHOLD {
            breaker.open_until = Some(Instant::now() + RELOAD_BREAKER_COOLDOWN);
        }
    };
    match state.provider.provide() {
        Ok(fresh) => {
            let fresh = Arc::new(fresh);
            let names: Vec<Json> = fresh
                .names()
                .into_iter()
                .map(|n| Json::String(n.to_owned()))
                .collect();
            {
                let mut slot = state.registry.write().expect("registry lock");
                let last_good = Arc::clone(&slot);
                *slot = fresh;
                // Chaos point: a failure after the swap started must not
                // leave the new (suspect) registry serving — roll back.
                if faults::check(FAULT_RELOAD_SWAP).is_some() {
                    *slot = last_good;
                    drop(slot);
                    state.metrics.record_reload_rollback();
                    fail(&mut breaker);
                    return error_response(
                        500,
                        "reload_failed",
                        "swap failed mid-reload; rolled back to last-good registry",
                        None,
                    );
                }
            }
            breaker.consecutive_failures = 0;
            state.metrics.record_reload();
            Response::json(
                200,
                "OK",
                &obj(vec![
                    ("reloaded", Json::Bool(true)),
                    ("models", Json::Array(names)),
                ]),
            )
        }
        Err(e) => {
            fail(&mut breaker);
            error_response(500, "reload_failed", &e, None)
        }
    }
}

fn predict(req: &Request, state: &State) -> Response {
    let started = Instant::now();
    let deadline = state.deadline.map(|d| started + d);
    let registry = state.registry();
    let parsed = api::parse_predict(&req.body, |name| {
        registry.get(name).map(|e| e.world.clone())
    });
    let request = match parsed {
        Ok(r) => r,
        Err(e) => return api_error(e),
    };
    let entry = registry
        .index_of(&request.model)
        .expect("parse_predict validated the model name");
    // Admission-time deadline check: a request that is already out of
    // budget (pathological configs, clock going backwards) never queues.
    if deadline.is_some_and(|d| Instant::now() >= d) {
        state.metrics.record_deadline_exceeded();
        return deadline_exceeded_response();
    }
    match state
        .scheduler
        .submit(Arc::clone(&registry), entry, request, deadline)
    {
        Ok(rx) => match rx.recv() {
            Ok(Ok(body)) => {
                state
                    .metrics
                    .record_predict(started.elapsed().as_secs_f64());
                Response {
                    status: 200,
                    reason: "OK",
                    headers: Vec::new(),
                    content_type: "application/json",
                    body: body.into_bytes(),
                }
            }
            Ok(Err(JobError::DeadlineExceeded)) => deadline_exceeded_response(),
            // The panic was isolated to this job; everything else in the
            // batch (and the pool) carried on.
            Ok(Err(JobError::Panicked(msg))) => error_response(500, "worker_panicked", &msg, None),
            // The KV page slab is too small for the offered load; the
            // request was preempted past its retry budget.
            Ok(Err(JobError::ResourcesExhausted)) => error_response(
                503,
                "kv_exhausted",
                "kv page slab exhausted; retry later or raise --kv-pages",
                Some(1),
            ),
            // The scheduler is gone mid-flight — only on unclean teardown.
            Err(_) => error_response(500, "internal", "scheduler stopped", None),
        },
        Err(SubmitError::QueueFull) => {
            error_response(429, "queue_full", "admission queue is full", Some(1))
        }
        Err(SubmitError::Draining) => error_response(503, "draining", "server is draining", None),
    }
}

fn deadline_exceeded_response() -> Response {
    error_response(
        503,
        "deadline_exceeded",
        "request missed its deadline",
        Some(1),
    )
}

/// FNV-1a over a request body — the explain cache key.  Responses are
/// pure functions of the body, so byte-equal bodies share one entry.
fn body_fingerprint(body: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in body {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn explain(req: &Request, state: &State) -> Response {
    let started = Instant::now();
    let registry = state.registry();
    let parsed = api::parse_explain(&req.body, |name| {
        registry.get(name).map(|e| e.world.clone())
    });
    let request = match parsed {
        Ok(r) => r,
        Err(e) => return api_error(e),
    };
    let fingerprint = body_fingerprint(&req.body);
    // Load shedding: explain is the expensive, non-interactive route, so
    // under pressure it degrades — answer from the response cache if this
    // exact body was computed before, else shed with `429` — while predict
    // keeps its full capacity.  The slot is released by drop so even a
    // panicking compute can't leak it and wedge the route shut.
    struct Slot<'a>(&'a AtomicUsize);
    impl Drop for Slot<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::AcqRel);
        }
    }
    let admitted = state.explain_inflight.fetch_add(1, Ordering::AcqRel);
    let _slot = Slot(&state.explain_inflight);
    if admitted >= state.max_inflight_explain {
        let cached = state
            .explain_cache
            .lock()
            .expect("explain cache lock")
            .iter()
            .find(|(k, _)| *k == fingerprint)
            .map(|(_, body)| body.clone());
        return match cached {
            // Cached bodies are the same pure function of the request, so
            // the degraded path stays byte-identical to the full path.
            Some(body) => {
                state
                    .metrics
                    .record_explain(started.elapsed().as_secs_f64());
                Response {
                    status: 200,
                    reason: "OK",
                    headers: Vec::new(),
                    content_type: "application/json",
                    body: body.into_bytes(),
                }
            }
            None => {
                state.metrics.record_shed();
                error_response(
                    429,
                    "explain_shed",
                    "explain is degraded under load; retry shortly",
                    Some(1),
                )
            }
        };
    }
    let entry = registry
        .get(&request.predict.model)
        .expect("parse_explain validated the model name");
    // Explain runs on the handler thread: its inner mask sweep is already
    // a large deterministic computation, not worth cross-request batching.
    let body = api::explain_response(entry, &request).to_text();
    {
        let mut cache = state.explain_cache.lock().expect("explain cache lock");
        if !cache.iter().any(|(k, _)| *k == fingerprint) {
            if cache.len() >= EXPLAIN_CACHE_CAP {
                cache.pop_front();
            }
            cache.push_back((fingerprint, body.clone()));
        }
    }
    state
        .metrics
        .record_explain(started.elapsed().as_secs_f64());
    Response {
        status: 200,
        reason: "OK",
        headers: Vec::new(),
        content_type: "application/json",
        body: body.into_bytes(),
    }
}

fn api_error(e: api::ApiError) -> Response {
    Response::json(e.status, reason(e.status), &e.body())
}
