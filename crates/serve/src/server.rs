//! The TCP server: accept loop, request routing, hot-swap, graceful drain.
//!
//! Thread-per-connection with keep-alive.  The accept loop runs
//! non-blocking with a short poll so a shutdown flag can stop it without
//! platform-specific tricks; connection handlers use read timeouts for the
//! same reason — an idle keep-alive peer never pins a handler past drain.
//!
//! The registry is held behind an `RwLock<Arc<Registry>>`: every request
//! clones the current `Arc` once up front, and batched jobs pin that
//! snapshot, so `POST /admin/reload` swaps registries without touching
//! in-flight work — admitted requests drain on the old registry, new
//! requests see the new one.
//!
//! Every non-2xx response, including HTTP parse failures, carries the one
//! machine-readable body `{"error":{"code","message","retry_after"?}}`.
//!
//! Graceful drain order (see [`Server::shutdown`]): flip the shutdown
//! flag, drain the scheduler (everything already admitted completes; new
//! submissions answer `503`), join the accept thread, join the handlers.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::api;
use crate::batch::{BatchConfig, Scheduler, SubmitError};
use crate::http::{parse_request, HttpError, Request, Response};
use crate::json::{obj, Json};
use crate::metrics::Metrics;
use crate::registry::{ModelProvider, Registry};

/// How long the accept loop sleeps between polls.
const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// Read timeout on connection sockets — the cadence at which idle
/// keep-alive handlers re-check the shutdown flag.
const READ_TIMEOUT: Duration = Duration::from_millis(100);

/// Server construction options.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address ("127.0.0.1:0" picks an ephemeral port).
    pub addr: String,
    /// Micro-batching knobs.
    pub batch: BatchConfig,
    /// Worker threads for batch dispatch (0 = all cores / `SRCR_THREADS`).
    pub threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            batch: BatchConfig::default(),
            threads: 0,
        }
    }
}

/// Everything a connection handler needs.
struct State {
    /// The live registry snapshot; swapped whole on reload.
    registry: RwLock<Arc<Registry>>,
    /// Builds registries — the boot source, re-invoked by `/admin/reload`.
    provider: Arc<dyn ModelProvider>,
    scheduler: Scheduler,
    metrics: Arc<Metrics>,
    /// Serialises reloads so concurrent `/admin/reload`s can't interleave.
    reload: Mutex<()>,
    /// Set once drain starts; handlers and the accept loop wind down.
    shutdown: AtomicBool,
    /// Set by `POST /admin/shutdown`; the serve binary polls it.
    shutdown_requested: AtomicBool,
}

impl State {
    /// The current registry snapshot (one `Arc` clone).
    fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry.read().expect("registry lock"))
    }
}

/// A running server.
pub struct Server {
    addr: SocketAddr,
    state: Arc<State>,
    accept: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Build the initial registry through `provider`, bind, and serve.
    /// The provider is retained for `POST /admin/reload`.
    pub fn start<P: ModelProvider + 'static>(
        provider: P,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        Self::start_dyn(Arc::new(provider), cfg)
    }

    /// [`start`](Self::start) with an already-erased provider.
    pub fn start_dyn(
        provider: Arc<dyn ModelProvider>,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let registry = provider
            .provide()
            .map(Arc::new)
            .map_err(std::io::Error::other)?;
        let listener = TcpListener::bind(
            cfg.addr
                .to_socket_addrs()?
                .next()
                .ok_or_else(|| std::io::Error::other("unresolvable bind address"))?,
        )?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let metrics = Arc::new(Metrics::new());
        let pool = Arc::new(runtime::Pool::new(cfg.threads));
        let scheduler = Scheduler::start(pool, Arc::clone(&metrics), cfg.batch);
        let state = Arc::new(State {
            registry: RwLock::new(registry),
            provider,
            scheduler,
            metrics,
            reload: Mutex::new(()),
            shutdown: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
        });
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept = {
            let state = Arc::clone(&state);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(&listener, &state, &handlers))
                .expect("spawn accept loop")
        };

        Ok(Server {
            addr,
            state,
            accept: Some(accept),
            handlers,
        })
    }

    /// The bound address (with the concrete ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared metrics (for tests and the binary's exit summary).
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.state.metrics)
    }

    /// Names of the currently served models.
    pub fn model_names(&self) -> Vec<String> {
        self.state
            .registry()
            .names()
            .into_iter()
            .map(str::to_owned)
            .collect()
    }

    /// Whether a client asked the server to stop via `POST /admin/shutdown`.
    pub fn shutdown_requested(&self) -> bool {
        self.state.shutdown_requested.load(Ordering::Acquire)
    }

    /// Graceful drain: stop accepting, finish all admitted work, join every
    /// thread.  Idempotent.
    pub fn shutdown(&mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        self.state.scheduler.drain();
        if let Some(h) = self.accept.take() {
            h.join().expect("accept loop panicked");
        }
        let drained: Vec<_> = self
            .handlers
            .lock()
            .expect("handler registry")
            .drain(..)
            .collect();
        for h in drained {
            h.join().expect("connection handler panicked");
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<State>, handlers: &Mutex<Vec<JoinHandle<()>>>) {
    while !state.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let state = Arc::clone(state);
                let handle = std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || handle_connection(stream, &state))
                    .expect("spawn connection handler");
                handlers.lock().expect("handler registry").push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Standard reason phrase for the statuses this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Error",
    }
}

/// Build a non-2xx response carrying the unified error schema.
fn error_response(status: u16, code: &str, message: &str, retry_after: Option<u64>) -> Response {
    let resp = Response::json(
        status,
        reason(status),
        &api::error_body(code, message, retry_after),
    );
    match retry_after {
        Some(secs) => resp.with_header("Retry-After", secs.to_string()),
        None => resp,
    }
}

fn handle_connection(stream: TcpStream, state: &State) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match parse_request(&mut reader) {
            Ok(Some(req)) => {
                let keep_alive = req.keep_alive() && !state.shutdown.load(Ordering::Acquire);
                let resp = route(&req, state);
                state.metrics.record_status(resp.status);
                if resp.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            // Clean end of a keep-alive session.
            Ok(None) => return,
            Err(HttpError::Idle) => {
                if state.shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(e) => {
                if let Some((status, reason)) = e.status() {
                    let code = match status {
                        411 => "length_required",
                        413 => "payload_too_large",
                        431 => "headers_too_large",
                        _ => "bad_request",
                    };
                    let resp = error_response(status, code, reason, None);
                    state.metrics.record_status(status);
                    let _ = resp.write_to(&mut writer, false);
                }
                // Malformed, truncated or dead peer: drop the connection.
                return;
            }
        }
    }
}

fn route(req: &Request, state: &State) -> Response {
    const ROUTES: &[&str] = &[
        "/healthz",
        "/readyz",
        "/metrics",
        "/v1/models",
        "/v1/predict",
        "/v1/explain",
        "/admin/reload",
        "/admin/shutdown",
    ];
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "OK", "ok\n"),
        ("GET", "/readyz") => readyz(state),
        ("GET", "/metrics") => Response::text(200, "OK", state.metrics.render()),
        ("GET", "/v1/models") => models(state),
        ("POST", "/v1/predict") => predict(req, state),
        ("POST", "/v1/explain") => explain(req, state),
        ("POST", "/admin/reload") => reload(state),
        ("POST", "/admin/shutdown") => {
            state.shutdown_requested.store(true, Ordering::Release);
            Response::json(200, "OK", &obj(vec![("draining", Json::Bool(true))]))
        }
        (_, path) if ROUTES.contains(&path) => {
            error_response(405, "method_not_allowed", "method not allowed", None)
        }
        _ => error_response(404, "not_found", "no such route", None),
    }
}

fn readyz(state: &State) -> Response {
    if state.shutdown.load(Ordering::Acquire) {
        return error_response(503, "draining", "server is draining", None);
    }
    let registry = state.registry();
    let models = registry
        .names()
        .into_iter()
        .map(|n| Json::String(n.to_owned()))
        .collect();
    Response::json(
        200,
        "OK",
        &obj(vec![
            ("ready", Json::Bool(true)),
            ("queue_depth", Json::Number(state.scheduler.depth() as f64)),
            ("models", Json::Array(models)),
        ]),
    )
}

/// `GET /v1/models`: every served model with its provenance.
fn models(state: &State) -> Response {
    let registry = state.registry();
    let entries = registry
        .entries()
        .iter()
        .map(|e| {
            obj(vec![
                ("name", Json::String(e.name.clone())),
                ("version", Json::Number(e.version as f64)),
                (
                    "content_hash",
                    Json::String(format!("{:08x}", e.content_hash)),
                ),
                ("source", Json::String(e.source.clone())),
            ])
        })
        .collect();
    Response::json(200, "OK", &obj(vec![("models", Json::Array(entries))]))
}

/// `POST /admin/reload`: build a fresh registry through the boot provider
/// and swap it in.  In-flight requests finish on the snapshot they pinned;
/// a failed provide leaves the current registry untouched.
fn reload(state: &State) -> Response {
    let _serialised = state.reload.lock().expect("reload lock");
    match state.provider.provide() {
        Ok(fresh) => {
            let fresh = Arc::new(fresh);
            let names: Vec<Json> = fresh
                .names()
                .into_iter()
                .map(|n| Json::String(n.to_owned()))
                .collect();
            *state.registry.write().expect("registry lock") = fresh;
            state.metrics.record_reload();
            Response::json(
                200,
                "OK",
                &obj(vec![
                    ("reloaded", Json::Bool(true)),
                    ("models", Json::Array(names)),
                ]),
            )
        }
        Err(e) => error_response(500, "reload_failed", &e, None),
    }
}

fn predict(req: &Request, state: &State) -> Response {
    let started = Instant::now();
    let registry = state.registry();
    let parsed = api::parse_predict(&req.body, |name| {
        registry.get(name).map(|e| e.world.clone())
    });
    let request = match parsed {
        Ok(r) => r,
        Err(e) => return api_error(e),
    };
    let entry = registry
        .index_of(&request.model)
        .expect("parse_predict validated the model name");
    match state
        .scheduler
        .submit(Arc::clone(&registry), entry, request)
    {
        Ok(rx) => match rx.recv() {
            Ok(body) => {
                state
                    .metrics
                    .record_predict(started.elapsed().as_secs_f64());
                Response {
                    status: 200,
                    reason: "OK",
                    headers: Vec::new(),
                    content_type: "application/json",
                    body: body.into_bytes(),
                }
            }
            // The batcher is gone mid-flight — only on unclean teardown.
            Err(_) => error_response(500, "internal", "scheduler stopped", None),
        },
        Err(SubmitError::QueueFull) => {
            error_response(429, "queue_full", "admission queue is full", Some(1))
        }
        Err(SubmitError::Draining) => error_response(503, "draining", "server is draining", None),
    }
}

fn explain(req: &Request, state: &State) -> Response {
    let started = Instant::now();
    let registry = state.registry();
    let parsed = api::parse_explain(&req.body, |name| {
        registry.get(name).map(|e| e.world.clone())
    });
    let request = match parsed {
        Ok(r) => r,
        Err(e) => return api_error(e),
    };
    let entry = registry
        .get(&request.predict.model)
        .expect("parse_explain validated the model name");
    // Explain runs on the handler thread: its inner mask sweep is already
    // a large deterministic computation, not worth cross-request batching.
    let body = api::explain_response(entry, &request);
    state
        .metrics
        .record_explain(started.elapsed().as_secs_f64());
    Response::json(200, "OK", &body)
}

fn api_error(e: api::ApiError) -> Response {
    Response::json(e.status, reason(e.status), &e.body())
}
