//! Continuous-batching scheduler with paged KV and cross-request prefix
//! sharing — the serving core.
//!
//! Requests admitted through a bounded queue become [`ChainStepper`]s that
//! the scheduler advances one token at a time, in rounds.  Under the
//! default [`SchedPolicy::Continuous`] a request joins the running batch
//! at the next token boundary after admission and leaves the moment it
//! finishes — short requests are never stuck behind a long co-tenant the
//! way they are under the classic window batcher (kept as
//! [`SchedPolicy::Window`] for comparison benches).
//!
//! Each served model gets one [`PageSlab`] (fixed-size KV pages with a
//! free list) and one [`PrefixCache`] (a radix tree over context items).
//! Sessions allocate KV pages from the shared slab and publish their
//! prefills into the tree, so N concurrent requests with the same prompt
//! preamble prefill it **once**: the first request embeds it, everyone
//! else adopts the published pages by reference (copy-on-write at the
//! divergence page).  Priming steps — the ones that prefill a prompt — run
//! sequentially so a shared prefix is published before identical
//! co-tenants would re-embed it; pure decode steps run in parallel through
//! the deterministic [`runtime::Pool`].
//!
//! Determinism contract: a response is a pure function of
//! `(model, request)`.  Adoption is bit-exact, `par_map` preserves order,
//! and every session decodes on its own pages — so co-tenants, scheduling
//! order, page size and worker count can change *latency* but never
//! *bytes*.
//!
//! Failure model: a step that exhausts the page slab preempts the request
//! — its pages are freed, the model's prefix cache is cleared, and the
//! request restarts from scratch (determinism makes the replay identical).
//! After [`MAX_PREEMPTIONS`] restarts it fails typed
//! ([`JobError::ResourcesExhausted`], `503` upstream).  Worker panics are
//! isolated per request via the pool's unwind isolation; the armed
//! `sched.step` chaos point preempts the newest running request to prove
//! restarts stay byte-identical.  Draining finishes everything admitted,
//! then releases every cached prefix — the slab leaks nothing.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use chain_reason::{ChainStepper, StepOutcome};
use lfm::infer::DEFAULT_PAGE_ROWS;
use lfm::{InferSession, PageSlab, PrefixCache};

use crate::api::{predict_body, PredictRequest};
use crate::metrics::Metrics;
use crate::registry::Registry;

/// Fault-injection point consulted once per request, at its first step —
/// any armed kind panics inside the worker closure, exercising the pool's
/// unwind isolation end-to-end.
pub const FAULT_WORKER_EXEC: &str = "worker.exec";

/// Fault-injection point consulted once per scheduler round — any armed
/// kind preempts the newest running request, which restarts from scratch
/// and (by determinism) still answers byte-identically.
pub const FAULT_SCHED_STEP: &str = "sched.step";

/// Preemptions a request may survive before failing typed (503).
const MAX_PREEMPTIONS: u32 = 3;

/// Cross-request prefix-tree capacity per served model (LRU beyond it).
const PREFIX_CACHE_CAP: usize = 64;

/// Straggler window the [`SchedPolicy::Window`] batcher waits after the
/// first arrival before dispatching a partial batch.
const WINDOW: Duration = Duration::from_millis(2);

/// When a request joins the running batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Join at the next token boundary; leave on finish (the default).
    Continuous,
    /// Classic micro-batching: a batch is admitted only when the previous
    /// one fully drained, so the longest request gates everyone.
    Window,
}

/// Scheduler tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct SchedConfig {
    /// Admission-queue capacity; submissions beyond this are rejected.
    pub queue_cap: usize,
    /// Most requests stepped concurrently.
    pub max_running: usize,
    /// KV page-slab bound per served model, in pages (0 = unbounded).
    pub kv_pages: usize,
    /// Rows per KV page.
    pub page_rows: usize,
    /// Admission policy.
    pub policy: SchedPolicy,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            queue_cap: 64,
            max_running: 8,
            kv_pages: 0,
            page_rows: DEFAULT_PAGE_ROWS,
            policy: SchedPolicy::Continuous,
        }
    }
}

/// Why a submission was not admitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is at capacity — retry later (429).
    QueueFull,
    /// The server is draining — no new work (503).
    Draining,
}

/// Why an *admitted* job produced no response body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobError {
    /// The job's deadline passed before the chain finished (503).
    DeadlineExceeded,
    /// The job panicked; the panic was caught and isolated to this one
    /// request (500) — the rest of the batch and the pool are unharmed.
    Panicked(String),
    /// The job was preempted for KV-page exhaustion too many times — the
    /// slab is too small for the offered load (503, retry later).
    ResourcesExhausted,
}

/// One admitted predict job.
///
/// Pins the registry snapshot it was admitted against, so a hot-swap via
/// `/admin/reload` never changes which model an in-flight request runs on:
/// admitted work drains on the old registry, new requests see the new one.
struct Job {
    /// The registry snapshot this job resolves its model in.
    registry: Arc<Registry>,
    /// Registry index of the target model.
    entry: usize,
    request: PredictRequest,
    /// When this job's response stops being worth computing.  Checked at
    /// the first step and at every priming (stage-boundary) step.
    deadline: Option<Instant>,
    /// Where the finished response body (or its failure) goes.
    done: mpsc::Sender<Result<String, JobError>>,
}

/// Per-model shared inference state: the KV page slab every session in
/// the model allocates from, and the radix tree their prefills publish to.
struct ModelShare {
    slab: Arc<PageSlab>,
    tree: Arc<PrefixCache>,
}

/// Models are shared by `(name, content_hash)` so a hot-swapped registry
/// with identical weights keeps its warm prefix cache, while new weights
/// get a fresh one.
type ShareKey = (String, u32);

/// One request in the running batch.
struct Running {
    job: Job,
    /// The stepper, under a mutex so one `try_par_map` call over
    /// `&[&Running]` can step many requests.  `None` before the first step
    /// and after a preemption; the next step (re)builds it.
    stepper: Mutex<Option<ChainStepper>>,
    share_key: ShareKey,
    /// Times this request was preempted and restarted.
    preemptions: u32,
    /// The `worker.exec` chaos point fires at most once per request.
    exec_checked: AtomicBool,
    /// Seconds spent stepping this request so far (decode-rate stat).
    busy: f64,
}

/// What one step did to a request (closure result; panics surface as the
/// pool's `Err`).
enum Stepped {
    /// Token or stage boundary; seconds this step took.
    Progress(f64),
    /// Chain complete: the serialized body plus its decode/prefill stats.
    Finished {
        body: String,
        tokens: u64,
        prefill: u64,
        prefix_hit: u64,
        seconds: f64,
    },
    /// The deadline passed before this step started.
    Deadline,
    /// The page slab ran dry mid-step; the session rolled back.
    Exhausted,
}

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    /// Signalled on enqueue and on drain.
    arrived: Condvar,
    draining: AtomicBool,
    cfg: SchedConfig,
    metrics: Arc<Metrics>,
}

/// Handle for submitting predict jobs; clone-cheap via `Arc` internally.
pub struct Scheduler {
    shared: Arc<Shared>,
    runner: Mutex<Option<JoinHandle<()>>>,
}

impl Scheduler {
    /// Start the scheduler thread.  Jobs carry their own registry
    /// snapshot, so the scheduler itself is registry-agnostic.
    pub fn start(pool: Arc<runtime::Pool>, metrics: Arc<Metrics>, cfg: SchedConfig) -> Self {
        assert!(cfg.queue_cap > 0 && cfg.max_running > 0 && cfg.page_rows > 0);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            arrived: Condvar::new(),
            draining: AtomicBool::new(false),
            cfg,
            metrics,
        });
        let runner = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-sched".into())
                .spawn(move || sched_loop(&shared, &pool))
                .expect("spawn scheduler")
        };
        Scheduler {
            shared,
            runner: Mutex::new(Some(runner)),
        }
    }

    /// Admit a predict job against a registry snapshot; the returned
    /// channel yields the response body or the reason it never existed.
    pub fn submit(
        &self,
        registry: Arc<Registry>,
        entry: usize,
        request: PredictRequest,
        deadline: Option<Instant>,
    ) -> Result<mpsc::Receiver<Result<String, JobError>>, SubmitError> {
        if self.shared.draining.load(Ordering::Acquire) {
            return Err(SubmitError::Draining);
        }
        let (done, rx) = mpsc::channel();
        {
            let mut queue = self.shared.queue.lock().expect("scheduler lock");
            if queue.len() >= self.shared.cfg.queue_cap {
                self.shared
                    .metrics
                    .queue_rejected
                    .fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::QueueFull);
            }
            queue.push_back(Job {
                registry,
                entry,
                request,
                deadline,
                done,
            });
            self.shared
                .metrics
                .queue_depth
                .store(queue.len(), Ordering::Relaxed);
        }
        self.shared.arrived.notify_all();
        Ok(rx)
    }

    /// Current queue length (for `/readyz` and tests).
    pub fn depth(&self) -> usize {
        self.shared.queue.lock().expect("scheduler lock").len()
    }

    /// Stop admitting work, finish everything already admitted, release
    /// every cached prefix, and join the scheduler.  Idempotent.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::Release);
        self.shared.arrived.notify_all();
        if let Some(h) = self.runner.lock().expect("runner lock").take() {
            h.join().expect("scheduler panicked");
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.drain();
    }
}

/// Admit queued jobs into `running` per the configured policy.  Blocks on
/// the arrival condvar only when there is nothing to do at all.  Returns
/// `false` when draining with nothing left — the loop's exit signal.
fn admit(
    shared: &Shared,
    running: &mut Vec<Running>,
    shares: &mut HashMap<ShareKey, ModelShare>,
) -> bool {
    let cap = shared.cfg.max_running;
    let mut admitted: Vec<Job> = Vec::new();
    {
        let mut queue = shared.queue.lock().expect("scheduler lock");
        while running.is_empty() && queue.is_empty() {
            if shared.draining.load(Ordering::Acquire) {
                return false;
            }
            queue = shared.arrived.wait(queue).expect("scheduler lock");
        }
        match shared.cfg.policy {
            SchedPolicy::Continuous => {
                while running.len() + admitted.len() < cap {
                    match queue.pop_front() {
                        Some(job) => admitted.push(job),
                        None => break,
                    }
                }
            }
            SchedPolicy::Window => {
                if running.is_empty() {
                    // Give stragglers the window to fill the batch, like
                    // the classic batcher did.
                    let until = Instant::now() + WINDOW;
                    while queue.len() < cap && !shared.draining.load(Ordering::Acquire) {
                        let now = Instant::now();
                        if now >= until {
                            break;
                        }
                        let (q, timeout) = shared
                            .arrived
                            .wait_timeout(queue, until - now)
                            .expect("scheduler lock");
                        queue = q;
                        if timeout.timed_out() {
                            break;
                        }
                    }
                    while admitted.len() < cap {
                        match queue.pop_front() {
                            Some(job) => admitted.push(job),
                            None => break,
                        }
                    }
                }
            }
        }
        shared
            .metrics
            .queue_depth
            .store(queue.len(), Ordering::Relaxed);
    }
    for job in admitted {
        let entry = job.registry.entry(job.entry);
        let key = (entry.name.clone(), entry.content_hash);
        let d = entry.pipeline.model.cfg.d_model;
        shares.entry(key.clone()).or_insert_with(|| ModelShare {
            slab: PageSlab::new(d, shared.cfg.page_rows, shared.cfg.kv_pages),
            tree: PrefixCache::new(PREFIX_CACHE_CAP),
        });
        running.push(Running {
            job,
            stepper: Mutex::new(None),
            share_key: key,
            preemptions: 0,
            exec_checked: AtomicBool::new(false),
            busy: 0.0,
        });
    }
    true
}

/// Step one request: build its stepper if needed (deadline- and
/// chaos-checked), then advance the chain by one unit.
fn step_once(r: &Running, shares: &HashMap<ShareKey, ModelShare>) -> Stepped {
    let entry = r.job.registry.entry(r.job.entry);
    let mut guard = r.stepper.lock().expect("stepper lock");
    if guard.is_none() {
        // First step, or a restart after preemption.
        if r.job.deadline.is_some_and(|d| Instant::now() >= d) {
            return Stepped::Deadline;
        }
        if !r.exec_checked.swap(true, Ordering::Relaxed) {
            // Chaos hook: an armed `worker.exec` fault panics inside the
            // worker closure, whatever its kind — exactly the failure the
            // pool's unwind isolation must contain.
            if let Some(kind) = runtime::faults::check(FAULT_WORKER_EXEC) {
                panic!("injected {} fault at {FAULT_WORKER_EXEC}", kind.name());
            }
        }
        let share = &shares[&r.share_key];
        let session = InferSession::with_parts(
            &entry.pipeline.model,
            tinynn::kernels::kernel_tier(),
            Arc::clone(&share.slab),
            Some(Arc::clone(&share.tree)),
        );
        *guard = Some(ChainStepper::new(
            &entry.pipeline,
            session,
            r.job.request.video.clone(),
            runtime::stream_seed(r.job.request.seed, 0),
            r.job.request.repeats.max(1),
        ));
    } else if guard.as_ref().expect("just checked").will_prime()
        && r.job.deadline.is_some_and(|d| Instant::now() >= d)
    {
        // Stage boundary: the same abort points the monolithic path had.
        return Stepped::Deadline;
    }
    let stepper = guard.as_mut().expect("stepper present");
    let started = Instant::now();
    match stepper.step(&entry.pipeline) {
        Err(_) => Stepped::Exhausted,
        Ok(StepOutcome::Finished) => {
            let (output, score) = stepper.finish();
            let body = predict_body(entry, &r.job.request, &output, score).to_text();
            let s = stepper.session();
            Stepped::Finished {
                body,
                tokens: s.decoded_tokens(),
                prefill: s.prefill_positions(),
                prefix_hit: s.prefix_hit_tokens(),
                seconds: started.elapsed().as_secs_f64(),
            }
        }
        Ok(_) => Stepped::Progress(started.elapsed().as_secs_f64()),
    }
}

fn sched_loop(shared: &Shared, pool: &runtime::Pool) {
    let mut running: Vec<Running> = Vec::new();
    let mut shares: HashMap<ShareKey, ModelShare> = HashMap::new();
    loop {
        if !admit(shared, &mut running, &mut shares) {
            break;
        }
        if running.is_empty() {
            // Window policy declined to admit mid-batch; loop to re-check.
            continue;
        }

        // Chaos hook: an armed `sched.step` fault preempts the newest
        // running request (any kind — the scheduler itself must survive).
        // The restart replays deterministically, so the response bytes
        // stand; only latency is lost.
        if runtime::faults::check(FAULT_SCHED_STEP).is_some() {
            let victim = running.last_mut().expect("running is non-empty");
            *victim.stepper.lock().expect("stepper lock") = None;
            shared.metrics.record_preemption();
        }

        shared.metrics.record_round(running.len());

        // Phase A — priming steps, sequentially: a step that prefills a
        // prompt publishes its prefix before the next co-tenant looks it
        // up, which is what makes "shared preamble prefilled once" hold.
        // Each runs through the pool for per-request unwind isolation.
        let mut results: Vec<Option<Result<Stepped, String>>> = Vec::new();
        results.resize_with(running.len(), || None);
        for i in 0..running.len() {
            let primes = {
                let g = running[i].stepper.lock().expect("stepper lock");
                g.as_ref().is_none_or(ChainStepper::will_prime)
            };
            if primes {
                let out = pool.try_par_map(&running[i..i + 1], |_, r| step_once(r, &shares));
                results[i] = Some(
                    out.into_iter()
                        .next()
                        .expect("one item in, one out")
                        .map_err(|p| p.message),
                );
            }
        }

        // Phase B — pure decode steps, in parallel.  `par_map` preserves
        // order and every session decodes on its own pages, so worker
        // count never changes bytes.
        let decode_idx: Vec<usize> = (0..running.len())
            .filter(|&i| results[i].is_none())
            .collect();
        if !decode_idx.is_empty() {
            let items: Vec<&Running> = decode_idx.iter().map(|&i| &running[i]).collect();
            let outs = pool.try_par_map(&items, |_, r| step_once(r, &shares));
            for (&i, out) in decode_idx.iter().zip(outs) {
                results[i] = Some(out.map_err(|p| p.message));
            }
        }

        // Settle the round: requests leave the batch the moment they
        // finish (or fail); everyone else stays for the next token.
        let mut still = Vec::with_capacity(running.len());
        for (mut r, res) in running.drain(..).zip(results) {
            match res.expect("every running request was stepped") {
                Ok(Stepped::Progress(seconds)) => {
                    r.busy += seconds;
                    still.push(r);
                }
                Ok(Stepped::Finished {
                    body,
                    tokens,
                    prefill,
                    prefix_hit,
                    seconds,
                }) => {
                    shared.metrics.record_decode(tokens, r.busy + seconds);
                    shared.metrics.record_prefill(prefix_hit, prefill);
                    // A gone receiver means the client hung up.
                    let _ = r.job.done.send(Ok(body));
                }
                Ok(Stepped::Deadline) => {
                    shared.metrics.record_deadline_exceeded();
                    let _ = r.job.done.send(Err(JobError::DeadlineExceeded));
                }
                Ok(Stepped::Exhausted) => {
                    // Free this model's cached snapshots so the retry (and
                    // every co-tenant) sees the reclaimed pages, drop the
                    // stepper (freeing its own pages), and restart from
                    // scratch — the replay is byte-identical.
                    if let Some(share) = shares.get(&r.share_key) {
                        share.tree.clear();
                    }
                    *r.stepper.get_mut().expect("stepper lock") = None;
                    r.preemptions += 1;
                    shared.metrics.record_preemption();
                    if r.preemptions > MAX_PREEMPTIONS {
                        let _ = r.job.done.send(Err(JobError::ResourcesExhausted));
                    } else {
                        still.push(r);
                    }
                }
                Err(message) => {
                    shared.metrics.record_worker_panic();
                    let _ = r.job.done.send(Err(JobError::Panicked(message)));
                }
            }
        }
        running = still;
        publish_kv_gauges(shared, &shares);
    }
    // Drain epilogue: everything admitted has answered; release every
    // cached prefix so the slabs end empty — the leak check tests assert
    // `serve_kv_pages_in_use` is 0 here.
    for share in shares.values() {
        share.tree.clear();
    }
    publish_kv_gauges(shared, &shares);
}

fn publish_kv_gauges(shared: &Shared, shares: &HashMap<ShareKey, ModelShare>) {
    let (in_use, total) = shares.values().fold((0, 0), |(u, t), s| {
        (u + s.slab.pages_in_use(), t + s.slab.pages_total())
    });
    shared.metrics.record_kv_pages(in_use, total);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::parse_predict;
    use videosynth::world::WorldConfig;

    fn request(seed: u64) -> PredictRequest {
        let body = format!(
            r#"{{"model":"uvsd_sim","seed":{seed},"input":{{"spec":{{"subject_seed":3,"condition":"stressed","num_frames":3}}}}}}"#
        );
        parse_predict(body.as_bytes(), |_| Some(WorldConfig::uvsd_like())).unwrap()
    }

    fn scheduler(cfg: SchedConfig) -> (Scheduler, Arc<Registry>, Arc<Metrics>) {
        let metrics = Arc::new(Metrics::new());
        let s = Scheduler::start(Arc::new(runtime::Pool::new(2)), Arc::clone(&metrics), cfg);
        (s, Arc::new(Registry::untrained(5)), metrics)
    }

    #[test]
    fn continuous_serves_all_jobs_with_identical_bodies_per_request() {
        let (s, r, metrics) = scheduler(SchedConfig::default());
        let receivers: Vec<_> = (0..6)
            .map(|_| s.submit(Arc::clone(&r), 0, request(42), None).unwrap())
            .collect();
        let bodies: Vec<String> = receivers
            .into_iter()
            .map(|rx| rx.recv().unwrap().unwrap())
            .collect();
        for b in &bodies {
            assert_eq!(b, &bodies[0], "same request must serialize identically");
        }
        s.drain();
        assert!(metrics.sched_rounds.load(Ordering::Relaxed) >= 1);
        // Each served job generated tokens on its KV-cached session.
        assert!(metrics.generated_tokens.load(Ordering::Relaxed) > 0);
        // Identical requests share one prefill through the prefix cache.
        assert!(metrics.prefix_hit_tokens.load(Ordering::Relaxed) > 0);
        // Drain released every cached page.
        assert_eq!(metrics.kv_pages_in_use.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn window_policy_serves_the_same_bytes() {
        let (c, r, _) = scheduler(SchedConfig::default());
        let want = c
            .submit(Arc::clone(&r), 0, request(7), None)
            .unwrap()
            .recv()
            .unwrap()
            .unwrap();
        let (w, r2, _) = scheduler(SchedConfig {
            policy: SchedPolicy::Window,
            ..SchedConfig::default()
        });
        let got = w
            .submit(r2, 0, request(7), None)
            .unwrap()
            .recv()
            .unwrap()
            .unwrap();
        assert_eq!(got, want, "policy must never change bytes");
    }

    #[test]
    fn full_queue_rejects_and_counts() {
        let (s, r, metrics) = scheduler(SchedConfig {
            queue_cap: 2,
            max_running: 1,
            ..SchedConfig::default()
        });
        // Saturate: the scheduler takes jobs off the queue quickly, so keep
        // pushing until a rejection is observed (bounded attempts).
        let mut rejected = false;
        let mut pending = Vec::new();
        for _ in 0..200 {
            match s.submit(Arc::clone(&r), 0, request(1), None) {
                Ok(rx) => pending.push(rx),
                Err(SubmitError::QueueFull) => {
                    rejected = true;
                    break;
                }
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(rejected, "a capacity-2 queue must eventually reject");
        assert!(metrics.queue_rejected.load(Ordering::Relaxed) >= 1);
        s.drain();
        // Every admitted job still completes.
        for rx in pending {
            rx.recv().unwrap().unwrap();
        }
    }

    #[test]
    fn drain_rejects_new_work_and_is_idempotent() {
        let (s, r, _) = scheduler(SchedConfig::default());
        s.drain();
        assert_eq!(
            s.submit(r, 0, request(1), None).unwrap_err(),
            SubmitError::Draining
        );
        s.drain();
        assert_eq!(s.depth(), 0);
    }

    #[test]
    fn expired_deadline_fails_without_running_the_chain() {
        let (s, r, metrics) = scheduler(SchedConfig::default());
        let rx = s
            .submit(Arc::clone(&r), 0, request(1), Some(Instant::now()))
            .unwrap();
        assert_eq!(rx.recv().unwrap(), Err(JobError::DeadlineExceeded));
        // A generous deadline still completes normally.
        let rx = s
            .submit(
                r,
                0,
                request(1),
                Some(Instant::now() + Duration::from_secs(300)),
            )
            .unwrap();
        assert!(rx.recv().unwrap().is_ok());
        s.drain();
        assert_eq!(metrics.deadline_exceeded.load(Ordering::Relaxed), 1);
        // No decode stats were recorded for the dead job alone.
        assert!(metrics.generated_tokens.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn starved_slab_fails_typed_and_leaks_nothing() {
        // One 4-row page can't hold even the describe prompt, so every
        // attempt preempts until the request fails typed.
        let (s, r, metrics) = scheduler(SchedConfig {
            kv_pages: 1,
            page_rows: 4,
            ..SchedConfig::default()
        });
        let rx = s.submit(Arc::clone(&r), 0, request(1), None).unwrap();
        assert_eq!(rx.recv().unwrap(), Err(JobError::ResourcesExhausted));
        assert!(metrics.sched_preemptions.load(Ordering::Relaxed) > MAX_PREEMPTIONS as u64);
        s.drain();
        assert_eq!(
            metrics.kv_pages_in_use.load(Ordering::Relaxed),
            0,
            "exhaustion must strand no pages"
        );
    }
}
