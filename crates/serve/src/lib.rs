//! Online inference serving for the stress-detection chain.
//!
//! Wraps trained `Describe → Assess → Highlight` pipelines (§III of the
//! paper) in an HTTP/1.1 API so the model can be queried interactively —
//! the deployment story for a monitoring product built on the paper's
//! method.  Everything is hand-rolled over `std` (see DESIGN.md §2: the
//! workspace builds without registry access).
//!
//! The serving core is a micro-batching scheduler: requests admitted
//! through a bounded queue are grouped into small batches and dispatched
//! through the deterministic [`runtime::Pool`], trading a bounded batching
//! window of latency for parallel throughput.  Responses are pure
//! functions of `(model, request)`, so a request with a fixed seed is
//! byte-identical no matter how it was batched or how many worker threads
//! ran it — the serving layer inherits the workspace's reproducibility
//! guarantee instead of breaking it.
//!
//! Models come from a [`ModelProvider`]: trained at boot
//! ([`TrainedProvider`]), instant untrained tiny models
//! ([`UntrainedProvider`]) or integrity-checked `SRCR1` artifacts on disk
//! ([`ArtifactProvider`], `serve --model-dir`) — the latter boots with
//! zero training.  The provider is retained so `POST /admin/reload`
//! hot-swaps a fresh registry while in-flight requests drain on the old
//! one.  Every non-2xx response carries the unified error schema
//! `{"error":{"code","message","retry_after"?}}`.
//!
//! Failure model (DESIGN.md §"Failure model"): per-request deadlines,
//! slow-loris and body-size bounds at the parser, explain load-shedding
//! with a bounded response cache, a circuit-broken reload that rolls back
//! to the last-good registry, and per-request panic isolation in the
//! batcher.  All of it is exercised by the deterministic chaos layer in
//! `runtime::faults` (`scripts/chaos_smoke.sh`).
//!
//! Endpoints: `POST /v1/predict`, `POST /v1/explain`, `GET /v1/models`,
//! `GET /healthz`, `GET /readyz`, `GET /metrics`, `POST /admin/reload`,
//! `POST /admin/shutdown`.

pub mod api;
pub mod batch;
pub mod http;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod server;

// One config construction path across `core`, `serve` and `bench`.
pub use chain_reason::{ConfigError, PipelineConfig, PipelineConfigBuilder};

pub use batch::{BatchConfig, JobError, Scheduler, SubmitError};
pub use registry::{
    ArtifactProvider, ModelEntry, ModelProvider, Registry, TrainedProvider, UntrainedProvider,
};
pub use server::{Server, ServerConfig};
