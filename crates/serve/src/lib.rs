//! Online inference serving for the stress-detection chain.
//!
//! Wraps trained `Describe → Assess → Highlight` pipelines (§III of the
//! paper) in an HTTP/1.1 API so the model can be queried interactively —
//! the deployment story for a monitoring product built on the paper's
//! method.  Everything is hand-rolled over `std` (see DESIGN.md §2: the
//! workspace builds without registry access).
//!
//! The serving core is a continuous-batching scheduler ([`sched`]):
//! requests admitted through a bounded queue join the running batch at
//! token boundaries and leave the moment they finish, over paged KV
//! allocation and a cross-request prefix cache so identical prompt
//! preambles are prefilled once and shared by reference.  Responses are
//! pure functions of `(model, request)`, so a request with a fixed seed is
//! byte-identical no matter its co-tenants, scheduling order, page size or
//! worker count — the serving layer inherits the workspace's
//! reproducibility guarantee instead of breaking it.
//!
//! Models come from a [`ModelProvider`]: trained at boot
//! ([`TrainedProvider`]), instant untrained tiny models
//! ([`UntrainedProvider`]) or integrity-checked `SRCR1` artifacts on disk
//! ([`ArtifactProvider`], `serve --model-dir`) — the latter boots with
//! zero training.  The provider is retained so `POST /admin/reload`
//! hot-swaps a fresh registry while in-flight requests drain on the old
//! one.  Every non-2xx response carries the unified error schema
//! `{"error":{"code","message","retry_after"?}}`.
//!
//! Failure model (DESIGN.md §"Failure model"): per-request deadlines,
//! slow-loris and body-size bounds at the parser, explain load-shedding
//! with a bounded response cache, a circuit-broken reload that rolls back
//! to the last-good registry, and per-request panic isolation in the
//! batcher.  All of it is exercised by the deterministic chaos layer in
//! `runtime::faults` (`scripts/chaos_smoke.sh`).
//!
//! Endpoints: `POST /v1/predict`, `POST /v1/explain`, `GET /v1/models`,
//! `GET /healthz`, `GET /readyz`, `GET /metrics`, `POST /admin/reload`,
//! `POST /admin/shutdown`.

pub mod api;
pub mod http;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod sched;
pub mod server;

// One config construction path across `core`, `serve` and `bench`.
pub use chain_reason::{ConfigError, PipelineConfig, PipelineConfigBuilder};

pub use registry::{
    ArtifactProvider, ModelEntry, ModelProvider, Registry, TrainedProvider, UntrainedProvider,
};
pub use sched::{JobError, SchedConfig, SchedPolicy, Scheduler, SubmitError};
pub use server::{Server, ServerConfig};
