//! Minimal HTTP/1.1: request parsing, response writing, and the client
//! side used by `servebench` and the tests.
//!
//! Hand-rolled over `std::io` (no registry access — see DESIGN.md §2).
//! The parser enforces hard limits on the request line, header count/size
//! and body size so a hostile peer cannot make the server buffer
//! unboundedly, and distinguishes *clean* connection close (EOF before any
//! byte of a request — the normal end of a keep-alive session) from
//! truncation mid-request.
//!
//! Slow peers are bounded too: [`parse_request_limited`] takes a parse
//! deadline, and a socket whose read timeout fires mid-request (bytes
//! already consumed) keeps being polled only until that deadline, then
//! fails with [`HttpError::Timeout`] (→ `408`).  Without it, a slow-loris
//! client dribbling one byte per read-timeout window would hold a handler
//! thread forever.

use std::io::{self, BufRead, Write};
use std::time::{Duration, Instant};

/// Maximum request-line length in bytes.
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Maximum single header line length in bytes.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Maximum number of headers.
pub const MAX_HEADERS: usize = 64;
/// Maximum request body size in bytes (the default; see [`ParseLimits`]).
pub const MAX_BODY: usize = 1024 * 1024;

/// Tunable parse limits, threaded from `ServerConfig` into the parser.
#[derive(Clone, Copy, Debug)]
pub struct ParseLimits {
    /// Largest accepted request body; a larger declared `Content-Length`
    /// is rejected with `413` before a single body byte is buffered.
    pub max_body: usize,
    /// How long one request may take to arrive in full once parsing
    /// starts.  `None` disables the bound (tests over in-memory streams).
    pub io_deadline: Option<Duration>,
}

impl Default for ParseLimits {
    fn default() -> Self {
        ParseLimits {
            max_body: MAX_BODY,
            io_deadline: None,
        }
    }
}

/// A parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Method verb, upper-case as received ("GET", "POST", …).
    pub method: String,
    /// Request target (path + optional query), as received.
    pub path: String,
    /// True for `HTTP/1.1`, false for `HTTP/1.0`.
    pub http11: bool,
    /// Header `(name, value)` pairs; names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with this (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after the response:
    /// HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close, and an explicit
    /// `Connection:` header overrides either default.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(v) if v.contains("close") => false,
            Some(v) if v.contains("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// Why a request could not be parsed, with its HTTP status mapping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line, header or body framing → 400.
    BadRequest(String),
    /// Request line or a header exceeded its limit → 431.
    HeadersTooLarge,
    /// Declared body exceeds [`MAX_BODY`] → 413.
    PayloadTooLarge,
    /// Body-bearing method without a valid `Content-Length` → 411.
    LengthRequired,
    /// The peer closed or truncated the stream mid-request.
    Truncated,
    /// Read timed out (idle keep-alive connection) — caller decides
    /// whether to keep waiting or shut the connection down.
    Idle,
    /// A request started arriving but did not complete within the parse
    /// deadline (slow-loris peer) → 408.
    Timeout,
    /// Underlying I/O failure.
    Io(String),
}

impl HttpError {
    /// The status code a server should answer this parse failure with
    /// (`None`: nothing to answer — the peer is gone or merely idle).
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::BadRequest(_) => Some((400, "Bad Request")),
            HttpError::HeadersTooLarge => Some((431, "Request Header Fields Too Large")),
            HttpError::PayloadTooLarge => Some((413, "Payload Too Large")),
            HttpError::LengthRequired => Some((411, "Length Required")),
            HttpError::Timeout => Some((408, "Request Timeout")),
            HttpError::Truncated | HttpError::Idle | HttpError::Io(_) => None,
        }
    }
}

fn io_error(e: io::Error) -> HttpError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => HttpError::Idle,
        io::ErrorKind::UnexpectedEof => HttpError::Truncated,
        _ => HttpError::Io(e.to_string()),
    }
}

/// How a timed-out read mid-line should be handled.
#[derive(Clone, Copy)]
struct ReadBudget {
    /// Whether a timeout with *zero bytes consumed* is a benign idle wait
    /// (true only for the request line of a keep-alive session).
    idle_ok: bool,
    /// Parse deadline: polling continues across read timeouts until this
    /// instant, then the request fails with [`HttpError::Timeout`].
    /// `None` preserves the unbounded (test/in-memory) behaviour.
    deadline: Option<Instant>,
}

impl ReadBudget {
    /// Map a timed-out read: keep polling (`Ok`) or give up (`Err`).
    fn on_timeout(&self, consumed: bool) -> Result<(), HttpError> {
        if !consumed && self.idle_ok {
            return Err(HttpError::Idle);
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => Err(HttpError::Timeout),
            Some(_) => Ok(()),
            // No deadline configured: surface the timeout as Idle (the
            // legacy behaviour — callers without a deadline decide).
            None => Err(HttpError::Idle),
        }
    }
}

/// Read one CRLF- (or bare-LF-) terminated line, excluding the terminator.
/// `limit` bounds the bytes buffered; EOF before any byte yields `None`.
fn read_line<R: BufRead>(
    r: &mut R,
    limit: usize,
    budget: ReadBudget,
) -> Result<Option<String>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Truncated);
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let s = String::from_utf8(line)
                        .map_err(|_| HttpError::BadRequest("non-UTF-8 header data".into()))?;
                    return Ok(Some(s));
                }
                if line.len() >= limit {
                    return Err(HttpError::HeadersTooLarge);
                }
                line.push(byte[0]);
            }
            Err(e) => match io_error(e) {
                HttpError::Idle => budget.on_timeout(!line.is_empty())?,
                other => return Err(other),
            },
        }
    }
}

/// Fill `buf` completely, polling across read timeouts until the budget's
/// deadline.  EOF mid-fill is truncation.
fn read_full<R: BufRead>(r: &mut R, buf: &mut [u8], budget: ReadBudget) -> Result<(), HttpError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err(HttpError::Truncated),
            Ok(n) => filled += n,
            Err(e) => match io_error(e) {
                // A body is always mid-request: never a benign idle.
                HttpError::Idle => budget.on_timeout(true)?,
                other => return Err(other),
            },
        }
    }
    Ok(())
}

/// Parse one request from the stream with default limits (no deadline).
///
/// `Ok(None)` means the peer closed cleanly before sending anything — the
/// normal end of a keep-alive session, not an error.
pub fn parse_request<R: BufRead>(r: &mut R) -> Result<Option<Request>, HttpError> {
    parse_request_limited(r, ParseLimits::default())
}

/// Parse one request from the stream under explicit [`ParseLimits`].
///
/// The deadline clock starts here: a peer that trickles bytes slower than
/// the socket read timeout keeps the parse alive only until
/// `limits.io_deadline` elapses, then gets [`HttpError::Timeout`].
pub fn parse_request_limited<R: BufRead>(
    r: &mut R,
    limits: ParseLimits,
) -> Result<Option<Request>, HttpError> {
    let deadline = limits.io_deadline.map(|d| Instant::now() + d);
    let first = ReadBudget {
        idle_ok: true,
        deadline,
    };
    let rest = ReadBudget {
        idle_ok: false,
        deadline,
    };
    let Some(request_line) = read_line(r, MAX_REQUEST_LINE, first)? else {
        return Ok(None);
    };
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()))
        .ok_or_else(|| HttpError::BadRequest("bad method".into()))?
        .to_owned();
    let path = parts
        .next()
        .filter(|p| p.starts_with('/'))
        .ok_or_else(|| HttpError::BadRequest("bad request target".into()))?
        .to_owned();
    let http11 = match parts.next() {
        Some("HTTP/1.1") => true,
        Some("HTTP/1.0") => false,
        _ => return Err(HttpError::BadRequest("bad HTTP version".into())),
    };
    if parts.next().is_some() {
        return Err(HttpError::BadRequest("extra tokens in request line".into()));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(r, MAX_HEADER_LINE, rest)?.ok_or(HttpError::Truncated)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::HeadersTooLarge);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest("header without ':'".into()))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadRequest("bad header name".into()));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }

    let mut req = Request {
        method,
        path,
        http11,
        headers,
        body: Vec::new(),
    };

    let content_length = match req.header("content-length") {
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| HttpError::BadRequest("bad Content-Length".into()))?,
        ),
        None => None,
    };
    if req.header("transfer-encoding").is_some() {
        // Chunked bodies are out of scope for this API surface.
        return Err(HttpError::BadRequest(
            "Transfer-Encoding unsupported".into(),
        ));
    }
    match content_length {
        Some(n) if n > limits.max_body => return Err(HttpError::PayloadTooLarge),
        Some(n) => {
            let mut body = vec![0u8; n];
            read_full(r, &mut body, rest)?;
            req.body = body;
        }
        None if req.method == "POST" || req.method == "PUT" => {
            return Err(HttpError::LengthRequired)
        }
        None => {}
    }
    Ok(Some(req))
}

/// A response under construction.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// Extra headers beyond `Content-Type`/`Content-Length`/`Connection`.
    pub headers: Vec<(&'static str, String)>,
    /// Content type of `body`.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, reason: &'static str, body: &crate::json::Json) -> Self {
        Response {
            status,
            reason,
            headers: Vec::new(),
            content_type: "application/json",
            body: body.to_text().into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, reason: &'static str, body: impl Into<String>) -> Self {
        Response {
            status,
            reason,
            headers: Vec::new(),
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    /// Add a header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }

    /// Serialize to the wire, stamping the connection disposition.
    ///
    /// The whole response is assembled into one buffer and sent with a
    /// single write: one syscall instead of one per header line, and a
    /// write failure (real or injected at `socket.write`) severs the
    /// response before any bytes leave rather than mid-headers — a peer
    /// can never mistake a truncated header block for a complete
    /// empty-bodied response.
    pub fn write_to<W: Write>(&self, w: &mut W, keep_alive: bool) -> io::Result<()> {
        let mut buf = Vec::with_capacity(self.body.len() + 256);
        write!(buf, "HTTP/1.1 {} {}\r\n", self.status, self.reason)?;
        write!(buf, "Content-Type: {}\r\n", self.content_type)?;
        write!(buf, "Content-Length: {}\r\n", self.body.len())?;
        write!(
            buf,
            "Connection: {}\r\n",
            if keep_alive { "keep-alive" } else { "close" }
        )?;
        for (name, value) in &self.headers {
            write!(buf, "{name}: {value}\r\n")?;
        }
        buf.extend_from_slice(b"\r\n");
        buf.extend_from_slice(&self.body);
        w.write_all(&buf)?;
        w.flush()
    }
}

/// A response as read back by the client side (`servebench`, tests).
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header with this (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 text.
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Read one response off the stream (client side).
pub fn read_response<R: BufRead>(r: &mut R) -> Result<ClientResponse, HttpError> {
    let budget = ReadBudget {
        idle_ok: true,
        deadline: None,
    };
    let status_line = read_line(r, MAX_REQUEST_LINE, budget)?.ok_or(HttpError::Truncated)?;
    let mut parts = status_line.split(' ');
    match parts.next() {
        Some("HTTP/1.1") | Some("HTTP/1.0") => {}
        _ => return Err(HttpError::BadRequest("bad status line".into())),
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::BadRequest("bad status code".into()))?;
    let mut headers = Vec::new();
    loop {
        let line = read_line(r, MAX_HEADER_LINE, budget)?.ok_or(HttpError::Truncated)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
        }
    }
    let n: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .ok_or_else(|| HttpError::BadRequest("response without Content-Length".into()))?;
    let mut body = vec![0u8; n];
    r.read_exact(&mut body).map_err(io_error)?;
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

/// Serialize a request for the wire (client side).
pub fn write_request<W: Write>(
    w: &mut W,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    keep_alive: bool,
) -> io::Result<()> {
    write!(w, "{method} {path} HTTP/1.1\r\nHost: localhost\r\n")?;
    if !keep_alive {
        w.write_all(b"Connection: close\r\n")?;
    }
    if let Some(body) = body {
        write!(
            w,
            "Content-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )?;
        w.write_all(body)?;
    } else {
        w.write_all(b"\r\n")?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        parse_request(&mut Cursor::new(raw.as_bytes().to_vec()))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse("POST /v1/predict HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/predict");
        assert!(req.http11);
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive());
    }

    #[test]
    fn clean_eof_is_not_an_error() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        let req = parse("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive());
        let req = parse("GET /healthz HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive(), "1.0 defaults to close");
        let req = parse("GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.keep_alive());
    }

    #[test]
    fn post_without_length_is_411() {
        let err = parse("POST /v1/predict HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!(err, HttpError::LengthRequired);
        assert_eq!(err.status(), Some((411, "Length Required")));
    }

    #[test]
    fn declared_body_over_limit_is_413() {
        let raw = format!(
            "POST /v1/predict HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert_eq!(parse(&raw).unwrap_err(), HttpError::PayloadTooLarge);
    }

    #[test]
    fn truncated_body_is_detected() {
        let err = parse("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err();
        assert_eq!(err, HttpError::Truncated);
    }

    #[test]
    fn oversized_header_line_is_431() {
        let raw = format!("GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n", "a".repeat(9000));
        assert_eq!(parse(&raw).unwrap_err(), HttpError::HeadersTooLarge);
    }

    #[test]
    fn too_many_headers_is_431() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + 1) {
            raw.push_str(&format!("X-H{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        assert_eq!(parse(&raw).unwrap_err(), HttpError::HeadersTooLarge);
    }

    #[test]
    fn malformed_request_lines_are_400() {
        for bad in [
            "GET\r\n\r\n",
            "get / HTTP/1.1\r\n\r\n",
            "GET noslash HTTP/1.1\r\n\r\n",
            "GET / HTTP/2\r\n\r\n",
            "GET / HTTP/1.1 extra\r\n\r\n",
        ] {
            match parse(bad) {
                Err(HttpError::BadRequest(_)) => {}
                other => panic!("{bad:?} gave {other:?}"),
            }
        }
    }

    #[test]
    fn keep_alive_reuse_parses_back_to_back_requests() {
        let raw = "GET /healthz HTTP/1.1\r\n\r\nPOST /v1/predict HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut cur = Cursor::new(raw.as_bytes().to_vec());
        let a = parse_request(&mut cur).unwrap().unwrap();
        let b = parse_request(&mut cur).unwrap().unwrap();
        let c = parse_request(&mut cur).unwrap().unwrap();
        assert_eq!(a.path, "/healthz");
        assert_eq!(b.body, b"{}");
        assert_eq!(c.path, "/metrics");
        assert!(!c.keep_alive());
        assert!(parse_request(&mut cur).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn response_roundtrips_through_client_parser() {
        let resp = Response::json(200, "OK", &crate::json::Json::Bool(true))
            .with_header("Retry-After", "1");
        let mut wire = Vec::new();
        resp.write_to(&mut wire, true).unwrap();
        let parsed = read_response(&mut Cursor::new(wire)).unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.header("retry-after"), Some("1"));
        assert_eq!(parsed.header("connection"), Some("keep-alive"));
        assert_eq!(parsed.body_text(), "true");
    }

    /// A reader that interleaves `WouldBlock` timeouts between real bytes,
    /// simulating a slow-loris peer over a socket with a read timeout.
    struct Dribble {
        data: Vec<u8>,
        pos: usize,
        ready: bool,
    }

    impl io::Read for Dribble {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(io::Error::from(io::ErrorKind::WouldBlock));
            }
            self.ready = false;
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    fn dribble(raw: &str) -> io::BufReader<Dribble> {
        // Capacity 1 so BufRead refills (and hits WouldBlock) per byte.
        // Start ready: the first byte arrives before the first timeout, so
        // every subsequent WouldBlock is a *mid-request* stall.
        io::BufReader::with_capacity(
            1,
            Dribble {
                data: raw.as_bytes().to_vec(),
                pos: 0,
                ready: true,
            },
        )
    }

    #[test]
    fn slow_peer_with_budget_still_parses() {
        let limits = ParseLimits {
            max_body: MAX_BODY,
            io_deadline: Some(Duration::from_secs(5)),
        };
        let mut r = dribble("POST /v1/predict HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd");
        let req = parse_request_limited(&mut r, limits).unwrap().unwrap();
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn expired_deadline_mid_request_is_408() {
        let limits = ParseLimits {
            max_body: MAX_BODY,
            // Already expired: the first mid-request timeout gives up.
            io_deadline: Some(Duration::from_secs(0)),
        };
        let mut r = dribble("POST /v1/predict HTTP/1.1\r\nContent-Length: 4\r\n\r\nab");
        let err = parse_request_limited(&mut r, limits).unwrap_err();
        assert_eq!(err, HttpError::Timeout);
        assert_eq!(err.status(), Some((408, "Request Timeout")));
    }

    #[test]
    fn idle_keep_alive_wait_is_not_a_timeout() {
        // Zero bytes consumed + timeout on the request line: benign Idle,
        // even with an (expired) deadline armed.
        let limits = ParseLimits {
            max_body: MAX_BODY,
            io_deadline: Some(Duration::from_secs(0)),
        };
        let mut r = io::BufReader::with_capacity(
            1,
            Dribble {
                data: Vec::new(),
                pos: 0,
                ready: false,
            },
        );
        assert_eq!(
            parse_request_limited(&mut r, limits).unwrap_err(),
            HttpError::Idle
        );
    }

    #[test]
    fn configurable_body_cap_is_enforced() {
        let limits = ParseLimits {
            max_body: 8,
            io_deadline: None,
        };
        let raw = "POST /v1/predict HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789";
        let err =
            parse_request_limited(&mut Cursor::new(raw.as_bytes().to_vec()), limits).unwrap_err();
        assert_eq!(err, HttpError::PayloadTooLarge);
        assert_eq!(err.status(), Some((413, "Payload Too Large")));
        // At the cap is fine.
        let raw = "POST /v1/predict HTTP/1.1\r\nContent-Length: 8\r\n\r\n12345678";
        let req = parse_request_limited(&mut Cursor::new(raw.as_bytes().to_vec()), limits)
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"12345678");
    }

    #[test]
    fn request_writer_roundtrips_through_request_parser() {
        let mut wire = Vec::new();
        write_request(&mut wire, "POST", "/v1/predict", Some(b"{\"a\":1}"), true).unwrap();
        let req = parse_request(&mut Cursor::new(wire)).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"a\":1}");
    }
}
