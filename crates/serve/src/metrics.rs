//! Server observability: counters, gauges, a batch-size distribution and
//! latency reservoirs with p50/p95/p99, rendered in the Prometheus text
//! exposition format at `GET /metrics`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use evalkit::timing::percentiles;

/// Cap on retained latency samples per route (a sliding window: once full,
/// new samples overwrite the oldest, so percentiles track recent traffic).
const RESERVOIR_CAP: usize = 8192;

/// Batch-size histogram bucket upper bounds (inclusive); the last bucket
/// is open-ended.
const BATCH_BUCKETS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// A sliding-window latency reservoir.
#[derive(Debug, Default)]
struct Reservoir {
    samples: Vec<f64>,
    /// Next overwrite position once the window is full.
    cursor: usize,
    /// Lifetime sample count (not capped).
    count: u64,
    /// Lifetime sum of seconds (not capped).
    sum: f64,
}

impl Reservoir {
    fn record(&mut self, seconds: f64) {
        self.count += 1;
        self.sum += seconds;
        if self.samples.len() < RESERVOIR_CAP {
            self.samples.push(seconds);
        } else {
            self.samples[self.cursor] = seconds;
            self.cursor = (self.cursor + 1) % RESERVOIR_CAP;
        }
    }

    /// `(p50, p95, p99)` over the window, if any samples exist.
    fn quantiles(&self) -> Option<[f64; 3]> {
        if self.samples.is_empty() {
            return None;
        }
        let mut window = self.samples.clone();
        let v = percentiles(&mut window, &[0.50, 0.95, 0.99]);
        Some([v[0], v[1], v[2]])
    }
}

/// All server metrics. Cheap to update from any thread.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests accepted per route outcome.
    pub predict_ok: AtomicU64,
    /// Explain requests served.
    pub explain_ok: AtomicU64,
    /// Responses with a 4xx status.
    pub client_errors: AtomicU64,
    /// Responses with a 5xx status.
    pub server_errors: AtomicU64,
    /// Predict submissions rejected because the admission queue was full.
    pub queue_rejected: AtomicU64,
    /// Current admission-queue depth (set by the scheduler).
    pub queue_depth: AtomicUsize,
    /// Batch-size distribution (bucketed; see `BATCH_BUCKETS`).
    batch_buckets: [AtomicU64; BATCH_BUCKETS.len() + 1],
    /// Total batches dispatched.
    pub batches: AtomicU64,
    predict_latency: Mutex<Reservoir>,
    explain_latency: Mutex<Reservoir>,
}

impl Metrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Record a served predict request's end-to-end seconds.
    pub fn record_predict(&self, seconds: f64) {
        self.predict_ok.fetch_add(1, Ordering::Relaxed);
        self.predict_latency
            .lock()
            .expect("metrics lock")
            .record(seconds);
    }

    /// Record a served explain request's end-to-end seconds.
    pub fn record_explain(&self, seconds: f64) {
        self.explain_ok.fetch_add(1, Ordering::Relaxed);
        self.explain_latency
            .lock()
            .expect("metrics lock")
            .record(seconds);
    }

    /// Record a response status (called once per response written).
    pub fn record_status(&self, status: u16) {
        if (400..500).contains(&status) {
            self.client_errors.fetch_add(1, Ordering::Relaxed);
        } else if status >= 500 {
            self.server_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a dispatched batch's size.
    pub fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        let idx = BATCH_BUCKETS
            .iter()
            .position(|&b| size <= b)
            .unwrap_or(BATCH_BUCKETS.len());
        self.batch_buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total requests served on the two inference routes.
    pub fn served(&self) -> u64 {
        self.predict_ok.load(Ordering::Relaxed) + self.explain_ok.load(Ordering::Relaxed)
    }

    /// Render the Prometheus text exposition.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(2048);
        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
            ));
        };
        counter(
            &mut out,
            "serve_predict_requests_total",
            "Predict requests served",
            self.predict_ok.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "serve_explain_requests_total",
            "Explain requests served",
            self.explain_ok.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "serve_client_errors_total",
            "Responses with a 4xx status",
            self.client_errors.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "serve_server_errors_total",
            "Responses with a 5xx status",
            self.server_errors.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "serve_queue_rejected_total",
            "Predict requests rejected by admission control",
            self.queue_rejected.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "serve_batches_total",
            "Micro-batches dispatched",
            self.batches.load(Ordering::Relaxed),
        );
        out.push_str(&format!(
            "# HELP serve_queue_depth Current admission-queue depth\n# TYPE serve_queue_depth gauge\nserve_queue_depth {}\n",
            self.queue_depth.load(Ordering::Relaxed)
        ));

        out.push_str(
            "# HELP serve_batch_size Batch-size distribution\n# TYPE serve_batch_size histogram\n",
        );
        let mut cumulative = 0u64;
        for (i, &bound) in BATCH_BUCKETS.iter().enumerate() {
            cumulative += self.batch_buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "serve_batch_size_bucket{{le=\"{bound}\"}} {cumulative}\n"
            ));
        }
        cumulative += self.batch_buckets[BATCH_BUCKETS.len()].load(Ordering::Relaxed);
        out.push_str(&format!(
            "serve_batch_size_bucket{{le=\"+Inf\"}} {cumulative}\n"
        ));

        for (route, reservoir) in [
            ("predict", &self.predict_latency),
            ("explain", &self.explain_latency),
        ] {
            let r = reservoir.lock().expect("metrics lock");
            out.push_str(&format!(
                "# HELP serve_{route}_latency_seconds End-to-end {route} latency\n# TYPE serve_{route}_latency_seconds summary\n"
            ));
            if let Some([p50, p95, p99]) = r.quantiles() {
                out.push_str(&format!(
                    "serve_{route}_latency_seconds{{quantile=\"0.5\"}} {p50:.6}\n"
                ));
                out.push_str(&format!(
                    "serve_{route}_latency_seconds{{quantile=\"0.95\"}} {p95:.6}\n"
                ));
                out.push_str(&format!(
                    "serve_{route}_latency_seconds{{quantile=\"0.99\"}} {p99:.6}\n"
                ));
            }
            out.push_str(&format!(
                "serve_{route}_latency_seconds_sum {:.6}\nserve_{route}_latency_seconds_count {}\n",
                r.sum, r.count
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_reports_counters_and_quantiles() {
        let m = Metrics::new();
        m.record_predict(0.010);
        m.record_predict(0.020);
        m.record_predict(0.030);
        m.record_batch(3);
        m.record_status(429);
        m.queue_depth.store(2, Ordering::Relaxed);
        let text = m.render();
        assert!(text.contains("serve_predict_requests_total 3"));
        assert!(text.contains("serve_client_errors_total 1"));
        assert!(text.contains("serve_queue_depth 2"));
        assert!(text.contains("serve_batch_size_bucket{le=\"4\"} 1"));
        assert!(text.contains("quantile=\"0.5\"} 0.020000"));
        assert!(text.contains("serve_predict_latency_seconds_count 3"));
        // No explain traffic yet: count present, quantiles absent.
        assert!(text.contains("serve_explain_latency_seconds_count 0"));
        assert!(!text.contains("serve_explain_latency_seconds{quantile"));
    }

    #[test]
    fn reservoir_slides_once_full() {
        let mut r = Reservoir::default();
        for i in 0..(RESERVOIR_CAP + 10) {
            r.record(i as f64);
        }
        assert_eq!(r.samples.len(), RESERVOIR_CAP);
        assert_eq!(r.count, (RESERVOIR_CAP + 10) as u64);
        // The oldest samples were overwritten by the newest.
        assert!(r.samples.contains(&(RESERVOIR_CAP as f64 + 9.0)));
        assert!(!r.samples.contains(&0.0));
    }

    #[test]
    fn batch_bucket_edges() {
        let m = Metrics::new();
        m.record_batch(1);
        m.record_batch(2);
        m.record_batch(33);
        let text = m.render();
        assert!(text.contains("serve_batch_size_bucket{le=\"1\"} 1"));
        assert!(text.contains("serve_batch_size_bucket{le=\"2\"} 2"));
        assert!(text.contains("serve_batch_size_bucket{le=\"32\"} 2"));
        assert!(text.contains("serve_batch_size_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("serve_batches_total 3"));
    }
}
